//! Differential property tests for batched parallel ingest.
//!
//! `VistIndex::insert_batch` must be *invisible* in the results: the same
//! document set ingested serially, via `insert_batch` at 1/2/4/8 prepare
//! threads, and via `bulk_build` must answer every query identically.
//! Against the serial path the guarantee is exact — same document ids,
//! same doc-id answers, same final scope sets — because the apply phase
//! replays the batch in input order through the same allocator. Against
//! `bulk_build` only document ids and doc-id answers must agree (segments
//! label nodes statically, so scope values legitimately differ).

use std::collections::BTreeSet;

use vist::{IndexOptions, QueryOptions, VistIndex};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCH: usize = 7;

/// Small vocabulary, duplicated names and whole-document duplicates:
/// maximal structural sharing, which is where the batch edge cache and the
/// overlay remap have the most opportunities to get subtly wrong.
const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
const VALUES: [&str; 4] = ["1", "2", "3", "4"];

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_xml(rng: &mut Rng, depth: usize) -> String {
    let name = NAMES[rng.below(NAMES.len())];
    let mut body = String::new();
    if rng.below(2) == 0 {
        body.push_str(VALUES[rng.below(VALUES.len())]);
    }
    if depth > 0 {
        for _ in 0..rng.below(4) {
            body.push_str(&random_xml(rng, depth - 1));
        }
    }
    format!("<{name}>{body}</{name}>")
}

/// A corpus with deliberate duplicate documents (same structure AND same
/// element names) sprinkled in.
fn corpus(seed: u64, n: usize) -> Vec<String> {
    let mut rng = Rng(seed);
    let mut docs: Vec<String> = (0..n)
        .map(|_| {
            let depth = 1 + rng.below(3);
            random_xml(&mut rng, depth)
        })
        .collect();
    for i in (0..n).step_by(5) {
        let dup = docs[i].clone();
        docs[(i + 2) % n] = dup;
    }
    docs
}

/// The query corpus of the planner-diff suite: wildcard-heavy, branch-heavy
/// and dead-prefix shapes.
fn queries(rng: &mut Rng) -> Vec<String> {
    let mut qs = vec![
        "/a".to_string(),
        "//b".to_string(),
        "/a/b".to_string(),
        "//a//c".to_string(),
        "/*/b".to_string(),
        "/a[b='1']".to_string(),
        "//c[d]".to_string(),
        "/zzz".to_string(),
        "//zzz/*".to_string(),
    ];
    for _ in 0..6 {
        let steps = 1 + rng.below(3);
        let mut q = String::new();
        for _ in 0..steps {
            let n = rng.below(NAMES.len() + 3);
            let name = if n >= NAMES.len() { "*" } else { NAMES[n] };
            q.push_str(if rng.below(2) == 0 { "//" } else { "/" });
            q.push_str(name);
        }
        if rng.below(2) == 0 {
            q.push_str(&format!(
                "[{}='{}']",
                NAMES[rng.below(NAMES.len())],
                VALUES[rng.below(VALUES.len())]
            ));
        }
        qs.push(q);
    }
    qs
}

fn doc_ids(idx: &VistIndex, q: &str) -> Vec<u64> {
    idx.query(q, &QueryOptions::default()).unwrap().doc_ids
}

fn scopes(idx: &VistIndex, q: &str) -> Vec<(u128, u128)> {
    let pattern = vist_query::parse_query(q).unwrap().to_pattern();
    idx.match_scopes(&pattern, &QueryOptions::default())
        .unwrap()
        .0
}

/// Serial vs `insert_batch` at every thread count: identical document ids,
/// identical doc-id answers, identical scope sets.
#[test]
fn batch_matches_serial_at_all_thread_counts() {
    let docs = corpus(0x1B_0001, 36);
    let mut rng = Rng(0x1B_0002);
    let qs = queries(&mut rng);

    let serial = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let mut serial_ids = Vec::new();
    for xml in &docs {
        serial_ids.push(serial.insert_xml(xml).unwrap());
    }

    for &threads in &THREAD_COUNTS {
        let batch = VistIndex::in_memory(IndexOptions::default()).unwrap();
        let mut batch_ids = Vec::new();
        for chunk in docs.chunks(BATCH) {
            batch_ids.extend(batch.insert_batch(chunk, threads).unwrap());
        }
        assert_eq!(
            batch_ids, serial_ids,
            "doc ids diverge at {threads} threads"
        );
        assert_eq!(batch.doc_count(), serial.doc_count());
        for q in &qs {
            assert_eq!(
                doc_ids(&batch, q),
                doc_ids(&serial, q),
                "doc-id answers diverge at {threads} threads: {q}"
            );
            assert_eq!(
                scopes(&batch, q),
                scopes(&serial, q),
                "scope sets diverge at {threads} threads: {q}"
            );
        }
        let st = batch.stats();
        assert!(st.ingest_batches > 0, "batches recorded in stats");
        assert_eq!(st.ingest_batch_docs, docs.len() as u64);
    }
}

/// Interleaved removes between batches: remove a sprinkling of documents
/// after each batch (same schedule on the serial index) and the results
/// must still be identical — including the scope labels of later batches,
/// which allocate after the removals.
#[test]
fn batch_with_interleaved_removes_matches_serial() {
    let docs = corpus(0x1B_0003, 30);
    let mut rng = Rng(0x1B_0004);
    let qs = queries(&mut rng);
    // Remove schedule: after batch k, remove these offsets of that batch.
    let victims = |first: u64, len: usize| -> Vec<u64> {
        (0..len as u64)
            .filter(|o| o % 3 == 1)
            .map(|o| first + o)
            .collect()
    };

    let serial = VistIndex::in_memory(IndexOptions::default()).unwrap();
    for chunk in docs.chunks(BATCH) {
        let mut first = None;
        for xml in chunk {
            let id = serial.insert_xml(xml).unwrap();
            first.get_or_insert(id);
        }
        for id in victims(first.unwrap(), chunk.len()) {
            serial.remove_document(id).unwrap();
        }
    }

    for &threads in &THREAD_COUNTS {
        let batch = VistIndex::in_memory(IndexOptions::default()).unwrap();
        for chunk in docs.chunks(BATCH) {
            let ids = batch.insert_batch(chunk, threads).unwrap();
            for id in victims(ids[0], chunk.len()) {
                batch.remove_document(id).unwrap();
            }
        }
        assert_eq!(batch.doc_count(), serial.doc_count());
        for q in &qs {
            assert_eq!(
                doc_ids(&batch, q),
                doc_ids(&serial, q),
                "doc-id answers diverge at {threads} threads: {q}"
            );
            assert_eq!(
                scopes(&batch, q),
                scopes(&serial, q),
                "scope sets diverge at {threads} threads: {q}"
            );
        }
    }
}

/// `insert_batch` vs `bulk_build` on a tiered index: same document ids,
/// same doc-id answers (scope labels legitimately differ across tiers).
#[test]
fn batch_matches_bulk_build_answers() {
    let docs = corpus(0x1B_0005, 24);
    let mut rng = Rng(0x1B_0006);
    let qs = queries(&mut rng);

    let dir = vist_storage::testutil::TempDir::new("parallel-ingest-bulk");
    let bulk = VistIndex::create_file(dir.file("bulk"), IndexOptions::default()).unwrap();
    let bulk_ids = bulk.bulk_build(docs.clone()).unwrap();

    let batch = VistIndex::create_file(dir.file("batch"), IndexOptions::default()).unwrap();
    let mut batch_ids = Vec::new();
    for chunk in docs.chunks(BATCH) {
        batch_ids.extend(batch.insert_batch(chunk, 4).unwrap());
    }
    assert_eq!(batch_ids, bulk_ids);
    for q in &qs {
        let b: BTreeSet<u64> = doc_ids(&batch, q).into_iter().collect();
        let s: BTreeSet<u64> = doc_ids(&bulk, q).into_iter().collect();
        assert_eq!(b, s, "batch vs bulk answers diverge: {q}");
    }
}

/// A parse failure anywhere in a batch rejects the whole batch before any
/// mutation: no documents land, ids are not consumed, queries are
/// unchanged.
#[test]
fn bad_document_rejects_whole_batch() {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    idx.insert_xml("<a><b>1</b></a>").unwrap();
    let before = idx.doc_count();
    let batch = [
        "<a>ok</a>".to_string(),
        "<broken".to_string(),
        "<b/>".to_string(),
    ];
    assert!(idx.insert_batch(&batch, 2).is_err());
    assert_eq!(
        idx.doc_count(),
        before,
        "failed batch must not change the index"
    );
    let id = idx.insert_xml("<a><b>2</b></a>").unwrap();
    assert_eq!(id, 1, "failed batch must not consume document ids");
}

/// Group-commit durability smoke: a batch is fully visible after reopen
/// with no extra flush (the batch-final checkpoint is the commit).
#[test]
fn batch_is_durable_without_extra_flush() {
    let dir = vist_storage::testutil::TempDir::new("parallel-ingest-durable");
    let path = dir.file("store");
    let docs = corpus(0x1B_0007, 12);
    let ids = {
        let idx = VistIndex::create_file(&path, IndexOptions::default()).unwrap();
        idx.insert_batch(&docs, 2).unwrap()
        // No flush: dropped hot.
    };
    let idx = VistIndex::open_file(&path, 256).unwrap();
    idx.check().unwrap();
    assert_eq!(idx.doc_count(), ids.len() as u64);
    let got: BTreeSet<u64> = idx.document_ids().unwrap().into_iter().collect();
    assert_eq!(got, ids.into_iter().collect::<BTreeSet<u64>>());
}
