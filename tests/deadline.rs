//! Deadline/cancellation semantics (ISSUE 8 satellite): a query
//! cancelled mid-match on a tiered index returns `DeadlineExceeded`,
//! leaves no poisoned locks, and the next query returns bit-identical
//! results to an undisturbed run — for both the serial (workers=1) and
//! parallel (workers=4) match paths.

use std::time::{Duration, Instant};

use vist::datagen::dblp;
use vist::{Error, IndexOptions, QueryOptions, VistIndex};
use vist_storage::testutil::TempDir;

const EXPR: &str = "/book/author";

/// A tiered index: one packed segment (bulk load) under a mutable
/// delta (per-document inserts), so cancellation crosses tier
/// boundaries too.
fn build_tiered(dir: &TempDir) -> VistIndex {
    let path = dir.file("index");
    let idx = VistIndex::create_file(
        &path,
        IndexOptions {
            store_documents: true,
            ..IndexOptions::default()
        },
    )
    .unwrap();
    let docs = dblp::documents(400, 11);
    let (seg, delta) = docs.split_at(300);
    idx.bulk_build(seg.iter().map(|d| d.to_xml())).unwrap();
    for d in delta {
        idx.insert_document(d).unwrap();
    }
    idx.flush().unwrap();
    idx
}

fn opts(workers: usize) -> QueryOptions {
    QueryOptions {
        workers,
        ..QueryOptions::default()
    }
}

#[test]
fn expired_deadline_cancels_and_leaves_index_undisturbed() {
    let dir = TempDir::new("deadline-semantics");
    let idx = build_tiered(&dir);
    for workers in [1, 4] {
        let o = opts(workers);
        let undisturbed = idx.query(EXPR, &o).unwrap();
        assert!(!undisturbed.doc_ids.is_empty());

        // A deadline already in the past must trip the engine's first
        // cooperative check, deterministically.
        let expired = idx.query(
            EXPR,
            &QueryOptions {
                deadline: Some(Instant::now()),
                ..o
            },
        );
        assert!(
            matches!(expired, Err(Error::DeadlineExceeded)),
            "workers={workers}: {expired:?}"
        );

        // No poisoned locks, no mutated state: the next query is
        // bit-identical to the undisturbed run.
        let after = idx.query(EXPR, &o).unwrap();
        assert_eq!(
            after.doc_ids, undisturbed.doc_ids,
            "workers={workers}: results diverged after cancellation"
        );
        assert_eq!(after.candidates, undisturbed.candidates);
    }
}

#[test]
fn tight_budgets_either_finish_or_cancel_cleanly() {
    // Sweep budgets from "instant" to "comfortable": every outcome must
    // be either the exact answer or a clean DeadlineExceeded, and the
    // index must stay consistent throughout. This exercises mid-match
    // cancellation at whatever work-item the budget happens to land on.
    let dir = TempDir::new("deadline-budgets");
    let idx = build_tiered(&dir);
    for workers in [1, 4] {
        let o = opts(workers);
        let baseline = idx.query(EXPR, &o).unwrap();
        let mut cancelled = 0u32;
        for micros in [0u64, 20, 50, 100, 500, 5_000, 500_000] {
            let r = idx.query(
                EXPR,
                &QueryOptions {
                    deadline: Some(Instant::now() + Duration::from_micros(micros)),
                    ..o
                },
            );
            match r {
                Ok(res) => assert_eq!(res.doc_ids, baseline.doc_ids, "workers={workers}"),
                Err(Error::DeadlineExceeded) => cancelled += 1,
                Err(e) => panic!("workers={workers}: unexpected error {e}"),
            }
        }
        // The 0 µs budget always cancels.
        assert!(cancelled >= 1, "workers={workers}");
        let after = idx.query(EXPR, &o).unwrap();
        assert_eq!(after.doc_ids, baseline.doc_ids);
    }
}

#[test]
fn verify_loop_honors_deadline() {
    let dir = TempDir::new("deadline-verify");
    let idx = build_tiered(&dir);
    let verified = idx.query(
        EXPR,
        &QueryOptions {
            verify: true,
            ..QueryOptions::default()
        },
    );
    assert!(verified.is_ok());
    let expired = idx.query(
        EXPR,
        &QueryOptions {
            verify: true,
            deadline: Some(Instant::now()),
            ..QueryOptions::default()
        },
    );
    assert!(matches!(expired, Err(Error::DeadlineExceeded)));
    // Still fully readable, including document retrieval.
    let after = idx.query(
        EXPR,
        &QueryOptions {
            verify: true,
            ..QueryOptions::default()
        },
    );
    assert_eq!(after.unwrap().doc_ids, verified.unwrap().doc_ids);
}
