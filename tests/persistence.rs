//! Durable index lifecycle: create file → flush → reopen → query →
//! mutate → reopen again, across multiple sessions.

use vist::datagen::dblp;
use vist::{IndexOptions, QueryOptions, VistIndex};
use vist_storage::testutil::TempDir;

#[test]
fn multi_session_lifecycle() {
    let dir = TempDir::new("persist-lifecycle");
    let path = dir.file("index");
    let docs = dblp::documents(500, 7);
    let q = "/book/author[text='David Smith']";
    let baseline;

    // Session 1: build.
    {
        let idx = VistIndex::create_file(&path, IndexOptions::default()).unwrap();
        for d in &docs {
            idx.insert_document(d).unwrap();
        }
        baseline = idx.query(q, &QueryOptions::default()).unwrap().doc_ids;
        idx.flush().unwrap();
    }

    // Session 2: reopen, same answers, then mutate.
    let inserted;
    {
        let idx = VistIndex::open_file(&path, 512).unwrap();
        assert_eq!(idx.doc_count(), 500);
        assert_eq!(
            idx.query(q, &QueryOptions::default()).unwrap().doc_ids,
            baseline
        );
        // Verified mode works across sessions (documents persisted).
        let verified = idx
            .query(
                q,
                &QueryOptions {
                    verify: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(verified.doc_ids, baseline);
        inserted = idx
            .insert_xml("<book><author>David Smith</author><title>new</title></book>")
            .unwrap();
        if let Some(first) = baseline.first() {
            idx.remove_document(*first).unwrap();
        }
        idx.flush().unwrap();
    }

    // Session 3: the mutations survived.
    {
        let idx = VistIndex::open_file(&path, 512).unwrap();
        let now = idx.query(q, &QueryOptions::default()).unwrap().doc_ids;
        assert!(now.contains(&inserted), "new doc visible after reopen");
        if let Some(first) = baseline.first() {
            assert!(!now.contains(first), "deleted doc stays deleted");
        }
        assert_eq!(now.len(), baseline.len()); // -1 +1
    }
}

#[test]
fn unflushed_data_is_lost_but_index_stays_valid() {
    let dir = TempDir::new("persist-unflushed");
    let path = dir.file("index");
    {
        let idx = VistIndex::create_file(&path, IndexOptions::default()).unwrap();
        idx.insert_xml("<a><b>1</b></a>").unwrap();
        idx.flush().unwrap();
        // Insert without flushing.
        idx.insert_xml("<a><b>2</b></a>").unwrap();
    }
    {
        let idx = VistIndex::open_file(&path, 64).unwrap();
        let r = idx.query("/a/b", &QueryOptions::default()).unwrap();
        // At least the flushed document answers; the index is not corrupt.
        assert!(r.doc_ids.contains(&0));
        // And remains writable.
        let id = idx.insert_xml("<a><b>3</b></a>").unwrap();
        let r = idx
            .query("/a/b[text='3']", &QueryOptions::default())
            .unwrap();
        assert_eq!(r.doc_ids, vec![id]);
    }
}

#[test]
fn page_size_is_honoured_per_index() {
    for page_size in [2048usize, 8192] {
        let dir = TempDir::new("persist-pagesize");
        let path = dir.file(&format!("index-{page_size}"));
        {
            let idx = VistIndex::create_file(
                &path,
                IndexOptions {
                    page_size,
                    ..Default::default()
                },
            )
            .unwrap();
            for d in dblp::documents(50, 3) {
                idx.insert_document(&d).unwrap();
            }
            idx.flush().unwrap();
        }
        let idx = VistIndex::open_file(&path, 64).unwrap();
        assert_eq!(idx.doc_count(), 50);
        let r = idx
            .query("/inproceedings/title", &QueryOptions::default())
            .unwrap();
        assert!(!r.doc_ids.is_empty());
    }
}
