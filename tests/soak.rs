//! Long-running randomized soak test: a file-backed index driven through
//! thousands of mixed operations (insert, delete, query, flush, reopen),
//! cross-checked after every phase against an in-memory shadow using the
//! exact tree-pattern matcher.
//!
//! Deterministic and budgeted: the workload is a pure function of the
//! seed and the iteration budget — no wall-clock dependence — so a tier-1
//! run is reproducible and time-bounded, and nightly CI can crank the
//! same test up via environment knobs:
//! * `VIST_SOAK_SEED`   — workload seed (default `0xC0FFEE`)
//! * `VIST_SOAK_PHASES` — mutation/verify phases (default `6`)
//! * `VIST_SOAK_OPS`    — mutations per phase (default `120`)

use vist::query::{matches_document, parse_query};
use vist::seq::SiblingOrder;
use vist::storage::testutil::TempDir;
use vist::xml::Document;
use vist::{IndexOptions, QueryOptions, VistIndex};

struct Shadow {
    docs: std::collections::BTreeMap<u64, Document>,
}

impl Shadow {
    fn answer(&self, q: &str) -> Vec<u64> {
        let p = parse_query(q).unwrap().to_pattern();
        self.docs
            .iter()
            .filter(|(_, d)| matches_document(&p, d, &SiblingOrder::Lexicographic))
            .map(|(id, _)| *id)
            .collect()
    }
}

/// Seeded splitmix64 generator: the soak must replay identically per seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

fn random_doc(rng: &mut Rng) -> String {
    let kinds = ["order", "invoice", "shipment"];
    let kind = kinds[rng.below(kinds.len())];
    let mut xml = format!("<{kind}>");
    for _ in 0..1 + rng.below(4) {
        let tag = ["line", "fee", "note"][rng.below(3)];
        let val = rng.below(20);
        if rng.chance(50) {
            xml.push_str(&format!(
                "<{tag} code='{val}'><qty>{}</qty></{tag}>",
                val % 5
            ));
        } else {
            xml.push_str(&format!("<{tag}>{val}</{tag}>"));
        }
    }
    xml.push_str(&format!("</{kind}>"));
    xml
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| {
            let v = v.trim();
            v.strip_prefix("0x")
                .map_or_else(|| v.parse().ok(), |h| u64::from_str_radix(h, 16).ok())
        })
        .unwrap_or(default)
}

#[test]
fn randomized_soak_with_reopens() {
    let seed = env_u64("VIST_SOAK_SEED", 0xC0FFEE);
    let phases = env_u64("VIST_SOAK_PHASES", 6).max(1);
    let ops = env_u64("VIST_SOAK_OPS", 120).max(1) as usize;

    // Drop-guarded unique dir: no leaked store/WAL files, even on panic.
    let dir = TempDir::new("vist-soak");
    let path = dir.file("store");
    let mut rng = Rng(seed);
    let mut idx = VistIndex::create_file(&path, IndexOptions::default()).unwrap();
    let mut shadow = Shadow {
        docs: Default::default(),
    };
    let queries = [
        "/order/line[code='3']",
        "/invoice//qty",
        "//note[text='7']",
        "/shipment/*[text='2']",
        "/order[line/qty='1']/fee",
        "//line",
    ];
    for phase in 0..phases {
        // Mutation burst.
        for _ in 0..ops {
            if !shadow.docs.is_empty() && rng.chance(25) {
                let ids: Vec<u64> = shadow.docs.keys().copied().collect();
                let victim = ids[rng.below(ids.len())];
                idx.remove_document(victim).unwrap();
                shadow.docs.remove(&victim);
            } else {
                let xml = random_doc(&mut rng);
                let id = idx.insert_xml(&xml).unwrap();
                shadow.docs.insert(id, vist::xml::parse(&xml).unwrap());
            }
        }
        // Consistency sweep: verified answers equal the exact shadow.
        for q in queries {
            let got = idx
                .query(
                    q,
                    &QueryOptions {
                        verify: true,
                        ..Default::default()
                    },
                )
                .unwrap()
                .doc_ids;
            let want = shadow.answer(q);
            assert_eq!(got, want, "phase {phase}, query {q}");
            // Raw answers are a superset.
            let raw = idx.query(q, &QueryOptions::default()).unwrap().doc_ids;
            for id in &want {
                assert!(raw.contains(id), "phase {phase}: raw lost {id} for {q}");
            }
        }
        assert_eq!(idx.doc_count() as usize, shadow.docs.len(), "phase {phase}");
        // Durability churn: flush and reopen every other phase.
        if phase % 2 == 1 {
            idx.flush().unwrap();
            drop(idx);
            idx = VistIndex::open_file(&path, 512).unwrap();
        }
    }
}
