//! The paper's own worked examples, end to end.

use vist::query::{parse_query, sequence_matches, translate, TranslateOptions};
use vist::seq::{document_to_sequence, SiblingOrder, Sym, SymbolTable};
use vist::xml::parse;
use vist::{IndexOptions, QueryOptions, VistIndex};

/// The Figure 3 purchase record (element names as in the paper).
const PURCHASE: &str = concat!(
    "<Purchase>",
    "<Seller>",
    "<Name>dell</Name>",
    "<Item><Manufacturer>ibm</Manufacturer><Name>part1</Name>",
    "<Item><Manufacturer>panasia</Manufacturer></Item></Item>",
    "<Item><Name>part2</Name></Item>",
    "<Location>boston</Location>",
    "</Seller>",
    "<Buyer><Location>newyork</Location><Name>intel</Name></Buyer>",
    "</Purchase>"
);

#[test]
fn figure4_sequence_has_22_pairs() {
    let doc = parse(PURCHASE).unwrap();
    let mut table = SymbolTable::new();
    let seq = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
    // The paper's Figure 4 sequence has 22 (symbol, prefix) pairs.
    assert_eq!(seq.len(), 22);
    // First pair is (Purchase, ε).
    assert_eq!(seq.0[0].sym, Sym::Tag(table.lookup("Purchase").unwrap()));
    assert!(seq.0[0].prefix.is_empty());
    // Value symbols appear for every leaf text.
    let values = seq
        .iter()
        .filter(|e| matches!(e.sym, Sym::Value(_)))
        .count();
    assert_eq!(values, 8, "v1..v8 in the paper");
}

#[test]
fn table2_queries_against_figure3_record() {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let id = idx.insert_xml(PURCHASE).unwrap();
    let opts = QueryOptions::default();

    // Q1: /Purchase/Seller/Item/Manufacturer.
    let r = idx
        .query("/Purchase/Seller/Item/Manufacturer", &opts)
        .unwrap();
    assert_eq!(r.doc_ids, vec![id]);

    // Q2: Boston seller and NY buyer.
    let r = idx
        .query(
            "/Purchase[Seller[Location='boston']]/Buyer[Location='newyork']",
            &opts,
        )
        .unwrap();
    assert_eq!(r.doc_ids, vec![id]);

    // Q3: a Boston seller OR buyer, via the wildcard form.
    let r = idx.query("/Purchase/*[Location='boston']", &opts).unwrap();
    assert_eq!(r.doc_ids, vec![id]);
    let r = idx.query("/Purchase/*[Location='tokyo']", &opts).unwrap();
    assert!(r.doc_ids.is_empty());

    // Q4: Intel products (items or sub-items). 'panasia' is on a sub-item:
    // the descendant query must reach it.
    let r = idx
        .query("/Purchase//Item[Manufacturer='panasia']", &opts)
        .unwrap();
    assert_eq!(r.doc_ids, vec![id], "nested sub-item reachable via //");
    let r = idx
        .query("/Purchase//Item[Manufacturer='ibm']", &opts)
        .unwrap();
    assert_eq!(r.doc_ids, vec![id]);
    let r = idx
        .query("/Purchase//Item[Manufacturer='sony']", &opts)
        .unwrap();
    assert!(r.doc_ids.is_empty());
}

#[test]
fn q5_unioned_permutations_match_both_sibling_orders() {
    // Q5 = /A[B/C]/B/D (the paper's same-name-branch special case).
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let d1 = idx.insert_xml("<A><B><C/></B><B><D/></B></A>").unwrap();
    let d2 = idx.insert_xml("<A><B><D/></B><B><C/></B></A>").unwrap();
    let d3 = idx.insert_xml("<A><B><C/></B><B><E/></B></A>").unwrap();
    let r = idx.query("/A[B/C]/B/D", &QueryOptions::default()).unwrap();
    assert!(r.doc_ids.contains(&d1));
    assert!(
        r.doc_ids.contains(&d2),
        "the permuted sequence finds the flipped order"
    );
    assert!(!r.doc_ids.contains(&d3));
}

#[test]
fn figure5_docs_and_queries() {
    // Doc1 and Doc2 of Figure 5, and the two queries shown with them.
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let d1 = idx.insert_xml("<P><S><N>v1</N><L>v2</L></S></P>").unwrap();
    let d2 = idx.insert_xml("<P><B><L>v2</L></B></P>").unwrap();
    let opts = QueryOptions::default();
    // Q1 = (P,)(B,P)(L,PB)(v2,PBL): only Doc2.
    let r = idx.query("/P/B/L[text='v2']", &opts).unwrap();
    assert_eq!(r.doc_ids, vec![d2]);
    // Q2 = (P,)(L,P*)(v2,P*L): both documents.
    let r = idx.query("/P/*[L='v2']", &opts).unwrap();
    assert_eq!(r.doc_ids, vec![d1, d2]);
}

#[test]
fn brute_force_reference_agrees_on_paper_queries() {
    let doc = parse(PURCHASE).unwrap();
    let mut table = SymbolTable::new();
    let data = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
    for (q, expect) in [
        ("/Purchase/Seller/Item/Manufacturer", true),
        (
            "/Purchase[Seller[Location='boston']]/Buyer[Location='newyork']",
            true,
        ),
        ("/Purchase/*[Location='boston']", true),
        ("/Purchase//Item[Manufacturer='panasia']", true),
        ("/Purchase/Buyer/Item", false),
        ("/Purchase/*[Location='paris']", false),
    ] {
        let pattern = parse_query(q).unwrap().to_pattern();
        let t = translate(&pattern, &mut table, &TranslateOptions::default());
        let matched = t.sequences.iter().any(|s| sequence_matches(s, &data));
        assert_eq!(matched, expect, "{q}");
    }
}

#[test]
fn figure9_insertion_shares_trie_prefix() {
    // The paper's §3.4.2 worked example: the index already contains
    //   Doc1 = (P,)(S,P)(N,PS)(v1,PSN)(L,PS)(v2,PSL)
    // and we insert
    //   Doc2 = (P,)(S,P)(L,PS)(v2,PSL).
    // "The insertion process is much like that of inserting a sequence into
    // a suffix tree – we follow the branches, and when there is no branch to
    // follow, we create one": Doc2 shares (P,) and (S,P), then creates a
    // NEW (L,PS) child of (S,P) (the existing (L,PS) node is a descendant,
    // not an immediate child) and a new (v2,PSL) below it.
    // The paper's sequence order puts N before L (its DTD order); with the
    // lexicographic default, Doc2 would be a strict prefix of Doc1 and share
    // every node — set the DTD order to match the paper's figure.
    let idx = VistIndex::in_memory(IndexOptions {
        order: SiblingOrder::Dtd(vec!["P".into(), "S".into(), "N".into(), "L".into()]),
        ..Default::default()
    })
    .unwrap();
    let d1 = idx.insert_xml("<P><S><N>v1</N><L>v2</L></S></P>").unwrap();
    let s1 = idx.stats();
    assert_eq!(s1.nodes, 6, "Doc1 contributes six suffix-tree nodes");
    assert_eq!(s1.dkeys, 6, "six distinct (symbol, prefix) pairs");

    let d2 = idx.insert_xml("<P><S><L>v2</L></S></P>").unwrap();
    let s2 = idx.stats();
    assert_eq!(
        s2.nodes, 8,
        "Doc2 adds exactly two nodes (L,PS) and (v2,PSL)"
    );
    assert_eq!(s2.dkeys, 6, "no new D-Ancestor entries: both dkeys existed");

    // The D-Ancestor entry for (L,PS) now owns TWO S-Ancestor entries —
    // exactly the paper's Figure 9(b).
    let b = idx.store().tree_breakdown().unwrap();
    assert_eq!(b.sancestor.entries, 8);
    assert_eq!(b.dancestor.entries, 6);

    // And both documents answer their queries.
    let opts = QueryOptions::default();
    assert_eq!(
        idx.query("/P/S/L[text='v2']", &opts).unwrap().doc_ids,
        vec![d1, d2]
    );
    assert_eq!(
        idx.query("/P/S/N[text='v1']", &opts).unwrap().doc_ids,
        vec![d1]
    );
}
