//! Index-level crash recovery: a seeded insert/flush workload is crashed at
//! every file-system operation (sampled by `VIST_CRASH_POINTS`), and after
//! each crash the index is reopened for real. The reopened index must
//! answer queries from exactly one committed checkpoint, pass `check()`,
//! and remain fully writable. At least one crash point must exercise an
//! actual WAL replay (recovered pages > 0).
//!
//! Environment knobs (shared with the storage-level sweep and the CI
//! crash-matrix job):
//! * `VIST_CRASH_SEEDS`  — comma-separated fault seeds (default `1`);
//!   seeds also phase-shift which op indices the sampled sweep lands on.
//! * `VIST_CRASH_POINTS` — max crash points per seed (default `200`)

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

use vist::{IndexOptions, QueryOptions, VistIndex};
use vist_storage::testutil::TempDir;
use vist_storage::{BufferPool, FaultMode, FaultVfs, FilePager, RealVfs};

const PAGE_SIZE: usize = 256;
const QUERY: &str = "/book/author";

fn doc(i: u64) -> String {
    format!("<book><author>author {i}</author><title>title {i}</title></book>")
}

struct RunEnd {
    /// Committed doc-id sets the recovered index may answer from.
    candidates: Vec<BTreeSet<u64>>,
    /// The crash hit before the first checkpoint finished: reopening may
    /// fail outright (nothing was ever committed).
    may_fail_open: bool,
    completed: bool,
}

/// Fixed workload: create, checkpoint empty, then three batches of two
/// documents, each batch followed by a flush. The document stream is
/// identical on every run; only the injected fault varies.
fn run_workload(vfs: &FaultVfs, path: &Path) -> RunEnd {
    let uncreated = RunEnd {
        candidates: vec![BTreeSet::new()],
        may_fail_open: true,
        completed: false,
    };
    let opts = IndexOptions {
        page_size: PAGE_SIZE,
        ..Default::default()
    };
    let Ok(pager) = FilePager::create_with_vfs(vfs, path, PAGE_SIZE) else {
        return uncreated;
    };
    // A tiny pool so crash points also land inside eviction write-backs.
    let pool = Arc::new(BufferPool::with_capacity(pager, 8));
    let Ok(idx) = VistIndex::create_on(pool, opts) else {
        return uncreated;
    };
    if idx.flush().is_err() {
        return uncreated;
    }
    let mut durable: BTreeSet<u64> = BTreeSet::new();
    let mut inserted: BTreeSet<u64> = BTreeSet::new();
    for batch in 0..3u64 {
        for i in 0..2u64 {
            match idx.insert_xml(&doc(batch * 2 + i)) {
                Ok(id) => {
                    inserted.insert(id);
                }
                Err(_) => {
                    return RunEnd {
                        candidates: vec![durable],
                        may_fail_open: false,
                        completed: false,
                    }
                }
            }
        }
        match idx.flush() {
            Ok(()) => durable = inserted.clone(),
            Err(_) => {
                // The commit record may or may not have reached disk.
                return RunEnd {
                    candidates: vec![durable, inserted],
                    may_fail_open: false,
                    completed: false,
                };
            }
        }
    }
    RunEnd {
        candidates: vec![inserted],
        may_fail_open: false,
        completed: true,
    }
}

/// Reopen for real. Returns the number of WAL pages the open replayed, or
/// `None` if the open was (legitimately) refused.
fn verify_recovered(path: &Path, end: &RunEnd, ctx: &str) -> Option<u64> {
    let idx = match VistIndex::open_file(path, 16) {
        Ok(idx) => idx,
        Err(e) => {
            assert!(end.may_fail_open, "{ctx}: recovered open failed: {e}");
            return None;
        }
    };
    let replayed = idx.stats().io.recovered_pages;
    idx.check()
        .unwrap_or_else(|e| panic!("{ctx}: check on recovered index failed: {e}"));
    let got: BTreeSet<u64> = idx
        .query(QUERY, &QueryOptions::default())
        .unwrap_or_else(|e| panic!("{ctx}: query on recovered index failed: {e}"))
        .doc_ids
        .into_iter()
        .collect();
    assert!(
        end.candidates.contains(&got),
        "{ctx}: recovered answers {got:?} match no committed checkpoint {:?}",
        end.candidates,
    );
    // The recovered index must keep working end to end.
    let id = idx
        .insert_xml(&doc(999))
        .unwrap_or_else(|e| panic!("{ctx}: post-recovery insert: {e}"));
    let after = idx.query(QUERY, &QueryOptions::default()).unwrap();
    assert!(
        after.doc_ids.contains(&id),
        "{ctx}: post-recovery doc missing"
    );
    idx.flush()
        .unwrap_or_else(|e| panic!("{ctx}: post-recovery flush: {e}"));
    Some(replayed)
}

fn clear_store(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(FilePager::wal_path(path));
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64_list(name: &str, default: &[u64]) -> Vec<u64> {
    std::env::var(name)
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

#[test]
fn index_crash_at_any_op_recovers_to_a_checkpoint() {
    let seeds = env_u64_list("VIST_CRASH_SEEDS", &[1]);
    let points = env_u64("VIST_CRASH_POINTS", 200).max(1);
    let dir = TempDir::new("index-crash");
    let path = dir.file("index");

    // Clean run: establish the op count and the completed end state.
    clear_store(&path);
    let clean_vfs = FaultVfs::new(Arc::new(RealVfs));
    let clean_end = run_workload(&clean_vfs, &path);
    assert!(clean_end.completed, "clean run must complete");
    verify_recovered(&path, &clean_end, "clean run");
    let total_ops = clean_vfs.handle().op_count();
    assert!(total_ops > 20, "workload too small to be interesting");

    let stride = (total_ops / points).max(1);
    let mut saw_replay = false;
    for &seed in &seeds {
        // Different seeds phase-shift the sampled crash points so repeated
        // CI runs cover different op indices.
        let mut n = seed % stride;
        while n < total_ops {
            let ctx = format!("seed={seed} crash@{n}");
            clear_store(&path);
            let vfs = FaultVfs::new(Arc::new(RealVfs));
            vfs.handle().schedule(n, FaultMode::Crash, seed ^ n);
            let end = run_workload(&vfs, &path);
            assert!(!end.completed, "{ctx}: scheduled crash never fired");
            if let Some(replayed) = verify_recovered(&path, &end, &ctx) {
                saw_replay |= replayed > 0;
            }
            n += stride;
        }
    }
    assert!(
        saw_replay,
        "no crash point exercised a WAL replay — sweep is too sparse"
    );
}
