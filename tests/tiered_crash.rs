//! Tiered-storage crash recovery and differential correctness.
//!
//! Sweep: a seeded workload exercising every tier transition — delta
//! inserts + flush, two bulk loads (segment write + manifest swap),
//! a tombstone remove, and a compaction (segment rewrite + manifest
//! swap + delta clear) — is crashed at every sampled file-system
//! operation via [`FaultVfs`]. After each crash the index is reopened
//! for real; it must answer queries from exactly one committed
//! checkpoint, pass `check()`, and remain fully writable.
//!
//! Differential: a seeded interleaving of inserts, bulk batches,
//! removes, compactions, and reopens is mirrored against a plain
//! in-memory index (no tiers); both must answer every probe query and
//! `document_ids()` identically throughout.
//!
//! Environment knobs (shared with `crash_recovery.rs` and the CI
//! crash-matrix job):
//! * `VIST_CRASH_SEEDS`  — comma-separated fault seeds (default `1`)
//! * `VIST_CRASH_POINTS` — max crash points per seed (default `150`)

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

use vist::{IndexOptions, QueryOptions, VistIndex};
use vist_storage::testutil::TempDir;
use vist_storage::{FaultMode, FaultVfs, RealVfs, Vfs};

const PAGE_SIZE: usize = 256;
const QUERY: &str = "/book/author";

fn doc(i: u64) -> String {
    format!("<book><author>author {i}</author><title>title {i}</title></book>")
}

fn opts() -> IndexOptions {
    IndexOptions {
        page_size: PAGE_SIZE,
        cache_pages: 8,
        ..Default::default()
    }
}

struct RunEnd {
    /// Committed doc-id sets the recovered index may answer from.
    candidates: Vec<BTreeSet<u64>>,
    /// The crash hit before the first checkpoint finished: reopening may
    /// fail outright (nothing was ever committed).
    may_fail_open: bool,
    completed: bool,
}

impl RunEnd {
    fn partial(candidates: Vec<BTreeSet<u64>>) -> Self {
        RunEnd {
            candidates,
            may_fail_open: false,
            completed: false,
        }
    }
}

/// Fixed workload crossing every tier transition. The document stream is
/// identical on every run; only the injected fault varies.
///
/// Commit points and what each can leave behind:
/// * `flush`          — delta WAL commit; a crash mid-flush leaves either
///   the previous checkpoint or the new one.
/// * `bulk_build`     — the manifest store is the commit point; a crash
///   leaves either no new segment (orphan file, ignored on reopen) or a
///   fully visible one (doc counts reconciled on reopen).
/// * `remove_document`— a delta tombstone, durable at the next flush.
/// * `compact`        — answer-preserving by construction: the new
///   segment holds exactly the live documents, so every crash point
///   (before the manifest swap, between swap and delta clear — redone
///   on reopen — or after) answers the same document set.
fn run_workload(vfs: Arc<dyn Vfs>, path: &Path) -> RunEnd {
    let uncreated = RunEnd {
        candidates: vec![BTreeSet::new()],
        may_fail_open: true,
        completed: false,
    };
    let Ok(idx) = VistIndex::create_at(vfs, path, opts()) else {
        return uncreated;
    };
    if idx.flush().is_err() {
        return uncreated;
    }
    let mut durable: BTreeSet<u64> = BTreeSet::new();

    // Delta inserts: docs 0, 1.
    let mut inserted = durable.clone();
    for i in 0..2u64 {
        match idx.insert_xml(&doc(i)) {
            Ok(id) => {
                inserted.insert(id);
            }
            Err(_) => return RunEnd::partial(vec![durable]),
        }
    }
    match idx.flush() {
        Ok(()) => durable = inserted,
        Err(_) => return RunEnd::partial(vec![durable, inserted]),
    }

    // First bulk load: docs 2, 3, 4 → segment 1.
    let batch: Vec<String> = (2..5).map(doc).collect();
    let with_batch: BTreeSet<u64> = durable.iter().copied().chain(2..5).collect();
    match idx.bulk_build(batch) {
        Ok(ids) => {
            assert_eq!(ids, vec![2, 3, 4]);
            durable = with_batch;
        }
        Err(_) => return RunEnd::partial(vec![durable, with_batch]),
    }

    // Tombstone a segment-resident document.
    let mut without2 = durable.clone();
    without2.remove(&2);
    if idx.remove_document(2).is_err() {
        return RunEnd::partial(vec![durable.clone(), without2]);
    }
    match idx.flush() {
        Ok(()) => durable = without2,
        Err(_) => return RunEnd::partial(vec![durable, without2]),
    }

    // Second bulk load: docs 5, 6 → segment 2.
    let batch: Vec<String> = (5..7).map(doc).collect();
    let with_batch: BTreeSet<u64> = durable.iter().copied().chain(5..7).collect();
    match idx.bulk_build(batch) {
        Ok(_) => durable = with_batch,
        Err(_) => return RunEnd::partial(vec![durable, with_batch]),
    }

    // Compact both segments + delta into one; drops the tombstone.
    // Answer-preserving, so the candidate set does not fork.
    if idx.compact().is_err() {
        return RunEnd::partial(vec![durable]);
    }
    RunEnd {
        candidates: vec![durable],
        may_fail_open: false,
        completed: true,
    }
}

/// Reopen for real. Returns the recovered index stats' segment count, or
/// `None` if the open was (legitimately) refused.
fn verify_recovered(path: &Path, end: &RunEnd, ctx: &str) -> Option<u64> {
    let idx = match VistIndex::open_file(path, 16) {
        Ok(idx) => idx,
        Err(e) => {
            assert!(end.may_fail_open, "{ctx}: recovered open failed: {e}");
            return None;
        }
    };
    idx.check()
        .unwrap_or_else(|e| panic!("{ctx}: check on recovered index failed: {e}"));
    let got: BTreeSet<u64> = idx
        .query(QUERY, &QueryOptions::default())
        .unwrap_or_else(|e| panic!("{ctx}: query on recovered index failed: {e}"))
        .doc_ids
        .into_iter()
        .collect();
    assert!(
        end.candidates.contains(&got),
        "{ctx}: recovered answers {got:?} match no committed checkpoint {:?}",
        end.candidates,
    );
    assert_eq!(
        idx.document_ids()
            .unwrap_or_else(|e| panic!("{ctx}: document_ids: {e}"))
            .into_iter()
            .collect::<BTreeSet<u64>>(),
        got,
        "{ctx}: document_ids disagrees with query answers"
    );
    // The recovered index must keep working end to end — including across
    // the tier boundary (a post-recovery bulk load).
    let id = idx
        .insert_xml(&doc(999))
        .unwrap_or_else(|e| panic!("{ctx}: post-recovery insert: {e}"));
    let ids = idx
        .bulk_build([doc(1000)])
        .unwrap_or_else(|e| panic!("{ctx}: post-recovery bulk load: {e}"));
    let after = idx.query(QUERY, &QueryOptions::default()).unwrap();
    assert!(
        after.doc_ids.contains(&id) && after.doc_ids.contains(&ids[0]),
        "{ctx}: post-recovery docs missing"
    );
    idx.flush()
        .unwrap_or_else(|e| panic!("{ctx}: post-recovery flush: {e}"));
    Some(idx.stats().segments)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64_list(name: &str, default: &[u64]) -> Vec<u64> {
    std::env::var(name)
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

#[test]
fn tiered_crash_at_any_op_recovers_to_a_checkpoint() {
    let seeds = env_u64_list("VIST_CRASH_SEEDS", &[1]);
    let points = env_u64("VIST_CRASH_POINTS", 150).max(1);
    let dir = TempDir::new("tiered-crash");

    // Clean run: establish the op count and the completed end state.
    let clean_dir = dir.file("clean");
    std::fs::create_dir(&clean_dir).unwrap();
    let path = clean_dir.join("index");
    let clean_vfs = FaultVfs::new(Arc::new(RealVfs));
    let handle = clean_vfs.handle();
    let clean_end = run_workload(Arc::new(clean_vfs), &path);
    assert!(clean_end.completed, "clean run must complete");
    verify_recovered(&path, &clean_end, "clean run");
    let total_ops = handle.op_count();
    assert!(total_ops > 50, "workload too small to be interesting");

    let stride = (total_ops / points).max(1);
    let mut saw_segments = false;
    for &seed in &seeds {
        // Different seeds phase-shift the sampled crash points so repeated
        // CI runs cover different op indices.
        let mut n = seed % stride;
        while n < total_ops {
            let ctx = format!("seed={seed} crash@{n}");
            // Fresh directory per iteration: a crash can leave orphan
            // segment, manifest, WAL, and scratch files behind.
            let run_dir = dir.file(&format!("s{seed}-n{n}"));
            std::fs::create_dir(&run_dir).unwrap();
            let path = run_dir.join("index");
            let vfs = FaultVfs::new(Arc::new(RealVfs));
            vfs.handle().schedule(n, FaultMode::Crash, seed ^ n);
            let end = run_workload(Arc::new(vfs), &path);
            assert!(!end.completed, "{ctx}: scheduled crash never fired");
            if let Some(segments) = verify_recovered(&path, &end, &ctx) {
                saw_segments |= segments > 0;
            }
            let _ = std::fs::remove_dir_all(&run_dir);
            n += stride;
        }
    }
    assert!(
        saw_segments,
        "no crash point recovered an index with live segments — sweep too sparse"
    );
}

/// Deterministic xorshift for the differential workload.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Interleave inserts, bulk batches, removes, compactions, and reopens on
/// a tiered file-backed index, mirroring every document operation on a
/// plain in-memory index. Bulk ids are sequential from `next_doc`, so the
/// two id spaces stay aligned and every probe must agree exactly.
#[test]
fn tiered_index_matches_single_tree_oracle() {
    const AUTHORS: [&str; 4] = ["ann", "bob", "eve", "dan"];
    let probes = [
        "/book/author".to_string(),
        "//title".to_string(),
        format!("/book/author[text='{}']", AUTHORS[0]),
        format!("/book[author='{}']/title", AUTHORS[1]),
    ];
    let make = |i: u64| {
        format!(
            "<book><author>{}</author><title>title {i}</title></book>",
            AUTHORS[(i % AUTHORS.len() as u64) as usize]
        )
    };

    let dir = TempDir::new("tiered-diff");
    let path = dir.file("index");
    let mut tiered = VistIndex::create_file(&path, opts()).unwrap();
    let oracle = VistIndex::in_memory(IndexOptions::default()).unwrap();

    let mut rng = Rng(0x5eed_0001);
    let mut next = 0u64;
    let mut live: Vec<u64> = Vec::new();
    for step in 0..120u64 {
        match rng.below(10) {
            // Delta insert on both.
            0..=3 => {
                let x = make(next);
                let a = tiered.insert_xml(&x).unwrap();
                let b = oracle.insert_xml(&x).unwrap();
                assert_eq!(a, b, "step {step}: id drift");
                live.push(a);
                next += 1;
            }
            // Bulk load on the tiered index, plain inserts on the oracle.
            4..=5 => {
                let k = 2 + rng.below(4);
                let batch: Vec<String> = (next..next + k).map(&make).collect();
                let ids = tiered.bulk_build(batch.clone()).unwrap();
                for (xml, &id) in batch.iter().zip(&ids) {
                    assert_eq!(oracle.insert_xml(xml).unwrap(), id, "step {step}: id drift");
                    live.push(id);
                }
                next += k;
            }
            // Remove a random live document from both.
            6..=7 if !live.is_empty() => {
                let victim = live.swap_remove(rng.below(live.len() as u64) as usize);
                tiered.remove_document(victim).unwrap();
                oracle.remove_document(victim).unwrap();
                // Double removal must be rejected by both tiers.
                assert!(tiered.remove_document(victim).is_err());
                assert!(oracle.remove_document(victim).is_err());
            }
            // Compact the tiered index (no-op on the oracle).
            8 => tiered.compact().unwrap(),
            // Reopen the tiered index from disk.
            _ => {
                tiered.flush().unwrap();
                drop(tiered);
                tiered = VistIndex::open_file(&path, 16).unwrap();
            }
        }

        if step % 10 == 9 {
            for q in &probes {
                let a = tiered.query(q, &QueryOptions::default()).unwrap().doc_ids;
                let b = oracle.query(q, &QueryOptions::default()).unwrap().doc_ids;
                assert_eq!(a, b, "step {step}: {q} diverged");
            }
            assert_eq!(
                tiered.document_ids().unwrap(),
                oracle.document_ids().unwrap(),
                "step {step}: document_ids diverged"
            );
            if let Some(&id) = live.first() {
                assert_eq!(
                    tiered.get_document_xml(id).unwrap(),
                    oracle.get_document_xml(id).unwrap(),
                    "step {step}: stored XML diverged"
                );
            }
        }
    }
    tiered.check().unwrap();
    assert!(
        tiered.stats().segments > 0 || live.is_empty(),
        "workload never left a segment behind"
    );
}
