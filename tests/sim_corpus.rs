//! Tier-1 replay of the checked-in simulation seed corpus.
//!
//! Every `tests/seeds/*.trace` file is a reproducer (or a hand-written
//! scenario distilled from past regressions) that once exposed — or is
//! designed to exercise — a specific failure mode: delete-path
//! maintenance, crash-during-checkpoint ambiguity, parallel-match
//! schedule independence, scope underflow. Replaying them on every PR
//! keeps those exact op sequences green.
//!
//! To add one: `vist sim --seed S --out tests/seeds/<name>.trace` on a
//! diverging seed (the written trace is already minimized), fix the bug,
//! and check the file in. See `docs/TESTING.md`.

use vist_sim::{run_trace, Trace};
use vist_storage::testutil::TempDir;

#[test]
fn sim_corpus() {
    let seeds_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/seeds");
    let mut files: Vec<_> = std::fs::read_dir(&seeds_dir)
        .expect("tests/seeds must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "trace"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "seed corpus is empty");

    let scratch = TempDir::new("sim-corpus");
    for (i, file) in files.iter().enumerate() {
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(file).unwrap();
        let trace = Trace::from_text(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let dir = scratch.file(&format!("case-{i}"));
        std::fs::create_dir_all(&dir).unwrap();
        let report = run_trace(&trace, &dir).unwrap_or_else(|d| panic!("{name}: diverged at {d}"));
        assert_eq!(report.ops, trace.ops.len(), "{name}: not all ops ran");
    }
}
