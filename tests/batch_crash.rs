//! Crash-matrix sweep for batched group commit.
//!
//! A fixed workload of group-commit batches (with a serial, *unflushed*
//! insert riding between two of them) is crashed at every sampled
//! file-system operation via [`FaultVfs`] — covering every group-commit
//! injection point that does I/O: mid-batch WAL page append (cache
//! eviction during apply), inside the batch-final WAL flush before the
//! commit record, between the commit record and the data-file apply, and
//! during the post-commit log truncation. (The parallel *prepare* phase
//! performs no I/O by construction — it parses and encodes against an
//! immutable snapshot — so it contributes no crash points; its failure
//! mode, a parse error, is covered by `tests/parallel_ingest.rs`.)
//!
//! The invariant under test is **batch atomicity**: after recovery the
//! index must answer from exactly one batch boundary — every document of
//! a committed batch queryable, no document of an uncommitted batch ever
//! visible, and never a strict subset of a batch. The candidate sets
//! below are therefore whole-batch unions only.
//!
//! Environment knobs (shared with the CI crash-matrix job):
//! * `VIST_CRASH_SEEDS`  — comma-separated fault seeds (default `1`)
//! * `VIST_CRASH_POINTS` — max crash points per seed (default `150`)

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

use vist::{IndexOptions, QueryOptions, VistIndex};
use vist_storage::testutil::TempDir;
use vist_storage::{FaultMode, FaultVfs, RealVfs, Vfs};

const PAGE_SIZE: usize = 256;
const QUERY: &str = "/book/author";

fn doc(i: u64) -> String {
    format!("<book><author>author {i}</author><title>title {i}</title></book>")
}

fn opts() -> IndexOptions {
    IndexOptions {
        page_size: PAGE_SIZE,
        cache_pages: 8,
        ..Default::default()
    }
}

struct RunEnd {
    /// Committed doc-id sets the recovered index may answer from. Every
    /// entry is a union of whole batches — batch atomicity means no other
    /// set is legal.
    candidates: Vec<BTreeSet<u64>>,
    /// The crash hit before the first checkpoint finished: reopening may
    /// fail outright (nothing was ever committed).
    may_fail_open: bool,
    completed: bool,
}

impl RunEnd {
    fn partial(candidates: Vec<BTreeSet<u64>>) -> Self {
        RunEnd {
            candidates,
            may_fail_open: false,
            completed: false,
        }
    }
}

/// Fixed workload: three group-commit batches, one with a serial
/// uncommitted insert pending (the batch-final checkpoint must commit it
/// together with the batch — its WAL flush is the only commit point in
/// flight). Two prepare threads so the parallel front half runs for real.
fn run_workload(vfs: Arc<dyn Vfs>, path: &Path) -> RunEnd {
    let uncreated = RunEnd {
        candidates: vec![BTreeSet::new()],
        may_fail_open: true,
        completed: false,
    };
    let Ok(idx) = VistIndex::create_at(vfs, path, opts()) else {
        return uncreated;
    };
    if idx.flush().is_err() {
        return uncreated;
    }
    let mut durable: BTreeSet<u64> = BTreeSet::new();

    // Serial baseline insert: doc 0, committed by an explicit flush.
    let committed: BTreeSet<u64> = [0].into();
    if idx.insert_xml(&doc(0)).is_err() {
        return RunEnd::partial(vec![durable]);
    }
    match idx.flush() {
        Ok(()) => durable = committed.clone(),
        Err(_) => return RunEnd::partial(vec![durable, committed]),
    }

    // Batch A: docs 1, 2, 3 — all-or-nothing.
    let batch: Vec<String> = (1..4).map(doc).collect();
    let with_a: BTreeSet<u64> = durable.iter().copied().chain(1..4).collect();
    match idx.insert_batch(&batch, 2) {
        Ok(ids) => {
            assert_eq!(ids, vec![1, 2, 3]);
            durable = with_a;
        }
        Err(_) => return RunEnd::partial(vec![durable, with_a]),
    }

    // Serial insert of doc 4 with NO flush: it stays uncommitted until
    // batch B's group commit sweeps it in. No crash point may surface
    // doc 4 without batch B, or batch B without doc 4.
    if idx.insert_xml(&doc(4)).is_err() {
        return RunEnd::partial(vec![durable]);
    }

    // Batch B: docs 5, 6 — commits doc 4 alongside.
    let batch: Vec<String> = (5..7).map(doc).collect();
    let with_b: BTreeSet<u64> = durable.iter().copied().chain(4..7).collect();
    match idx.insert_batch(&batch, 2) {
        Ok(ids) => {
            assert_eq!(ids, vec![5, 6]);
            durable = with_b;
        }
        Err(_) => return RunEnd::partial(vec![durable, with_b]),
    }

    // Batch C: docs 7, 8, 9.
    let batch: Vec<String> = (7..10).map(doc).collect();
    let with_c: BTreeSet<u64> = durable.iter().copied().chain(7..10).collect();
    match idx.insert_batch(&batch, 2) {
        Ok(_) => durable = with_c,
        Err(_) => return RunEnd::partial(vec![durable, with_c]),
    }

    RunEnd {
        candidates: vec![durable],
        may_fail_open: false,
        completed: true,
    }
}

/// Reopen for real and check batch atomicity: answers must equal exactly
/// one whole-batch boundary, and the recovered index must remain fully
/// writable — including through another group commit.
fn verify_recovered(path: &Path, end: &RunEnd, ctx: &str) {
    let idx = match VistIndex::open_file(path, 16) {
        Ok(idx) => idx,
        Err(e) => {
            assert!(end.may_fail_open, "{ctx}: recovered open failed: {e}");
            return;
        }
    };
    idx.check()
        .unwrap_or_else(|e| panic!("{ctx}: check on recovered index failed: {e}"));
    let got: BTreeSet<u64> = idx
        .query(QUERY, &QueryOptions::default())
        .unwrap_or_else(|e| panic!("{ctx}: query on recovered index failed: {e}"))
        .doc_ids
        .into_iter()
        .collect();
    assert!(
        end.candidates.contains(&got),
        "{ctx}: recovered answers {got:?} match no batch boundary {:?} — \
         a torn batch survived recovery",
        end.candidates,
    );
    assert_eq!(
        idx.document_ids()
            .unwrap_or_else(|e| panic!("{ctx}: document_ids: {e}"))
            .into_iter()
            .collect::<BTreeSet<u64>>(),
        got,
        "{ctx}: document_ids disagrees with query answers"
    );
    // The recovered index must keep working — serially and batched.
    let id = idx
        .insert_xml(&doc(999))
        .unwrap_or_else(|e| panic!("{ctx}: post-recovery insert: {e}"));
    let ids = idx
        .insert_batch(&[doc(1000), doc(1001)], 2)
        .unwrap_or_else(|e| panic!("{ctx}: post-recovery batch: {e}"));
    let after = idx.query(QUERY, &QueryOptions::default()).unwrap();
    for want in std::iter::once(id).chain(ids) {
        assert!(
            after.doc_ids.contains(&want),
            "{ctx}: post-recovery doc {want} missing"
        );
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64_list(name: &str, default: &[u64]) -> Vec<u64> {
    std::env::var(name)
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

#[test]
fn group_commit_crash_at_any_op_is_batch_atomic() {
    let seeds = env_u64_list("VIST_CRASH_SEEDS", &[1]);
    let points = env_u64("VIST_CRASH_POINTS", 150).max(1);
    let dir = TempDir::new("batch-crash");

    // Clean run: establish the op count and the completed end state.
    let clean_dir = dir.file("clean");
    std::fs::create_dir(&clean_dir).unwrap();
    let path = clean_dir.join("index");
    let clean_vfs = FaultVfs::new(Arc::new(RealVfs));
    let handle = clean_vfs.handle();
    let clean_end = run_workload(Arc::new(clean_vfs), &path);
    assert!(clean_end.completed, "clean run must complete");
    verify_recovered(&path, &clean_end, "clean run");
    let total_ops = handle.op_count();
    assert!(total_ops > 50, "workload too small to be interesting");

    let stride = (total_ops / points).max(1);
    for &seed in &seeds {
        // Different seeds phase-shift the sampled crash points so repeated
        // CI runs cover different op indices.
        let mut n = seed % stride;
        while n < total_ops {
            let ctx = format!("seed={seed} crash@{n}");
            let run_dir = dir.file(&format!("s{seed}-n{n}"));
            std::fs::create_dir(&run_dir).unwrap();
            let path = run_dir.join("index");
            let vfs = FaultVfs::new(Arc::new(RealVfs));
            vfs.handle().schedule(n, FaultMode::Crash, seed ^ n);
            let end = run_workload(Arc::new(vfs), &path);
            assert!(!end.completed, "{ctx}: scheduled crash never fired");
            verify_recovered(&path, &end, &ctx);
            let _ = std::fs::remove_dir_all(&run_dir);
            n += stride;
        }
    }
}

/// Fail (not crash) injection: the op errors but the process continues.
/// A failed `insert_batch` must leave the on-disk state recoverable to a
/// batch boundary — reopening after the error behaves exactly like crash
/// recovery.
#[test]
fn group_commit_io_error_then_reopen_is_batch_atomic() {
    let points = env_u64("VIST_CRASH_POINTS", 150).max(1);
    let dir = TempDir::new("batch-fail");

    let clean_dir = dir.file("clean");
    std::fs::create_dir(&clean_dir).unwrap();
    let clean_vfs = FaultVfs::new(Arc::new(RealVfs));
    let handle = clean_vfs.handle();
    let clean_end = run_workload(Arc::new(clean_vfs), &clean_dir.join("index"));
    assert!(clean_end.completed);
    let total_ops = handle.op_count();

    let stride = (total_ops / points).max(1);
    let mut n = 1u64;
    while n < total_ops {
        let ctx = format!("fail@{n}");
        let run_dir = dir.file(&format!("f{n}"));
        std::fs::create_dir(&run_dir).unwrap();
        let path = run_dir.join("index");
        let vfs = FaultVfs::new(Arc::new(RealVfs));
        vfs.handle().schedule(n, FaultMode::Fail, 7 ^ n);
        let end = run_workload(Arc::new(vfs), &path);
        // The index object is dropped here (possibly mid-batch in memory);
        // recovery must still land on a batch boundary.
        verify_recovered(&path, &end, &ctx);
        let _ = std::fs::remove_dir_all(&run_dir);
        n += stride;
    }
}
