//! Cross-crate integration: generators → all five systems → agreement on
//! the paper's Table 3 queries.

use vist::baselines::{NodeIndex, PathIndex};
use vist::datagen::{dblp, xmark};
use vist::query::{matches_document, parse_query};
use vist::seq::SiblingOrder;
use vist::{IndexOptions, NaiveIndex, QueryOptions, RistIndex, VistIndex};

fn exact_answer(docs: &[vist::xml::Document], q: &str) -> Vec<u64> {
    let p = parse_query(q).unwrap().to_pattern();
    docs.iter()
        .enumerate()
        .filter(|(_, d)| matches_document(&p, d, &SiblingOrder::Lexicographic))
        .map(|(i, _)| i as u64)
        .collect()
}

fn check_dataset(docs: &[vist::xml::Document], queries: &[(&str, String)]) {
    let vist_idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let mut naive = NaiveIndex::default();
    let mut path_idx = PathIndex::in_memory(4096, 1024).unwrap();
    let mut node_idx = NodeIndex::in_memory(4096, 1024).unwrap();
    for d in docs {
        vist_idx.insert_document(d).unwrap();
        naive.insert_document(d);
        path_idx.insert_document(d).unwrap();
        node_idx.insert_document(d).unwrap();
    }
    let mut rist = RistIndex::build_in_memory(docs, IndexOptions::default()).unwrap();

    let opts = QueryOptions::default();
    for (label, q) in queries {
        let exact = exact_answer(docs, q);
        assert!(!exact.is_empty(), "{label}: sentinel query must have hits");

        // The three paper engines agree among themselves (same semantics).
        let v = vist_idx.query(q, &opts).unwrap().doc_ids;
        let r = rist.query(q, &opts).unwrap().doc_ids;
        let n = naive.query(q, &opts).unwrap();
        assert_eq!(v, r, "{label}: vist vs rist");
        assert_eq!(v, n, "{label}: vist vs naive");

        // Raw ViST is complete (superset of exact); verified ViST is exact.
        for id in &exact {
            assert!(v.contains(id), "{label}: false negative doc {id}");
        }
        let verified = vist_idx
            .query(
                q,
                &QueryOptions {
                    verify: true,
                    ..Default::default()
                },
            )
            .unwrap()
            .doc_ids;
        assert_eq!(verified, exact, "{label}: verified vs exact oracle");

        // The node index (structural joins) is exact too.
        let nd = node_idx.query(q).unwrap();
        assert_eq!(nd, exact, "{label}: node index vs exact oracle");

        // The raw-path index is complete at the document level.
        let p = path_idx.query(q).unwrap();
        for id in &exact {
            assert!(p.contains(id), "{label}: path index false negative {id}");
        }
    }
}

#[test]
fn dblp_table3_queries_all_systems() {
    let docs = dblp::documents(3000, 42);
    check_dataset(&docs, &dblp::table3_queries());
}

#[test]
fn xmark_table3_queries_all_systems() {
    let docs = xmark::documents(2500, 43);
    check_dataset(&docs, &xmark::table3_queries());
}

#[test]
fn synthetic_random_queries_all_engines() {
    use vist::datagen::synthetic::{SyntheticConfig, SyntheticGen};
    let mut gen = SyntheticGen::new(SyntheticConfig {
        k: 8,
        j: 4,
        l: 16,
        seed: 99,
    });
    let docs = gen.documents(300);
    let vist_idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let mut naive = NaiveIndex::default();
    for d in &docs {
        vist_idx.insert_document(d).unwrap();
        naive.insert_document(d);
    }
    let mut rist = RistIndex::build_in_memory(&docs, IndexOptions::default()).unwrap();
    let opts = QueryOptions::default();
    for i in 0..30 {
        let q = gen.query(2 + i % 6, 0.2);
        let v = vist_idx.query_pattern(&q, &opts).unwrap().doc_ids;
        let r = rist.query_pattern(&q, &opts).unwrap().doc_ids;
        let n = naive.query_pattern(&q, &opts).unwrap();
        assert_eq!(v, r, "query {i}");
        assert_eq!(v, n, "query {i}");
    }
}

#[test]
fn mixed_workload_with_maintenance() {
    // Insert DBLP + XMARK interleaved, delete some, keep querying.
    let dblp_docs = dblp::documents(400, 1);
    let xmark_docs = xmark::documents(400, 2);
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let mut ids = Vec::new();
    for (a, b) in dblp_docs.iter().zip(&xmark_docs) {
        ids.push(idx.insert_document(a).unwrap());
        ids.push(idx.insert_document(b).unwrap());
    }
    let before = idx
        .query("/inproceedings/title", &QueryOptions::default())
        .unwrap()
        .doc_ids;
    assert!(!before.is_empty());
    // Delete every third document.
    for id in ids.iter().step_by(3) {
        idx.remove_document(*id).unwrap();
    }
    let after = idx
        .query("/inproceedings/title", &QueryOptions::default())
        .unwrap()
        .doc_ids;
    for id in &after {
        assert!(before.contains(id));
        assert!(id % 3 != 0 || !ids.iter().step_by(3).any(|x| x == id));
    }
    assert!(after.len() < before.len() || before.iter().all(|b| b % 3 != 0));
    // Cross-domain query still isolated per vocabulary.
    let sites = idx.query("/site//item", &QueryOptions::default()).unwrap();
    assert!(
        sites.doc_ids.iter().all(|id| id % 2 == 1),
        "only XMARK docs are odd ids"
    );
}

#[test]
fn imdb_sample_queries_all_systems() {
    use vist::datagen::imdb;
    let docs = imdb::documents(2500, 77);
    check_dataset(&docs, &imdb::sample_queries());
}

#[test]
fn treebank_sample_queries_all_systems() {
    use vist::datagen::treebank::{documents, sample_queries, TreebankConfig};
    let docs = documents(
        1200,
        &TreebankConfig {
            max_depth: 8,
            seed: 31,
        },
    );
    check_dataset(&docs, &sample_queries());
}
