//! An XMARK-style auction site: the same workload answered by all five
//! systems in this repository — ViST, RIST, the naive suffix-tree matcher,
//! and the two baselines the paper compares against (raw-path index and
//! node index) — with timings, so you can watch Table 4's shape emerge.
//!
//! ```sh
//! cargo run --release --example auction_site
//! ```

use std::time::Instant;

use vist::baselines::{NodeIndex, PathIndex};
use vist::datagen::xmark;
use vist::{IndexOptions, NaiveIndex, QueryOptions, RistIndex, VistIndex};

fn main() -> vist::Result<()> {
    let n = std::env::var("N_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3_000);
    println!("generating {n} XMARK-like sub-structure instances ...\n");
    let docs = xmark::documents(n, 7);

    // Build all five systems over the same documents.
    let vist_idx = VistIndex::in_memory(IndexOptions::default())?;
    let mut naive = NaiveIndex::default();
    let mut path_idx = PathIndex::in_memory(4096, 1024).expect("path index");
    let mut node_idx = NodeIndex::in_memory(4096, 1024).expect("node index");
    for d in &docs {
        vist_idx.insert_document(d)?;
        naive.insert_document(d);
        path_idx.insert_document(d).expect("path insert");
        node_idx.insert_document(d).expect("node insert");
    }
    let mut rist = RistIndex::build_in_memory(&docs, IndexOptions::default())?;

    println!(
        "{:<4} {:>10} {:>10} {:>10} {:>10} {:>10}   query",
        "", "vist", "rist", "naive", "path-idx", "node-idx"
    );
    let opts = QueryOptions::default();
    for (label, q) in xmark::table3_queries() {
        let t = Instant::now();
        let v = vist_idx.query(&q, &opts)?.doc_ids;
        let t_vist = t.elapsed();
        let t = Instant::now();
        let r = rist.query(&q, &opts)?.doc_ids;
        let t_rist = t.elapsed();
        let t = Instant::now();
        let nv = naive.query(&q, &opts)?;
        let t_naive = t.elapsed();
        let t = Instant::now();
        let p = path_idx.query(&q).expect("path query");
        let t_path = t.elapsed();
        let t = Instant::now();
        let nd = node_idx.query(&q).expect("node query");
        let t_node = t.elapsed();

        assert_eq!(v, r, "{label}: vist and rist must agree");
        assert_eq!(v, nv, "{label}: vist and naive must agree");
        println!(
            "{:<4} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?}   {} ({} hits; path {}, node {})",
            label,
            t_vist,
            t_rist,
            t_naive,
            t_path,
            t_node,
            q,
            v.len(),
            p.len(),
            nd.len(),
        );
    }

    // Show how the answer sets relate: the node index is exact; ViST raw vs
    // verified demonstrates the candidate/answer distinction.
    let q = &xmark::table3_queries()[2].1; // Q8, the branching one
    let raw = vist_idx.query(q, &opts)?;
    let verified = vist_idx.query(
        q,
        &QueryOptions {
            verify: true,
            ..Default::default()
        },
    )?;
    let exact = node_idx.query(q).expect("node query");
    println!(
        "\nQ8 semantics: {} raw ViST candidates, {} verified, {} from exact structural joins",
        raw.doc_ids.len(),
        verified.doc_ids.len(),
        exact.len()
    );
    assert_eq!(
        verified.doc_ids, exact,
        "verified ViST equals the exact node index"
    );

    let s = vist_idx.stats();
    println!(
        "\nViST index: {} docs, {} nodes, {} dkeys, {:.1} MiB",
        s.documents,
        s.nodes,
        s.dkeys,
        s.store_bytes as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}
