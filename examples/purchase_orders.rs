//! The paper's running example: purchase records (Figures 1–4).
//!
//! Builds the DTD's purchase documents, shows their structure-encoded
//! sequences, and runs the four queries of Figure 2:
//!
//! * Q1 — find all manufacturers that supply items,
//! * Q2 — find orders with Boston sellers and NY buyers,
//! * Q3 — find orders with a Boston seller or buyer,
//! * Q4 — find orders that contain Intel products (items or sub-items).
//!
//! ```sh
//! cargo run --example purchase_orders
//! ```

use vist::query::parse_query;
use vist::seq::{document_to_sequence, SiblingOrder, SymbolTable};
use vist::xml::ElementBuilder;
use vist::{IndexOptions, QueryOptions, VistIndex};

/// One purchase record, shaped like the paper's Figure 3.
fn purchase(
    seller_name: &str,
    seller_loc: &str,
    buyer_name: &str,
    buyer_loc: &str,
    items: &[(&str, &str)], // (name, manufacturer)
) -> vist::xml::Document {
    let mut seller = ElementBuilder::new("seller")
        .child(ElementBuilder::new("name").text(seller_name))
        .child(ElementBuilder::new("location").text(seller_loc));
    for (name, maker) in items {
        seller = seller.child(
            ElementBuilder::new("item")
                .attr("name", *name)
                .attr("manufacturer", *maker),
        );
    }
    ElementBuilder::new("purchase")
        .child(seller)
        .child(
            ElementBuilder::new("buyer")
                .child(ElementBuilder::new("name").text(buyer_name))
                .child(ElementBuilder::new("location").text(buyer_loc)),
        )
        .into_document()
}

fn main() -> vist::Result<()> {
    let records = vec![
        purchase(
            "dell",
            "boston",
            "panasia",
            "newyork",
            &[("part1", "ibm"), ("part2", "intel")],
        ),
        purchase("hp", "boston", "acme", "chicago", &[("disk", "seagate")]),
        purchase("lenovo", "tokyo", "globex", "newyork", &[("cpu", "intel")]),
        purchase("dell", "austin", "initech", "boston", &[("ram", "samsung")]),
    ];

    // Show the structure-encoded sequence of the first record (Figure 4).
    let mut table = SymbolTable::new();
    let seq = document_to_sequence(&records[0], &mut table, &SiblingOrder::Lexicographic);
    println!(
        "structure-encoded sequence of record 0 ({} elements):",
        seq.len()
    );
    println!("  {}\n", seq.display(&table));

    let index = VistIndex::in_memory(IndexOptions::default())?;
    for r in &records {
        index.insert_document(r)?;
    }

    let queries = [
        (
            "Q1: manufacturers that supply items",
            "/purchase/seller/item/manufacturer",
        ),
        (
            "Q2: Boston sellers AND NY buyers",
            "/purchase[seller[location='boston']]/buyer[location='newyork']",
        ),
        (
            "Q3a: Boston seller or buyer (seller side)",
            "/purchase/*[location='boston']",
        ),
        (
            "Q4: Intel products anywhere below purchase",
            "//item[manufacturer='intel']",
        ),
    ];
    for (label, q) in queries {
        let parsed = parse_query(q).expect("query parses");
        let _ = parsed; // demonstrate the parse step explicitly
        let hits = index.query(q, &QueryOptions::default())?;
        println!("{label}\n  {q}\n  -> documents {:?}\n", hits.doc_ids);
    }

    // Q3 proper is a disjunction ("seller OR buyer"): run the `*` form,
    // which covers both branches in one sequence match.
    let hits = index.query("/purchase/*[location='boston']", &QueryOptions::default())?;
    println!(
        "Q3 via wildcard: documents with a boston seller or buyer: {:?}",
        hits.doc_ids
    );

    Ok(())
}
