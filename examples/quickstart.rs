//! Quickstart: build an index, insert documents, run structural queries.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use vist::{IndexOptions, QueryOptions, VistIndex};

fn main() -> vist::Result<()> {
    // An in-memory index with default settings. Swap `in_memory` for
    // `create_file("/tmp/books.vist", ...)` for a durable one.
    let index = VistIndex::in_memory(IndexOptions::default())?;

    // Insert a few XML documents; each gets a document id.
    let books = [
        r#"<book key="b1"><author>David Maier</author><title>Theory of Databases</title><year>1983</year></book>"#,
        r#"<book key="b2"><author>Serge Abiteboul</author><author>Dan Suciu</author><title>Data on the Web</title><year>1999</year></book>"#,
        r#"<inproceedings key="p1"><author>Haixun Wang</author><title>ViST</title><year>2003</year><booktitle>SIGMOD</booktitle></inproceedings>"#,
    ];
    for xml in books {
        let id = index.insert_xml(xml)?;
        println!("indexed document {id}");
    }

    // Simple path query.
    let r = index.query("/book/title", &QueryOptions::default())?;
    println!("/book/title              -> {:?}", r.doc_ids);

    // Value predicate (the paper's unified content+structure index at work).
    let r = index.query("/book/author[text='Dan Suciu']", &QueryOptions::default())?;
    println!("author = 'Dan Suciu'     -> {:?}", r.doc_ids);

    // Wildcards and descendant steps — answered as ONE sequence match,
    // without decomposing into sub-queries and joining.
    let r = index.query("//author", &QueryOptions::default())?;
    println!("//author                 -> {:?}", r.doc_ids);
    let r = index.query("/*/year[text='2003']", &QueryOptions::default())?;
    println!("any root, year = 2003    -> {:?}", r.doc_ids);

    // Branching query: both predicates must hold.
    let r = index.query(
        "/book[author='David Maier']/year[text='1983']",
        &QueryOptions::default(),
    )?;
    println!("branching                -> {:?}", r.doc_ids);

    // Dynamic maintenance: delete and re-query.
    index.remove_document(r.doc_ids[0])?;
    let r = index.query("/book/title", &QueryOptions::default())?;
    println!("after delete             -> {:?}", r.doc_ids);

    // Index statistics.
    let stats = index.stats();
    println!(
        "\n{} docs, {} virtual-suffix-tree nodes, {} D-Ancestor keys, {} bytes on disk",
        stats.documents, stats.nodes, stats.dkeys, stats.store_bytes
    );
    Ok(())
}
