//! A DBLP-style bibliography service: bulk load, durable storage, the
//! paper's Table 3 DBLP queries, verification mode, and reopening.
//!
//! ```sh
//! cargo run --release --example bibliography
//! ```

use std::time::Instant;

use vist::datagen::dblp;
use vist::{IndexOptions, QueryOptions, VistIndex};

fn main() -> vist::Result<()> {
    let n_records = std::env::var("N_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000);
    let path = std::env::temp_dir().join("vist-bibliography.idx");

    // ---- build a durable index ------------------------------------------
    println!("generating {n_records} DBLP-like records ...");
    let docs = dblp::documents(n_records, 42);

    let t0 = Instant::now();
    let index = VistIndex::create_file(&path, IndexOptions::default())?;
    for d in &docs {
        index.insert_document(d)?;
    }
    index.flush()?;
    let stats = index.stats();
    println!(
        "indexed {} records in {:.2?}: {} nodes, {} dkeys, {:.1} MiB on disk\n",
        stats.documents,
        t0.elapsed(),
        stats.nodes,
        stats.dkeys,
        stats.store_bytes as f64 / (1024.0 * 1024.0)
    );

    // ---- the paper's Table 3 queries (Q1–Q5) -----------------------------
    for (label, q) in dblp::table3_queries() {
        let t = Instant::now();
        let r = index.query(&q, &QueryOptions::default())?;
        println!(
            "{label}: {:<46} {:>6} hits in {:.2?}",
            q,
            r.doc_ids.len(),
            t.elapsed()
        );
    }

    // ---- verification mode ------------------------------------------------
    // ViST's subsequence matching can admit false positives; verified mode
    // post-filters candidates through exact tree-pattern matching.
    let q = "/book/author[text='David Smith']";
    let raw = index.query(q, &QueryOptions::default())?;
    let verified = index.query(
        q,
        &QueryOptions {
            verify: true,
            ..Default::default()
        },
    )?;
    println!(
        "\nverification: {} raw candidates -> {} verified answers",
        raw.doc_ids.len(),
        verified.doc_ids.len()
    );

    // ---- durable reopen ----------------------------------------------------
    drop(index);
    let reopened = VistIndex::open_file(&path, 1024)?;
    let r = reopened.query("/inproceedings/title", &QueryOptions::default())?;
    println!(
        "reopened from {}: {} documents, Q1 still returns {} hits",
        path.display(),
        reopened.doc_count(),
        r.doc_ids.len()
    );

    // ---- incremental maintenance -------------------------------------------
    let new_id = reopened.insert_xml(
        r#"<article key="x"><author>Ada Lovelace</author><title>notes</title><year>1843</year></article>"#,
    )?;
    let r = reopened.query("//author[text='Ada Lovelace']", &QueryOptions::default())?;
    assert_eq!(r.doc_ids, vec![new_id]);
    println!("dynamic insert after reopen works: new doc {new_id} found");

    std::fs::remove_file(&path).ok();
    Ok(())
}
