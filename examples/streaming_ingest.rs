//! Streaming ingestion of one huge container document — the paper's XMARK
//! methodology ("we break down its tree structure into a set of sub
//! structures ... and convert each instance into a structure-encoded
//! sequence") — without ever materializing the container.
//!
//! ```sh
//! cargo run --release --example streaming_ingest
//! ```

use std::fmt::Write as _;
use std::sync::Arc;

use vist::xml::{Event, XmlReader};
use vist::{IndexOptions, QueryOptions, VistIndex};

fn main() -> vist::Result<()> {
    // Synthesize a single large "site" document, like an XMARK dump.
    let n_items = std::env::var("N_RECORDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000usize);
    let mut site = String::from("<site><regions><europe>");
    for i in 0..n_items {
        let date = if i % 50 == 0 {
            "12/15/1999".to_string()
        } else {
            format!("{:02}/{:02}/199{}", 1 + i % 12, 1 + i % 28, i % 10)
        };
        write!(
            site,
            "<item id='i{i}' location='{}'><name>widget {i}</name>\
             <mail><date>{date}</date></mail></item>",
            if i % 3 == 0 { "US" } else { "EU" },
        )
        .unwrap();
    }
    site.push_str("</europe></regions></site>");
    println!(
        "container document: {:.1} MiB, {} items",
        site.len() as f64 / (1024.0 * 1024.0),
        n_items
    );

    // 1) Stream statistics with the pull parser (no DOM).
    let mut reader = XmlReader::new(&site);
    let mut elements = 0u64;
    let mut max_depth = 0usize;
    while let Some(e) = reader
        .next_event()
        .map_err(|e| vist::Error::Corrupt(format!("scan failed: {e}")))?
    {
        if matches!(e, Event::Start { .. }) {
            elements += 1;
            max_depth = max_depth.max(reader.depth());
        }
    }
    println!("streamed scan: {elements} elements, depth {max_depth}");

    // 2) Split + index each `item` as its own record. All index methods
    // take `&self`, so the index can be shared behind a plain `Arc`.
    let t0 = std::time::Instant::now();
    let index = Arc::new(VistIndex::in_memory(IndexOptions {
        store_documents: false,
        cache_pages: 1 << 15,
        ..Default::default()
    })?);
    let ids = index.insert_records(&site, &["item"])?;
    println!(
        "indexed {} records in {:.2?} ({} suffix-tree nodes)",
        ids.len(),
        t0.elapsed(),
        index.stats().nodes
    );

    // 3) Query the records from concurrent readers sharing the `Arc`.
    let r = index.query(
        "/item[location='US']/mail/date[text='12/15/1999']",
        &QueryOptions::default(),
    )?;
    println!("US items mailed 12/15/1999: {} records", r.doc_ids.len());
    assert!(!r.doc_ids.is_empty());
    let counts: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let index = Arc::clone(&index);
                s.spawn(move || {
                    let r = index.query("//name", &QueryOptions::default()).unwrap();
                    r.doc_ids.len()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for c in counts {
        assert_eq!(c, ids.len());
    }
    println!("every record has a name: agreed by 4 parallel readers");
    Ok(())
}
