//! The serve loop: accept, sniff, admit, execute, drain.
//!
//! One acceptor thread polls a nonblocking listener and the shutdown
//! flag; each accepted connection gets its own thread. A connection's
//! first bytes are sniffed: a length-prefixed binary frame always
//! starts with 0x00 (the cap [`crate::proto::MAX_FRAME_BYTES`] fits in
//! three bytes), anything else is treated as an HTTP request line.
//!
//! Robustness invariants:
//! - a query only runs while holding a slot from [`Gate`] — overload
//!   becomes structured `OVERLOADED` / 429 responses, never an
//!   unbounded queue;
//! - every admitted query carries an effective deadline
//!   `min(client deadline, max_deadline)`, so a drain deadline ≥
//!   `max_deadline` always terminates;
//! - on SIGTERM the listener stops accepting, queued waiters are
//!   refused with `DRAINING`, in-flight queries finish (or deadline
//!   out), the index is flushed under the writer mutex, and the
//!   process exits 0.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use vist_core::{Error as CoreError, QueryOptions, VistIndex};

use crate::admission::{Admission, Gate};
use crate::http;
use crate::proto::{self, Request, Response};
use crate::signal;

/// How often idle loops (acceptor, parked connections) re-check the
/// shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Knobs for `vist serve`. All have serviceable defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:4170`. Port 0 picks a free port
    /// (the bound address is on the returned handle).
    pub addr: String,
    /// Concurrent query slots (the shared worker pool size).
    pub max_inflight: usize,
    /// Bounded admission queue: waiters beyond this are shed.
    pub queue_depth: usize,
    /// Match-engine workers *per query* (`QueryOptions::workers`).
    pub query_workers: usize,
    /// Hard cap on any query's deadline; the effective deadline is
    /// `min(client, max)`. Also the floor for a safe drain deadline.
    pub max_deadline_ms: u64,
    /// How long SIGTERM waits for in-flight queries before giving up.
    /// Clamped up to `max_deadline_ms` so a drain always terminates.
    pub drain_deadline_ms: u64,
    /// Slow-query log threshold in milliseconds; 0 keeps the library
    /// default ([`vist_obs::slowlog::DEFAULT_THRESHOLD_NANOS`]).
    pub slow_ms: u64,
    /// Append one wide-event JSON line per request to this file,
    /// rotating at [`vist_obs::wide::DEFAULT_MAX_LOG_BYTES`]. The
    /// in-process ring records regardless.
    pub access_log: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:4170".to_string(),
            max_inflight: std::thread::available_parallelism().map_or(4, |n| n.get()),
            queue_depth: 64,
            query_workers: 1,
            max_deadline_ms: 2_000,
            drain_deadline_ms: 5_000,
            slow_ms: 0,
            access_log: None,
        }
    }
}

/// Terminal request states, kept as plain atomics (mirrored into
/// vist-obs) so the drain report works even with metrics disabled.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests received (binary + HTTP), including malformed ones.
    pub requests: AtomicU64,
    /// Queries that took a slot and ran.
    pub admitted: AtomicU64,
    /// Queries refused because pool + queue were saturated.
    pub shed: AtomicU64,
    /// Admitted queries that hit their effective deadline mid-match.
    pub deadline_expired: AtomicU64,
    /// Requests refused because the server was draining.
    pub draining_rejected: AtomicU64,
    /// Malformed frames / unparsable queries.
    pub bad_requests: AtomicU64,
    /// Admitted queries that failed server-side.
    pub errors: AtomicU64,
    /// Admitted queries answered successfully.
    pub ok: AtomicU64,
}

impl ServeStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            draining_rejected: self.draining_rejected.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`ServeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub requests: u64,
    pub admitted: u64,
    pub shed: u64,
    pub deadline_expired: u64,
    pub draining_rejected: u64,
    pub bad_requests: u64,
    pub errors: u64,
    pub ok: u64,
}

/// What the drain accomplished; returned by [`ServerHandle::join`].
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Every in-flight query finished before the drain deadline.
    pub drained_clean: bool,
    /// Queries still running when the drain deadline passed.
    pub inflight_at_deadline: usize,
    /// The final flush (under the writer mutex) succeeded.
    pub flush_ok: bool,
    /// Terminal-state counters at shutdown.
    pub stats: StatsSnapshot,
}

/// State shared by the acceptor and every connection thread.
pub(crate) struct Shared {
    pub(crate) index: Arc<VistIndex>,
    pub(crate) gate: Gate,
    pub(crate) cfg: ServeConfig,
    pub(crate) stats: ServeStats,
    /// Set when shutdown begins; connection threads exit at their next
    /// poll tick.
    pub(crate) stop: AtomicBool,
}

/// Register the serve metric families so they appear in exposition
/// even before first use. Idempotent.
pub fn register_metrics() {
    let _ = vist_obs::counter!("vist_serve_requests_total");
    let _ = vist_obs::counter!("vist_serve_admitted_total");
    let _ = vist_obs::counter!("vist_serve_shed_total");
    let _ = vist_obs::counter!("vist_serve_deadline_expired_total");
    let _ = vist_obs::counter!("vist_serve_draining_rejected_total");
    let _ = vist_obs::counter!("vist_serve_bad_request_total");
    let _ = vist_obs::counter!("vist_serve_errors_total");
    let _ = vist_obs::counter!("vist_serve_ok_total");
    let _ = vist_obs::gauge!("vist_serve_inflight");
    let _ = vist_obs::gauge!("vist_serve_queue_depth");
    let _ = vist_obs::gauge!("vist_serve_draining");
    let _ = vist_obs::histogram!("vist_serve_request_nanos");
    let _ = vist_obs::histogram!("vist_serve_queue_wait_nanos");
    for (name, help) in [
        (
            "vist_serve_requests_total",
            "Requests received (binary + HTTP), including malformed ones.",
        ),
        (
            "vist_serve_admitted_total",
            "Queries that took an execution slot and ran.",
        ),
        (
            "vist_serve_shed_total",
            "Queries refused because pool and queue were saturated.",
        ),
        (
            "vist_serve_deadline_expired_total",
            "Admitted queries that hit their effective deadline mid-match.",
        ),
        (
            "vist_serve_draining_rejected_total",
            "Requests refused because the server was draining.",
        ),
        (
            "vist_serve_bad_request_total",
            "Malformed frames and unparsable queries.",
        ),
        (
            "vist_serve_errors_total",
            "Admitted queries that failed server-side.",
        ),
        (
            "vist_serve_ok_total",
            "Admitted queries answered successfully.",
        ),
        (
            "vist_serve_inflight",
            "Queries currently holding an execution slot.",
        ),
        (
            "vist_serve_queue_depth",
            "Admission waiters currently queued.",
        ),
        ("vist_serve_draining", "1 while the server drains, else 0."),
        (
            "vist_serve_request_nanos",
            "Service time per admitted query; buckets carry the last trace id as an exemplar.",
        ),
        (
            "vist_serve_queue_wait_nanos",
            "Time admitted queries spent waiting for a slot.",
        ),
    ] {
        vist_obs::describe(name, help);
    }
}

/// A running server. Dropping the handle does not stop it; call
/// [`ServerHandle::request_shutdown`] (or send SIGTERM) and then
/// [`ServerHandle::join`].
pub struct Server {
    _private: (),
}

/// Handle to a running [`Server`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    acceptor: thread::JoinHandle<DrainReport>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Programmatic SIGTERM: begin the drain.
    pub fn request_shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Current terminal-state counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Wait for the drain to finish and return its report.
    pub fn join(self) -> DrainReport {
        self.acceptor.join().unwrap_or(DrainReport {
            drained_clean: false,
            inflight_at_deadline: 0,
            flush_ok: false,
            stats: StatsSnapshot::default(),
        })
    }
}

impl Server {
    /// Bind and start serving `index` per `cfg`. Installs SIGTERM /
    /// SIGINT handlers; returns once the listener is bound.
    pub fn start(index: Arc<VistIndex>, cfg: ServeConfig) -> io::Result<ServerHandle> {
        register_metrics();
        signal::install_handlers();
        // Spans feed the tracez retention and /debug/traces; measured
        // overhead is within the obs budget (see BENCH_obs_overhead).
        vist_obs::set_tracing(true);
        if cfg.slow_ms > 0 {
            vist_obs::slowlog::set_threshold_nanos(cfg.slow_ms.saturating_mul(1_000_000));
        }
        if let Some(path) = &cfg.access_log {
            vist_obs::wide::set_file_sink(path, 0)?;
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let gate = Gate::new(cfg.max_inflight, cfg.queue_depth);
        let shared = Arc::new(Shared {
            index,
            gate,
            cfg,
            stats: ServeStats::default(),
            stop: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = thread::Builder::new()
            .name("vist-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(ServerHandle {
            addr,
            shared,
            acceptor,
        })
    }
}

fn should_stop(shared: &Shared) -> bool {
    shared.stop.load(Ordering::SeqCst) || signal::shutdown_requested()
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> DrainReport {
    loop {
        if should_stop(&shared) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                let _ = thread::Builder::new()
                    .name("vist-serve-conn".into())
                    .spawn(move || handle_connection(stream, conn_shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_TICK),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(POLL_TICK),
        }
    }
    drain(&shared)
}

/// The drain: stop admitting, wait for in-flight work (bounded), flush.
fn drain(shared: &Shared) -> DrainReport {
    // Make sure every connection thread sees the stop flag even when
    // shutdown came from a signal.
    shared.stop.store(true, Ordering::SeqCst);
    vist_obs::gauge!("vist_serve_draining").set(1);
    shared.gate.begin_drain();
    // A drain deadline below the per-query cap could abandon queries
    // that are guaranteed to terminate anyway; clamp up.
    let drain_ms = shared.cfg.drain_deadline_ms.max(shared.cfg.max_deadline_ms);
    let deadline = Instant::now() + Duration::from_millis(drain_ms);
    let drained_clean = shared.gate.await_idle(deadline);
    let inflight_at_deadline = shared.gate.inflight();
    // Flush coordinates with writers through the index's own writer
    // mutex; queries are done (or abandoned past the deadline).
    let flush_ok = shared.index.flush().is_ok();
    DrainReport {
        drained_clean,
        inflight_at_deadline,
        flush_ok,
        stats: shared.stats.snapshot(),
    }
}

/// Sniff the first byte without consuming: binary frames start with
/// 0x00 (frame cap < 2^24), HTTP request lines start with an ASCII
/// method letter.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "unknown".to_string(), |a| a.to_string());
    let mut first = [0u8; 1];
    loop {
        if should_stop(&shared) && shared.gate.is_draining() {
            return;
        }
        match stream.peek(&mut first) {
            Ok(0) => return,
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if should_stop(&shared) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
    if first[0] == 0 {
        serve_binary(stream, &shared, &peer);
    } else {
        http::serve_http(stream, &shared, &peer);
    }
}

/// Binary protocol: a sequence of request frames, one response frame
/// each, until clean EOF or a protocol error.
fn serve_binary(mut stream: TcpStream, shared: &Shared, peer: &str) {
    loop {
        // Idle-wait on the first byte so read timeouts can never land
        // mid-frame on a healthy client.
        let mut first = [0u8; 1];
        loop {
            match stream.peek(&mut first) {
                Ok(0) => return,
                Ok(_) => break,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if should_stop(shared) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        // A frame is arriving: allow a generous window for its bytes.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let frame = proto::read_frame(&mut stream);
        let _ = stream.set_read_timeout(Some(POLL_TICK));
        let payload = match frame {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e) => {
                // Malformed framing: answer structurally, then close —
                // the stream position is no longer trustworthy.
                let (trace_id, resp) = bad_binary_request(shared, peer, &e.to_string());
                let _ = proto::write_frame(&mut stream, &resp.encode_with_trace(trace_id));
                return;
            }
        };
        let (trace_id, resp) = match Request::decode(&payload) {
            Ok(req) => handle_request(shared, req, peer, "binary"),
            Err(e) => bad_binary_request(shared, peer, &e.to_string()),
        };
        if proto::write_frame(&mut stream, &resp.encode_with_trace(trace_id)).is_err() {
            return;
        }
    }
}

/// Account + wide-event a request that never decoded; even these get a
/// (minted) trace id so the response frame stays uniform.
fn bad_binary_request(shared: &Shared, peer: &str, error: &str) -> (u128, Response) {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
    vist_obs::counter!("vist_serve_requests_total").inc();
    vist_obs::counter!("vist_serve_bad_request_total").inc();
    let trace_id = vist_obs::traceid::mint();
    vist_obs::WideEvent::new("request")
        .str_field("trace_id", &vist_obs::traceid::format(trace_id))
        .str_field("transport", "binary")
        .str_field("peer", peer)
        .str_field("outcome", "bad_request")
        .str_field("error", error)
        .emit();
    (trace_id, Response::BadRequest(error.to_string()))
}

/// Render the per-stage timings of one query as a JSON object.
fn stages_json(t: &vist_core::StageTimings) -> String {
    format!(
        "{{\"translate\":{},\"plan\":{},\"match\":{},\"merge\":{},\"docid\":{},\"verify\":{},\"total\":{}}}",
        t.translate_nanos,
        t.plan_nanos,
        t.match_nanos,
        t.merge_nanos,
        t.docid_nanos,
        t.verify_nanos,
        t.total_nanos
    )
}

/// Render one query's attributed I/O counters as a JSON object.
fn io_json(s: &vist_core::QueryStats) -> String {
    format!(
        "{{\"pool_hits\":{},\"pool_misses\":{},\"pages_read\":{},\"bytes_read\":{},\"wal_appends\":{}}}",
        s.io_pool_hits, s.io_pool_misses, s.io_pages_read, s.io_bytes_read, s.io_wal_appends
    )
}

/// Shared request path for both transports: admission, deadline,
/// execution, terminal-state accounting, and the wide event. Returns
/// the request's trace id — client-supplied when present, minted here
/// otherwise — alongside the response; every response (including shed
/// and draining refusals) carries it back to the client.
pub(crate) fn handle_request(
    shared: &Shared,
    req: Request,
    peer: &str,
    transport: &'static str,
) -> (u128, Response) {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    vist_obs::counter!("vist_serve_requests_total").inc();
    let (client_trace_id, deadline_ms, verify, no_plan, limit, expr) = match req {
        Request::Ping => {
            let trace_id = vist_obs::traceid::mint();
            vist_obs::WideEvent::new("request")
                .str_field("trace_id", &vist_obs::traceid::format(trace_id))
                .str_field("transport", transport)
                .str_field("peer", peer)
                .str_field("op", "ping")
                .str_field("outcome", "ok")
                .emit();
            return (trace_id, Response::Pong);
        }
        Request::Query {
            trace_id,
            deadline_ms,
            verify,
            no_plan,
            limit,
            expr,
        } => (trace_id, deadline_ms, verify, no_plan, limit, expr),
    };
    let trace_id = if client_trace_id != 0 {
        client_trace_id
    } else {
        vist_obs::traceid::mint()
    };
    // Everything known about the request lands on one of these; each
    // terminal arm below finishes and emits exactly one.
    let event = |outcome: &str| {
        vist_obs::WideEvent::new("request")
            .str_field("trace_id", &vist_obs::traceid::format(trace_id))
            .str_field("transport", transport)
            .str_field("peer", peer)
            .str_field("op", "query")
            .str_field("expr", &expr)
            .str_field("outcome", outcome)
    };
    // Effective budget: the client's ask capped by the server; 0 means
    // "whatever the server allows".
    let cap = shared.cfg.max_deadline_ms;
    let budget_ms = if deadline_ms == 0 {
        cap
    } else {
        u64::from(deadline_ms).min(cap)
    };
    let budget = Duration::from_millis(budget_ms);
    let arrival = Instant::now();
    let deadline = arrival + budget;
    let resp = match shared.gate.admit(budget) {
        Admission::Draining => {
            shared
                .stats
                .draining_rejected
                .fetch_add(1, Ordering::Relaxed);
            vist_obs::counter!("vist_serve_draining_rejected_total").inc();
            event("draining").emit();
            Response::Draining
        }
        Admission::Shed { retry_after } => {
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            vist_obs::counter!("vist_serve_shed_total").inc();
            let retry_after_ms = retry_after.as_millis().min(u128::from(u32::MAX)) as u32;
            event("shed")
                .u64_field("retry_after_ms", u64::from(retry_after_ms))
                .emit();
            Response::Overloaded { retry_after_ms }
        }
        Admission::Admitted { queued } => {
            shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
            vist_obs::counter!("vist_serve_admitted_total").inc();
            let queue_wait_nanos = queued.as_nanos().min(u128::from(u64::MAX)) as u64;
            vist_obs::histogram!("vist_serve_queue_wait_nanos").record(queue_wait_nanos);
            vist_obs::gauge!("vist_serve_inflight").set(shared.gate.inflight() as i64);
            vist_obs::gauge!("vist_serve_queue_depth").set(shared.gate.queued() as i64);
            let started = Instant::now();
            let opts = QueryOptions {
                verify,
                workers: shared.cfg.query_workers,
                no_plan,
                limit: if limit == 0 {
                    None
                } else {
                    Some(limit as usize)
                },
                deadline: Some(deadline),
                trace_id,
                ..QueryOptions::default()
            };
            let result = shared.index.query(&expr, &opts);
            let service = started.elapsed();
            shared.gate.release(service);
            vist_obs::gauge!("vist_serve_inflight").set(shared.gate.inflight() as i64);
            let service_nanos = service.as_nanos().min(u128::from(u64::MAX)) as u64;
            vist_obs::histogram!("vist_serve_request_nanos")
                .record_with_exemplar(service_nanos, trace_id);
            let admitted_event = |outcome: &str| {
                event(outcome)
                    .u64_field("queue_wait_nanos", queue_wait_nanos)
                    .u64_field("total_nanos", service_nanos)
            };
            match result {
                Ok(r) => {
                    shared.stats.ok.fetch_add(1, Ordering::Relaxed);
                    vist_obs::counter!("vist_serve_ok_total").inc();
                    admitted_event("ok")
                        .u64_field("docs", r.doc_ids.len() as u64)
                        .u64_field("candidates", r.candidates as u64)
                        .u64_field("workers", shared.cfg.query_workers as u64)
                        .u64_field("work_items", r.stats.work_items)
                        .u64_field("steals", r.stats.steals)
                        .u64_field("planner_seqs_pruned", r.stats.planner_seqs_pruned)
                        .raw_field("stages", &stages_json(&r.timings))
                        .raw_field("io", &io_json(&r.stats))
                        .emit();
                    Response::Ok(r.doc_ids)
                }
                Err(CoreError::DeadlineExceeded) => {
                    shared
                        .stats
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    vist_obs::counter!("vist_serve_deadline_expired_total").inc();
                    admitted_event("deadline").emit();
                    Response::DeadlineExceeded
                }
                Err(CoreError::Query(e)) => {
                    shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                    vist_obs::counter!("vist_serve_bad_request_total").inc();
                    admitted_event("bad_request")
                        .str_field("error", &e.to_string())
                        .emit();
                    Response::BadRequest(e.to_string())
                }
                Err(e) => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    vist_obs::counter!("vist_serve_errors_total").inc();
                    admitted_event("error")
                        .str_field("error", &e.to_string())
                        .emit();
                    Response::Error(e.to_string())
                }
            }
        }
    };
    (trace_id, resp)
}
