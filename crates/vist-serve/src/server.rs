//! The serve loop: accept, sniff, admit, execute, drain.
//!
//! One acceptor thread polls a nonblocking listener and the shutdown
//! flag; each accepted connection gets its own thread. A connection's
//! first bytes are sniffed: a length-prefixed binary frame always
//! starts with 0x00 (the cap [`crate::proto::MAX_FRAME_BYTES`] fits in
//! three bytes), anything else is treated as an HTTP request line.
//!
//! Robustness invariants:
//! - a query only runs while holding a slot from [`Gate`] — overload
//!   becomes structured `OVERLOADED` / 429 responses, never an
//!   unbounded queue;
//! - every admitted query carries an effective deadline
//!   `min(client deadline, max_deadline)`, so a drain deadline ≥
//!   `max_deadline` always terminates;
//! - on SIGTERM the listener stops accepting, queued waiters are
//!   refused with `DRAINING`, in-flight queries finish (or deadline
//!   out), the index is flushed under the writer mutex, and the
//!   process exits 0.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use vist_core::{Error as CoreError, QueryOptions, VistIndex};

use crate::admission::{Admission, Gate};
use crate::http;
use crate::proto::{self, Request, Response};
use crate::signal;

/// How often idle loops (acceptor, parked connections) re-check the
/// shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Knobs for `vist serve`. All have serviceable defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:4170`. Port 0 picks a free port
    /// (the bound address is on the returned handle).
    pub addr: String,
    /// Concurrent query slots (the shared worker pool size).
    pub max_inflight: usize,
    /// Bounded admission queue: waiters beyond this are shed.
    pub queue_depth: usize,
    /// Match-engine workers *per query* (`QueryOptions::workers`).
    pub query_workers: usize,
    /// Hard cap on any query's deadline; the effective deadline is
    /// `min(client, max)`. Also the floor for a safe drain deadline.
    pub max_deadline_ms: u64,
    /// How long SIGTERM waits for in-flight queries before giving up.
    /// Clamped up to `max_deadline_ms` so a drain always terminates.
    pub drain_deadline_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:4170".to_string(),
            max_inflight: std::thread::available_parallelism().map_or(4, |n| n.get()),
            queue_depth: 64,
            query_workers: 1,
            max_deadline_ms: 2_000,
            drain_deadline_ms: 5_000,
        }
    }
}

/// Terminal request states, kept as plain atomics (mirrored into
/// vist-obs) so the drain report works even with metrics disabled.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests received (binary + HTTP), including malformed ones.
    pub requests: AtomicU64,
    /// Queries that took a slot and ran.
    pub admitted: AtomicU64,
    /// Queries refused because pool + queue were saturated.
    pub shed: AtomicU64,
    /// Admitted queries that hit their effective deadline mid-match.
    pub deadline_expired: AtomicU64,
    /// Requests refused because the server was draining.
    pub draining_rejected: AtomicU64,
    /// Malformed frames / unparsable queries.
    pub bad_requests: AtomicU64,
    /// Admitted queries that failed server-side.
    pub errors: AtomicU64,
    /// Admitted queries answered successfully.
    pub ok: AtomicU64,
}

impl ServeStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            draining_rejected: self.draining_rejected.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`ServeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub requests: u64,
    pub admitted: u64,
    pub shed: u64,
    pub deadline_expired: u64,
    pub draining_rejected: u64,
    pub bad_requests: u64,
    pub errors: u64,
    pub ok: u64,
}

/// What the drain accomplished; returned by [`ServerHandle::join`].
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Every in-flight query finished before the drain deadline.
    pub drained_clean: bool,
    /// Queries still running when the drain deadline passed.
    pub inflight_at_deadline: usize,
    /// The final flush (under the writer mutex) succeeded.
    pub flush_ok: bool,
    /// Terminal-state counters at shutdown.
    pub stats: StatsSnapshot,
}

/// State shared by the acceptor and every connection thread.
pub(crate) struct Shared {
    pub(crate) index: Arc<VistIndex>,
    pub(crate) gate: Gate,
    pub(crate) cfg: ServeConfig,
    pub(crate) stats: ServeStats,
    /// Set when shutdown begins; connection threads exit at their next
    /// poll tick.
    pub(crate) stop: AtomicBool,
}

/// Register the serve metric families so they appear in exposition
/// even before first use. Idempotent.
pub fn register_metrics() {
    let _ = vist_obs::counter!("vist_serve_requests_total");
    let _ = vist_obs::counter!("vist_serve_admitted_total");
    let _ = vist_obs::counter!("vist_serve_shed_total");
    let _ = vist_obs::counter!("vist_serve_deadline_expired_total");
    let _ = vist_obs::counter!("vist_serve_draining_rejected_total");
    let _ = vist_obs::counter!("vist_serve_bad_request_total");
    let _ = vist_obs::counter!("vist_serve_errors_total");
    let _ = vist_obs::counter!("vist_serve_ok_total");
    let _ = vist_obs::gauge!("vist_serve_inflight");
    let _ = vist_obs::gauge!("vist_serve_queue_depth");
    let _ = vist_obs::gauge!("vist_serve_draining");
    let _ = vist_obs::histogram!("vist_serve_request_nanos");
    let _ = vist_obs::histogram!("vist_serve_queue_wait_nanos");
}

/// A running server. Dropping the handle does not stop it; call
/// [`ServerHandle::request_shutdown`] (or send SIGTERM) and then
/// [`ServerHandle::join`].
pub struct Server {
    _private: (),
}

/// Handle to a running [`Server`].
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    acceptor: thread::JoinHandle<DrainReport>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Programmatic SIGTERM: begin the drain.
    pub fn request_shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Current terminal-state counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Wait for the drain to finish and return its report.
    pub fn join(self) -> DrainReport {
        self.acceptor.join().unwrap_or(DrainReport {
            drained_clean: false,
            inflight_at_deadline: 0,
            flush_ok: false,
            stats: StatsSnapshot::default(),
        })
    }
}

impl Server {
    /// Bind and start serving `index` per `cfg`. Installs SIGTERM /
    /// SIGINT handlers; returns once the listener is bound.
    pub fn start(index: Arc<VistIndex>, cfg: ServeConfig) -> io::Result<ServerHandle> {
        register_metrics();
        signal::install_handlers();
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let gate = Gate::new(cfg.max_inflight, cfg.queue_depth);
        let shared = Arc::new(Shared {
            index,
            gate,
            cfg,
            stats: ServeStats::default(),
            stop: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = thread::Builder::new()
            .name("vist-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(ServerHandle {
            addr,
            shared,
            acceptor,
        })
    }
}

fn should_stop(shared: &Shared) -> bool {
    shared.stop.load(Ordering::SeqCst) || signal::shutdown_requested()
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> DrainReport {
    loop {
        if should_stop(&shared) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                let _ = thread::Builder::new()
                    .name("vist-serve-conn".into())
                    .spawn(move || handle_connection(stream, conn_shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_TICK),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => thread::sleep(POLL_TICK),
        }
    }
    drain(&shared)
}

/// The drain: stop admitting, wait for in-flight work (bounded), flush.
fn drain(shared: &Shared) -> DrainReport {
    // Make sure every connection thread sees the stop flag even when
    // shutdown came from a signal.
    shared.stop.store(true, Ordering::SeqCst);
    vist_obs::gauge!("vist_serve_draining").set(1);
    shared.gate.begin_drain();
    // A drain deadline below the per-query cap could abandon queries
    // that are guaranteed to terminate anyway; clamp up.
    let drain_ms = shared.cfg.drain_deadline_ms.max(shared.cfg.max_deadline_ms);
    let deadline = Instant::now() + Duration::from_millis(drain_ms);
    let drained_clean = shared.gate.await_idle(deadline);
    let inflight_at_deadline = shared.gate.inflight();
    // Flush coordinates with writers through the index's own writer
    // mutex; queries are done (or abandoned past the deadline).
    let flush_ok = shared.index.flush().is_ok();
    DrainReport {
        drained_clean,
        inflight_at_deadline,
        flush_ok,
        stats: shared.stats.snapshot(),
    }
}

/// Sniff the first byte without consuming: binary frames start with
/// 0x00 (frame cap < 2^24), HTTP request lines start with an ASCII
/// method letter.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let mut first = [0u8; 1];
    loop {
        if should_stop(&shared) && shared.gate.is_draining() {
            return;
        }
        match stream.peek(&mut first) {
            Ok(0) => return,
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if should_stop(&shared) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
    if first[0] == 0 {
        serve_binary(stream, &shared);
    } else {
        http::serve_http(stream, &shared);
    }
}

/// Binary protocol: a sequence of request frames, one response frame
/// each, until clean EOF or a protocol error.
fn serve_binary(mut stream: TcpStream, shared: &Shared) {
    loop {
        // Idle-wait on the first byte so read timeouts can never land
        // mid-frame on a healthy client.
        let mut first = [0u8; 1];
        loop {
            match stream.peek(&mut first) {
                Ok(0) => return,
                Ok(_) => break,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if should_stop(shared) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        // A frame is arriving: allow a generous window for its bytes.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let frame = proto::read_frame(&mut stream);
        let _ = stream.set_read_timeout(Some(POLL_TICK));
        let payload = match frame {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e) => {
                // Malformed framing: answer structurally, then close —
                // the stream position is no longer trustworthy.
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                vist_obs::counter!("vist_serve_requests_total").inc();
                vist_obs::counter!("vist_serve_bad_request_total").inc();
                let resp = Response::BadRequest(e.to_string());
                let _ = proto::write_frame(&mut stream, &resp.encode());
                return;
            }
        };
        let resp = match Request::decode(&payload) {
            Ok(req) => handle_request(shared, req),
            Err(e) => {
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                vist_obs::counter!("vist_serve_requests_total").inc();
                vist_obs::counter!("vist_serve_bad_request_total").inc();
                Response::BadRequest(e.to_string())
            }
        };
        if proto::write_frame(&mut stream, &resp.encode()).is_err() {
            return;
        }
    }
}

/// Shared request path for both transports: admission, deadline,
/// execution, terminal-state accounting.
pub(crate) fn handle_request(shared: &Shared, req: Request) -> Response {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    vist_obs::counter!("vist_serve_requests_total").inc();
    let (deadline_ms, verify, no_plan, limit, expr) = match req {
        Request::Ping => return Response::Pong,
        Request::Query {
            deadline_ms,
            verify,
            no_plan,
            limit,
            expr,
        } => (deadline_ms, verify, no_plan, limit, expr),
    };
    // Effective budget: the client's ask capped by the server; 0 means
    // "whatever the server allows".
    let cap = shared.cfg.max_deadline_ms;
    let budget_ms = if deadline_ms == 0 {
        cap
    } else {
        u64::from(deadline_ms).min(cap)
    };
    let budget = Duration::from_millis(budget_ms);
    let arrival = Instant::now();
    let deadline = arrival + budget;
    match shared.gate.admit(budget) {
        Admission::Draining => {
            shared
                .stats
                .draining_rejected
                .fetch_add(1, Ordering::Relaxed);
            vist_obs::counter!("vist_serve_draining_rejected_total").inc();
            Response::Draining
        }
        Admission::Shed { retry_after } => {
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            vist_obs::counter!("vist_serve_shed_total").inc();
            Response::Overloaded {
                retry_after_ms: retry_after.as_millis().min(u128::from(u32::MAX)) as u32,
            }
        }
        Admission::Admitted { queued } => {
            shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
            vist_obs::counter!("vist_serve_admitted_total").inc();
            vist_obs::histogram!("vist_serve_queue_wait_nanos")
                .record(queued.as_nanos().min(u128::from(u64::MAX)) as u64);
            vist_obs::gauge!("vist_serve_inflight").set(shared.gate.inflight() as i64);
            vist_obs::gauge!("vist_serve_queue_depth").set(shared.gate.queued() as i64);
            let started = Instant::now();
            let opts = QueryOptions {
                verify,
                workers: shared.cfg.query_workers,
                no_plan,
                limit: if limit == 0 {
                    None
                } else {
                    Some(limit as usize)
                },
                deadline: Some(deadline),
                ..QueryOptions::default()
            };
            let result = shared.index.query(&expr, &opts);
            let service = started.elapsed();
            shared.gate.release(service);
            vist_obs::gauge!("vist_serve_inflight").set(shared.gate.inflight() as i64);
            vist_obs::histogram!("vist_serve_request_nanos")
                .record(service.as_nanos().min(u128::from(u64::MAX)) as u64);
            match result {
                Ok(r) => {
                    shared.stats.ok.fetch_add(1, Ordering::Relaxed);
                    vist_obs::counter!("vist_serve_ok_total").inc();
                    Response::Ok(r.doc_ids)
                }
                Err(CoreError::DeadlineExceeded) => {
                    shared
                        .stats
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    vist_obs::counter!("vist_serve_deadline_expired_total").inc();
                    Response::DeadlineExceeded
                }
                Err(CoreError::Query(e)) => {
                    shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                    vist_obs::counter!("vist_serve_bad_request_total").inc();
                    Response::BadRequest(e.to_string())
                }
                Err(e) => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    vist_obs::counter!("vist_serve_errors_total").inc();
                    Response::Error(e.to_string())
                }
            }
        }
    }
}
