//! The wire protocol: length-prefixed frames with a fixed-layout header.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! [ u32 BE payload length | payload bytes ]
//! ```
//!
//! The length covers the payload only (not itself) and is capped by
//! [`MAX_FRAME_BYTES`]; a peer announcing a larger frame is rejected
//! *before* any allocation, so a hostile length prefix cannot make the
//! server reserve gigabytes. All multi-byte integers are big-endian.
//!
//! Request payload layout (opcode [`OP_QUERY`], version 2):
//!
//! ```text
//! u8   version       = PROTO_VERSION
//! u8   opcode        = OP_QUERY | OP_PING
//! u32  deadline_ms   0 = no client deadline (server cap still applies)
//! u8   flags         bit 0 = verify, bit 1 = no_plan
//! u32  limit         0 = unlimited
//! u128 trace_id      0 = server mints one
//! u32  expr_len
//! [expr_len bytes]   UTF-8 query expression
//! ```
//!
//! Response payload layout (version 2):
//!
//! ```text
//! u8   version
//! u8   status        see Status
//! u128 trace_id      the id the request ran under (echoed or minted);
//!                    0 only for responses encoded without one
//! Ok          -> u32 count, count × u64 doc ids
//! Overloaded  -> u32 retry_after_ms
//! Error/BadRequest -> u32 len, len bytes UTF-8 message
//! DeadlineExceeded / Draining / Pong -> (empty tail)
//! ```
//!
//! Version 2 added the `trace_id` fields; version-1 peers are rejected
//! with [`ProtoError::BadVersion`].
//!
//! Decoding is total: any malformed input yields a structured
//! [`ProtoError`], never a panic, and allocation is bounded by the
//! announced (already-capped) frame length.

use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version carried in every frame header. Version 2 added
/// request-scoped trace ids to both directions.
pub const PROTO_VERSION: u8 = 2;

/// Hard cap on a single frame's payload, enforced before allocating.
/// Generous for query expressions and result sets alike (a maximal Ok
/// response carries ~128k doc ids); anything larger is a protocol error.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Request opcode: run a structural query.
pub const OP_QUERY: u8 = 1;
/// Request opcode: liveness probe, answered with `Status::Pong`.
pub const OP_PING: u8 = 2;

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Query ran to completion; doc ids follow.
    Ok = 0,
    /// Server-side failure (storage, corrupt index); message follows.
    Error = 1,
    /// Shed by admission control; retry-after hint follows.
    Overloaded = 2,
    /// The effective deadline passed before the match finished.
    DeadlineExceeded = 3,
    /// Server is draining for shutdown and admits no new work.
    Draining = 4,
    /// The request itself was malformed or unparsable; message follows.
    BadRequest = 5,
    /// Reply to `OP_PING`.
    Pong = 6,
}

impl Status {
    fn from_u8(b: u8) -> Option<Status> {
        Some(match b {
            0 => Status::Ok,
            1 => Status::Error,
            2 => Status::Overloaded,
            3 => Status::DeadlineExceeded,
            4 => Status::Draining,
            5 => Status::BadRequest,
            6 => Status::Pong,
            _ => return None,
        })
    }
}

/// Structured decode/transport failure. Every malformed input maps
/// here — the decoder has no panicking paths.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The stream ended inside a frame (header or payload).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized(u32),
    /// The version byte is not [`PROTO_VERSION`].
    BadVersion(u8),
    /// Unknown opcode or status byte.
    BadOpcode(u8),
    /// A declared field length overruns the payload.
    BadLength,
    /// The query expression is not valid UTF-8.
    BadUtf8,
    /// Bytes remain after the last decoded field.
    TrailingBytes(usize),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds cap of {MAX_FRAME_BYTES}")
            }
            ProtoError::BadVersion(v) => {
                write!(f, "protocol version {v} (expected {PROTO_VERSION})")
            }
            ProtoError::BadOpcode(b) => write!(f, "unknown opcode/status {b}"),
            ProtoError::BadLength => write!(f, "field length overruns frame"),
            ProtoError::BadUtf8 => write!(f, "expression is not valid UTF-8"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after message"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated
        } else {
            ProtoError::Io(e)
        }
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run `expr` with the given per-query knobs.
    Query {
        /// Client budget in milliseconds; 0 means "no client deadline".
        deadline_ms: u32,
        /// Re-verify candidate documents against the stored XML.
        verify: bool,
        /// Disable the cost-based planner for this query.
        no_plan: bool,
        /// Cap on returned doc ids; 0 means unlimited.
        limit: u32,
        /// Client-supplied 128-bit trace id; 0 asks the server to mint
        /// one. Either way the effective id comes back in the response.
        trace_id: u128,
        /// The query expression (vist-query syntax).
        expr: String,
    },
    /// Liveness probe.
    Ping,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Matching document ids.
    Ok(Vec<u64>),
    /// Server-side failure.
    Error(String),
    /// Shed; retry after the given hint.
    Overloaded { retry_after_ms: u32 },
    /// Deadline passed mid-match.
    DeadlineExceeded,
    /// Server is draining.
    Draining,
    /// Malformed request.
    BadRequest(String),
    /// Reply to ping.
    Pong,
}

impl Response {
    /// The status byte this response serializes with.
    pub fn status(&self) -> Status {
        match self {
            Response::Ok(_) => Status::Ok,
            Response::Error(_) => Status::Error,
            Response::Overloaded { .. } => Status::Overloaded,
            Response::DeadlineExceeded => Status::DeadlineExceeded,
            Response::Draining => Status::Draining,
            Response::BadRequest(_) => Status::BadRequest,
            Response::Pong => Status::Pong,
        }
    }
}

// ---------------------------------------------------------------- framing

/// Write one frame: `u32 BE length` + payload. Emitted as a single
/// write so small frames never straddle a Nagle/delayed-ACK stall.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME_BYTES as u64);
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (peer closed between requests). The length prefix is
/// validated against [`MAX_FRAME_BYTES`] *before* the payload buffer is
/// allocated, so a hostile prefix cannot trigger unbounded allocation.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled first-byte read to distinguish clean EOF from a
    // truncated header.
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(e.into()),
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------- cursor

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }
    fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self.buf.get(self.pos).ok_or(ProtoError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }
    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4-byte slice"),
        ))
    }
    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }
    fn u128(&mut self) -> Result<u128, ProtoError> {
        Ok(u128::from_be_bytes(
            self.take(16)?.try_into().expect("16-byte slice"),
        ))
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::BadLength)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn finish(self) -> Result<(), ProtoError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(ProtoError::TrailingBytes(left));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- request

impl Request {
    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(PROTO_VERSION);
        match self {
            Request::Ping => out.push(OP_PING),
            Request::Query {
                deadline_ms,
                verify,
                no_plan,
                limit,
                trace_id,
                expr,
            } => {
                out.push(OP_QUERY);
                out.extend_from_slice(&deadline_ms.to_be_bytes());
                let mut flags = 0u8;
                if *verify {
                    flags |= 1;
                }
                if *no_plan {
                    flags |= 2;
                }
                out.push(flags);
                out.extend_from_slice(&limit.to_be_bytes());
                out.extend_from_slice(&trace_id.to_be_bytes());
                out.extend_from_slice(&(expr.len() as u32).to_be_bytes());
                out.extend_from_slice(expr.as_bytes());
            }
        }
        out
    }

    /// Decode a frame payload. Total: every malformed input maps to a
    /// [`ProtoError`].
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut c = Cursor::new(payload);
        let version = c.u8()?;
        if version != PROTO_VERSION {
            return Err(ProtoError::BadVersion(version));
        }
        let opcode = c.u8()?;
        let req = match opcode {
            OP_PING => Request::Ping,
            OP_QUERY => {
                let deadline_ms = c.u32()?;
                let flags = c.u8()?;
                let limit = c.u32()?;
                let trace_id = c.u128()?;
                let expr_len = c.u32()? as usize;
                let expr = std::str::from_utf8(c.take(expr_len)?)
                    .map_err(|_| ProtoError::BadUtf8)?
                    .to_string();
                Request::Query {
                    deadline_ms,
                    verify: flags & 1 != 0,
                    no_plan: flags & 2 != 0,
                    limit,
                    trace_id,
                    expr,
                }
            }
            other => return Err(ProtoError::BadOpcode(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------- response

impl Response {
    /// Serialize to a frame payload with a zero trace id. Prefer
    /// [`Response::encode_with_trace`] on the server, where every
    /// response carries the id its request ran under.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with_trace(0)
    }

    /// Serialize to a frame payload carrying `trace_id` (every status
    /// echoes one — a shed or malformed request is still traceable).
    pub fn encode_with_trace(&self, trace_id: u128) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(PROTO_VERSION);
        out.push(self.status() as u8);
        out.extend_from_slice(&trace_id.to_be_bytes());
        match self {
            Response::Ok(ids) => {
                out.extend_from_slice(&(ids.len() as u32).to_be_bytes());
                for id in ids {
                    out.extend_from_slice(&id.to_be_bytes());
                }
            }
            Response::Error(m) | Response::BadRequest(m) => {
                out.extend_from_slice(&(m.len() as u32).to_be_bytes());
                out.extend_from_slice(m.as_bytes());
            }
            Response::Overloaded { retry_after_ms } => {
                out.extend_from_slice(&retry_after_ms.to_be_bytes());
            }
            Response::DeadlineExceeded | Response::Draining | Response::Pong => {}
        }
        out
    }

    /// Decode a frame payload, discarding the trace id.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        Self::decode_with_trace(payload).map(|(_, resp)| resp)
    }

    /// Decode a frame payload along with the trace id it carries.
    pub fn decode_with_trace(payload: &[u8]) -> Result<(u128, Response), ProtoError> {
        let mut c = Cursor::new(payload);
        let version = c.u8()?;
        if version != PROTO_VERSION {
            return Err(ProtoError::BadVersion(version));
        }
        let status = Status::from_u8(c.u8()?).ok_or_else(|| {
            // Re-read the byte we just consumed for the error message.
            ProtoError::BadOpcode(payload[1])
        })?;
        let trace_id = c.u128()?;
        let resp = match status {
            Status::Ok => {
                let n = c.u32()? as usize;
                // n is bounded by the frame cap: each id is 8 bytes, so
                // an overdeclared count trips Truncated in c.u64().
                let mut ids = Vec::with_capacity(n.min(MAX_FRAME_BYTES as usize / 8));
                for _ in 0..n {
                    ids.push(c.u64()?);
                }
                Response::Ok(ids)
            }
            Status::Error | Status::BadRequest => {
                let len = c.u32()? as usize;
                let msg = std::str::from_utf8(c.take(len)?)
                    .map_err(|_| ProtoError::BadUtf8)?
                    .to_string();
                if status == Status::Error {
                    Response::Error(msg)
                } else {
                    Response::BadRequest(msg)
                }
            }
            Status::Overloaded => Response::Overloaded {
                retry_after_ms: c.u32()?,
            },
            Status::DeadlineExceeded => Response::DeadlineExceeded,
            Status::Draining => Response::Draining,
            Status::Pong => Response::Pong,
        };
        c.finish()?;
        Ok((trace_id, resp))
    }
}

// ---------------------------------------------------------------- client

/// Minimal blocking client for the binary protocol: one request, one
/// response, over any `Read + Write` transport. Used by `bench-serve`,
/// the e2e tests, and available to embedders.
pub fn roundtrip<T: Read + Write>(
    transport: &mut T,
    req: &Request,
) -> Result<Response, ProtoError> {
    roundtrip_traced(transport, req).map(|(_, resp)| resp)
}

/// [`roundtrip`], also returning the trace id the response carried —
/// the handle for `vist traces <id>` / `/debug/traces?id=<id>`.
pub fn roundtrip_traced<T: Read + Write>(
    transport: &mut T,
    req: &Request,
) -> Result<(u128, Response), ProtoError> {
    write_frame(transport, &req.encode())?;
    let payload = read_frame(transport)?.ok_or(ProtoError::Truncated)?;
    Response::decode_with_trace(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(expr: &str) -> Request {
        Request::Query {
            deadline_ms: 250,
            verify: true,
            no_plan: false,
            limit: 10,
            trace_id: 0xfeed_beef_cafe,
            expr: expr.to_string(),
        }
    }

    #[test]
    fn request_roundtrip() {
        for req in [query("/book/author"), query(""), Request::Ping] {
            let decoded = Request::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn every_status_carries_the_trace_id() {
        let id = u128::MAX - 7;
        let cases = [
            Response::Ok(vec![1, 2]),
            Response::Error("boom".into()),
            Response::Overloaded { retry_after_ms: 9 },
            Response::DeadlineExceeded,
            Response::Draining,
            Response::BadRequest("nope".into()),
            Response::Pong,
        ];
        for resp in cases {
            let (got_id, got) = Response::decode_with_trace(&resp.encode_with_trace(id)).unwrap();
            assert_eq!(got_id, id);
            assert_eq!(got, resp);
            // The id-less helpers interoperate: encode() writes id 0.
            let (zero, _) = Response::decode_with_trace(&resp.encode()).unwrap();
            assert_eq!(zero, 0);
        }
    }

    #[test]
    fn response_roundtrip() {
        let cases = [
            Response::Ok(vec![1, 2, u64::MAX]),
            Response::Ok(vec![]),
            Response::Error("boom".into()),
            Response::BadRequest("nope".into()),
            Response::Overloaded { retry_after_ms: 40 },
            Response::DeadlineExceeded,
            Response::Draining,
            Response::Pong,
        ];
        for resp in cases {
            let decoded = Response::decode(&resp.encode()).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn frame_roundtrip_and_clean_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    // Satellite: malformed-input hardening. Truncated, oversized, and
    // garbage frames must all yield structured errors — no panics, no
    // allocation driven by an unvalidated length.
    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        // Announces a 2 GiB payload; read_frame must refuse without
        // trying to reserve it.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(2u32 << 30).to_be_bytes());
        buf.extend_from_slice(b"tiny");
        match read_frame(&mut &buf[..]) {
            Err(ProtoError::Oversized(n)) => assert_eq!(n, 2 << 30),
            other => panic!("expected Oversized, got {other:?}"),
        }
        // Exactly at the cap is fine (payload itself truncated here).
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAX_FRAME_BYTES.to_be_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(ProtoError::Truncated)
        ));
    }

    #[test]
    fn truncated_frames_are_structured_errors() {
        // Cut a valid frame at every possible byte boundary.
        let mut full = Vec::new();
        write_frame(&mut full, &query("/a/b").encode()).unwrap();
        for cut in 1..full.len() {
            let r = read_frame(&mut &full[..cut]);
            assert!(
                matches!(r, Err(ProtoError::Truncated)),
                "cut at {cut}: {r:?}"
            );
        }
    }

    #[test]
    fn garbage_payloads_never_panic() {
        // Deterministic pseudo-random garbage: every outcome must be a
        // structured ProtoError or a (harmless) decoded message.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in 0..64usize {
            for _ in 0..32 {
                let payload: Vec<u8> = (0..len).map(|_| next() as u8).collect();
                let _ = Request::decode(&payload);
                let _ = Response::decode(&payload);
            }
        }
    }

    #[test]
    fn structured_decode_errors() {
        // Wrong version.
        let mut p = query("/a").encode();
        p[0] = 9;
        assert!(matches!(
            Request::decode(&p),
            Err(ProtoError::BadVersion(9))
        ));
        // Unknown opcode.
        let p = vec![PROTO_VERSION, 0xEE];
        assert!(matches!(
            Request::decode(&p),
            Err(ProtoError::BadOpcode(0xEE))
        ));
        // Declared expr length overruns payload.
        let mut p = query("/a/b/c").encode();
        let n = p.len();
        p.truncate(n - 3);
        assert!(matches!(Request::decode(&p), Err(ProtoError::Truncated)));
        // Non-UTF-8 expression.
        let mut p = query("abcd").encode();
        let n = p.len();
        p[n - 2] = 0xFF;
        p[n - 1] = 0xFE;
        assert!(matches!(Request::decode(&p), Err(ProtoError::BadUtf8)));
        // Trailing bytes.
        let mut p = query("/a").encode();
        p.push(0);
        assert!(matches!(
            Request::decode(&p),
            Err(ProtoError::TrailingBytes(1))
        ));
        // Empty payload.
        assert!(matches!(Request::decode(&[]), Err(ProtoError::Truncated)));
    }

    #[test]
    fn overdeclared_ok_count_is_truncated_not_oom() {
        // Status::Ok claiming u32::MAX ids in a short payload must fail
        // with Truncated, with allocation capped by the frame limit.
        let mut p = vec![PROTO_VERSION, Status::Ok as u8];
        p.extend_from_slice(&7u128.to_be_bytes());
        p.extend_from_slice(&u32::MAX.to_be_bytes());
        p.extend_from_slice(&[0u8; 16]);
        assert!(matches!(Response::decode(&p), Err(ProtoError::Truncated)));
    }
}
