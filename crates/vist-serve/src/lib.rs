//! vist-serve: the network front-end for a [`vist_core::VistIndex`].
//!
//! ViST (SIGMOD 2003) is a *dynamic* index — it answers structural
//! queries while documents are inserted underneath. This crate is the
//! layer that makes that dynamism usable over a socket, with the
//! robustness concerns handled deliberately:
//!
//! - [`proto`] — a length-prefixed binary protocol with a hard frame
//!   cap and a total, panic-free decoder;
//! - [`http`] — a minimal HTTP/JSON shim (`/query`, `/metrics`,
//!   `/healthz`) for curl and Prometheus;
//! - [`admission`] — a bounded admission queue over a fixed pool of
//!   query slots: overload is shed with retry hints, never queued
//!   unboundedly;
//! - [`server`] — the accept/drain loop: per-query deadlines capped by
//!   the server, SIGTERM → stop accepting → drain in-flight → flush →
//!   exit 0;
//! - [`signal`] — std-only SIGTERM/SIGINT handling;
//! - [`bench`] — the `vist bench-serve` closed-loop load generator
//!   (exact p50/p99/p999, shed-rate, overload burst).
//!
//! Everything is std-only: no external dependencies, matching the rest
//! of the workspace.

pub mod admission;
pub mod bench;
pub mod http;
pub mod proto;
pub mod server;
pub mod signal;

pub use admission::{Admission, Gate};
pub use bench::{BenchConfig, BenchReport, PhaseReport};
pub use proto::{ProtoError, Request, Response, Status, MAX_FRAME_BYTES, PROTO_VERSION};
pub use server::{DrainReport, ServeConfig, Server, ServerHandle, StatsSnapshot};
