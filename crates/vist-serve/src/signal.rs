//! SIGTERM/SIGINT → shutdown flag, with no dependency beyond std.
//!
//! std already links the platform C library on unix, so declaring
//! `signal(2)` directly is enough — no `libc` crate needed. The
//! handler only stores into a process-global `AtomicBool` (async-
//! signal-safe); the serve loop polls the flag between accepts.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set once a termination signal (SIGTERM/SIGINT) arrives, or by
/// [`request_shutdown`].
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once shutdown has been requested (signal or programmatic).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Programmatic shutdown: same effect as receiving SIGTERM. Used by
/// tests and by `ServerHandle::request_shutdown`.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Reset the flag (test isolation only — signals race with this).
pub fn reset_for_test() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod unix {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX signal(2); std links libc on every unix target.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: a single atomic store.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Route SIGTERM and SIGINT to the shutdown flag.
    pub fn install() {
        unsafe {
            signal(
                SIGTERM,
                on_signal as extern "C" fn(i32) as *const () as usize,
            );
            signal(
                SIGINT,
                on_signal as extern "C" fn(i32) as *const () as usize,
            );
        }
    }
}

/// Install the termination handlers. On non-unix targets this is a
/// no-op: only programmatic [`request_shutdown`] triggers drain there.
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_shutdown_sets_flag() {
        reset_for_test();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_test();
    }
}
