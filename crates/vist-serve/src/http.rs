//! Minimal HTTP/1.1 shim over the same request path as the binary
//! protocol. Just enough for curl, readiness probes, and Prometheus
//! scrapes — one request per connection, `Connection: close`.
//!
//! Routes:
//! - `GET /query?q=EXPR[&deadline_ms=N][&limit=N][&verify=1][&no_plan=1]`
//!   → JSON `{"trace_id":"...","count":N,"doc_ids":[...]}`; overload
//!   maps to 429 with a `Retry-After` header, draining to 503, an
//!   expired deadline to 504, malformed queries to 400. Every `/query`
//!   response carries an `X-Vist-Trace-Id` header; a client may supply
//!   its own id in the same request header (32 hex digits) and it is
//!   used verbatim.
//! - `GET /debug/traces` → JSON summaries of retained traces (the
//!   head-sampled recent ring plus the always-kept slowest set);
//!   `GET /debug/traces?id=HEX` resolves one trace id to its full span
//!   tree, 404 if it aged out.
//! - `GET /metrics` → Prometheus exposition of the process registry.
//! - `GET /healthz` → `200 ok` while serving, `503 draining` during
//!   drain (readiness, not liveness).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{Request, Response};
use crate::server::{handle_request, Shared};

/// Cap on the request head (request line + headers). Anything longer
/// is answered 431 and dropped.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Serve one HTTP exchange on `stream` and close.
pub(crate) fn serve_http(mut stream: TcpStream, shared: &Shared, peer: &str) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let head = match read_head(&mut stream) {
        Ok(h) => h,
        Err(HeadError::TooLarge) => {
            let _ = write_response(
                &mut stream,
                431,
                "Request Header Fields Too Large",
                "application/json",
                b"{\"error\":\"request head too large\"}",
                &[],
            );
            return;
        }
        Err(HeadError::Io) => return,
    };
    let (method, target) = match parse_request_line(&head) {
        Some(mt) => mt,
        None => {
            let _ = write_response(
                &mut stream,
                400,
                "Bad Request",
                "application/json",
                b"{\"error\":\"malformed request line\"}",
                &[],
            );
            return;
        }
    };
    if method != "GET" {
        let _ = write_response(
            &mut stream,
            405,
            "Method Not Allowed",
            "application/json",
            b"{\"error\":\"only GET is supported\"}",
            &[("Allow", "GET".to_string())],
        );
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    match path {
        "/healthz" => {
            if shared.gate.is_draining() {
                let _ = write_response(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    "text/plain",
                    b"draining\n",
                    &[],
                );
            } else {
                let _ = write_response(&mut stream, 200, "OK", "text/plain", b"ok\n", &[]);
            }
        }
        "/metrics" => {
            let body = vist_obs::render_prometheus(&vist_obs::snapshot());
            let _ = write_response(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                body.as_bytes(),
                &[],
            );
        }
        "/query" => serve_query(&mut stream, shared, query, &head, peer),
        "/debug/traces" => serve_traces(&mut stream, query),
        _ => {
            let _ = write_response(
                &mut stream,
                404,
                "Not Found",
                "application/json",
                b"{\"error\":\"no such route\"}",
                &[],
            );
        }
    }
}

/// Case-insensitive header lookup in the raw request head.
fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().skip(1).find_map(|line| {
        let (k, v) = line.split_once(':')?;
        if k.trim().eq_ignore_ascii_case(name) {
            Some(v.trim())
        } else {
            None
        }
    })
}

fn serve_query(stream: &mut TcpStream, shared: &Shared, query: &str, head: &str, peer: &str) {
    // A client-supplied trace id rides the X-Vist-Trace-Id header
    // (32 hex digits); anything unparsable is ignored and the server
    // mints one instead.
    let client_trace_id = header_value(head, "X-Vist-Trace-Id")
        .and_then(vist_obs::traceid::parse)
        .unwrap_or(0);
    let mut expr = None;
    let mut deadline_ms: u32 = 0;
    let mut limit: u32 = 0;
    let mut verify = false;
    let mut no_plan = false;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let v = percent_decode(v);
        match k {
            "q" => expr = Some(v),
            "deadline_ms" => deadline_ms = v.parse().unwrap_or(0),
            "limit" => limit = v.parse().unwrap_or(0),
            "verify" => verify = v != "0" && !v.is_empty(),
            "no_plan" => no_plan = v != "0" && !v.is_empty(),
            _ => {}
        }
    }
    let Some(expr) = expr else {
        let trace_hex = vist_obs::traceid::format(if client_trace_id != 0 {
            client_trace_id
        } else {
            vist_obs::traceid::mint()
        });
        let _ = write_response(
            stream,
            400,
            "Bad Request",
            "application/json",
            b"{\"error\":\"missing q parameter\"}",
            &[("X-Vist-Trace-Id", trace_hex)],
        );
        return;
    };
    let (trace_id, resp) = handle_request(
        shared,
        Request::Query {
            trace_id: client_trace_id,
            deadline_ms,
            verify,
            no_plan,
            limit,
            expr,
        },
        peer,
        "http",
    );
    let trace_hex = vist_obs::traceid::format(trace_id);
    let trace_header = [("X-Vist-Trace-Id", trace_hex.clone())];
    let _ = match resp {
        Response::Ok(ids) => {
            let mut body = format!("{{\"trace_id\":\"{trace_hex}\",\"count\":{}", ids.len());
            body.push_str(",\"doc_ids\":[");
            for (i, id) in ids.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&id.to_string());
            }
            body.push_str("]}");
            write_response(
                stream,
                200,
                "OK",
                "application/json",
                body.as_bytes(),
                &trace_header,
            )
        }
        Response::Overloaded { retry_after_ms } => {
            let body = format!(
                "{{\"trace_id\":\"{trace_hex}\",\"error\":\"overloaded\",\"retry_after_ms\":{retry_after_ms}}}"
            );
            let secs = retry_after_ms.div_ceil(1000).max(1);
            write_response(
                stream,
                429,
                "Too Many Requests",
                "application/json",
                body.as_bytes(),
                &[
                    ("Retry-After", secs.to_string()),
                    ("X-Vist-Trace-Id", trace_hex.clone()),
                ],
            )
        }
        Response::Draining => {
            let body = format!("{{\"trace_id\":\"{trace_hex}\",\"error\":\"draining\"}}");
            write_response(
                stream,
                503,
                "Service Unavailable",
                "application/json",
                body.as_bytes(),
                &trace_header,
            )
        }
        Response::DeadlineExceeded => {
            let body = format!("{{\"trace_id\":\"{trace_hex}\",\"error\":\"deadline exceeded\"}}");
            write_response(
                stream,
                504,
                "Gateway Timeout",
                "application/json",
                body.as_bytes(),
                &trace_header,
            )
        }
        Response::BadRequest(m) => {
            let body = format!(
                "{{\"trace_id\":\"{trace_hex}\",\"error\":{}}}",
                json_string(&m)
            );
            write_response(
                stream,
                400,
                "Bad Request",
                "application/json",
                body.as_bytes(),
                &trace_header,
            )
        }
        Response::Error(m) => {
            let body = format!(
                "{{\"trace_id\":\"{trace_hex}\",\"error\":{}}}",
                json_string(&m)
            );
            write_response(
                stream,
                500,
                "Internal Server Error",
                "application/json",
                body.as_bytes(),
                &trace_header,
            )
        }
        Response::Pong => write_response(stream, 200, "OK", "text/plain", b"pong\n", &trace_header),
    };
}

/// `/debug/traces`: list retained traces, or resolve one id to its
/// full span tree.
fn serve_traces(stream: &mut TcpStream, query: &str) {
    let wanted = query
        .split('&')
        .filter_map(|p| p.split_once('='))
        .find(|(k, _)| *k == "id")
        .map(|(_, v)| percent_decode(v));
    match wanted {
        Some(hex) => {
            let Some(found) = vist_obs::traceid::parse(&hex).and_then(vist_obs::tracez::get) else {
                let _ = write_response(
                    stream,
                    404,
                    "Not Found",
                    "application/json",
                    b"{\"error\":\"no such trace (malformed id, never sampled, or aged out)\"}",
                    &[],
                );
                return;
            };
            let body = format!(
                "{{\"trace_id\":\"{}\",\"label\":{},\"total_nanos\":{},\"root\":{}}}",
                vist_obs::traceid::format(found.trace_id),
                json_string(&found.label),
                found.total_nanos,
                found.root.to_json()
            );
            let _ = write_response(stream, 200, "OK", "application/json", body.as_bytes(), &[]);
        }
        None => {
            let summarize = |traces: &[vist_obs::RetainedTrace]| {
                let mut out = String::from("[");
                for (i, t) in traces.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = std::fmt::Write::write_fmt(
                        &mut out,
                        format_args!(
                            "{{\"trace_id\":\"{}\",\"label\":{},\"total_nanos\":{}}}",
                            vist_obs::traceid::format(t.trace_id),
                            json_string(&t.label),
                            t.total_nanos
                        ),
                    );
                }
                out.push(']');
                out
            };
            let body = format!(
                "{{\"recent\":{},\"slowest\":{}}}",
                summarize(&vist_obs::tracez::recent()),
                summarize(&vist_obs::tracez::slowest())
            );
            let _ = write_response(stream, 200, "OK", "application/json", body.as_bytes(), &[]);
        }
    }
}

enum HeadError {
    TooLarge,
    Io,
}

/// Read up to the blank line ending the request head, capped at
/// [`MAX_HEAD_BYTES`]. The request body (none of our routes take one)
/// is left unread — we answer and close.
fn read_head(stream: &mut TcpStream) -> Result<String, HeadError> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err(HeadError::Io),
            Ok(_) => {
                buf.push(byte[0]);
                if buf.len() > MAX_HEAD_BYTES {
                    return Err(HeadError::TooLarge);
                }
                if buf.ends_with(b"\r\n\r\n") || buf.ends_with(b"\n\n") {
                    return String::from_utf8(buf).map_err(|_| HeadError::Io);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(HeadError::Io),
        }
    }
}

fn parse_request_line(head: &str) -> Option<(String, String)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    Some((method, target))
}

/// `%XX` and `+` decoding, tolerant of malformed escapes (kept as-is).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Minimal JSON string literal (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_response(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("%2Fbook%2Fauthor"), "/book/author");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode(""), "");
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn request_line_parsing() {
        let (m, t) = parse_request_line("GET /query?q=%2Fa HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(m, "GET");
        assert_eq!(t, "/query?q=%2Fa");
        assert!(parse_request_line("garbage").is_none());
    }
}
