//! `vist bench-serve`: a closed-loop load generator for the serve
//! front-end, reporting exact client-side latency percentiles and the
//! server's shed behaviour under deliberate overload.
//!
//! Four phases, each a fleet of closed-loop clients over the binary
//! protocol:
//!
//! 1. **warmup** — discarded.
//! 2. **baseline** — one client: the uncontended latency floor.
//! 3. **loaded** — `clients` clients: capacity-level contention.
//! 4. **burst** — `burst_clients` clients (sized ≥ 4× the server's
//!    slot count by the caller): overload, where the admission gate
//!    must shed rather than queue unboundedly.
//!
//! Percentiles (p50/p95/p99/p999) are exact — computed with the shared
//! nearest-rank rule ([`vist_obs::percentile`]) over the sorted vector
//! of every successful request's wall-clock latency, not from
//! log-bucketed histograms — because the acceptance bar (`loaded p99 ≤
//! 2× baseline p99`) is too tight for bucket resolution.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use vist_obs::percentile::nearest_rank as quantile;

use crate::proto::{roundtrip, ProtoError, Request, Response};

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Server address, e.g. `127.0.0.1:4170`.
    pub addr: String,
    /// Query expression every client sends.
    pub expr: String,
    /// Per-request client deadline (0 = server cap).
    pub deadline_ms: u32,
    /// Clients in the loaded phase.
    pub clients: usize,
    /// Clients in the burst phase; size ≥ 4× server capacity.
    pub burst_clients: usize,
    /// Per-phase duration.
    pub duration: Duration,
    /// Warmup duration (discarded).
    pub warmup: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            addr: "127.0.0.1:4170".to_string(),
            expr: "/doc".to_string(),
            deadline_ms: 0,
            clients: 4,
            burst_clients: 32,
            duration: Duration::from_secs(3),
            warmup: Duration::from_millis(500),
        }
    }
}

impl BenchConfig {
    /// Shrink durations for CI smoke runs.
    pub fn smoke(mut self) -> Self {
        self.duration = Duration::from_millis(700);
        self.warmup = Duration::from_millis(150);
        self
    }
}

/// Per-phase terminal-state tallies plus exact latency percentiles
/// over successful requests.
#[derive(Debug, Clone, Default)]
pub struct PhaseReport {
    pub name: String,
    pub clients: usize,
    pub duration_ms: u64,
    pub requests: u64,
    pub ok: u64,
    pub shed: u64,
    pub deadline_expired: u64,
    pub draining: u64,
    pub bad_request: u64,
    pub errors: u64,
    pub transport_errors: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
    pub throughput_rps: f64,
}

impl PhaseReport {
    /// Shed responses as a fraction of all requests.
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.shed as f64 / self.requests as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"clients\":{},\"duration_ms\":{},\"requests\":{},\"ok\":{},\
             \"shed\":{},\"deadline_expired\":{},\"draining\":{},\"bad_request\":{},\
             \"errors\":{},\"transport_errors\":{},\"shed_rate\":{:.4},\"p50_ns\":{},\
             \"p95_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{},\"throughput_rps\":{:.1}}}",
            self.name,
            self.clients,
            self.duration_ms,
            self.requests,
            self.ok,
            self.shed,
            self.deadline_expired,
            self.draining,
            self.bad_request,
            self.errors,
            self.transport_errors,
            self.shed_rate(),
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.p999_ns,
            self.max_ns,
            self.throughput_rps,
        )
    }
}

/// Full bench output.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub baseline: PhaseReport,
    pub loaded: PhaseReport,
    pub burst: PhaseReport,
    /// `loaded.p99 / baseline.p99` — the acceptance bar is ≤ 2.0.
    pub p99_ratio_loaded_vs_baseline: f64,
}

impl BenchReport {
    /// Serialize as the `BENCH_serve.json` artifact.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"serve\",\n  \"baseline\": {},\n  \"loaded\": {},\n  \
             \"burst\": {},\n  \"p99_ratio_loaded_vs_baseline\": {:.3}\n}}\n",
            self.baseline.to_json(),
            self.loaded.to_json(),
            self.burst.to_json(),
            self.p99_ratio_loaded_vs_baseline,
        )
    }
}

#[derive(Default)]
struct ClientTally {
    latencies_ns: Vec<u64>,
    requests: u64,
    ok: u64,
    shed: u64,
    deadline_expired: u64,
    draining: u64,
    bad_request: u64,
    errors: u64,
    transport_errors: u64,
}

/// One closed-loop client: send, await, repeat until `until`.
/// Reconnects on transport errors; honors shed retry hints briefly so
/// the burst phase keeps offering load without busy-spinning.
fn client_loop(addr: &str, expr: &str, deadline_ms: u32, until: Instant) -> ClientTally {
    let mut tally = ClientTally::default();
    let req = Request::Query {
        trace_id: 0,
        deadline_ms,
        verify: false,
        no_plan: false,
        limit: 0,
        expr: expr.to_string(),
    };
    let mut conn: Option<TcpStream> = None;
    while Instant::now() < until {
        let stream = match conn.as_mut() {
            Some(s) => s,
            None => match TcpStream::connect(addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
                    conn.insert(s)
                }
                Err(_) => {
                    tally.transport_errors += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            },
        };
        let start = Instant::now();
        match roundtrip(stream, &req) {
            Ok(resp) => {
                tally.requests += 1;
                match resp {
                    Response::Ok(_) => {
                        tally.ok += 1;
                        tally
                            .latencies_ns
                            .push(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    }
                    Response::Overloaded { retry_after_ms } => {
                        tally.shed += 1;
                        // Back off a bounded sliver of the hint: enough
                        // to avoid a pure spin, short enough to keep
                        // overload pressure ≥ 4× capacity.
                        let nap = Duration::from_millis(u64::from(retry_after_ms).min(20) / 4);
                        std::thread::sleep(nap);
                    }
                    Response::DeadlineExceeded => tally.deadline_expired += 1,
                    Response::Draining => {
                        tally.draining += 1;
                        break;
                    }
                    Response::BadRequest(_) => tally.bad_request += 1,
                    Response::Error(_) => tally.errors += 1,
                    Response::Pong => {}
                }
            }
            Err(ProtoError::Io(_)) | Err(ProtoError::Truncated) => {
                tally.transport_errors += 1;
                conn = None;
            }
            Err(_) => {
                tally.transport_errors += 1;
                conn = None;
            }
        }
    }
    tally
}

fn run_phase(
    name: &str,
    addr: &str,
    expr: &str,
    deadline_ms: u32,
    clients: usize,
    duration: Duration,
) -> PhaseReport {
    let until = Instant::now() + duration;
    let handles: Vec<_> = (0..clients.max(1))
        .map(|_| {
            let addr = addr.to_string();
            let expr = expr.to_string();
            std::thread::spawn(move || client_loop(&addr, &expr, deadline_ms, until))
        })
        .collect();
    let mut merged = ClientTally::default();
    for h in handles {
        if let Ok(t) = h.join() {
            merged.latencies_ns.extend(t.latencies_ns);
            merged.requests += t.requests;
            merged.ok += t.ok;
            merged.shed += t.shed;
            merged.deadline_expired += t.deadline_expired;
            merged.draining += t.draining;
            merged.bad_request += t.bad_request;
            merged.errors += t.errors;
            merged.transport_errors += t.transport_errors;
        }
    }
    merged.latencies_ns.sort_unstable();
    let lat = &merged.latencies_ns;
    PhaseReport {
        name: name.to_string(),
        clients: clients.max(1),
        duration_ms: duration.as_millis() as u64,
        requests: merged.requests,
        ok: merged.ok,
        shed: merged.shed,
        deadline_expired: merged.deadline_expired,
        draining: merged.draining,
        bad_request: merged.bad_request,
        errors: merged.errors,
        transport_errors: merged.transport_errors,
        p50_ns: quantile(lat, 0.50),
        p95_ns: quantile(lat, 0.95),
        p99_ns: quantile(lat, 0.99),
        p999_ns: quantile(lat, 0.999),
        max_ns: lat.last().copied().unwrap_or(0),
        throughput_rps: merged.requests as f64 / duration.as_secs_f64().max(1e-9),
    }
}

/// Run all phases against a live server.
pub fn run(cfg: &BenchConfig) -> BenchReport {
    // Warmup: discard.
    let _ = run_phase(
        "warmup",
        &cfg.addr,
        &cfg.expr,
        cfg.deadline_ms,
        1,
        cfg.warmup,
    );
    let baseline = run_phase(
        "baseline",
        &cfg.addr,
        &cfg.expr,
        cfg.deadline_ms,
        1,
        cfg.duration,
    );
    let loaded = run_phase(
        "loaded",
        &cfg.addr,
        &cfg.expr,
        cfg.deadline_ms,
        cfg.clients,
        cfg.duration,
    );
    let burst = run_phase(
        "burst",
        &cfg.addr,
        &cfg.expr,
        cfg.deadline_ms,
        cfg.burst_clients,
        cfg.duration,
    );
    let ratio = if baseline.p99_ns == 0 {
        0.0
    } else {
        loaded.p99_ns as f64 / baseline.p99_ns as f64
    };
    BenchReport {
        baseline,
        loaded,
        burst,
        p99_ratio_loaded_vs_baseline: ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&v, 0.50), 50);
        assert_eq!(quantile(&v, 0.99), 99);
        assert_eq!(quantile(&v, 0.999), 100);
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.999), 7);
    }

    #[test]
    fn report_json_is_wellformed_enough() {
        let p = PhaseReport {
            name: "baseline".into(),
            clients: 1,
            requests: 10,
            ok: 9,
            shed: 1,
            ..PhaseReport::default()
        };
        let r = BenchReport {
            baseline: p.clone(),
            loaded: p.clone(),
            burst: p,
            p99_ratio_loaded_vs_baseline: 1.25,
        };
        let j = r.to_json();
        assert!(j.contains("\"bench\": \"serve\""));
        assert!(j.contains("\"shed_rate\":0.1000"));
        assert!(j.contains("\"p99_ratio_loaded_vs_baseline\": 1.250"));
        assert_eq!(j.matches("\"name\"").count(), 3);
    }
}
