//! Admission control: a bounded queue in front of a fixed pool of
//! query slots, with load-shedding and drain coordination.
//!
//! The server runs one OS thread per connection, but queries do not get
//! to run just because a connection exists: each query must first take
//! one of `max_inflight` *slots*. When every slot is busy the query
//! waits in a bounded queue (`queue_depth` waiters); when the queue is
//! full too, the query is shed immediately with a retry-after hint
//! derived from observed service time. This turns overload into fast,
//! structured `OVERLOADED` responses instead of unbounded queueing.
//!
//! Drain: [`Gate::begin_drain`] flips the gate into draining mode —
//! every queued waiter and every later arrival is refused with
//! [`Admission::Draining`] — and [`Gate::await_idle`] blocks until the
//! in-flight count reaches zero (or a drain deadline passes). Because
//! each admitted query carries an effective deadline capped at
//! `max_deadline`, choosing a drain deadline ≥ the cap guarantees the
//! drain terminates.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Outcome of [`Gate::admit`].
#[derive(Debug, PartialEq, Eq)]
pub enum Admission {
    /// A slot was granted; run the query, then call [`Gate::release`].
    Admitted {
        /// How long the query sat in the admission queue.
        queued: Duration,
    },
    /// Queue full — shed. Retry after the hinted duration.
    Shed {
        /// Client-facing backoff hint.
        retry_after: Duration,
    },
    /// Server is draining; no new work is admitted.
    Draining,
}

#[derive(Debug)]
struct State {
    inflight: usize,
    waiters: usize,
    draining: bool,
    /// EWMA of service nanos, updated on release; seeds retry-after.
    ewma_service_nanos: u64,
}

/// The admission gate. Cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct Gate {
    state: Mutex<State>,
    slot_freed: Condvar,
    idle: Condvar,
    max_inflight: usize,
    queue_depth: usize,
}

impl Gate {
    /// A gate with `max_inflight` concurrent query slots and a waiting
    /// queue of at most `queue_depth`. Both are clamped to ≥ 1 slot /
    /// ≥ 0 waiters.
    pub fn new(max_inflight: usize, queue_depth: usize) -> Gate {
        Gate {
            state: Mutex::new(State {
                inflight: 0,
                waiters: 0,
                draining: false,
                ewma_service_nanos: 2_000_000, // 2 ms prior
            }),
            slot_freed: Condvar::new(),
            idle: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue_depth,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to take a query slot, waiting in the bounded queue if all
    /// slots are busy. `wait_cap` bounds the queue wait (normally the
    /// query's own deadline budget): when it elapses the query is shed
    /// rather than admitted too late to succeed.
    pub fn admit(&self, wait_cap: Duration) -> Admission {
        let start = Instant::now();
        let mut st = self.lock();
        if st.draining {
            return Admission::Draining;
        }
        if st.inflight < self.max_inflight {
            st.inflight += 1;
            return Admission::Admitted {
                queued: Duration::ZERO,
            };
        }
        if st.waiters >= self.queue_depth {
            let retry_after = self.retry_hint(&st);
            return Admission::Shed { retry_after };
        }
        st.waiters += 1;
        loop {
            let elapsed = start.elapsed();
            if st.draining {
                st.waiters -= 1;
                return Admission::Draining;
            }
            if st.inflight < self.max_inflight {
                st.waiters -= 1;
                st.inflight += 1;
                return Admission::Admitted { queued: elapsed };
            }
            if elapsed >= wait_cap {
                st.waiters -= 1;
                let retry_after = self.retry_hint(&st);
                return Admission::Shed { retry_after };
            }
            let (g, _timeout) = self
                .slot_freed
                .wait_timeout(st, wait_cap - elapsed)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
        }
    }

    /// Return a slot taken by [`Gate::admit`], recording the query's
    /// service time for future retry-after hints.
    pub fn release(&self, service: Duration) {
        let mut st = self.lock();
        debug_assert!(st.inflight > 0);
        st.inflight = st.inflight.saturating_sub(1);
        let nanos = (service.as_nanos() as u64).max(1);
        // EWMA with alpha = 1/8: new = old + (sample - old)/8.
        let old = st.ewma_service_nanos;
        st.ewma_service_nanos = old + (nanos / 8).saturating_sub(old / 8);
        if st.inflight == 0 {
            self.idle.notify_all();
        }
        drop(st);
        self.slot_freed.notify_one();
    }

    /// Retry hint: the time for the backlog ahead of a new arrival to
    /// clear through the pool, clamped to [10 ms, 5 s].
    fn retry_hint(&self, st: &State) -> Duration {
        let backlog = (st.waiters as u64 + 1).div_ceil(self.max_inflight as u64);
        let nanos = st.ewma_service_nanos.saturating_mul(backlog.max(1));
        Duration::from_nanos(nanos.clamp(10_000_000, 5_000_000_000))
    }

    /// Flip into draining mode: queued waiters are refused, future
    /// arrivals get [`Admission::Draining`]. Idempotent.
    pub fn begin_drain(&self) {
        let mut st = self.lock();
        st.draining = true;
        drop(st);
        self.slot_freed.notify_all();
    }

    /// True once [`Gate::begin_drain`] has run.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Block until no query is in flight, or `deadline` passes.
    /// Returns `true` when fully idle.
    pub fn await_idle(&self, deadline: Instant) -> bool {
        let mut st = self.lock();
        while st.inflight > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _t) = self
                .idle
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
        }
        true
    }

    /// Current in-flight count (for metrics/tests).
    pub fn inflight(&self) -> usize {
        self.lock().inflight
    }

    /// Current queue depth (for metrics/tests).
    pub fn queued(&self) -> usize {
        self.lock().waiters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_capacity_then_sheds() {
        let g = Gate::new(2, 0);
        assert!(matches!(
            g.admit(Duration::ZERO),
            Admission::Admitted { .. }
        ));
        assert!(matches!(
            g.admit(Duration::ZERO),
            Admission::Admitted { .. }
        ));
        // Pool full, queue depth 0 → immediate shed with a hint.
        match g.admit(Duration::from_secs(1)) {
            Admission::Shed { retry_after } => {
                assert!(retry_after >= Duration::from_millis(10));
                assert!(retry_after <= Duration::from_secs(5));
            }
            other => panic!("expected shed, got {other:?}"),
        }
        g.release(Duration::from_millis(1));
        assert!(matches!(
            g.admit(Duration::ZERO),
            Admission::Admitted { .. }
        ));
    }

    #[test]
    fn queued_waiter_gets_freed_slot() {
        let g = Arc::new(Gate::new(1, 4));
        assert!(matches!(
            g.admit(Duration::ZERO),
            Admission::Admitted { .. }
        ));
        let g2 = Arc::clone(&g);
        let waiter = std::thread::spawn(move || g2.admit(Duration::from_secs(10)));
        // Let the waiter park, then free the slot.
        while g.queued() == 0 {
            std::thread::yield_now();
        }
        g.release(Duration::from_micros(500));
        match waiter.join().unwrap() {
            Admission::Admitted { queued } => assert!(queued > Duration::ZERO),
            other => panic!("expected admit, got {other:?}"),
        }
        assert_eq!(g.inflight(), 1);
    }

    #[test]
    fn wait_cap_expiry_sheds() {
        let g = Gate::new(1, 4);
        assert!(matches!(
            g.admit(Duration::ZERO),
            Admission::Admitted { .. }
        ));
        let start = Instant::now();
        match g.admit(Duration::from_millis(30)) {
            Admission::Shed { .. } => {}
            other => panic!("expected shed, got {other:?}"),
        }
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn drain_refuses_new_and_wakes_queued() {
        let g = Arc::new(Gate::new(1, 4));
        assert!(matches!(
            g.admit(Duration::ZERO),
            Admission::Admitted { .. }
        ));
        let g2 = Arc::clone(&g);
        let waiter = std::thread::spawn(move || g2.admit(Duration::from_secs(10)));
        while g.queued() == 0 {
            std::thread::yield_now();
        }
        g.begin_drain();
        assert_eq!(waiter.join().unwrap(), Admission::Draining);
        assert_eq!(g.admit(Duration::from_secs(1)), Admission::Draining);
        // Drain completes once the in-flight query releases.
        let g3 = Arc::clone(&g);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            g3.release(Duration::from_millis(5));
        });
        assert!(g.await_idle(Instant::now() + Duration::from_secs(5)));
        t.join().unwrap();
    }

    #[test]
    fn await_idle_times_out_while_busy() {
        let g = Gate::new(1, 0);
        assert!(matches!(
            g.admit(Duration::ZERO),
            Admission::Admitted { .. }
        ));
        assert!(!g.await_idle(Instant::now() + Duration::from_millis(20)));
    }
}
