//! End-to-end tests: a real server on a loopback socket, exercised
//! over both transports, through overload, deadlines, and drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vist_core::{IndexOptions, VistIndex};
use vist_serve::proto::{roundtrip, write_frame, Request, Response};
use vist_serve::{ServeConfig, Server, ServerHandle};

/// A small index: `n` two-author books plus one decoy per book.
fn index(n: usize) -> Arc<VistIndex> {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    for i in 0..n {
        idx.insert_xml(&format!(
            "<book><title>t{i}</title><author>a{i}</author><author>shared</author></book>"
        ))
        .unwrap();
        idx.insert_xml(&format!("<journal><editor>e{i}</editor></journal>"))
            .unwrap();
    }
    Arc::new(idx)
}

fn start(idx: Arc<VistIndex>, tweak: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    tweak(&mut cfg);
    Server::start(idx, cfg).unwrap()
}

fn connect(h: &ServerHandle) -> TcpStream {
    let s = TcpStream::connect(h.local_addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

fn query(expr: &str) -> Request {
    Request::Query {
        deadline_ms: 0,
        verify: false,
        no_plan: false,
        limit: 0,
        expr: expr.to_string(),
    }
}

#[test]
fn binary_protocol_end_to_end() {
    let h = start(index(8), |_| {});
    let mut s = connect(&h);

    assert_eq!(roundtrip(&mut s, &Request::Ping).unwrap(), Response::Pong);

    match roundtrip(&mut s, &query("/book/author")).unwrap() {
        Response::Ok(ids) => assert_eq!(ids.len(), 8, "one per book"),
        other => panic!("expected Ok, got {other:?}"),
    }

    // Several requests over one connection.
    match roundtrip(&mut s, &query("/journal/editor")).unwrap() {
        Response::Ok(ids) => assert_eq!(ids.len(), 8),
        other => panic!("expected Ok, got {other:?}"),
    }

    // An unparsable expression is the client's fault, not a 500.
    match roundtrip(&mut s, &query("((((")).unwrap() {
        Response::BadRequest(_) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }

    let stats = h.stats();
    assert!(stats.ok >= 2);
    assert!(stats.bad_requests >= 1);
    drop(s);
    h.request_shutdown();
    let report = h.join();
    assert!(report.drained_clean);
    assert!(report.flush_ok);
}

#[test]
fn malformed_frames_get_structured_answers_then_close() {
    let h = start(index(2), |_| {});

    // Garbage payload inside a well-formed frame: a structured
    // BadRequest, and the connection stays usable (framing is intact).
    let mut s = connect(&h);
    write_frame(&mut s, &[0xAB, 0xCD, 0xEF]).unwrap();
    let payload = vist_serve::proto::read_frame(&mut s).unwrap().unwrap();
    match Response::decode(&payload).unwrap() {
        Response::BadRequest(m) => assert!(m.contains("version"), "{m}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    assert_eq!(roundtrip(&mut s, &Request::Ping).unwrap(), Response::Pong);

    // Oversized length prefix (2 MiB > cap, leading byte still 0x00 so
    // it routes to the binary path): rejected before allocation, and
    // the connection is closed — the stream position is untrustworthy.
    let mut s = connect(&h);
    s.write_all(&(2u32 << 20).to_be_bytes()).unwrap();
    s.flush().unwrap();
    let payload = vist_serve::proto::read_frame(&mut s).unwrap().unwrap();
    match Response::decode(&payload).unwrap() {
        Response::BadRequest(m) => assert!(m.contains("exceeds cap"), "{m}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(s.read_to_end(&mut rest).unwrap(), 0);

    h.request_shutdown();
    assert!(h.join().drained_clean);
}

fn http_get(h: &ServerHandle, target: &str) -> String {
    let mut s = connect(h);
    s.write_all(format!("GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn http_shim_routes() {
    let h = start(index(4), |_| {});

    let r = http_get(&h, "/query?q=%2Fbook%2Fauthor&limit=2");
    assert!(r.starts_with("HTTP/1.1 200"), "{r}");
    assert!(r.contains("\"count\":2"), "{r}");
    assert!(r.contains("\"doc_ids\":["), "{r}");

    let r = http_get(&h, "/healthz");
    assert!(r.starts_with("HTTP/1.1 200"), "{r}");
    assert!(r.contains("ok"), "{r}");

    let r = http_get(&h, "/metrics");
    assert!(r.starts_with("HTTP/1.1 200"), "{r}");
    assert!(r.contains("vist_serve_requests_total"), "{r}");

    let r = http_get(&h, "/query?deadline_ms=5");
    assert!(r.starts_with("HTTP/1.1 400"), "{r}");
    assert!(r.contains("missing q"), "{r}");

    let r = http_get(&h, "/query?q=%28%28");
    assert!(r.starts_with("HTTP/1.1 400"), "{r}");

    let r = http_get(&h, "/nope");
    assert!(r.starts_with("HTTP/1.1 404"), "{r}");

    let mut s = connect(&h);
    s.write_all(b"POST /query HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 405"), "{out}");

    h.request_shutdown();
    assert!(h.join().drained_clean);
}

#[test]
fn zero_deadline_cap_expires_queries_cooperatively() {
    // max_deadline_ms = 0 makes every query's effective deadline
    // "already passed": the engine must cancel at its first check and
    // the index must stay fully usable afterwards.
    let h = start(index(8), |cfg| cfg.max_deadline_ms = 0);
    let mut s = connect(&h);
    for _ in 0..3 {
        assert_eq!(
            roundtrip(&mut s, &query("/book/author")).unwrap(),
            Response::DeadlineExceeded
        );
    }
    assert_eq!(h.stats().deadline_expired, 3);
    drop(s);
    h.request_shutdown();
    let report = h.join();
    assert!(report.drained_clean);
    assert!(report.flush_ok, "index flushes after expired queries");
}

#[test]
fn overload_sheds_with_structured_responses() {
    // One slot, no queue: any collision is shed immediately with a
    // retry hint. Hammer it from 8 closed-loop clients.
    let h = start(index(64), |cfg| {
        cfg.max_inflight = 1;
        cfg.queue_depth = 0;
    });
    let addr = h.local_addr();
    let until = Instant::now() + Duration::from_millis(300);
    let clients: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_nodelay(true).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let mut hints = Vec::new();
                while Instant::now() < until {
                    match roundtrip(&mut s, &query("/book/author")).unwrap() {
                        Response::Ok(_) => {}
                        Response::Overloaded { retry_after_ms } => hints.push(retry_after_ms),
                        other => panic!("unexpected response under load: {other:?}"),
                    }
                }
                hints
            })
        })
        .collect();
    let hints: Vec<u32> = clients
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    let stats = h.stats();
    assert!(stats.ok > 0, "some queries are admitted: {stats:?}");
    assert!(stats.shed > 0, "collisions are shed: {stats:?}");
    assert_eq!(stats.shed, hints.len() as u64);
    // Retry hints are present and bounded.
    assert!(hints.iter().all(|&ms| (10..=5_000).contains(&ms)));
    h.request_shutdown();
    let report = h.join();
    assert!(report.drained_clean);
    assert_eq!(report.stats.shed, stats.shed);
}

#[test]
fn drain_refuses_new_work_and_flushes() {
    let h = start(index(4), |_| {});
    let mut s = connect(&h);
    assert!(matches!(
        roundtrip(&mut s, &query("/book/author")).unwrap(),
        Response::Ok(_)
    ));
    h.request_shutdown();
    // A request racing the drain gets a structured Draining response
    // or a clean close — never a hang or a protocol violation.
    match roundtrip(&mut s, &query("/book/author")) {
        Ok(Response::Draining) | Ok(Response::Ok(_)) | Err(_) => {}
        Ok(other) => panic!("unexpected response during drain: {other:?}"),
    }
    let report = h.join();
    assert!(report.drained_clean, "no in-flight work at deadline");
    assert_eq!(report.inflight_at_deadline, 0);
    assert!(report.flush_ok);
}
