//! End-to-end tests: a real server on a loopback socket, exercised
//! over both transports, through overload, deadlines, and drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vist_core::{IndexOptions, VistIndex};
use vist_serve::proto::{roundtrip, roundtrip_traced, write_frame, Request, Response};
use vist_serve::{ServeConfig, Server, ServerHandle};

/// A small index: `n` two-author books plus one decoy per book.
fn index(n: usize) -> Arc<VistIndex> {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    for i in 0..n {
        idx.insert_xml(&format!(
            "<book><title>t{i}</title><author>a{i}</author><author>shared</author></book>"
        ))
        .unwrap();
        idx.insert_xml(&format!("<journal><editor>e{i}</editor></journal>"))
            .unwrap();
    }
    Arc::new(idx)
}

fn start(idx: Arc<VistIndex>, tweak: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    };
    tweak(&mut cfg);
    Server::start(idx, cfg).unwrap()
}

fn connect(h: &ServerHandle) -> TcpStream {
    let s = TcpStream::connect(h.local_addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

fn query(expr: &str) -> Request {
    Request::Query {
        trace_id: 0,
        deadline_ms: 0,
        verify: false,
        no_plan: false,
        limit: 0,
        expr: expr.to_string(),
    }
}

#[test]
fn binary_protocol_end_to_end() {
    let h = start(index(8), |_| {});
    let mut s = connect(&h);

    assert_eq!(roundtrip(&mut s, &Request::Ping).unwrap(), Response::Pong);

    match roundtrip(&mut s, &query("/book/author")).unwrap() {
        Response::Ok(ids) => assert_eq!(ids.len(), 8, "one per book"),
        other => panic!("expected Ok, got {other:?}"),
    }

    // Several requests over one connection.
    match roundtrip(&mut s, &query("/journal/editor")).unwrap() {
        Response::Ok(ids) => assert_eq!(ids.len(), 8),
        other => panic!("expected Ok, got {other:?}"),
    }

    // An unparsable expression is the client's fault, not a 500.
    match roundtrip(&mut s, &query("((((")).unwrap() {
        Response::BadRequest(_) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }

    let stats = h.stats();
    assert!(stats.ok >= 2);
    assert!(stats.bad_requests >= 1);
    drop(s);
    h.request_shutdown();
    let report = h.join();
    assert!(report.drained_clean);
    assert!(report.flush_ok);
}

#[test]
fn malformed_frames_get_structured_answers_then_close() {
    let h = start(index(2), |_| {});

    // Garbage payload inside a well-formed frame: a structured
    // BadRequest, and the connection stays usable (framing is intact).
    let mut s = connect(&h);
    write_frame(&mut s, &[0xAB, 0xCD, 0xEF]).unwrap();
    let payload = vist_serve::proto::read_frame(&mut s).unwrap().unwrap();
    match Response::decode(&payload).unwrap() {
        Response::BadRequest(m) => assert!(m.contains("version"), "{m}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    assert_eq!(roundtrip(&mut s, &Request::Ping).unwrap(), Response::Pong);

    // Oversized length prefix (2 MiB > cap, leading byte still 0x00 so
    // it routes to the binary path): rejected before allocation, and
    // the connection is closed — the stream position is untrustworthy.
    let mut s = connect(&h);
    s.write_all(&(2u32 << 20).to_be_bytes()).unwrap();
    s.flush().unwrap();
    let payload = vist_serve::proto::read_frame(&mut s).unwrap().unwrap();
    match Response::decode(&payload).unwrap() {
        Response::BadRequest(m) => assert!(m.contains("exceeds cap"), "{m}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(s.read_to_end(&mut rest).unwrap(), 0);

    h.request_shutdown();
    assert!(h.join().drained_clean);
}

fn http_get(h: &ServerHandle, target: &str) -> String {
    let mut s = connect(h);
    s.write_all(format!("GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn http_shim_routes() {
    let h = start(index(4), |_| {});

    let r = http_get(&h, "/query?q=%2Fbook%2Fauthor&limit=2");
    assert!(r.starts_with("HTTP/1.1 200"), "{r}");
    assert!(r.contains("\"count\":2"), "{r}");
    assert!(r.contains("\"doc_ids\":["), "{r}");

    let r = http_get(&h, "/healthz");
    assert!(r.starts_with("HTTP/1.1 200"), "{r}");
    assert!(r.contains("ok"), "{r}");

    let r = http_get(&h, "/metrics");
    assert!(r.starts_with("HTTP/1.1 200"), "{r}");
    assert!(r.contains("vist_serve_requests_total"), "{r}");

    let r = http_get(&h, "/query?deadline_ms=5");
    assert!(r.starts_with("HTTP/1.1 400"), "{r}");
    assert!(r.contains("missing q"), "{r}");

    let r = http_get(&h, "/query?q=%28%28");
    assert!(r.starts_with("HTTP/1.1 400"), "{r}");

    let r = http_get(&h, "/nope");
    assert!(r.starts_with("HTTP/1.1 404"), "{r}");

    let mut s = connect(&h);
    s.write_all(b"POST /query HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 405"), "{out}");

    h.request_shutdown();
    assert!(h.join().drained_clean);
}

#[test]
fn zero_deadline_cap_expires_queries_cooperatively() {
    // max_deadline_ms = 0 makes every query's effective deadline
    // "already passed": the engine must cancel at its first check and
    // the index must stay fully usable afterwards.
    let h = start(index(8), |cfg| cfg.max_deadline_ms = 0);
    let mut s = connect(&h);
    for _ in 0..3 {
        assert_eq!(
            roundtrip(&mut s, &query("/book/author")).unwrap(),
            Response::DeadlineExceeded
        );
    }
    assert_eq!(h.stats().deadline_expired, 3);
    drop(s);
    h.request_shutdown();
    let report = h.join();
    assert!(report.drained_clean);
    assert!(report.flush_ok, "index flushes after expired queries");
}

#[test]
fn overload_sheds_with_structured_responses() {
    // One slot, no queue: any collision is shed immediately with a
    // retry hint. Hammer it from 8 closed-loop clients.
    let h = start(index(64), |cfg| {
        cfg.max_inflight = 1;
        cfg.queue_depth = 0;
    });
    let addr = h.local_addr();
    let until = Instant::now() + Duration::from_millis(300);
    let clients: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_nodelay(true).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let mut hints = Vec::new();
                while Instant::now() < until {
                    match roundtrip(&mut s, &query("/book/author")).unwrap() {
                        Response::Ok(_) => {}
                        Response::Overloaded { retry_after_ms } => hints.push(retry_after_ms),
                        other => panic!("unexpected response under load: {other:?}"),
                    }
                }
                hints
            })
        })
        .collect();
    let hints: Vec<u32> = clients
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    let stats = h.stats();
    assert!(stats.ok > 0, "some queries are admitted: {stats:?}");
    assert!(stats.shed > 0, "collisions are shed: {stats:?}");
    assert_eq!(stats.shed, hints.len() as u64);
    // Retry hints are present and bounded.
    assert!(hints.iter().all(|&ms| (10..=5_000).contains(&ms)));
    h.request_shutdown();
    let report = h.join();
    assert!(report.drained_clean);
    assert_eq!(report.stats.shed, stats.shed);
}

#[test]
fn binary_responses_carry_trace_ids() {
    let h = start(index(2), |_| {});
    let mut s = connect(&h);

    // Server-minted: non-zero, unique per request.
    let (id1, resp) = roundtrip_traced(&mut s, &query("/book/author")).unwrap();
    assert!(matches!(resp, Response::Ok(_)));
    assert_ne!(id1, 0, "response carries no trace id");
    let (id2, _) = roundtrip_traced(&mut s, &query("/book/author")).unwrap();
    assert_ne!(id1, id2, "distinct requests share a trace id");

    // Client-supplied: echoed verbatim.
    let supplied = 0x00C0_FFEE_u128;
    let req = Request::Query {
        trace_id: supplied,
        deadline_ms: 0,
        verify: false,
        no_plan: false,
        limit: 0,
        expr: "/book/author".to_string(),
    };
    let (id, resp) = roundtrip_traced(&mut s, &req).unwrap();
    assert!(matches!(resp, Response::Ok(_)));
    assert_eq!(id, supplied);

    // Even a ping reply carries a (minted) id.
    let (id, resp) = roundtrip_traced(&mut s, &Request::Ping).unwrap();
    assert_eq!(resp, Response::Pong);
    assert_ne!(id, 0);

    drop(s);
    h.request_shutdown();
    assert!(h.join().drained_clean);
}

/// Pull one `Name: value` header out of a raw HTTP response.
fn header_of(resp: &str, name: &str) -> Option<String> {
    resp.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        if k.eq_ignore_ascii_case(name) {
            Some(v.trim().to_string())
        } else {
            None
        }
    })
}

fn http_get_with_header(h: &ServerHandle, target: &str, header: &str) -> String {
    let mut s = connect(h);
    s.write_all(format!("GET {target} HTTP/1.1\r\nHost: test\r\n{header}\r\n\r\n").as_bytes())
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn http_trace_ids_resolve_via_debug_traces() {
    let h = start(index(4), |_| {});

    // Server-minted id: header and JSON body agree, and the id resolves
    // to a retained span tree. Other tests flood tracez concurrently
    // (its recent ring is process-global and bounded), so retry with a
    // fresh query if the trace aged out before we fetched it.
    let mut resolved = None;
    for _ in 0..10 {
        let r = http_get(&h, "/query?q=%2Fbook%2Fauthor");
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        let hex = header_of(&r, "X-Vist-Trace-Id").expect("response lacks X-Vist-Trace-Id");
        assert_eq!(hex.len(), 32, "{hex}");
        assert!(r.contains(&format!("\"trace_id\":\"{hex}\"")), "{r}");
        let t = http_get(&h, &format!("/debug/traces?id={hex}"));
        if t.starts_with("HTTP/1.1 200") {
            resolved = Some((hex, t));
            break;
        }
    }
    let (hex, t) = resolved.expect("no query's trace id resolved via /debug/traces");
    assert!(t.contains(&format!("\"trace_id\":\"{hex}\"")), "{t}");
    assert!(t.contains("\"label\":\"/book/author\""), "{t}");
    assert!(t.contains("\"root\":{"), "{t}");
    assert!(t.contains("\"name\":\"query\""), "{t}");

    // Client-supplied header: echoed verbatim and listed.
    let supplied = "000102030405060708090a0b0c0d0e0f";
    let r = http_get_with_header(
        &h,
        "/query?q=%2Fbook%2Fauthor",
        &format!("x-vist-trace-id: {supplied}"),
    );
    assert!(r.starts_with("HTTP/1.1 200"), "{r}");
    assert_eq!(header_of(&r, "X-Vist-Trace-Id").as_deref(), Some(supplied));

    // Unknown (random) id: structured 404.
    let miss = http_get(&h, "/debug/traces?id=deadbeefdeadbeefdeadbeefdeadbeef");
    assert!(miss.starts_with("HTTP/1.1 404"), "{miss}");

    // The listing is well-formed and has both retention sets.
    let l = http_get(&h, "/debug/traces");
    assert!(l.starts_with("HTTP/1.1 200"), "{l}");
    assert!(l.contains("\"recent\":["), "{l}");
    assert!(l.contains("\"slowest\":["), "{l}");

    h.request_shutdown();
    assert!(h.join().drained_clean);
}

#[test]
fn access_log_and_slow_ms() {
    let dir = std::env::temp_dir().join(format!("vist_serve_log_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("access.log");
    // slow_ms high enough that loopback queries stay under it.
    let h = start(index(4), |cfg| {
        cfg.access_log = Some(log_path.to_str().unwrap().to_string());
        cfg.slow_ms = 600_000;
    });
    assert_eq!(
        vist_obs::slowlog::threshold_nanos(),
        600_000 * 1_000_000,
        "--slow-ms did not reach the slow-query log"
    );

    let supplied = 0x0051_071D_u128;
    let mut s = connect(&h);
    let (id, resp) = roundtrip_traced(
        &mut s,
        &Request::Query {
            trace_id: supplied,
            deadline_ms: 0,
            verify: false,
            no_plan: false,
            limit: 0,
            expr: "/book/author".to_string(),
        },
    )
    .unwrap();
    assert!(matches!(resp, Response::Ok(_)));
    assert_eq!(id, supplied);
    let hex = vist_obs::traceid::format(supplied);

    // Below threshold: the slow-query ring did not record it.
    assert!(
        !vist_obs::slowlog::entries()
            .iter()
            .any(|e| e.trace_id == supplied),
        "fast query landed in the slow log despite a 600s threshold"
    );

    // Above threshold (0 = record everything): the entry appears, keyed
    // by the request's trace id, with attributed I/O counters.
    vist_obs::slowlog::set_threshold_nanos(0);
    let above = 0x0051_072D_u128;
    let (_, resp) = roundtrip_traced(
        &mut s,
        &Request::Query {
            trace_id: above,
            deadline_ms: 0,
            verify: false,
            no_plan: false,
            limit: 0,
            expr: "/book/author".to_string(),
        },
    )
    .unwrap();
    assert!(matches!(resp, Response::Ok(_)));
    let entry = vist_obs::slowlog::entries()
        .into_iter()
        .find(|e| e.trace_id == above)
        .expect("zero threshold records every query");
    assert_eq!(entry.query, "/book/author");
    assert!(entry.counters.iter().any(|(k, _)| *k == "io_pool_hits"));
    vist_obs::slowlog::set_threshold_nanos(vist_obs::slowlog::DEFAULT_THRESHOLD_NANOS);

    // The access log got one parseable wide-event line for the request.
    let mut logged = None;
    for _ in 0..50 {
        let text = std::fs::read_to_string(&log_path).unwrap_or_default();
        if let Some(line) = text.lines().find(|l| l.contains(&hex)) {
            logged = Some(line.to_string());
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let line = logged.expect("request's trace id never appeared in the access log");
    assert!(line.starts_with("{\"event\":\"request\""), "{line}");
    assert!(line.ends_with('}'), "{line}");
    assert!(line.contains("\"transport\":\"binary\""), "{line}");
    assert!(line.contains("\"expr\":\"/book/author\""), "{line}");
    assert!(line.contains("\"outcome\":\"ok\""), "{line}");
    assert!(line.contains("\"io\":{\"pool_hits\":"), "{line}");
    assert!(line.contains("\"stages\":{\"translate\":"), "{line}");

    // The same line is in the in-process ring.
    assert!(
        vist_obs::wide::recent().iter().any(|l| l.contains(&hex)),
        "wide-event ring is missing the request"
    );

    drop(s);
    h.request_shutdown();
    assert!(h.join().drained_clean);
    vist_obs::wide::clear_file_sink();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_refuses_new_work_and_flushes() {
    let h = start(index(4), |_| {});
    let mut s = connect(&h);
    assert!(matches!(
        roundtrip(&mut s, &query("/book/author")).unwrap(),
        Response::Ok(_)
    ));
    h.request_shutdown();
    // A request racing the drain gets a structured Draining response
    // or a clean close — never a hang or a protocol violation.
    match roundtrip(&mut s, &query("/book/author")) {
        Ok(Response::Draining) | Ok(Response::Ok(_)) | Err(_) => {}
        Ok(other) => panic!("unexpected response during drain: {other:?}"),
    }
    let report = h.join();
    assert!(report.drained_clean, "no in-flight work at deadline");
    assert_eq!(report.inflight_at_deadline, 0);
    assert!(report.flush_ok);
}
