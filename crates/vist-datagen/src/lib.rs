//! Dataset generators for the ViST reproduction.
//!
//! The paper evaluates on DBLP (289,627 bibliographic records, depth ≤ 6,
//! average sequence length ≈ 31), on XMARK (one huge record, broken into
//! item / person / open_auction / closed_auction sub-structures), and on a
//! synthetic workload ("a tree of height k where each node has j sub nodes;
//! we generate a subtree of L nodes"). The original datasets and the
//! `xmlgen` binary are not available offline, so this crate generates
//! structurally equivalent substitutes:
//!
//! * [`dblp`] — bibliographic records matching DBLP's element vocabulary,
//!   record shapes, depth, and average sequence length; selective sentinel
//!   values (author `David`, key `books/bc/MaierW88`) are planted so the
//!   paper's Table 3 queries run *verbatim*;
//! * [`xmark`] — the four XMARK sub-structures with the attribute/element
//!   shapes that queries Q6–Q8 touch (`item/@location`, `mail/date`,
//!   `person//city`, `closed_auction` annotations), including the paper's
//!   literal values (`US`, `12/15/1999`, `Pocatello`, `person1`);
//! * [`imdb`] — IMDB-like movie records (the paper's other archetype of a
//!   homogeneous record database);
//! * [`treebank`] — deep recursive parse-tree records (the classic `//`
//!   stress workload, used by the depth ablation);
//! * [`synthetic`] — the §4 generator, verbatim: random connected
//!   L-node subtrees of a conceptual height-k, fanout-j tree, with random
//!   query generation "in the same way".
//!
//! All generators are fully deterministic given a seed.

pub mod dblp;
pub mod imdb;
pub mod rng;
pub mod synthetic;
pub mod treebank;
mod words;
pub mod xmark;
