//! A small deterministic pseudo-random generator.
//!
//! Stand-in for the `rand` crate's `StdRng`, exposing only the surface the
//! generators use: [`StdRng::seed_from_u64`], [`StdRng::random_range`],
//! [`StdRng::random_bool`], and [`StdRng::random`]. The core is
//! xoshiro256++ seeded via splitmix64 — statistically strong enough for
//! generating test datasets, not for cryptography.
//!
//! Determinism matters more than distribution quality here: every dataset
//! in the paper reproduction is identified by its seed, and the same seed
//! must produce the same documents on every platform and in every build.

use std::ops::{Range, RangeInclusive};

/// A seeded xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Deterministically seed the generator.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly random value of `T` (see [`Random`] for the supported
    /// types; `f64` is uniform in `[0, 1)`).
    pub fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// A uniformly random value in `range`. Panics on an empty range,
    /// matching the `rand` crate's behavior.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Types [`StdRng::random`] can produce.
pub trait Random {
    fn random(rng: &mut StdRng) -> Self;
}

impl Random for u64 {
    fn random(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Random for f64 {
    fn random(rng: &mut StdRng) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types [`StdRng::random_range`] can sample uniformly.
pub trait UniformInt: Copy + PartialOrd {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[allow(clippy::cast_possible_truncation)]
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`StdRng::random_range`] can sample from. Blanket impls over
/// [`UniformInt`] (rather than per-type impls) so integer-literal ranges
/// infer like the `rand` crate's.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        let span = (hi - lo) as u128;
        let v = (u128::from(rng.next_u64()) % span) as i128;
        T::from_i128(lo + v)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in random_range");
        let (lo, hi) = (lo.to_i128(), hi.to_i128());
        let span = (hi - lo) as u128 + 1;
        let v = (u128::from(rng.next_u64()) % span) as i128;
        T::from_i128(lo + v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
        // Both endpoints of an inclusive range occur.
        let mut saw = [false; 2];
        for _ in 0..200 {
            match rng.random_range(0..=1u32) {
                0 => saw[0] = true,
                _ => saw[1] = true,
            }
        }
        assert!(saw[0] && saw[1]);
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean}");
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&heads), "heads {heads}");
    }
}
