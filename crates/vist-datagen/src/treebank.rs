//! Treebank-like deep recursive records.
//!
//! Parse-tree corpora (Penn Treebank exports) are the classic third dataset
//! of the XML-indexing literature: unlike DBLP's flat records, elements
//! recurse (`NP` inside `VP` inside `S` inside `NP` …), producing deep
//! documents where the same name appears at many levels — the regime that
//! stresses `//` queries and prefix-based indexes. The paper doesn't
//! evaluate on Treebank; this generator powers the depth ablation
//! (`ablation_depth`) that extends the evaluation to that regime.

use crate::rng::StdRng;
use vist_xml::{Document, ElementBuilder};

/// The word planted for the sample queries.
pub const PLANTED_WORD: &str = "colorless";

const WORDS: &[&str] = &[
    "time",
    "flies",
    "like",
    "an",
    "arrow",
    "fruit",
    "banana",
    "green",
    "ideas",
    "sleep",
    "furiously",
    "the",
    "old",
    "man",
    "boats",
    "ship",
    "sees",
    "with",
    "telescope",
];

/// Configuration for the treebank generator.
#[derive(Debug, Clone)]
pub struct TreebankConfig {
    /// Maximum recursion depth of the parse tree (element depth ≈ 2·this).
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TreebankConfig {
    fn default() -> Self {
        TreebankConfig {
            max_depth: 8,
            seed: 0,
        }
    }
}

/// Generate `n` sentence records.
#[must_use]
pub fn documents(n: usize, cfg: &TreebankConfig) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..n)
        .map(|i| sentence(&mut rng, cfg.max_depth, i))
        .collect()
}

fn sentence(rng: &mut StdRng, max_depth: usize, i: usize) -> Document {
    let mut s = ElementBuilder::new("S").attr("id", format!("s{i}"));
    s = s.child(np(rng, max_depth.saturating_sub(1), i));
    s = s.child(vp(rng, max_depth.saturating_sub(1), i));
    ElementBuilder::new("FILE").child(s).into_document()
}

fn word(rng: &mut StdRng, i: usize) -> String {
    if i.is_multiple_of(200) && rng.random_bool(0.5) {
        PLANTED_WORD.to_string()
    } else {
        WORDS[rng.random_range(0..WORDS.len())].to_string()
    }
}

fn np(rng: &mut StdRng, depth: usize, i: usize) -> ElementBuilder {
    let mut e = ElementBuilder::new("NP");
    if depth == 0 || rng.random_bool(0.4) {
        e = e.child(ElementBuilder::new("N").text(word(rng, i)));
        return e;
    }
    match rng.random_range(0..3) {
        0 => {
            // NP -> DET N
            e = e
                .child(ElementBuilder::new("DET").text("the"))
                .child(ElementBuilder::new("N").text(word(rng, i)));
        }
        1 => {
            // NP -> NP PP (recursion!)
            e = e.child(np(rng, depth - 1, i)).child(pp(rng, depth - 1, i));
        }
        _ => {
            // NP -> ADJ NP (recursion)
            e = e
                .child(ElementBuilder::new("ADJ").text(word(rng, i)))
                .child(np(rng, depth - 1, i));
        }
    }
    e
}

fn vp(rng: &mut StdRng, depth: usize, i: usize) -> ElementBuilder {
    let mut e = ElementBuilder::new("VP").child(ElementBuilder::new("V").text(word(rng, i)));
    if depth > 0 && rng.random_bool(0.7) {
        e = e.child(np(rng, depth - 1, i));
    }
    if depth > 0 && rng.random_bool(0.3) {
        e = e.child(pp(rng, depth - 1, i));
    }
    e
}

fn pp(rng: &mut StdRng, depth: usize, i: usize) -> ElementBuilder {
    ElementBuilder::new("PP")
        .child(ElementBuilder::new("P").text("with"))
        .child(np(rng, depth.saturating_sub(1), i))
}

/// Sample queries stressing recursion and `//`.
#[must_use]
pub fn sample_queries() -> Vec<(&'static str, String)> {
    vec![
        ("T1", "/FILE/S/NP".to_string()),
        ("T2", format!("//N[text='{PLANTED_WORD}']")),
        ("T3", "/FILE/S//PP//N".to_string()),
        ("T4", "//NP[ADJ]//PP/P".to_string()),
        ("T5", format!("/FILE/S/VP//NP/N[text='{PLANTED_WORD}']")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_and_recursive() {
        let docs = documents(
            200,
            &TreebankConfig {
                max_depth: 10,
                seed: 5,
            },
        );
        let max_depth = docs
            .iter()
            .flat_map(|d| d.preorder().map(|n| d.depth(n)).max())
            .max()
            .unwrap();
        assert!(max_depth > 8, "recursion should go deep: {max_depth}");
        // NP must appear at multiple depths within one document somewhere.
        let multi_level = docs.iter().any(|d| {
            let depths: std::collections::HashSet<usize> = d
                .preorder()
                .filter(|&n| d.name(n) == "NP")
                .map(|n| d.depth(n))
                .collect();
            depths.len() >= 3
        });
        assert!(multi_level, "NP should recurse");
    }

    #[test]
    fn deterministic_and_sentinels() {
        let cfg = TreebankConfig::default();
        let a = documents(500, &cfg);
        let b = documents(500, &cfg);
        assert_eq!(
            a.iter().map(Document::to_xml).collect::<Vec<_>>(),
            b.iter().map(Document::to_xml).collect::<Vec<_>>()
        );
        assert!(a.iter().any(|d| d.to_xml().contains(PLANTED_WORD)));
    }

    #[test]
    fn queries_parse() {
        for (_, q) in sample_queries() {
            vist_query::parse_query(&q).unwrap();
        }
    }
}
