//! IMDB-like movie record generator.
//!
//! The paper names "the Internet movie database IMDB" alongside DBLP as the
//! archetype of XML databases that "contain a large set of records of the
//! same structure" — the regime where per-record sequences shine. The real
//! dump is unavailable offline; this generator produces homogeneous movie
//! records with the fields queries care about (title, year, genre,
//! director, cast with roles, rating), plus planted sentinels so the sample
//! queries are selective but non-empty.

use crate::rng::StdRng;
use vist_xml::{Document, ElementBuilder};

use crate::words::{author, phrase, pick, skewed};

/// The director planted for the sample queries.
pub const PLANTED_DIRECTOR: &str = "Stanley Kubrick";
/// The actor planted for the sample queries.
pub const PLANTED_ACTOR: &str = "Grace Kelly";

const GENRES: &[&str] = &[
    "drama",
    "comedy",
    "thriller",
    "scifi",
    "noir",
    "western",
    "documentary",
    "animation",
];

/// Generate `n` movie records, deterministically from `seed`.
#[must_use]
pub fn documents(n: usize, seed: u64) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|i| movie(&mut rng, i)).collect()
}

fn movie(rng: &mut StdRng, i: usize) -> Document {
    let planted_director = rng.random_bool(0.01);
    let director = if planted_director {
        PLANTED_DIRECTOR.to_string()
    } else {
        author(rng)
    };
    let mut e = ElementBuilder::new("movie")
        .attr("id", format!("tt{i:07}"))
        .child({
            let title_len = 2 + rng.random_range(0..3);
            ElementBuilder::new("title").text(phrase(rng, title_len))
        })
        .child(ElementBuilder::new("year").text(rng.random_range(1920..=2003i32).to_string()))
        .child(ElementBuilder::new("genre").text(pick(rng, GENRES)))
        .child(ElementBuilder::new("director").text(director))
        .child(
            ElementBuilder::new("rating")
                .attr("votes", rng.random_range(10..100_000).to_string())
                .text(format!("{:.1}", 1.0 + 9.0 * rng.random::<f64>())),
        );
    // Cast: 1-6 actors, each with a role; one planted star.
    let cast_size = 1 + skewed(rng, 6);
    let mut cast = ElementBuilder::new("cast");
    for c in 0..cast_size {
        // The planted star worked with the planted director repeatedly (as
        // real filmographies correlate), so the conjunctive M5 is non-empty.
        let planted_actor_p = if planted_director { 0.5 } else { 0.02 };
        let name = if c == 0 && rng.random_bool(planted_actor_p) {
            PLANTED_ACTOR.to_string()
        } else {
            author(rng)
        };
        cast = cast.child(
            ElementBuilder::new("actor")
                .child(ElementBuilder::new("name").text(name))
                .child(ElementBuilder::new("role").text(phrase(rng, 1))),
        );
    }
    e = e.child(cast);
    if rng.random_bool(0.4) {
        e = e.child(
            ElementBuilder::new("release")
                .child(ElementBuilder::new("country").text(pick(rng, crate::words::COUNTRIES)))
                .child(ElementBuilder::new("date").text(crate::words::date(rng))),
        );
    }
    e.into_document()
}

/// Sample queries over the movie records (same flavour as Table 3).
#[must_use]
pub fn sample_queries() -> Vec<(&'static str, String)> {
    vec![
        ("M1", "/movie/title".to_string()),
        ("M2", format!("/movie/director[text='{PLANTED_DIRECTOR}']")),
        ("M3", format!("//actor/name[text='{PLANTED_ACTOR}']")),
        ("M4", "/movie[genre='noir']/cast/actor/name".to_string()),
        (
            "M5",
            format!("/movie[director='{PLANTED_DIRECTOR}']/cast/actor[name='{PLANTED_ACTOR}']"),
        ),
        ("M6", "/movie/*[date]".to_string()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_homogeneous() {
        let a = documents(200, 3);
        let b = documents(200, 3);
        assert_eq!(
            a.iter().map(Document::to_xml).collect::<Vec<_>>(),
            b.iter().map(Document::to_xml).collect::<Vec<_>>()
        );
        // Every record is a movie with the core fields.
        for d in &a {
            let root = d.root().unwrap();
            assert_eq!(d.name(root), "movie");
            let names: Vec<&str> = d.child_elements(root).map(|c| d.name(c)).collect();
            for required in ["title", "year", "genre", "director", "cast"] {
                assert!(names.contains(&required), "{names:?}");
            }
        }
    }

    #[test]
    fn sentinels_present() {
        let docs = documents(3000, 9);
        let xml: Vec<String> = docs.iter().map(Document::to_xml).collect();
        assert!(xml.iter().any(|x| x.contains(PLANTED_DIRECTOR)));
        assert!(xml.iter().any(|x| x.contains(PLANTED_ACTOR)));
    }

    #[test]
    fn queries_parse() {
        for (_, q) in sample_queries() {
            vist_query::parse_query(&q).unwrap();
        }
    }
}
