//! DBLP-like bibliographic record generator.
//!
//! Mirrors the structural statistics the paper relies on: one record per
//! publication, tree depth ≤ 6 (record → field → text, plus attributes),
//! average structure-encoded sequence length around 31, and DBLP's element
//! vocabulary (`article`, `inproceedings`, `book`, … with `author`, `title`,
//! `year`, `key`, `mdate`, …).
//!
//! Sentinels for the paper's Table 3 queries:
//! * authors named `David …` occur with realistic skew (Q2–Q4 use
//!   `author[text='David Smith']`);
//! * exactly one book per ~2000 records carries
//!   `key='books/bc/MaierW88'` (Q5);
//! * every record has a `title` (Q1).

use crate::rng::StdRng;
use vist_xml::{Document, ElementBuilder};

use crate::words::{author, date, phrase, pick, CONFERENCES, JOURNALS, PUBLISHERS};

/// The key planted for the paper's Q5.
pub const PLANTED_BOOK_KEY: &str = "books/bc/MaierW88";

/// Generate `n` DBLP-like records, deterministically from `seed`.
#[must_use]
pub fn documents(n: usize, seed: u64) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|i| record(&mut rng, i)).collect()
}

fn record(rng: &mut StdRng, i: usize) -> Document {
    // Record-type mix roughly like DBLP: mostly inproceedings + articles.
    // Record 500 of every 2000 is forced to be the planted Q5 book.
    let planted = i % 2000 == 500;
    let kind = if planted {
        "book"
    } else {
        match rng.random_range(0..100) {
            0..=44 => "inproceedings",
            45..=84 => "article",
            85..=92 => "book",
            93..=96 => "phdthesis",
            _ => "www",
        }
    };
    let mut e = ElementBuilder::new(kind)
        .attr(
            "key",
            if planted {
                PLANTED_BOOK_KEY.to_string()
            } else {
                format!("{}/{}/{}", kind, pick(rng, CONFERENCES), i)
            },
        )
        .attr("mdate", crate::words::date(rng));
    // Authors: 1–5, skewed.
    let n_authors = 1 + crate::words::skewed(rng, 5);
    for _ in 0..n_authors {
        e = e.child(ElementBuilder::new("author").text(author(rng)));
    }
    let title_len = 3 + rng.random_range(0..6);
    e = e.child(ElementBuilder::new("title").text(phrase(rng, title_len)));
    e = e.child(ElementBuilder::new("year").text(rng.random_range(1980..=2003i32).to_string()));
    match kind {
        "article" => {
            e = e
                .child(ElementBuilder::new("journal").text(pick(rng, JOURNALS)))
                .child(ElementBuilder::new("volume").text(rng.random_range(1..=40).to_string()))
                .child(ElementBuilder::new("pages").text(format!(
                    "{}-{}",
                    rng.random_range(1..=500),
                    rng.random_range(501..=999)
                )));
        }
        "inproceedings" => {
            e = e
                .child(ElementBuilder::new("booktitle").text(pick(rng, CONFERENCES)))
                .child(ElementBuilder::new("pages").text(format!(
                    "{}-{}",
                    rng.random_range(1..=500),
                    rng.random_range(501..=999)
                )));
            if rng.random_bool(0.6) {
                e = e.child(ElementBuilder::new("ee").text(format!("db/conf/paper{}.html", i)));
            }
        }
        "book" => {
            e = e
                .child(ElementBuilder::new("publisher").text(pick(rng, PUBLISHERS)))
                .child(ElementBuilder::new("isbn").text(format!(
                    "0-201-{:05}-{}",
                    i % 100_000,
                    i % 10
                )));
        }
        "phdthesis" => {
            e = e.child(ElementBuilder::new("school").text(format!("University {}", i % 50)));
        }
        _ => {
            e = e.child(ElementBuilder::new("url").text(format!("http://example.org/{i}")));
        }
    }
    // Common optional DBLP fields, sized so the average structure-encoded
    // sequence length lands near the paper's ~31.
    e = e.child(ElementBuilder::new("url").text(format!("db/rec/{i}")));
    if rng.random_bool(0.5) {
        e = e.child(ElementBuilder::new("month").text(format!("{}", 1 + i % 12)));
    }
    if rng.random_bool(0.4) {
        e = e.child(ElementBuilder::new("note").text(phrase(rng, 2)));
    }
    for c in 0..rng.random_range(0..4) {
        e = e.child(ElementBuilder::new("cite").text(format!("ref/{}/{}", (i + c) % 997, c)));
    }
    if rng.random_bool(0.3) {
        e = e.child(ElementBuilder::new("cdrom").text(date(rng)));
    }
    e.into_document()
}

/// The paper's Table 3 DBLP queries (Q1–Q5), with literals matching the
/// planted sentinels.
#[must_use]
pub fn table3_queries() -> Vec<(&'static str, String)> {
    vec![
        ("Q1", "/inproceedings/title".to_string()),
        ("Q2", "/book/author[text='David Smith']".to_string()),
        ("Q3", "/*/author[text='David Smith']".to_string()),
        ("Q4", "//author[text='David Smith']".to_string()),
        ("Q5", format!("/book[key='{PLANTED_BOOK_KEY}']/author")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vist_seq::{document_to_sequence, SiblingOrder, SymbolTable};

    #[test]
    fn deterministic() {
        let a = documents(50, 42);
        let b = documents(50, 42);
        let xml_a: Vec<String> = a.iter().map(Document::to_xml).collect();
        let xml_b: Vec<String> = b.iter().map(Document::to_xml).collect();
        assert_eq!(xml_a, xml_b);
        let c = documents(50, 43);
        assert_ne!(xml_a, c.iter().map(Document::to_xml).collect::<Vec<_>>());
    }

    #[test]
    fn structural_statistics_match_dblp() {
        let docs = documents(2000, 1);
        let mut table = SymbolTable::new();
        let mut total_len = 0usize;
        let mut max_depth = 0usize;
        for d in &docs {
            let seq = document_to_sequence(d, &mut table, &SiblingOrder::Lexicographic);
            total_len += seq.len();
            let depth = seq.iter().map(|e| e.prefix.len() + 1).max().unwrap_or(0);
            max_depth = max_depth.max(depth);
        }
        let avg = total_len as f64 / docs.len() as f64;
        // Paper: "average length of the structure-encoded sequences derived
        // from the DBLP records is around 31", "maximum depth 6".
        assert!((20.0..45.0).contains(&avg), "avg seq len {avg}");
        assert!(max_depth <= 6, "depth {max_depth}");
        // Vocabulary is DBLP-small.
        assert!(table.len() < 40, "symbols: {}", table.len());
    }

    #[test]
    fn sentinels_present() {
        let docs = documents(4000, 7);
        let xml: Vec<String> = docs.iter().map(Document::to_xml).collect();
        assert!(
            xml.iter().any(|x| x.contains(PLANTED_BOOK_KEY)),
            "planted key must appear"
        );
        let davids = xml.iter().filter(|x| x.contains(">David ")).count();
        assert!(davids > 40, "David authors should be common: {davids}");
        assert!(xml.iter().all(|x| x.contains("<title>")));
    }

    #[test]
    fn queries_parse() {
        for (_, q) in table3_queries() {
            vist_query::parse_query(&q).unwrap();
        }
    }
}
