//! Shared word pools and small random-text helpers.

use crate::rng::StdRng;

pub(crate) const TITLE_WORDS: &[&str] = &[
    "efficient",
    "scalable",
    "dynamic",
    "adaptive",
    "indexing",
    "querying",
    "semistructured",
    "data",
    "structures",
    "trees",
    "sequences",
    "matching",
    "databases",
    "systems",
    "processing",
    "optimization",
    "algorithms",
    "storage",
    "distributed",
    "parallel",
    "streams",
    "graphs",
    "patterns",
    "mining",
    "views",
    "caching",
    "joins",
    "selectivity",
    "estimation",
    "labeling",
];

pub(crate) const FIRST_NAMES: &[&str] = &[
    "David",
    "Mary",
    "John",
    "Wei",
    "Haixun",
    "Sanghyun",
    "Philip",
    "Jennifer",
    "Michael",
    "Rajeev",
    "Hector",
    "Divesh",
    "Jeffrey",
    "Dan",
    "Serge",
    "Laura",
    "Alon",
    "Jun",
    "Quanzhong",
    "Brian",
];

pub(crate) const LAST_NAMES: &[&str] = &[
    "Smith",
    "Wang",
    "Park",
    "Yu",
    "Fan",
    "Widom",
    "Ullman",
    "Suciu",
    "Abiteboul",
    "Moon",
    "Naughton",
    "Korth",
    "Cooper",
    "Sample",
    "Franklin",
    "Garcia",
    "Li",
    "Chen",
    "Kim",
    "Milo",
];

pub(crate) const JOURNALS: &[&str] = &[
    "TODS",
    "VLDB Journal",
    "SIGMOD Record",
    "TKDE",
    "Information Systems",
    "Acta Informatica",
];

pub(crate) const CONFERENCES: &[&str] = &[
    "SIGMOD", "VLDB", "ICDE", "PODS", "EDBT", "CIKM", "WWW", "KDD",
];

pub(crate) const PUBLISHERS: &[&str] = &[
    "Morgan Kaufmann",
    "Addison-Wesley",
    "Springer",
    "Prentice Hall",
    "ACM Press",
];

pub(crate) const CITIES: &[&str] = &[
    "Pocatello",
    "Boston",
    "NewYork",
    "SanDiego",
    "Tokyo",
    "Paris",
    "London",
    "Seoul",
    "Hawthorne",
    "Pohang",
    "Chicago",
    "Seattle",
    "Austin",
    "Denver",
    "Miami",
    "Portland",
];

pub(crate) const COUNTRIES: &[&str] = &[
    "UnitedStates",
    "Korea",
    "Japan",
    "France",
    "Germany",
    "Canada",
    "Brazil",
    "India",
];

pub(crate) const LOCATIONS: &[&str] = &["US", "EU", "ASIA", "US", "US", "EU"]; // US-heavy, as in XMARK

pub(crate) const CATEGORIES: &[&str] = &[
    "electronics",
    "books",
    "music",
    "garden",
    "sports",
    "toys",
    "art",
    "tools",
];

/// A space-joined random phrase of `n` words.
pub(crate) fn phrase(rng: &mut StdRng, n: usize) -> String {
    (0..n)
        .map(|_| TITLE_WORDS[rng.random_range(0..TITLE_WORDS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

/// A "First Last" author name. Zipf-flavoured: squaring the uniform draw
/// skews toward low indices, giving a realistic hot-author distribution
/// (index 0 pairs "David Smith", so `author[text='David Smith']` is
/// selective but non-empty, like the paper's Q2–Q4 literal).
pub(crate) fn author(rng: &mut StdRng) -> String {
    let f = skewed(rng, FIRST_NAMES.len());
    let l = skewed(rng, LAST_NAMES.len());
    format!("{} {}", FIRST_NAMES[f], LAST_NAMES[l])
}

/// Zipf-ish skewed index in `[0, n)`.
pub(crate) fn skewed(rng: &mut StdRng, n: usize) -> usize {
    let u: f64 = rng.random();
    ((u * u) * n as f64) as usize % n
}

/// A date string in the paper's `MM/DD/YYYY` style.
pub(crate) fn date(rng: &mut StdRng) -> String {
    format!(
        "{:02}/{:02}/{}",
        rng.random_range(1..=12),
        rng.random_range(1..=28),
        rng.random_range(1995..=2003)
    )
}

pub(crate) fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.random_range(0..pool.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(author(&mut a), author(&mut b));
        assert_eq!(phrase(&mut a, 4), phrase(&mut b, 4));
        assert_eq!(date(&mut a), date(&mut b));
    }

    #[test]
    fn skew_prefers_low_indices() {
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<usize> = (0..2000).map(|_| skewed(&mut rng, 20)).collect();
        let low = draws.iter().filter(|&&d| d < 10).count();
        assert!(low > 1200, "low half should dominate: {low}/2000");
    }
}
