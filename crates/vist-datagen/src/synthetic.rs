//! The paper's §4 synthetic generator, verbatim:
//!
//! > "The data generator is based conceptually on a tree of height k where
//! > each node has j sub nodes. We generate a subtree of L nodes. First we
//! > select the root node, then we randomly select the next node x from the
//! > tree, under the condition that x has not been selected, and x is a
//! > child node of a selected node. We repeat this process N times to
//! > generate N data sequences of length L. Random queries can be generated
//! > in the same way."
//!
//! A conceptual-tree node is identified by its path of child indices; its
//! element name is `e{child_index}` (j distinct names), so distinct
//! positions share names and structure matters — the regime sequence
//! matching is designed for.

use crate::rng::StdRng;
use vist_query::{Axis, Pattern, PatternNode, PatternTest};
use vist_xml::Document;

/// Parameters of the synthetic workload.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Height of the conceptual tree (paper: k = 10).
    pub k: usize,
    /// Fanout of the conceptual tree (paper: j = 8).
    pub j: usize,
    /// Nodes per generated subtree/document (paper: L = 30 or 60).
    pub l: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            k: 10,
            j: 8,
            l: 30,
            seed: 0,
        }
    }
}

/// Generator state; call [`SyntheticGen::document`] repeatedly for the N
/// sequences, and [`SyntheticGen::query`] for random queries over the same
/// conceptual tree.
pub struct SyntheticGen {
    cfg: SyntheticConfig,
    rng: StdRng,
}

/// A selected subtree, as parent-pointer arrays over conceptual-tree nodes.
struct Subtree {
    /// Per node: child index within the conceptual tree (= name), depth, and
    /// the index of its parent in this subtree (`None` for the root).
    nodes: Vec<(usize, usize, Option<usize>)>,
}

impl SyntheticGen {
    /// New generator.
    #[must_use]
    pub fn new(cfg: SyntheticConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        SyntheticGen { cfg, rng }
    }

    /// Select a random connected subtree of `size` nodes, exactly as the
    /// paper describes: grow from the root by repeatedly picking a random
    /// unselected child of a selected node.
    fn subtree(&mut self, size: usize) -> Subtree {
        let mut nodes: Vec<(usize, usize, Option<usize>)> = vec![(0, 0, None)];
        // Frontier of candidate (parent_idx, child_index) pairs.
        let mut frontier: Vec<(usize, usize)> = (0..self.cfg.j).map(|c| (0, c)).collect();
        while nodes.len() < size && !frontier.is_empty() {
            let pick = self.rng.random_range(0..frontier.len());
            let (parent, child_idx) = frontier.swap_remove(pick);
            let depth = nodes[parent].1 + 1;
            let me = nodes.len();
            nodes.push((child_idx, depth, Some(parent)));
            if depth + 1 < self.cfg.k {
                frontier.extend((0..self.cfg.j).map(|c| (me, c)));
            }
        }
        Subtree { nodes }
    }

    /// Generate the next random document of `cfg.l` nodes. Every leaf also
    /// receives a text value drawn from a per-name value pool, so value
    /// queries are meaningful.
    pub fn document(&mut self) -> Document {
        let sub = self.subtree(self.cfg.l);
        let mut doc = Document::new();
        let mut ids = Vec::with_capacity(sub.nodes.len());
        for &(child_idx, _, parent) in &sub.nodes {
            let name = format!("e{child_idx}");
            let id = match parent {
                None => doc.add_root("r"),
                Some(p) => doc.add_element(ids[p], name),
            };
            ids.push(id);
        }
        // Values on leaves.
        let leaf_value_range = 100;
        let parents: std::collections::HashSet<usize> =
            sub.nodes.iter().filter_map(|n| n.2).collect();
        for (i, &(child_idx, _, _)) in sub.nodes.iter().enumerate() {
            if !parents.contains(&i) {
                let v = self.rng.random_range(0..leaf_value_range);
                doc.add_text(ids[i], format!("v{child_idx}_{v}"));
            }
        }
        doc
    }

    /// Generate a random query of `len` nodes "in the same way": a random
    /// connected subtree of the conceptual tree, turned into a query
    /// pattern. With probability `wildcards`, a non-root node's name test is
    /// replaced by `*` or its axis by `//`.
    pub fn query(&mut self, len: usize, wildcards: f64) -> Pattern {
        let sub = self.subtree(len.max(1));
        // Build pattern nodes bottom-up.
        let mut children: Vec<Vec<PatternNode>> = vec![Vec::new(); sub.nodes.len()];
        for i in (1..sub.nodes.len()).rev() {
            let (child_idx, _, parent) = sub.nodes[i];
            let mut axis = Axis::Child;
            let mut test = PatternTest::Tag(format!("e{child_idx}"));
            if self.rng.random_bool(wildcards) {
                if self.rng.random_bool(0.5) {
                    test = PatternTest::Star;
                } else {
                    axis = Axis::Descendant;
                }
            }
            let node = PatternNode {
                axis,
                test,
                children: std::mem::take(&mut children[i]),
            };
            children[parent.expect("non-root")].push(node);
        }
        Pattern {
            root: PatternNode {
                axis: Axis::Child,
                test: PatternTest::Tag("r".to_string()),
                children: std::mem::take(&mut children[0]),
            },
        }
    }

    /// Generate `n` documents.
    pub fn documents(&mut self, n: usize) -> Vec<Document> {
        (0..n).map(|_| self.document()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_have_requested_size() {
        let mut g = SyntheticGen::new(SyntheticConfig {
            k: 10,
            j: 8,
            l: 30,
            seed: 3,
        });
        for _ in 0..20 {
            let d = g.document();
            // L element nodes + leaf text nodes.
            let elements = d.preorder().filter(|&n| d.is_element(n)).count();
            assert_eq!(elements, 30);
        }
    }

    #[test]
    fn depth_bounded_by_k() {
        let mut g = SyntheticGen::new(SyntheticConfig {
            k: 4,
            j: 2,
            l: 64, // wants more nodes than a height-4 binary tree has below depth limit
            seed: 9,
        });
        let d = g.document();
        // Element depth is bounded by k; text leaves sit one level below.
        let max_depth = d
            .preorder()
            .filter(|&n| d.is_element(n))
            .map(|n| d.depth(n))
            .max()
            .unwrap();
        assert!(max_depth <= 4, "depth {max_depth}");
    }

    #[test]
    fn deterministic() {
        let mut a = SyntheticGen::new(SyntheticConfig::default());
        let mut b = SyntheticGen::new(SyntheticConfig::default());
        assert_eq!(a.document().to_xml(), b.document().to_xml());
        // Queries too.
        let qa = a.query(6, 0.3);
        let qb = b.query(6, 0.3);
        assert_eq!(qa, qb);
    }

    #[test]
    fn queries_find_matches_in_their_own_distribution() {
        use vist_core_free_check::*;
        mod vist_core_free_check {
            pub use vist_query::matches_document;
            pub use vist_seq::SiblingOrder;
        }
        let mut g = SyntheticGen::new(SyntheticConfig {
            k: 6,
            j: 3,
            l: 12,
            seed: 21,
        });
        let docs = g.documents(200);
        let mut hits = 0;
        for _ in 0..20 {
            let q = g.query(3, 0.2);
            hits += docs
                .iter()
                .filter(|d| matches_document(&q, d, &SiblingOrder::Lexicographic))
                .count();
        }
        assert!(hits > 0, "random queries should hit random data");
    }
}
