//! XMARK-like sub-structure generator.
//!
//! The paper notes XMARK "is a single record with a very large and
//! complicated tree structure", so "we break down its tree structure into a
//! set of sub structures, including item, person, open auction, closed
//! auction, etc" — each instance becoming one structure-encoded sequence.
//! This generator produces those sub-structure instances directly, with the
//! element/attribute shapes that queries Q6–Q8 exercise. Each instance is
//! rooted under `site` (so `/site//item/...` paths resolve), mirroring the
//! break-down where every sub-structure keeps its rooted context.

use crate::rng::StdRng;
use vist_xml::{Document, ElementBuilder};

use crate::words::{date, phrase, pick, CATEGORIES, CITIES, COUNTRIES, LOCATIONS};

/// The date planted for the paper's Q6 and Q8.
pub const PLANTED_DATE: &str = "12/15/1999";
/// The city planted for the paper's Q7.
pub const PLANTED_CITY: &str = "Pocatello";
/// The person planted for the paper's Q8.
pub const PLANTED_PERSON: &str = "person1";

/// Generate `n` XMARK-like sub-structure instances from `seed`.
/// The mix is ~40% item, ~25% person, ~15% open auction, ~20% closed
/// auction, roughly xmlgen's proportions at SF 1.
#[must_use]
pub fn documents(n: usize, seed: u64) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match rng.random_range(0..100) {
            0..=39 => item(&mut rng, i),
            40..=64 => person(&mut rng, i),
            65..=79 => open_auction(&mut rng, i),
            _ => closed_auction(&mut rng, i),
        })
        .collect()
}

fn sentinel_date(rng: &mut StdRng) -> String {
    if rng.random_bool(0.02) {
        PLANTED_DATE.to_string()
    } else {
        date(rng)
    }
}

fn item(rng: &mut StdRng, i: usize) -> Document {
    let mut e = ElementBuilder::new("item")
        .attr("id", format!("item{i}"))
        .attr("location", pick(rng, LOCATIONS))
        .child(ElementBuilder::new("name").text(phrase(rng, 2)))
        .child(ElementBuilder::new("category").text(pick(rng, CATEGORIES)))
        .child(ElementBuilder::new("quantity").text(rng.random_range(1..=5i32).to_string()))
        .child(
            ElementBuilder::new("description").child(
                ElementBuilder::new("parlist")
                    .child(ElementBuilder::new("listitem").text(phrase(rng, 4))),
            ),
        );
    // mail/date: Q6's target.
    let mails = rng.random_range(0..=2);
    for m in 0..=mails {
        e = e.child(
            ElementBuilder::new("mail")
                .child(ElementBuilder::new("from").text(format!("person{}", (i + m) % 500)))
                .child(ElementBuilder::new("to").text(format!("person{}", (i + m + 1) % 500)))
                .child(ElementBuilder::new("date").text(sentinel_date(rng))),
        );
    }
    ElementBuilder::new("site")
        .child(
            ElementBuilder::new("regions").child(
                ElementBuilder::new(pick(
                    rng,
                    &["africa", "asia", "europe", "namerica", "samerica"],
                ))
                .child(e),
            ),
        )
        .into_document()
}

fn person(rng: &mut StdRng, i: usize) -> Document {
    let city = if rng.random_bool(0.03) {
        PLANTED_CITY
    } else {
        pick(rng, CITIES)
    };
    let mut e = ElementBuilder::new("person")
        .attr("id", format!("person{i}"))
        .child(ElementBuilder::new("name").text(crate::words::author(rng)))
        .child(ElementBuilder::new("emailaddress").text(format!("mailto:p{i}@example.org")));
    if rng.random_bool(0.7) {
        // Q7 goes /site//person/*/city — city under an intermediate element.
        e = e.child(
            ElementBuilder::new("address")
                .child(ElementBuilder::new("street").text(format!("{} Main St", i % 999)))
                .child(ElementBuilder::new("city").text(city))
                .child(ElementBuilder::new("country").text(pick(rng, COUNTRIES)))
                .child(ElementBuilder::new("zipcode").text(format!("{}", 10000 + i % 89999))),
        );
    }
    if rng.random_bool(0.5) {
        e = e.child(
            ElementBuilder::new("profile")
                .attr("income", format!("{}", rng.random_range(20000..120000)))
                .child(ElementBuilder::new("interest").text(pick(rng, CATEGORIES))),
        );
    }
    ElementBuilder::new("site")
        .child(ElementBuilder::new("people").child(e))
        .into_document()
}

fn open_auction(rng: &mut StdRng, i: usize) -> Document {
    let mut e = ElementBuilder::new("open_auction")
        .attr("id", format!("open_auction{i}"))
        .child(ElementBuilder::new("initial").text(format!("{}.00", rng.random_range(1..300))))
        .child(ElementBuilder::new("current").text(format!("{}.00", rng.random_range(300..900))))
        .child(ElementBuilder::new("itemref").attr("item", format!("item{}", i % 1000)))
        .child(ElementBuilder::new("seller").attr("person", format!("person{}", i % 500)))
        .child(ElementBuilder::new("quantity").text("1"));
    for _ in 0..rng.random_range(0..3) {
        e = e.child(
            ElementBuilder::new("bidder")
                .child(ElementBuilder::new("date").text(sentinel_date(rng)))
                .child(
                    ElementBuilder::new("increase").text(format!("{}.00", rng.random_range(1..50))),
                )
                .child(
                    ElementBuilder::new("personref")
                        .attr("person", format!("person{}", rng.random_range(0..500))),
                ),
        );
    }
    ElementBuilder::new("site")
        .child(ElementBuilder::new("open_auctions").child(e))
        .into_document()
}

fn closed_auction(rng: &mut StdRng, i: usize) -> Document {
    // Q8: //closed_auction[*[person='person1']]/date[text='12/15/1999'].
    // The `*` binds to buyer/seller/annotation carrying a person value.
    let planted = rng.random_bool(0.05);
    let person = if planted {
        PLANTED_PERSON.to_string()
    } else {
        format!("person{}", rng.random_range(0..500))
    };
    // Q8 needs the person AND the date on one auction: correlate them, as a
    // buyer's activity bursts would in real data.
    let the_date = if planted && rng.random_bool(0.5) {
        PLANTED_DATE.to_string()
    } else {
        sentinel_date(rng)
    };
    let e = ElementBuilder::new("closed_auction")
        .child(
            ElementBuilder::new("seller").child(ElementBuilder::new("person").text(person.clone())),
        )
        .child(ElementBuilder::new("buyer").child(
            ElementBuilder::new("person").text(format!("person{}", rng.random_range(0..500))),
        ))
        .child(ElementBuilder::new("itemref").attr("item", format!("item{}", i % 1000)))
        .child(ElementBuilder::new("price").text(format!("{}.00", rng.random_range(10..900))))
        .child(ElementBuilder::new("date").text(the_date))
        .child(ElementBuilder::new("quantity").text("1"))
        .child(
            ElementBuilder::new("annotation")
                .child(
                    ElementBuilder::new("author").child(ElementBuilder::new("person").text(person)),
                )
                .child(ElementBuilder::new("description").text(phrase(rng, 5))),
        );
    ElementBuilder::new("site")
        .child(ElementBuilder::new("closed_auctions").child(e))
        .into_document()
}

/// The paper's Table 3 XMARK queries (Q6–Q8), literal values included.
#[must_use]
pub fn table3_queries() -> Vec<(&'static str, String)> {
    vec![
        (
            "Q6",
            format!("/site//item[location='US']/mail/date[text='{PLANTED_DATE}']"),
        ),
        ("Q7", format!("/site//person/*/city[text='{PLANTED_CITY}']")),
        (
            "Q8",
            format!("//closed_auction[*[person='{PLANTED_PERSON}']]/date[text='{PLANTED_DATE}']"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_varied() {
        let a = documents(100, 5);
        let b = documents(100, 5);
        assert_eq!(
            a.iter().map(Document::to_xml).collect::<Vec<_>>(),
            b.iter().map(Document::to_xml).collect::<Vec<_>>()
        );
        let kinds: std::collections::HashSet<String> = a
            .iter()
            .map(|d| {
                let root = d.root().unwrap();
                let section = d.child_elements(root).next().unwrap();
                d.name(section).to_string()
            })
            .collect();
        assert!(
            kinds.len() >= 3,
            "expected a mix of sub-structures: {kinds:?}"
        );
    }

    #[test]
    fn sentinels_present() {
        let docs = documents(2000, 11);
        let xml: Vec<String> = docs.iter().map(Document::to_xml).collect();
        assert!(xml.iter().any(|x| x.contains(PLANTED_DATE)));
        assert!(xml.iter().any(|x| x.contains(PLANTED_CITY)));
        assert!(xml
            .iter()
            .any(|x| x.contains("closed_auction") && x.contains(PLANTED_PERSON)));
        // Q8's conjunction must be satisfiable: some closed_auction carries
        // both the planted person and the planted date.
        assert!(xml.iter().any(|x| x.contains("closed_auction")
            && x.contains(PLANTED_PERSON)
            && x.contains(PLANTED_DATE)));
        assert!(xml.iter().any(|x| x.contains("location=\"US\"")));
    }

    #[test]
    fn queries_parse() {
        for (_, q) in table3_queries() {
            vist_query::parse_query(&q).unwrap();
        }
    }
}
