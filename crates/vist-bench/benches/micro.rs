//! Micro-benchmarks for the individual components: B+Tree operations,
//! sequence conversion, scope allocation, end-to-end insert/query on small
//! indexes, and concurrent read scaling over the sharded buffer pool.
//!
//! ```sh
//! cargo bench -p vist-bench            # all benchmarks
//! cargo bench -p vist-bench -- btree   # substring filter
//! VIST_MICRO_MS=1000 cargo bench -p vist-bench   # longer timed regions
//! ```

use std::sync::Arc;
use std::time::Instant;

use vist_bench::micro::{black_box, Runner};
use vist_btree::BTree;
use vist_core::{AllocatorKind, IndexOptions, NodeState, QueryOptions, ScopeAllocator, VistIndex};
use vist_datagen::{dblp, synthetic::SyntheticConfig, synthetic::SyntheticGen};
use vist_seq::{document_to_sequence, SiblingOrder, Sym, Symbol, SymbolTable, MAX_SCOPE};
use vist_storage::{BufferPool, MemPager};

fn bench_btree(r: &Runner) {
    r.bench("btree/insert_sequential", |b| {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 4096));
        let t = BTree::create(pool).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            t.insert(&i.to_be_bytes(), b"value").unwrap();
            i += 1;
        });
    });

    r.bench("btree/insert_random", |b| {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 4096));
        let t = BTree::create(pool).unwrap();
        let mut x = 0x9E3779B97F4A7C15u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            t.insert(&x.to_be_bytes(), b"value").unwrap();
        });
    });

    r.bench("btree/get_hit", |b| {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 4096));
        let t = BTree::create(pool).unwrap();
        for i in 0..100_000u64 {
            t.insert(&i.to_be_bytes(), b"value").unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            let v = t.get(&(i % 100_000).to_be_bytes()).unwrap();
            assert!(v.is_some());
            i += 7919;
        });
    });

    r.bench("btree/bulk_load_100k", |b| {
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..100_000u64)
            .map(|i| (i.to_be_bytes().to_vec(), b"value".to_vec()))
            .collect();
        b.iter(|| {
            let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 1 << 15));
            let t = BTree::bulk_load(pool, items.clone()).unwrap();
            black_box(t.root_page());
        });
    });

    r.bench("btree/scan_100", |b| {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 4096));
        let t = BTree::create(pool).unwrap();
        for i in 0..100_000u64 {
            t.insert(&i.to_be_bytes(), b"value").unwrap();
        }
        let mut start = 0u64;
        b.iter(|| {
            let lo = (start % 90_000).to_be_bytes();
            let hi = (start % 90_000 + 100).to_be_bytes();
            let n = t.scan(&lo[..]..&hi[..]).unwrap().count();
            assert_eq!(n, 100);
            start += 7919;
        });
    });
}

fn bench_sequence(r: &Runner) {
    let docs = dblp::documents(200, 1);
    r.bench("sequence/dblp_convert_200", |b| {
        b.iter(|| {
            let mut table = SymbolTable::new();
            for d in &docs {
                let s = document_to_sequence(d, &mut table, &SiblingOrder::Lexicographic);
                black_box(s);
            }
        });
    });
}

fn bench_alloc(r: &Runner) {
    r.bench("scope_alloc/geometric_adaptive", |b| {
        let alloc = ScopeAllocator::new(16, true, AllocatorKind::NoClues);
        let mut parent = NodeState {
            n: 0,
            size: MAX_SCOPE,
            next: 1,
            k: 0,
        };
        let mut i = 0u32;
        b.iter(|| {
            let a = alloc.allocate(&mut parent, None, Sym::Tag(Symbol(i % 64)), 8);
            black_box(&a);
            i += 1;
            if parent.available() < 1 << 20 {
                parent = NodeState {
                    n: 0,
                    size: MAX_SCOPE,
                    next: 1,
                    k: 0,
                };
            }
        });
    });
}

fn bench_index(r: &Runner) {
    r.bench("vist/insert_dblp_record", |b| {
        let docs = dblp::documents(10_000, 5);
        let idx = VistIndex::in_memory(IndexOptions {
            store_documents: false,
            ..Default::default()
        })
        .unwrap();
        let mut i = 0usize;
        b.iter(|| {
            idx.insert_document(&docs[i % docs.len()]).unwrap();
            i += 1;
        });
    });

    let idx = VistIndex::in_memory(IndexOptions {
        store_documents: false,
        ..Default::default()
    })
    .unwrap();
    for d in dblp::documents(10_000, 6) {
        idx.insert_document(&d).unwrap();
    }
    let opts = QueryOptions::default();
    r.bench("vist/query_value_path", |b| {
        b.iter(|| {
            let res = idx
                .query("/book/author[text='David Smith']", &opts)
                .unwrap();
            black_box(res);
        });
    });
    r.bench("vist/query_branching", |b| {
        b.iter(|| {
            let res = idx
                .query("/article[journal='TODS']/author[text='David Smith']", &opts)
                .unwrap();
            black_box(res);
        });
    });
    r.bench("vist/query_descendant_wildcard", |b| {
        b.iter(|| {
            let res = idx.query("//author[text='David Smith']", &opts).unwrap();
            black_box(res);
        });
    });

    let mut gen = SyntheticGen::new(SyntheticConfig::default());
    let synth = VistIndex::in_memory(IndexOptions {
        store_documents: false,
        ..Default::default()
    })
    .unwrap();
    for _ in 0..5_000 {
        let d = gen.document();
        synth.insert_document(&d).unwrap();
    }
    let queries: Vec<_> = (0..64).map(|_| gen.query(6, 0.0)).collect();
    r.bench("vist/query_synthetic_len6", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let res = synth
                .query_pattern(&queries[i % queries.len()], &opts)
                .unwrap();
            black_box(res);
            i += 1;
        });
    });
}

/// Read scaling over a shared `Arc<VistIndex>`: the same per-thread query
/// workload at 1/2/4/8 threads against one file-backed index with a cache
/// smaller than the data, so threads exercise the sharded buffer pool.
/// Reported as queries/second plus the speedup over one thread — interpret
/// the ratio against the printed core count (a single-core box caps at 1x
/// regardless of how contention-free the read path is).
fn bench_concurrent_queries(r: &Runner, per_thread: usize) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("concurrent_queries: {cores} core(s) available");
    let path = std::env::temp_dir().join(format!("vist-micro-conc-{}", std::process::id()));
    let idx = VistIndex::create_file(
        &path,
        IndexOptions {
            cache_pages: 1024, // ~11% of the store: hot paths stay resident, tail still evicts
            store_documents: false,
            ..Default::default()
        },
    )
    .unwrap();
    for d in dblp::documents(8_000, 7) {
        idx.insert_document(&d).unwrap();
    }
    let idx = Arc::new(idx);
    let queries: Vec<String> = vec![
        "/book/author[text='David Smith']".into(),
        "/article[journal='TODS']/author[text='David Smith']".into(),
        "//author[text='David Smith']".into(),
        "/book/title".into(),
    ];
    let opts = QueryOptions::default();

    let run = |threads: usize| -> f64 {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let idx = Arc::clone(&idx);
                let queries = &queries;
                let opts = &opts;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let q = &queries[(t + i) % queries.len()];
                        black_box(idx.query(q, opts).unwrap());
                    }
                });
            }
        });
        (threads * per_thread) as f64 / t0.elapsed().as_secs_f64()
    };

    let mut baseline = None;
    for threads in [1usize, 2, 4, 8] {
        let name = format!("concurrent_queries/{threads}_threads");
        // Warm-up pass at each width, then one measured pass (thread spawn
        // cost is amortized over `per_thread` queries).
        r.bench(&name, |b| {
            run(threads);
            let mut qps = 0.0;
            b.iter(|| qps = run(threads));
            let speedup = match baseline {
                None => {
                    baseline = Some(qps);
                    1.0
                }
                Some(base) => qps / base,
            };
            println!("    -> {qps:>10.0} queries/s  ({speedup:.2}x vs 1 thread)");
        });
    }

    // Shard-level evidence of the striped hot path: the fraction of hits
    // whose shard lock was acquired without blocking.
    let t = idx.stats().pool.totals();
    if t.hits > 0 {
        println!(
            "concurrent_queries: {} hits, {:.1}% uncontended, {} misses",
            t.hits,
            100.0 * t.uncontended_hits as f64 / t.hits as f64,
            t.misses
        );
    }

    let _ = std::fs::remove_file(&path);
}

fn main() {
    let r = Runner::from_env();
    bench_btree(&r);
    bench_sequence(&r);
    bench_alloc(&r);
    bench_index(&r);
    let per_thread = std::env::var("VIST_MICRO_CONC_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    bench_concurrent_queries(&r, per_thread);
}
