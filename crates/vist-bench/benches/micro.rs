//! Criterion micro-benchmarks for the individual components: B+Tree
//! operations, sequence conversion, scope allocation, and end-to-end
//! insert/query on small indexes.
//!
//! ```sh
//! cargo bench -p vist-bench
//! ```

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use vist_btree::BTree;
use vist_core::{AllocatorKind, IndexOptions, NodeState, QueryOptions, ScopeAllocator, VistIndex};
use vist_datagen::{dblp, synthetic::SyntheticConfig, synthetic::SyntheticGen};
use vist_seq::{document_to_sequence, SiblingOrder, SymbolTable, Sym, Symbol, MAX_SCOPE};
use vist_storage::{BufferPool, MemPager};

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.throughput(Throughput::Elements(1));
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(20);

    g.bench_function("insert_sequential", |b| {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 4096));
        let mut t = BTree::create(pool).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            t.insert(&i.to_be_bytes(), b"value").unwrap();
            i += 1;
        });
    });

    g.bench_function("insert_random", |b| {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 4096));
        let mut t = BTree::create(pool).unwrap();
        let mut x = 0x9E3779B97F4A7C15u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            t.insert(&x.to_be_bytes(), b"value").unwrap();
        });
    });

    g.bench_function("get_hit", |b| {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 4096));
        let mut t = BTree::create(pool).unwrap();
        for i in 0..100_000u64 {
            t.insert(&i.to_be_bytes(), b"value").unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            let v = t.get(&(i % 100_000).to_be_bytes()).unwrap();
            assert!(v.is_some());
            i += 7919;
        });
    });

    g.bench_function("bulk_load_100k", |b| {
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..100_000u64)
            .map(|i| (i.to_be_bytes().to_vec(), b"value".to_vec()))
            .collect();
        b.iter_batched(
            || items.clone(),
            |items| {
                let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 1 << 15));
                let t = BTree::bulk_load(pool, items).unwrap();
                criterion::black_box(t.root_page());
            },
            BatchSize::LargeInput,
        );
    });

    g.bench_function("scan_100", |b| {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 4096));
        let mut t = BTree::create(pool).unwrap();
        for i in 0..100_000u64 {
            t.insert(&i.to_be_bytes(), b"value").unwrap();
        }
        let mut start = 0u64;
        b.iter(|| {
            let lo = (start % 90_000).to_be_bytes();
            let hi = (start % 90_000 + 100).to_be_bytes();
            let n = t.scan(&lo[..]..&hi[..]).unwrap().count();
            assert_eq!(n, 100);
            start += 7919;
        });
    });
    g.finish();
}

fn bench_sequence(c: &mut Criterion) {
    let docs = dblp::documents(200, 1);
    let mut g = c.benchmark_group("sequence");
    g.throughput(Throughput::Elements(docs.len() as u64));
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(20);
    g.bench_function("dblp_convert_200", |b| {
        b.iter_batched(
            SymbolTable::new,
            |mut table| {
                for d in &docs {
                    let s = document_to_sequence(d, &mut table, &SiblingOrder::Lexicographic);
                    criterion::black_box(s);
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("scope_alloc");
    g.throughput(Throughput::Elements(1));
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(20);
    g.bench_function("geometric_adaptive", |b| {
        let alloc = ScopeAllocator::new(16, true, AllocatorKind::NoClues);
        let mut parent = NodeState {
            n: 0,
            size: MAX_SCOPE,
            next: 1,
            k: 0,
        };
        let mut i = 0u32;
        b.iter(|| {
            let a = alloc.allocate(&mut parent, None, Sym::Tag(Symbol(i % 64)), 8);
            criterion::black_box(&a);
            i += 1;
            if parent.available() < 1 << 20 {
                parent = NodeState {
                    n: 0,
                    size: MAX_SCOPE,
                    next: 1,
                    k: 0,
                };
            }
        });
    });
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("vist");
    g.sample_size(20);
    g.warm_up_time(Duration::from_secs(1));
    g.measurement_time(Duration::from_secs(3));

    g.bench_function("insert_dblp_record", |b| {
        let docs = dblp::documents(10_000, 5);
        let mut idx = VistIndex::in_memory(IndexOptions {
            store_documents: false,
            ..Default::default()
        })
        .unwrap();
        let mut i = 0usize;
        b.iter(|| {
            idx.insert_document(&docs[i % docs.len()]).unwrap();
            i += 1;
        });
    });

    let mut idx = VistIndex::in_memory(IndexOptions {
        store_documents: false,
        ..Default::default()
    })
    .unwrap();
    for d in dblp::documents(10_000, 6) {
        idx.insert_document(&d).unwrap();
    }
    let opts = QueryOptions::default();
    g.bench_function("query_value_path", |b| {
        b.iter(|| {
            let r = idx
                .query("/book/author[text='David Smith']", &opts)
                .unwrap();
            criterion::black_box(r);
        });
    });
    g.bench_function("query_branching", |b| {
        b.iter(|| {
            let r = idx
                .query("/article[journal='TODS']/author[text='David Smith']", &opts)
                .unwrap();
            criterion::black_box(r);
        });
    });
    g.bench_function("query_descendant_wildcard", |b| {
        b.iter(|| {
            let r = idx.query("//author[text='David Smith']", &opts).unwrap();
            criterion::black_box(r);
        });
    });

    let mut gen = SyntheticGen::new(SyntheticConfig::default());
    let mut synth = VistIndex::in_memory(IndexOptions {
        store_documents: false,
        ..Default::default()
    })
    .unwrap();
    for _ in 0..5_000 {
        let d = gen.document();
        synth.insert_document(&d).unwrap();
    }
    let queries: Vec<_> = (0..64).map(|_| gen.query(6, 0.0)).collect();
    g.bench_function("query_synthetic_len6", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let r = synth
                .query_pattern(&queries[i % queries.len()], &opts)
                .unwrap();
            criterion::black_box(r);
            i += 1;
        });
    });
    g.finish();
}

criterion_group!(benches, bench_btree, bench_sequence, bench_alloc, bench_index);
criterion_main!(benches);
