//! **Ablation A6**: document depth / recursion, an axis the paper does not
//! evaluate. Treebank-like parse trees recurse (`NP` inside `NP` …), so the
//! same element name appears at many levels — deep prefixes stress the
//! D-Ancestor key space, and `//` queries must fan out across levels.
//!
//! ```sh
//! cargo run --release -p vist-bench --bin ablation_depth
//! ```

use std::time::{Duration, Instant};

use vist_baselines::{NodeIndex, PathIndex};
use vist_bench::{mib, ms, print_table, scaled};
use vist_core::{IndexOptions, QueryOptions, VistIndex};
use vist_datagen::treebank::{documents, sample_queries, TreebankConfig};

fn main() {
    let n = scaled(4_000, 400);
    let mut rows = Vec::new();
    for max_depth in [4usize, 8, 12, 16] {
        let docs = documents(
            n,
            &TreebankConfig {
                max_depth,
                seed: 23,
            },
        );
        let elem_depth = docs
            .iter()
            .flat_map(|d| d.preorder().map(|x| d.depth(x)).max())
            .max()
            .unwrap();

        let vist = VistIndex::in_memory(IndexOptions {
            store_documents: false,
            cache_pages: 1 << 14,
            ..Default::default()
        })
        .expect("vist");
        let mut path = PathIndex::in_memory(4096, 1 << 14).expect("path");
        let mut node = NodeIndex::in_memory(4096, 1 << 14).expect("node");
        let t0 = Instant::now();
        for d in &docs {
            vist.insert_document(d).expect("insert");
        }
        let build = t0.elapsed();
        for d in &docs {
            path.insert_document(d).expect("insert");
            node.insert_document(d).expect("insert");
        }

        let queries = sample_queries();
        let mut t_vist = Duration::ZERO;
        let mut t_path = Duration::ZERO;
        let mut t_node = Duration::ZERO;
        for (_, q) in &queries {
            t_vist += vist_bench::time_avg(3, || {
                let _ = vist.query(q, &QueryOptions::default()).expect("query");
            });
            t_path += vist_bench::time_avg(3, || {
                let _ = path.query(q).expect("query");
            });
            t_node += vist_bench::time_avg(3, || {
                let _ = node.query(q).expect("query");
            });
        }
        let k = queries.len() as u32;
        let s = vist.stats();
        rows.push(vec![
            max_depth.to_string(),
            elem_depth.to_string(),
            s.dkeys.to_string(),
            mib(s.store_bytes),
            format!("{:.2}", build.as_secs_f64()),
            ms(t_vist / k),
            ms(t_path / k),
            ms(t_node / k),
        ]);
        eprintln!("max_depth {max_depth}: done");
    }
    println!("\nAblation A6 — recursion depth (treebank-like, N={n}, avg over T1-T5)\n");
    print_table(
        &[
            "grammar depth",
            "doc depth",
            "dkeys",
            "ViST index (MiB)",
            "ViST build (s)",
            "ViST (ms)",
            "path idx (ms)",
            "node idx (ms)",
        ],
        &rows,
    );
    println!("\n(deep recursion multiplies distinct (symbol, prefix) pairs — the D-Ancestor");
    println!(" key space grows with depth while the node index is depth-insensitive)");
}
