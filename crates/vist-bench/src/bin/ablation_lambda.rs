//! **Ablation A1**: the scope-allocation λ parameter and the adaptive
//! divisor, measured by underflow behaviour, index size, and query time.
//!
//! The paper's fixed-λ scheme (Eq 5–6) exhausts a hot node's scope after
//! ~`126 / log2(λ)` children; this ablation quantifies how often that
//! happens on realistic data and what the adaptive divisor (λ+k) buys.
//!
//! ```sh
//! cargo run --release -p vist-bench --bin ablation_lambda
//! ```

use std::time::{Duration, Instant};

use vist_bench::{mib, ms, print_table, scaled};
use vist_core::{IndexOptions, QueryOptions, VistIndex};
use vist_datagen::synthetic::{SyntheticConfig, SyntheticGen};

fn main() {
    let n = scaled(8_000, 800);
    let mut rows = Vec::new();
    for (lambda, adaptive) in [
        (2u64, false),
        (16, false),
        (256, false),
        (2, true),
        (16, true),
        (256, true),
    ] {
        let mut gen = SyntheticGen::new(SyntheticConfig {
            k: 10,
            j: 8,
            l: 30,
            seed: 17,
        });
        let index = VistIndex::in_memory(IndexOptions {
            lambda,
            adaptive,
            store_documents: false,
            cache_pages: 1 << 16,
            ..Default::default()
        })
        .expect("index");
        let t0 = Instant::now();
        for _ in 0..n {
            let d = gen.document();
            index.insert_document(&d).expect("insert");
        }
        let build = t0.elapsed();

        let opts = QueryOptions::default();
        let queries: Vec<_> = (0..25)
            .map(|_| gen.query(6, vist_bench::wildcard_prob()))
            .collect();
        let mut total = Duration::ZERO;
        for q in &queries {
            let t = Instant::now();
            let _ = index.query_pattern(q, &opts).expect("query");
            total += t.elapsed();
        }
        let s = index.stats();
        rows.push(vec![
            lambda.to_string(),
            adaptive.to_string(),
            s.underflows.to_string(),
            s.deep_borrows.to_string(),
            mib(s.store_bytes),
            format!("{:.2}", build.as_secs_f64()),
            ms(total / queries.len() as u32),
        ]);
        eprintln!("λ={lambda} adaptive={adaptive}: done");
    }
    println!("\nAblation A1 — λ and adaptive divisor (synthetic, N={n}, L=30)\n");
    print_table(
        &[
            "λ",
            "adaptive",
            "tight underflows",
            "incarnations",
            "index (MiB)",
            "build (s)",
            "query (ms)",
        ],
        &rows,
    );
}
