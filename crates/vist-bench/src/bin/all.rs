//! Convenience wrapper: run every table/figure/ablation binary in sequence
//! (same process, same scale), so one command regenerates the whole
//! evaluation.
//!
//! ```sh
//! cargo run --release -p vist-bench --bin all
//! VIST_BENCH_SCALE=5 cargo run --release -p vist-bench --bin all
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "table4",
        "fig10a",
        "fig10b",
        "fig11a",
        "fig11b",
        "ablation_lambda",
        "ablation_clues",
        "ablation_verify",
        "ablation_pagesize",
        "ablation_refined",
        "ablation_depth",
    ];
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for bin in bins {
        println!("\n================ {bin} ================");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            failed.push(bin);
        }
    }
    if failed.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nfailed: {failed:?}");
        std::process::exit(1);
    }
}
