//! **Ablation A2**: statistical clues vs no clues in dynamic scope
//! allocation (paper §3.4.1, Eq 2–4 vs Eq 5–6).
//!
//! A [`StatsModel`] is collected from a sample of the data (as the paper
//! does: "we collect statistics during data generation for dynamic labeling
//! purpose"), then the same documents are indexed with and without it.
//!
//! ```sh
//! cargo run --release -p vist-bench --bin ablation_clues
//! ```

use std::time::Instant;

use vist_bench::{mib, print_table, scaled};
use vist_core::{AllocatorKind, IndexOptions, StatsModel, VistIndex};
use vist_datagen::synthetic::{SyntheticConfig, SyntheticGen};
use vist_seq::{document_to_sequence, SiblingOrder, SymbolTable};

fn main() {
    let n = scaled(8_000, 800);
    let sample = n / 10;
    let mut gen = SyntheticGen::new(SyntheticConfig {
        k: 10,
        j: 8,
        l: 30,
        seed: 19,
    });
    eprintln!("generating {n} documents ({sample} used as the stats sample) ...");
    let docs = gen.documents(n);

    // Collect clues from the sample.
    let mut table = SymbolTable::new();
    let sample_seqs: Vec<_> = docs[..sample]
        .iter()
        .map(|d| document_to_sequence(d, &mut table, &SiblingOrder::Lexicographic))
        .collect();
    let stats = StatsModel::from_sequences(&sample_seqs);
    eprintln!("stats model: {} contexts", stats.contexts());

    let mut rows = Vec::new();
    for (label, kind) in [
        ("no clues (Eq 5-6)", AllocatorKind::NoClues),
        ("with clues (Eq 2-4)", AllocatorKind::WithClues(stats)),
    ] {
        let index = VistIndex::in_memory(IndexOptions {
            lambda: 8,
            adaptive: true,
            allocator: kind,
            store_documents: false,
            cache_pages: 1 << 16,
            ..Default::default()
        })
        .expect("index");
        let t0 = Instant::now();
        for d in &docs {
            index.insert_document(d).expect("insert");
        }
        let build = t0.elapsed();
        let s = index.stats();
        rows.push(vec![
            label.to_string(),
            s.underflows.to_string(),
            s.deep_borrows.to_string(),
            s.nodes.to_string(),
            mib(s.store_bytes),
            format!("{:.2}", build.as_secs_f64()),
        ]);
    }
    println!("\nAblation A2 — allocation clues (synthetic, N={n}, L=30, λ=8)\n");
    print_table(
        &[
            "scheme",
            "tight underflows",
            "incarnations",
            "nodes",
            "index (MiB)",
            "build (s)",
        ],
        &rows,
    );
    println!("\n(clues should cut underflows by giving frequent followers larger subscopes)");
}
