//! **Table 4**: query response times of RIST/ViST vs the raw-path index
//! (Index Fabric) and the node index (XISS), on the eight Table 3 queries
//! over the DBLP-like and XMARK-like datasets.
//!
//! ```sh
//! cargo run --release -p vist-bench --bin table4
//! VIST_BENCH_SCALE=10 cargo run --release -p vist-bench --bin table4
//! ```
//!
//! Expected shape (paper): ViST is low and flat across all eight queries;
//! the path index is competitive on the plain path Q1 but degrades sharply
//! on wildcards (Q3, Q4) and branching queries (Q5–Q8); the node index pays
//! join costs everywhere, worst on the low-selectivity Q1.

use std::time::Instant;

use vist_baselines::{NodeIndex, PathIndex};
use vist_bench::{ms, print_table, scaled};
use vist_core::{IndexOptions, QueryOptions, VistIndex};
use vist_datagen::{dblp, xmark};

fn main() {
    let n_dblp = scaled(20_000, 2_000);
    let n_xmark = scaled(12_000, 1_200);
    eprintln!("generating {n_dblp} DBLP-like + {n_xmark} XMARK-like records ...");
    let dblp_docs = dblp::documents(n_dblp, 42);
    let xmark_docs = xmark::documents(n_xmark, 43);

    let mut queries: Vec<(&str, String, usize)> = Vec::new(); // (label, expr, dataset 0/1)
    for (l, q) in dblp::table3_queries() {
        queries.push((l, q, 0));
    }
    for (l, q) in xmark::table3_queries() {
        queries.push((l, q, 1));
    }

    eprintln!("building indexes ...");
    let datasets = [&dblp_docs, &xmark_docs];
    let mut vists = Vec::new();
    let mut paths = Vec::new();
    let mut nodes = Vec::new();
    for docs in datasets {
        let t0 = Instant::now();
        let v = VistIndex::in_memory(IndexOptions {
            store_documents: false,
            cache_pages: 1 << 16,
            ..Default::default()
        })
        .expect("vist");
        for d in docs.iter() {
            v.insert_document(d).expect("insert");
        }
        eprintln!("  vist built in {:.2?}", t0.elapsed());
        vists.push(v);

        let t0 = Instant::now();
        let mut p = PathIndex::in_memory(4096, 1 << 16).expect("path");
        for d in docs.iter() {
            p.insert_document(d).expect("insert");
        }
        eprintln!("  path index built in {:.2?}", t0.elapsed());
        paths.push(p);

        let t0 = Instant::now();
        let mut n = NodeIndex::in_memory(4096, 1 << 16).expect("node");
        for d in docs.iter() {
            n.insert_document(d).expect("insert");
        }
        eprintln!("  node index built in {:.2?}", t0.elapsed());
        nodes.push(n);
    }

    let iters: usize = 3;
    let mut rows = Vec::new();
    for (label, q, ds) in &queries {
        let opts = QueryOptions::default();
        let hits = vists[*ds].query(q, &opts).expect("query").doc_ids.len();
        let t_vist = vist_bench::time_avg(iters, || {
            let _ = vists[*ds].query(q, &opts).expect("query");
        });
        let t_path = vist_bench::time_avg(iters, || {
            let _ = paths[*ds].query(q).expect("query");
        });
        let t_node = vist_bench::time_avg(iters, || {
            let _ = nodes[*ds].query(q).expect("query");
        });
        rows.push(vec![
            (*label).to_string(),
            if *ds == 0 { "DBLP" } else { "XMARK" }.to_string(),
            ms(t_vist),
            ms(t_path),
            ms(t_node),
            hits.to_string(),
            q.clone(),
        ]);
    }
    println!("\nTable 4 — query response times (milliseconds)");
    println!("datasets: DBLP-like n={n_dblp}, XMARK-like n={n_xmark} (paper: 289,627 / SF 1.0)\n");
    print_table(
        &[
            "query",
            "dataset",
            "RIST/ViST",
            "raw path index (Index Fabric)",
            "node index (XISS)",
            "hits",
            "expression",
        ],
        &rows,
    );
}
