//! Ingest-path shootout on a file-backed tiered index.
//!
//! Four fresh indexes ingest the same generated DBLP-like corpus:
//!
//! * **serial, per-doc commit** — `insert_xml` + `flush` per document:
//!   the single-threaded dynamic path where every document is durable
//!   the moment its insert returns (one WAL commit + fsync each).
//! * **batch group commit @1 / @N threads** — `insert_batch` in chunks
//!   of `--batch-size` documents: parse/encode on 1 or N prepare
//!   workers, serialized apply through the per-batch dkey/edge caches,
//!   one WAL commit + fsync per *batch*.
//! * **bulk (packed segment)** — `bulk_build` external-sort ingest into
//!   a single read-only segment (see `docs/SEGMENTS.md`); the offline
//!   ceiling.
//!
//! All paths are probed with the paper's Table 3 queries afterwards and
//! must answer identically. The headline deltas: group commit vs
//! per-document commit (fsync amortization + cache reuse), and batch@N
//! vs batch@1 (prepare-phase thread scaling — bounded by available
//! cores).
//!
//! ```sh
//! cargo run --release -p vist-bench --bin bench_ingest                  # 50k docs, writes BENCH_ingest.json
//! cargo run --release -p vist-bench --bin bench_ingest -- --smoke       # CI-sized
//! cargo run --release -p vist-bench --bin bench_ingest -- --gate 5      # exit 1 if bulk speedup < 5x
//! cargo run --release -p vist-bench --bin bench_ingest -- --ingest-gate # exit 1 if batch@N clearly loses to batch@1
//! cargo run --release -p vist-bench --bin bench_ingest -- --ingest-threads 8
//! ```

use std::time::Instant;

use vist_bench::{mib, print_table, scaled};
use vist_core::{IndexOptions, QueryOptions, VistIndex};
use vist_datagen::dblp;
use vist_storage::testutil::TempDir;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let gate: Option<f64> = arg_value("--gate").map(|v| v.parse().expect("bad --gate"));
    let ingest_gate = std::env::args().any(|a| a == "--ingest-gate");
    let threads: usize = arg_value("--ingest-threads")
        .map(|v| v.parse().expect("bad --ingest-threads"))
        .unwrap_or(4)
        .max(2);
    let batch_size: usize = arg_value("--batch-size")
        .map(|v| v.parse().expect("bad --batch-size"))
        .unwrap_or(512);
    let n = if smoke {
        scaled(1_500, 500)
    } else {
        scaled(50_000, 50_000)
    };

    eprintln!("generating {n} DBLP-like records ...");
    let docs = dblp::documents(n, 42);
    let xmls: Vec<String> = docs.iter().map(|d| d.to_xml()).collect();
    let corpus_bytes: usize = xmls.iter().map(String::len).sum();
    let opts = IndexOptions {
        cache_pages: 1 << 14,
        ..Default::default()
    };
    let tmp = TempDir::new("bench-ingest");

    eprintln!("serial ingest, per-document commit ...");
    let insert_path = tmp.file("insert.idx");
    let t0 = Instant::now();
    let insert_idx = VistIndex::create_file(&insert_path, opts.clone()).expect("create");
    for xml in &xmls {
        insert_idx.insert_xml(xml).expect("insert");
        insert_idx.flush().expect("flush");
    }
    let insert_secs = t0.elapsed().as_secs_f64();
    let insert_stats = insert_idx.stats();

    // Group-commit ingest at 1 prepare thread and at `threads`: same
    // commit granularity (one fsync per batch), so the delta between the
    // two is purely prepare-phase parallelism.
    let batch_ingest = |threads: usize| -> (VistIndex, f64, vist_core::IndexStats) {
        eprintln!(
            "batch group-commit ingest ({batch_size}/batch, {threads} prepare thread(s)) ..."
        );
        let path = tmp.file(&format!("batch{threads}.idx"));
        let t0 = Instant::now();
        let idx = VistIndex::create_file(&path, opts.clone()).expect("create");
        for chunk in xmls.chunks(batch_size) {
            idx.insert_batch(chunk, threads).expect("insert_batch");
        }
        let secs = t0.elapsed().as_secs_f64();
        let stats = idx.stats();
        (idx, secs, stats)
    };
    let (batch1_idx, batch1_secs, batch1_stats) = batch_ingest(1);
    let (batchn_idx, batchn_secs, batchn_stats) = batch_ingest(threads);

    eprintln!("bulk (external-sort segment) ingest ...");
    let bulk_path = tmp.file("bulk.idx");
    let t0 = Instant::now();
    let bulk_idx = VistIndex::create_file(&bulk_path, opts).expect("create");
    bulk_idx.bulk_build(&xmls).expect("bulk_build");
    let bulk_secs = t0.elapsed().as_secs_f64();
    let bulk_stats = bulk_idx.stats();

    // Equivalence probe: every ingest path must answer the paper's
    // Table 3 queries identically (same index, different write paths).
    for (label, q) in dblp::table3_queries() {
        let a = insert_idx
            .query(&q, &QueryOptions::default())
            .expect("query");
        for (path, idx) in [
            ("batch@1", &batch1_idx),
            ("batch@N", &batchn_idx),
            ("bulk", &bulk_idx),
        ] {
            let b = idx.query(&q, &QueryOptions::default()).expect("query");
            assert_eq!(
                a.doc_ids, b.doc_ids,
                "{label}: {path} ingest disagrees with serial on {q}"
            );
        }
    }
    assert_eq!(insert_stats.documents, bulk_stats.documents);
    assert_eq!(insert_stats.documents, batchn_stats.documents);

    let fill = |idx: &VistIndex| -> f64 {
        let (delta, segs) = idx.tier_breakdown().expect("breakdown");
        let trees = |b: &vist_core::StoreBreakdown| {
            [&b.dancestor, &b.sancestor, &b.docid, &b.edges, &b.aux]
                .iter()
                .map(|t| (t.leaf_used_bytes, t.leaf_total_bytes))
                .fold((0u64, 0u64), |(u, t), (du, dt)| (u + du, t + dt))
        };
        let (mut used, mut total) = (0u64, 0u64);
        if segs.is_empty() {
            let (u, t) = trees(&delta);
            used += u;
            total += t;
        }
        for (_, b) in &segs {
            let (u, t) = trees(b);
            used += u;
            total += t;
        }
        if total == 0 {
            0.0
        } else {
            used as f64 / total as f64
        }
    };
    let insert_fill = fill(&insert_idx);
    let bulk_fill = fill(&bulk_idx);
    let batchn_fill = fill(&batchn_idx);
    let bulk_speedup = insert_secs / bulk_secs;
    let batch_speedup = insert_secs / batchn_secs;
    let thread_speedup = batch1_secs / batchn_secs;
    let cache_rate = |s: &vist_core::IndexStats| -> f64 {
        let hits = s.ingest_dkey_cache_hits + s.ingest_edge_cache_hits;
        let total = hits + s.ingest_dkey_cache_misses + s.ingest_edge_cache_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    };

    let row = |label: &str, secs: f64, bytes: u64, fill: f64| {
        vec![
            label.to_string(),
            format!("{secs:.2}"),
            format!("{:.0}", n as f64 / secs),
            mib(bytes),
            format!("{:.0}%", fill * 100.0),
        ]
    };
    println!(
        "\nbench_ingest — {n} DBLP-like documents ({} MiB of XML)",
        mib(corpus_bytes as u64)
    );
    print_table(
        &[
            "ingest path",
            "total (s)",
            "docs/s",
            "index MiB",
            "leaf fill",
        ],
        &[
            row(
                "serial (per-doc commit)",
                insert_secs,
                insert_stats.store_bytes,
                insert_fill,
            ),
            row(
                "batch group commit @1",
                batch1_secs,
                batch1_stats.store_bytes,
                fill(&batch1_idx),
            ),
            row(
                &format!("batch group commit @{threads}"),
                batchn_secs,
                batchn_stats.store_bytes,
                batchn_fill,
            ),
            row(
                "bulk (packed segment)",
                bulk_secs,
                bulk_stats.store_bytes + bulk_stats.segment_bytes,
                bulk_fill,
            ),
        ],
    );
    println!(
        "\ngroup-commit speedup vs per-doc commit: {batch_speedup:.2}x \
         ({threads} prepare threads: {thread_speedup:.2}x vs 1 thread; \
         ingest cache hit rate {:.0}%)",
        cache_rate(&batchn_stats) * 100.0,
    );
    println!("bulk-load speedup: {bulk_speedup:.2}x");

    if let Some(gate) = gate {
        if bulk_speedup < gate {
            eprintln!("FAIL: bulk-load speedup {bulk_speedup:.2}x below the {gate:.1}x gate");
            std::process::exit(1);
        }
        println!("gate passed ({bulk_speedup:.2}x >= {gate:.1}x)");
    }
    if ingest_gate {
        let (r1, rn) = (n as f64 / batch1_secs, n as f64 / batchn_secs);
        // Small tolerance: on a single-core runner prepare-phase threading
        // cannot help, and this gate only guards against the parallel path
        // *losing* throughput outright.
        if rn <= r1 * 0.9 {
            eprintln!(
                "FAIL: batch@{threads} ingest ({rn:.0} docs/s) slower than batch@1 ({r1:.0} docs/s)"
            );
            std::process::exit(1);
        }
        println!("ingest gate passed (batch@{threads}: {rn:.0} docs/s vs batch@1: {r1:.0} docs/s)");
    }

    if !smoke {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"ingest\",\n",
                "  \"corpus\": {{ \"generator\": \"dblp\", \"docs\": {}, \"seed\": 42, \"xml_bytes\": {} }},\n",
                "  \"insert_secs\": {:.3},\n",
                "  \"insert_docs_per_sec\": {:.1},\n",
                "  \"insert_index_bytes\": {},\n",
                "  \"insert_leaf_fill\": {:.4},\n",
                "  \"batch_size\": {},\n",
                "  \"batch1_secs\": {:.3},\n",
                "  \"batch1_docs_per_sec\": {:.1},\n",
                "  \"batch_threads\": {},\n",
                "  \"batch_secs\": {:.3},\n",
                "  \"batch_docs_per_sec\": {:.1},\n",
                "  \"batch_cache_hit_rate\": {:.4},\n",
                "  \"batch_speedup_vs_serial\": {:.3},\n",
                "  \"bulk_secs\": {:.3},\n",
                "  \"bulk_docs_per_sec\": {:.1},\n",
                "  \"bulk_index_bytes\": {},\n",
                "  \"bulk_leaf_fill\": {:.4},\n",
                "  \"speedup\": {:.3}\n",
                "}}\n"
            ),
            n,
            corpus_bytes,
            insert_secs,
            n as f64 / insert_secs,
            insert_stats.store_bytes,
            insert_fill,
            batch_size,
            batch1_secs,
            n as f64 / batch1_secs,
            threads,
            batchn_secs,
            n as f64 / batchn_secs,
            cache_rate(&batchn_stats),
            batch_speedup,
            bulk_secs,
            n as f64 / bulk_secs,
            bulk_stats.store_bytes + bulk_stats.segment_bytes,
            bulk_fill,
            bulk_speedup,
        );
        std::fs::write("BENCH_ingest.json", &json).expect("write json");
        eprintln!("wrote BENCH_ingest.json");
    }
}
