//! Bulk load vs insert-at-a-time ingest on a file-backed tiered index.
//!
//! Two fresh indexes ingest the same generated DBLP-like corpus: one
//! through the dynamic path (`insert_xml` per document + one final
//! flush, every node allocated a scope through Algorithm 3), one through
//! `bulk_build` (external-sort ingest into a single packed read-only
//! segment — see `docs/SEGMENTS.md`). Both are probed with the paper's
//! Table 3 queries afterwards and must answer identically; the point of
//! the packed path is the ingest *rate* and the ~100% leaf fill.
//!
//! ```sh
//! cargo run --release -p vist-bench --bin bench_ingest             # 50k docs, writes BENCH_ingest.json
//! cargo run --release -p vist-bench --bin bench_ingest -- --smoke  # CI-sized
//! cargo run --release -p vist-bench --bin bench_ingest -- --gate 5 # exit 1 if speedup < 5x
//! ```

use std::time::Instant;

use vist_bench::{mib, print_table, scaled};
use vist_core::{IndexOptions, QueryOptions, VistIndex};
use vist_datagen::dblp;
use vist_storage::testutil::TempDir;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let gate: Option<f64> = arg_value("--gate").map(|v| v.parse().expect("bad --gate"));
    let n = if smoke {
        scaled(1_500, 500)
    } else {
        scaled(50_000, 50_000)
    };

    eprintln!("generating {n} DBLP-like records ...");
    let docs = dblp::documents(n, 42);
    let xmls: Vec<String> = docs.iter().map(|d| d.to_xml()).collect();
    let corpus_bytes: usize = xmls.iter().map(String::len).sum();
    let opts = IndexOptions {
        cache_pages: 1 << 14,
        ..Default::default()
    };
    let tmp = TempDir::new("bench-ingest");

    eprintln!("insert-at-a-time ingest ...");
    let insert_path = tmp.file("insert.idx");
    let t0 = Instant::now();
    let insert_idx = VistIndex::create_file(&insert_path, opts.clone()).expect("create");
    for xml in &xmls {
        insert_idx.insert_xml(xml).expect("insert");
    }
    insert_idx.flush().expect("flush");
    let insert_secs = t0.elapsed().as_secs_f64();
    let insert_stats = insert_idx.stats();

    eprintln!("bulk (external-sort segment) ingest ...");
    let bulk_path = tmp.file("bulk.idx");
    let t0 = Instant::now();
    let bulk_idx = VistIndex::create_file(&bulk_path, opts).expect("create");
    bulk_idx.bulk_build(&xmls).expect("bulk_build");
    let bulk_secs = t0.elapsed().as_secs_f64();
    let bulk_stats = bulk_idx.stats();

    // Equivalence probe: both ingest paths must answer the paper's
    // Table 3 queries identically (the segment is the same index, packed).
    for (label, q) in dblp::table3_queries() {
        let a = insert_idx
            .query(&q, &QueryOptions::default())
            .expect("query");
        let b = bulk_idx.query(&q, &QueryOptions::default()).expect("query");
        assert_eq!(
            a.doc_ids, b.doc_ids,
            "{label}: ingest paths disagree on {q}"
        );
    }
    assert_eq!(insert_stats.documents, bulk_stats.documents);

    let fill = |idx: &VistIndex| -> f64 {
        let (delta, segs) = idx.tier_breakdown().expect("breakdown");
        let trees = |b: &vist_core::StoreBreakdown| {
            [&b.dancestor, &b.sancestor, &b.docid, &b.edges, &b.aux]
                .iter()
                .map(|t| (t.leaf_used_bytes, t.leaf_total_bytes))
                .fold((0u64, 0u64), |(u, t), (du, dt)| (u + du, t + dt))
        };
        let (mut used, mut total) = (0u64, 0u64);
        if segs.is_empty() {
            let (u, t) = trees(&delta);
            used += u;
            total += t;
        }
        for (_, b) in &segs {
            let (u, t) = trees(b);
            used += u;
            total += t;
        }
        if total == 0 {
            0.0
        } else {
            used as f64 / total as f64
        }
    };
    let insert_fill = fill(&insert_idx);
    let bulk_fill = fill(&bulk_idx);
    let speedup = insert_secs / bulk_secs;

    let row = |label: &str, secs: f64, bytes: u64, fill: f64| {
        vec![
            label.to_string(),
            format!("{secs:.2}"),
            format!("{:.0}", n as f64 / secs),
            mib(bytes),
            format!("{:.0}%", fill * 100.0),
        ]
    };
    println!(
        "\nbench_ingest — {n} DBLP-like documents ({} MiB of XML)",
        mib(corpus_bytes as u64)
    );
    print_table(
        &[
            "ingest path",
            "total (s)",
            "docs/s",
            "index MiB",
            "leaf fill",
        ],
        &[
            row(
                "insert-at-a-time",
                insert_secs,
                insert_stats.store_bytes,
                insert_fill,
            ),
            row(
                "bulk (packed segment)",
                bulk_secs,
                bulk_stats.store_bytes + bulk_stats.segment_bytes,
                bulk_fill,
            ),
        ],
    );
    println!("\nspeedup={speedup:.2}x");

    if let Some(gate) = gate {
        if speedup < gate {
            eprintln!("FAIL: bulk-load speedup {speedup:.2}x below the {gate:.1}x gate");
            std::process::exit(1);
        }
        println!("gate passed ({speedup:.2}x >= {gate:.1}x)");
    }

    if !smoke {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"ingest\",\n",
                "  \"corpus\": {{ \"generator\": \"dblp\", \"docs\": {}, \"seed\": 42, \"xml_bytes\": {} }},\n",
                "  \"insert_secs\": {:.3},\n",
                "  \"insert_docs_per_sec\": {:.1},\n",
                "  \"insert_index_bytes\": {},\n",
                "  \"insert_leaf_fill\": {:.4},\n",
                "  \"bulk_secs\": {:.3},\n",
                "  \"bulk_docs_per_sec\": {:.1},\n",
                "  \"bulk_index_bytes\": {},\n",
                "  \"bulk_leaf_fill\": {:.4},\n",
                "  \"speedup\": {:.3}\n",
                "}}\n"
            ),
            n,
            corpus_bytes,
            insert_secs,
            n as f64 / insert_secs,
            insert_stats.store_bytes,
            insert_fill,
            bulk_secs,
            n as f64 / bulk_secs,
            bulk_stats.store_bytes + bulk_stats.segment_bytes,
            bulk_fill,
            speedup,
        );
        std::fs::write("BENCH_ingest.json", &json).expect("write json");
        eprintln!("wrote BENCH_ingest.json");
    }
}
