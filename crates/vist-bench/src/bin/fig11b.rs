//! **Figure 11(b)**: index construction time vs dataset size, for RIST and
//! ViST (paper: synthetic k=10, j=8, L=32, up to 60M elements; both curves
//! linear, RIST above ViST since it materializes the suffix tree first).
//!
//! ```sh
//! cargo run --release -p vist-bench --bin fig11b
//! ```

use std::time::Instant;

use vist_bench::{print_table, scaled};
use vist_core::{IndexOptions, RistIndex, VistIndex};
use vist_datagen::synthetic::{SyntheticConfig, SyntheticGen};

fn main() {
    let max_docs = scaled(16_000, 1_600);
    let steps = 4;
    let opts = || IndexOptions {
        store_documents: false,
        cache_pages: 1 << 16,
        ..Default::default()
    };

    let mut rows = Vec::new();
    for step in 1..=steps {
        let n = max_docs * step / steps;
        let mut gen = SyntheticGen::new(SyntheticConfig {
            k: 10,
            j: 8,
            l: 32,
            seed: 13,
        });
        let docs = gen.documents(n);

        let t0 = Instant::now();
        let vist = VistIndex::in_memory(opts()).expect("vist");
        for d in &docs {
            vist.insert_document(d).expect("insert");
        }
        let t_vist = t0.elapsed();

        let t0 = Instant::now();
        let rist = RistIndex::build_in_memory(&docs, opts()).expect("rist");
        let t_rist = t0.elapsed();

        rows.push(vec![
            (n * 32).to_string(),
            format!("{:.2}", t_vist.as_secs_f64()),
            format!("{:.2}", t_rist.as_secs_f64()),
            vist.stats().nodes.to_string(),
            rist.stats().nodes.to_string(),
        ]);
        eprintln!("N={n}: vist {:.2?}, rist done", t_vist);
    }
    println!("\nFigure 11(b) — index construction time (synthetic, L=32)\n");
    print_table(
        &[
            "elements",
            "ViST build (s)",
            "RIST build (s)",
            "ViST nodes",
            "RIST nodes",
        ],
        &rows,
    );
    println!("\n(both should grow linearly in the element count)");
}
