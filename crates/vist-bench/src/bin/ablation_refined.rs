//! **Ablation A5**: Index Fabric's refined paths, quantifying the paper's
//! three criticisms (§1 and §5):
//!
//! 1. registered branching queries become one posting lookup;
//! 2. the speedup does not generalize — an unregistered variant of the
//!    same query shape still pays decomposition + joins;
//! 3. maintenance cost grows with the number of refined paths (every
//!    insert probes every registered pattern).
//!
//! ```sh
//! cargo run --release -p vist-bench --bin ablation_refined
//! ```

use std::time::Instant;

use vist_baselines::RefinedPathIndex;
use vist_bench::{ms, print_table, scaled};
use vist_core::{IndexOptions, QueryOptions, VistIndex};
use vist_datagen::xmark;

fn main() {
    let n = scaled(8_000, 800);
    eprintln!("generating {n} XMARK-like records ...");
    let docs = xmark::documents(n, 43);
    let queries = xmark::table3_queries();

    // --- effect on query time (registered vs not) -------------------------
    let mut refined = RefinedPathIndex::in_memory(4096, 1 << 14).expect("index");
    // Register Q6 and Q8 (the branching queries), leave Q7 unregistered.
    refined
        .register_refined(&queries[0].1)
        .expect("register Q6");
    refined
        .register_refined(&queries[2].1)
        .expect("register Q8");
    let t0 = Instant::now();
    for d in &docs {
        refined.insert_document(d).expect("insert");
    }
    let build_with = t0.elapsed();

    let mut plain = RefinedPathIndex::in_memory(4096, 1 << 14).expect("index");
    let t0 = Instant::now();
    for d in &docs {
        plain.insert_document(d).expect("insert");
    }
    let build_without = t0.elapsed();

    let vist = VistIndex::in_memory(IndexOptions {
        store_documents: false,
        cache_pages: 1 << 14,
        ..Default::default()
    })
    .expect("vist");
    for d in &docs {
        vist.insert_document(d).expect("insert");
    }

    let mut rows = Vec::new();
    for (label, q) in &queries {
        let t_ref = vist_bench::time_avg(3, || {
            let _ = refined.query(q).expect("query");
        });
        let t_plain = vist_bench::time_avg(3, || {
            let _ = plain.query(q).expect("query");
        });
        let t_vist = vist_bench::time_avg(3, || {
            let _ = vist.query(q, &QueryOptions::default()).expect("query");
        });
        let registered = matches!(*label, "Q6" | "Q8");
        rows.push(vec![
            (*label).to_string(),
            if registered { "yes" } else { "no" }.to_string(),
            ms(t_ref),
            ms(t_plain),
            ms(t_vist),
        ]);
    }
    println!("\nAblation A5 — refined paths (XMARK-like, N={n}; Q6+Q8 registered)\n");
    print_table(
        &[
            "query",
            "registered",
            "Fabric+refined (ms)",
            "Fabric raw (ms)",
            "ViST (ms)",
        ],
        &rows,
    );

    // --- maintenance cost vs registry size --------------------------------
    println!(
        "\nbuild time: raw {:.2}s, with 2 refined paths {:.2}s",
        build_without.as_secs_f64(),
        build_with.as_secs_f64()
    );
    let mut rows = Vec::new();
    for n_refined in [0usize, 4, 16, 64] {
        let mut idx = RefinedPathIndex::in_memory(4096, 1 << 14).expect("index");
        for i in 0..n_refined {
            idx.register_refined(&format!(
                "/site//item[location='US']/mail/date[text='x{i}']"
            ))
            .expect("register");
        }
        let t0 = Instant::now();
        for d in docs.iter().take(n / 2) {
            idx.insert_document(d).expect("insert");
        }
        rows.push(vec![
            n_refined.to_string(),
            format!("{:.2}", t0.elapsed().as_secs_f64()),
        ]);
    }
    println!("\nmaintenance cost (insert {} docs):\n", n / 2);
    print_table(&["refined paths", "insert time (s)"], &rows);
    println!("\n(the paper: \"the number of refined paths can have a huge impact on the");
    println!(" size and the maintenance cost of the index\" — each insert probes each)");
}
