//! **Ablation A4**: B+Tree page size. The paper uses 2 KiB Berkeley DB
//! pages; this sweep shows size/time trade-offs at 2–16 KiB on the
//! DBLP-like workload.
//!
//! ```sh
//! cargo run --release -p vist-bench --bin ablation_pagesize
//! ```

use std::time::{Duration, Instant};

use vist_bench::{mib, ms, print_table, scaled};
use vist_core::{IndexOptions, QueryOptions, VistIndex};
use vist_datagen::dblp;

fn main() {
    let n = scaled(10_000, 1_000);
    eprintln!("generating {n} DBLP-like records ...");
    let docs = dblp::documents(n, 42);
    let queries = dblp::table3_queries();

    let mut rows = Vec::new();
    for page_size in [2048usize, 4096, 8192, 16384] {
        let cache_pages = (64usize << 20) / page_size; // fixed 64 MiB cache
        let index = VistIndex::in_memory(IndexOptions {
            page_size,
            cache_pages,
            store_documents: false,
            ..Default::default()
        })
        .expect("index");
        let t0 = Instant::now();
        for d in &docs {
            index.insert_document(d).expect("insert");
        }
        let build = t0.elapsed();

        let opts = QueryOptions::default();
        let mut total = Duration::ZERO;
        for (_, q) in &queries {
            let t = Instant::now();
            let _ = index.query(q, &opts).expect("query");
            total += t.elapsed();
        }
        let s = index.stats();
        rows.push(vec![
            page_size.to_string(),
            mib(s.store_bytes),
            format!("{:.2}", build.as_secs_f64()),
            ms(total / queries.len() as u32),
        ]);
        eprintln!("page {page_size}: done");
    }
    println!("\nAblation A4 — page size (DBLP-like, N={n}; paper used 2048)\n");
    print_table(
        &[
            "page size",
            "index (MiB)",
            "build (s)",
            "avg Q1-Q5 time (ms)",
        ],
        &rows,
    );
}
