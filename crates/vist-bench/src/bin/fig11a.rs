//! **Figure 11(a)**: index size for the DBLP-like and XMARK-like datasets,
//! broken down into the DocId B+Tree and the combined D-Ancestor +
//! S-Ancestor B+Trees (paper: DBLP 301 MB of data; XMARK items 52 MB).
//!
//! ```sh
//! cargo run --release -p vist-bench --bin fig11a
//! ```
//!
//! Expected shape: the DocId tree holds one entry per document (N entries)
//! and is much smaller than the D/S-Ancestor trees (up to N·L entries);
//! total index size is a small multiple of the raw sequence footprint.

use vist_bench::{mib, print_table, scaled};
use vist_core::{IndexOptions, VistIndex};
use vist_datagen::{dblp, xmark};
use vist_seq::{document_to_sequence, SiblingOrder, SymbolTable};
use vist_xml::Document;

fn measure(name: &str, docs: &[Document]) -> Vec<String> {
    // Raw data footprint (serialized XML) and sequence footprint.
    let data_bytes: usize = docs.iter().map(|d| d.to_xml().len()).sum();
    let mut table = SymbolTable::new();
    let total_elems: usize = docs
        .iter()
        .map(|d| document_to_sequence(d, &mut table, &SiblingOrder::Lexicographic).len())
        .sum();

    let index = VistIndex::in_memory(IndexOptions {
        store_documents: false, // size the *index*, not a document store
        cache_pages: 1 << 16,
        ..Default::default()
    })
    .expect("index");
    for d in docs {
        index.insert_document(d).expect("insert");
    }
    let s = index.stats();
    let b = index.store().tree_breakdown().expect("breakdown");
    // The two B+Trees of the paper's figure: the DocId tree (one entry per
    // document) and the combined D-Ancestor + S-Ancestor trees (one entry
    // per dkey + per node).
    vec![
        name.to_string(),
        docs.len().to_string(),
        total_elems.to_string(),
        mib(data_bytes as u64),
        mib(b.docid.total_bytes),
        mib(b.ds_ancestor_bytes()),
        mib(b.edges.total_bytes),
        mib(s.store_bytes),
        format!("{:.2}", s.store_bytes as f64 / data_bytes as f64),
    ]
}

fn main() {
    let n_dblp = scaled(20_000, 2_000);
    let n_xmark = scaled(12_000, 1_200);
    eprintln!("generating and indexing ...");
    let rows = vec![
        measure("DBLP-like", &dblp::documents(n_dblp, 42)),
        measure("XMARK-like", &xmark::documents(n_xmark, 43)),
    ];
    println!("\nFigure 11(a) — index size\n");
    print_table(
        &[
            "dataset",
            "records",
            "elements",
            "data (MiB)",
            "DocId tree (MiB)",
            "D+S-Ancestor trees (MiB)",
            "edges tree (MiB)",
            "index (MiB)",
            "index/data",
        ],
        &rows,
    );
    println!("\n(the paper's figure shows the DocId tree dwarfed by the combined D/S trees;");
    println!(" the edges tree is our insert-path addition, excluded from the paper's design)");
}
