//! Work-list match engine vs the previous recursive, materializing engine,
//! across worker counts.
//!
//! The baseline reimplements the pre-rewrite engine faithfully on the
//! public `Store` API: recursive `step`/`descend`, every B+Tree probe
//! materializing a `Vec`, one DocId range query per final scope, no
//! dedup of converging wildcard expansions. The work-list engine streams
//! every probe through cursors, merges final scopes before DocId
//! resolution, dedups identical sub-problems, and distributes frames over
//! `N` workers.
//!
//! Wildcard-heavy queries make the no-dedup baseline exponential, so each
//! candidate query is admitted only if the baseline answers it within a
//! fixed node-visit budget; rejected candidates are counted and reported
//! (the work-list engine never does more per-sequence work than the
//! baseline, so admitted queries are tractable for both).
//!
//! ```sh
//! cargo run --release -p vist-bench --bin parallel_match            # full, writes BENCH_parallel_match.json
//! cargo run --release -p vist-bench --bin parallel_match -- --smoke # quick CI check, no JSON
//! ```

use std::collections::BTreeSet;
use std::time::Duration;

use vist_bench::{ms, print_table, scaled, time_avg};
use vist_core::{search_sequences, DocId, IndexOptions, SearchMode, Store, VistIndex};
use vist_datagen::synthetic::{SyntheticConfig, SyntheticGen};
use vist_query::{translate, QueryElem, QuerySequence, TranslateOptions};
use vist_seq::{dkey, PathSym, Prefix, Sym, Symbol};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WILDCARD_PROB: f64 = 0.4;

// ---------------------------------------------------------------------------
// Baseline: the previous engine, reproduced on the public Store API.
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum OldError {
    Store(vist_core::Error),
    /// The query exceeded the per-query node-visit budget.
    Budget,
}

impl From<vist_core::Error> for OldError {
    fn from(e: vist_core::Error) -> Self {
        OldError::Store(e)
    }
}

type OldResult<T> = std::result::Result<T, OldError>;

/// `None` = not yet looked up; `Some(None)` = looked up, key absent.
type CachedLookup = Option<Option<(Vec<Symbol>, u64)>>;

struct OldCtx {
    paths: Vec<Vec<Symbol>>,
    concrete_cache: Vec<CachedLookup>,
    visits: u64,
    budget: u64,
}

impl OldCtx {
    fn charge(&mut self, n: u64) -> OldResult<()> {
        self.visits += n;
        if self.visits > self.budget {
            return Err(OldError::Budget);
        }
        Ok(())
    }
}

fn old_lookup_prefix(qe: &QueryElem, paths: &[Vec<Symbol>]) -> Prefix {
    let mut steps: Vec<PathSym> = match qe.parent {
        Some(p) => paths[p].iter().map(|&s| PathSym::Tag(s)).collect(),
        None => Vec::new(),
    };
    steps.extend_from_slice(&qe.steps_after_parent);
    Prefix(steps)
}

#[allow(clippy::too_many_arguments)]
fn old_step(
    store: &Store,
    qseq: &QuerySequence,
    qi: usize,
    prev_n: u128,
    prev_end: u128,
    ctx: &mut OldCtx,
    out: &mut BTreeSet<DocId>,
) -> OldResult<()> {
    if qi == qseq.elems.len() {
        out.extend(store.docids_in_range(prev_n, prev_end)?);
        return Ok(());
    }
    let qe = &qseq.elems[qi];
    if !qe.prefix.has_wildcard() {
        if ctx.concrete_cache[qi].is_none() {
            let concrete = qe.prefix.as_concrete().expect("concrete prefix");
            let key = dkey::encode(qe.sym, &concrete);
            ctx.concrete_cache[qi] = Some(store.dkey_get(&key)?.map(|id| (concrete, id)));
        }
        let Some(Some((prefix_syms, dkid))) = ctx.concrete_cache[qi].clone() else {
            return Ok(());
        };
        return old_descend(
            store,
            qseq,
            qi,
            prev_n,
            prev_end,
            prefix_syms,
            dkid,
            ctx,
            out,
        );
    }
    let pattern = old_lookup_prefix(qe, &ctx.paths);
    let candidates: Vec<(Vec<Symbol>, u64)> = match dkey::query_for(qe.sym, &pattern) {
        dkey::DKeyQuery::Exact(key) => match store.dkey_get(&key)? {
            Some(id) => {
                let (_, prefix_syms) = dkey::decode(&key);
                vec![(prefix_syms, id)]
            }
            None => Vec::new(),
        },
        dkey::DKeyQuery::Range { lo, hi, pattern } => store
            .dkey_scan(&lo, &hi)?
            .into_iter()
            .filter_map(|(key, id)| {
                let (_, prefix_syms) = dkey::decode(&key);
                pattern.matches(&prefix_syms).then_some((prefix_syms, id))
            })
            .collect(),
    };
    for (prefix_syms, dkid) in candidates {
        old_descend(
            store,
            qseq,
            qi,
            prev_n,
            prev_end,
            prefix_syms,
            dkid,
            ctx,
            out,
        )?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn old_descend(
    store: &Store,
    qseq: &QuerySequence,
    qi: usize,
    prev_n: u128,
    prev_end: u128,
    prefix_syms: Vec<Symbol>,
    dkid: u64,
    ctx: &mut OldCtx,
    out: &mut BTreeSet<DocId>,
) -> OldResult<()> {
    let nodes = store.nodes_in_scope(dkid, prev_n, prev_end)?;
    ctx.charge(nodes.len() as u64 + 1)?;
    if nodes.is_empty() {
        return Ok(());
    }
    let qe = &qseq.elems[qi];
    ctx.paths[qi] = prefix_syms;
    if let Sym::Tag(t) = qe.sym {
        ctx.paths[qi].push(t);
    }
    for node in nodes {
        old_step(store, qseq, qi + 1, node.n, node.end(), ctx, out)?;
    }
    Ok(())
}

fn old_engine(store: &Store, seqs: &[QuerySequence], budget: u64) -> OldResult<BTreeSet<DocId>> {
    let mut out = BTreeSet::new();
    for qs in seqs {
        if qs.elems.is_empty() {
            out.extend(store.docids_in_range(0, vist_seq::MAX_SCOPE)?);
            continue;
        }
        let mut ctx = OldCtx {
            paths: vec![Vec::new(); qs.elems.len()],
            concrete_cache: vec![None; qs.elems.len()],
            visits: 0,
            budget,
        };
        old_step(store, qs, 0, 0, vist_seq::MAX_SCOPE, &mut ctx, &mut out)?;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 800 } else { scaled(6_000, 1_500) };
    let per_len = if smoke { 3 } else { 10 };
    let iters = if smoke { 1 } else { 3 };
    let budget: u64 = if smoke { 20_000 } else { 200_000 };

    let cfg = SyntheticConfig {
        k: 10,
        j: 8,
        l: 30,
        seed: 7,
    };
    eprintln!("generating {n} synthetic documents (k=10, j=8, L=30) ...");
    let mut gen = SyntheticGen::new(cfg);
    let index = VistIndex::in_memory(IndexOptions {
        store_documents: false,
        cache_pages: 1 << 16,
        ..Default::default()
    })
    .expect("index");
    for _ in 0..n {
        let d = gen.document();
        index.insert_document(&d).expect("insert");
    }
    eprintln!("built ({} nodes)", index.stats().nodes);
    let store = index.store();

    // Wildcard-heavy query mix: the code paths that diverge between the
    // engines (range scans, converging expansions, overlapping scopes).
    // Candidates whose baseline cost exceeds the visit budget are rejected
    // and counted — the baseline is exponential on some wildcard patterns.
    let mut table = index.table();
    let topts = TranslateOptions::default();
    let mut query_seqs: Vec<Vec<QuerySequence>> = Vec::new();
    let mut rejected = 0usize;
    for qlen in (2..=8).step_by(2) {
        let mut kept = 0usize;
        let mut attempts = 0usize;
        while kept < per_len && attempts < per_len * 10 {
            attempts += 1;
            let pattern = gen.query(qlen, WILDCARD_PROB);
            let seqs = translate(&pattern, &mut table, &topts).sequences;
            match old_engine(store, &seqs, budget) {
                Ok(_) => {
                    query_seqs.push(seqs);
                    kept += 1;
                }
                Err(OldError::Budget) => rejected += 1,
                Err(OldError::Store(e)) => panic!("store error during selection: {e}"),
            }
        }
    }
    eprintln!(
        "selected {} queries ({rejected} rejected: baseline over {budget}-visit budget)",
        query_seqs.len()
    );

    // Correctness gate: every engine and worker count must agree.
    for seqs in &query_seqs {
        let expect = old_engine(store, seqs, budget).expect("baseline");
        for &w in &WORKER_COUNTS {
            let got = search_sequences(store, seqs, w, SearchMode::Docs).expect("worklist");
            assert_eq!(got.docs, expect, "engines disagree at {w} workers");
        }
    }

    let run_old = || {
        for seqs in &query_seqs {
            let _ = old_engine(store, seqs, budget).expect("baseline");
        }
    };
    let base = time_avg(iters, run_old);
    let mut rows = vec![vec![
        "baseline (recursive, materializing)".to_string(),
        ms(base),
        "1.00".to_string(),
    ]];
    let mut worker_ms: Vec<(usize, Duration)> = Vec::new();
    for &w in &WORKER_COUNTS {
        let t = time_avg(iters, || {
            for seqs in &query_seqs {
                let _ = search_sequences(store, seqs, w, SearchMode::Docs).expect("worklist");
            }
        });
        rows.push(vec![
            format!("work-list, {w} worker(s)"),
            ms(t),
            format!("{:.2}", base.as_secs_f64() / t.as_secs_f64()),
        ]);
        worker_ms.push((w, t));
    }

    println!(
        "\nparallel_match — {} queries over {n} documents, mean of {iters} pass(es)",
        query_seqs.len()
    );
    print_table(&["engine", "total (ms)", "speedup vs baseline"], &rows);

    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("\nhost cores: {cores}");

    if !smoke {
        let t4 = worker_ms
            .iter()
            .find(|(w, _)| *w == 4)
            .map(|(_, t)| *t)
            .expect("4-worker row");
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"parallel_match\",\n",
                "  \"corpus\": {{ \"generator\": \"synthetic\", \"docs\": {}, \"k\": 10, \"j\": 8, \"l\": 30, \"seed\": 7 }},\n",
                "  \"queries\": {}, \"wildcard_prob\": {}, \"iters\": {}, \"baseline_visit_budget\": {},\n",
                "  \"host_cores\": {},\n",
                "  \"baseline_recursive_materializing_ms\": {:.3},\n",
                "  \"worklist_ms\": {{ {} }},\n",
                "  \"speedup_4_workers_vs_baseline\": {:.3}\n",
                "}}\n"
            ),
            n,
            query_seqs.len(),
            WILDCARD_PROB,
            iters,
            budget,
            cores,
            base.as_secs_f64() * 1e3,
            worker_ms
                .iter()
                .map(|(w, t)| format!("\"{w}\": {:.3}", t.as_secs_f64() * 1e3))
                .collect::<Vec<_>>()
                .join(", "),
            base.as_secs_f64() / t4.as_secs_f64(),
        );
        std::fs::write("BENCH_parallel_match.json", &json).expect("write json");
        eprintln!("wrote BENCH_parallel_match.json");
    }
}
