//! **Figure 10(a)**: query processing time vs query length, on the
//! synthetic dataset (paper: k=10, j=8, L=30, N=1,000,000; query lengths
//! 2–12).
//!
//! ```sh
//! cargo run --release -p vist-bench --bin fig10a
//! VIST_BENCH_SCALE=10 cargo run --release -p vist-bench --bin fig10a
//! ```
//!
//! Expected shape: time grows with query length ("longer queries require
//! larger amount of index traversals").

use std::time::{Duration, Instant};

use vist_bench::{ms, print_table, scaled};
use vist_core::{IndexOptions, QueryOptions, VistIndex};
use vist_datagen::synthetic::{SyntheticConfig, SyntheticGen};

fn main() {
    let n = scaled(30_000, 3_000);
    let cfg = SyntheticConfig {
        k: 10,
        j: 8,
        l: 30,
        seed: 7,
    };
    eprintln!("generating {n} synthetic sequences (k=10, j=8, L=30) ...");
    let mut gen = SyntheticGen::new(cfg);

    let index = VistIndex::in_memory(IndexOptions {
        store_documents: false,
        cache_pages: 1 << 16,
        ..Default::default()
    })
    .expect("index");
    let t0 = Instant::now();
    for _ in 0..n {
        let d = gen.document();
        index.insert_document(&d).expect("insert");
    }
    eprintln!(
        "built in {:.2?} ({} nodes)",
        t0.elapsed(),
        index.stats().nodes
    );

    // As in the paper, reported time excludes result output; each point
    // averages many random queries of that length.
    let queries_per_point = 25;
    let opts = QueryOptions::default();
    let mut rows = Vec::new();
    for qlen in (2..=12).step_by(2) {
        let queries: Vec<_> = (0..queries_per_point)
            .map(|_| gen.query(qlen, vist_bench::wildcard_prob()))
            .collect();
        let mut match_total = Duration::ZERO;
        let mut full_total = Duration::ZERO;
        let mut hits = 0usize;
        for q in &queries {
            // Match time, excluding DocId output (what the paper plots).
            let t = Instant::now();
            let (scopes, _) = index.match_scopes(q, &opts).expect("match");
            match_total += t.elapsed();
            let _ = scopes;
            // Full time including DocId resolution, for reference.
            let t = Instant::now();
            let r = index.query_pattern(q, &opts).expect("query");
            full_total += t.elapsed();
            hits += r.doc_ids.len();
        }
        rows.push(vec![
            qlen.to_string(),
            ms(match_total / queries_per_point as u32),
            ms(full_total / queries_per_point as u32),
            format!("{:.1}", hits as f64 / queries_per_point as f64),
        ]);
    }
    println!("\nFigure 10(a) — query time vs query length (synthetic, N={n}, L=30)");
    println!("(the paper plots match time, excluding DocId output)\n");
    print_table(
        &[
            "query length",
            "match time (ms)",
            "incl. DocId output (ms)",
            "avg hits",
        ],
        &rows,
    );
}
