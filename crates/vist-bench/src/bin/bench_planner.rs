//! Cost-based planner vs naive translation order on a wildcard-heavy,
//! skewed-fan-out workload.
//!
//! The corpus is adversarial for an unplanned engine: every document is a
//! root with many sibling subtrees, only one of which carries the tail the
//! queries ask for. Naive order expands every wildcard candidate and
//! descends into every dead sibling; the planner's statistics probe kills
//! the dead expansions before they spawn work items. Both engines must
//! return bit-identical answers — the planner only reorders and prunes
//! provably-empty work — so the benchmark gates on equality first, then
//! reports match work-items and wall-clock (p50/mean) for plan-on vs
//! `no_plan`, plus `limit`-style early termination.
//!
//! ```sh
//! cargo run --release -p vist-bench --bin bench_planner            # full, writes BENCH_planner.json
//! cargo run --release -p vist-bench --bin bench_planner -- --smoke # quick CI check, no JSON
//! ```

use std::time::{Duration, Instant};

use vist_bench::{ms, print_table, scaled};
use vist_core::{IndexOptions, QueryOptions, VistIndex};

/// Sibling subtrees per document; exactly one carries the queried tail.
const FANOUT: usize = 40;

fn doc(i: usize) -> String {
    let mut xml = String::from("<r>");
    for m in 0..FANOUT {
        if m == 7 {
            xml.push_str(&format!("<m{m}><c><d>hit{}</d></c></m{m}>", i % 5));
        } else {
            // Dead siblings still share the `<c>` child so the wildcard
            // step alone cannot distinguish them — only the planner's
            // child probe on the `/c/d` tail can.
            xml.push_str(&format!("<m{m}><c>miss{}</c></m{m}>", (i + m) % 7));
        }
    }
    xml.push_str("</r>");
    xml
}

/// The query mix: wildcard steps over the skewed fan-out. All of them are
/// answerable from the single live sibling; naive order pays for all 40.
fn queries() -> Vec<&'static str> {
    vec!["/r/*/c/d", "//c/d", "/r/*/c/d[text='hit1']", "/r/*/c[d]"]
}

fn opts(no_plan: bool, limit: Option<usize>) -> QueryOptions {
    QueryOptions {
        no_plan,
        limit,
        ..Default::default()
    }
}

/// Run every query once; return (total work items, per-pass wall time).
fn run_pass(index: &VistIndex, no_plan: bool) -> (u64, Duration) {
    let start = Instant::now();
    let mut work = 0u64;
    for q in queries() {
        let r = index.query(q, &opts(no_plan, None)).expect("query");
        work += r.stats.work_items;
    }
    (work, start.elapsed())
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 60 } else { scaled(2_000, 500) };
    let passes = if smoke { 3 } else { 15 };

    eprintln!("building {n} documents with {FANOUT}-way skewed fan-out ...");
    let index = VistIndex::in_memory(IndexOptions {
        store_documents: false,
        cache_pages: 1 << 16,
        ..Default::default()
    })
    .expect("index");
    for i in 0..n {
        index.insert_xml(&doc(i)).expect("insert");
    }
    eprintln!("built ({} nodes)", index.stats().nodes);

    // Correctness gate: planned and unplanned answers must be identical,
    // and limited answers must be size-k subsets of the full answer.
    for q in queries() {
        let planned = index.query(q, &opts(false, None)).expect("planned");
        let naive = index.query(q, &opts(true, None)).expect("unplanned");
        assert_eq!(
            planned.doc_ids, naive.doc_ids,
            "planner changed answers for {q}"
        );
        let k = 5.min(planned.doc_ids.len());
        let limited = index.query(q, &opts(false, Some(k))).expect("limited");
        assert_eq!(limited.doc_ids.len(), k, "limit size for {q}");
        assert!(
            limited.doc_ids.iter().all(|d| planned.doc_ids.contains(d)),
            "limit returned non-answer for {q}"
        );
    }

    // Warm the pool, then measure.
    let (work_planned, _) = run_pass(&index, false);
    let (work_naive, _) = run_pass(&index, true);
    let mut planned_times = Vec::with_capacity(passes);
    let mut naive_times = Vec::with_capacity(passes);
    for _ in 0..passes {
        planned_times.push(run_pass(&index, false).1);
        naive_times.push(run_pass(&index, true).1);
    }
    let planned_p50 = median(planned_times.clone());
    let naive_p50 = median(naive_times.clone());
    let mean = |xs: &[Duration]| xs.iter().sum::<Duration>() / xs.len() as u32;
    let planned_mean = mean(&planned_times);
    let naive_mean = mean(&naive_times);

    // Early termination: limit 1 on the heaviest query.
    let limit_q = "/r/*/c/d";
    let limit_work = index
        .query(limit_q, &opts(false, Some(1)))
        .expect("limit")
        .stats
        .work_items;
    let full_work = index
        .query(limit_q, &opts(false, None))
        .expect("full")
        .stats
        .work_items;

    println!(
        "\nbench_planner — {} queries over {n} documents ({FANOUT}-way fan-out), {passes} pass(es)",
        queries().len()
    );
    print_table(
        &["engine", "work items", "p50 (ms)", "mean (ms)"],
        &[
            vec![
                "planned (cost-based)".into(),
                work_planned.to_string(),
                ms(planned_p50),
                ms(planned_mean),
            ],
            vec![
                "naive order (--no-plan)".into(),
                work_naive.to_string(),
                ms(naive_p50),
                ms(naive_mean),
            ],
        ],
    );
    println!(
        "work-item reduction: {:.2}x; limit-1 on {limit_q}: {limit_work} vs {full_work} work items",
        work_naive as f64 / work_planned.max(1) as f64
    );

    assert!(
        work_planned <= work_naive,
        "planned order must never do more match work than naive \
         (planned {work_planned} vs naive {work_naive})"
    );
    if !smoke {
        assert!(
            work_planned * 2 <= work_naive,
            "expected at least a 2x work-item reduction \
             (planned {work_planned} vs naive {work_naive})"
        );
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"planner\",\n",
                "  \"corpus\": {{ \"docs\": {}, \"fanout\": {}, \"live_siblings\": 1 }},\n",
                "  \"queries\": {}, \"passes\": {},\n",
                "  \"planned_work_items\": {}, \"naive_work_items\": {},\n",
                "  \"work_item_reduction\": {:.3},\n",
                "  \"planned_p50_ms\": {:.3}, \"naive_p50_ms\": {:.3},\n",
                "  \"planned_mean_ms\": {:.3}, \"naive_mean_ms\": {:.3},\n",
                "  \"limit1_work_items\": {}, \"full_work_items\": {}\n",
                "}}\n"
            ),
            n,
            FANOUT,
            queries().len(),
            passes,
            work_planned,
            work_naive,
            work_naive as f64 / work_planned.max(1) as f64,
            planned_p50.as_secs_f64() * 1e3,
            naive_p50.as_secs_f64() * 1e3,
            planned_mean.as_secs_f64() * 1e3,
            naive_mean.as_secs_f64() * 1e3,
            limit_work,
            full_work,
        );
        std::fs::write("BENCH_planner.json", &json).expect("write json");
        eprintln!("wrote BENCH_planner.json");
    }
}
