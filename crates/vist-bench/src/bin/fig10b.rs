//! **Figure 10(b)**: query processing time vs data size, synthetic
//! sequences of average length 60, queries of length 6 (paper: N up to
//! 12,000,000 elements).
//!
//! ```sh
//! cargo run --release -p vist-bench --bin fig10b
//! ```
//!
//! Expected shape: sub-linear growth — "our index structure scales up
//! sub-linearly with the increase of data size". The index is grown
//! *incrementally* (ViST is dynamic) and the same fixed query workload is
//! timed after each growth step; as in the paper, the reported time is the
//! match cost excluding DocId output.

use std::time::{Duration, Instant};

use vist_bench::{ms, print_table, scaled};
use vist_core::{IndexOptions, QueryOptions, VistIndex};
use vist_datagen::synthetic::{SyntheticConfig, SyntheticGen};

fn main() {
    let max_docs = scaled(20_000, 2_000);
    let steps = 5;
    let queries_per_point = 30;
    let qlen = 6;

    // A fixed query workload, independent of the data generator's state.
    let mut qgen = SyntheticGen::new(SyntheticConfig {
        k: 10,
        j: 8,
        l: 60,
        seed: 1234,
    });
    let queries: Vec<_> = (0..queries_per_point)
        .map(|_| qgen.query(qlen, vist_bench::wildcard_prob()))
        .collect();

    let mut gen = SyntheticGen::new(SyntheticConfig {
        k: 10,
        j: 8,
        l: 60,
        seed: 11,
    });
    let index = VistIndex::in_memory(IndexOptions {
        store_documents: false,
        cache_pages: 1 << 16,
        ..Default::default()
    })
    .expect("index");

    let opts = QueryOptions::default();
    let mut rows = Vec::new();
    let mut inserted = 0usize;
    let mut build_total = Duration::ZERO;
    for step in 1..=steps {
        let target = max_docs * step / steps;
        let t0 = Instant::now();
        while inserted < target {
            let d = gen.document();
            index.insert_document(&d).expect("insert");
            inserted += 1;
        }
        build_total += t0.elapsed();

        let mut total = Duration::ZERO;
        let mut hits = 0usize;
        for q in &queries {
            let t = Instant::now();
            let (scopes, _) = index.match_scopes(q, &opts).expect("match");
            total += t.elapsed();
            hits += scopes.len();
        }
        rows.push(vec![
            inserted.to_string(),
            (inserted * 60).to_string(),
            ms(total / queries.len() as u32),
            hits.to_string(),
            format!("{:.2}", build_total.as_secs_f64()),
        ]);
        eprintln!("N={inserted}: done");
    }
    println!("\nFigure 10(b) — query time vs data size (synthetic, L=60, query length {qlen})\n");
    print_table(
        &[
            "sequences",
            "elements",
            "avg match time (ms)",
            "matched scopes",
            "cumulative build (s)",
        ],
        &rows,
    );
    println!("\n(sub-linear: time should grow far slower than the element count)");
}
