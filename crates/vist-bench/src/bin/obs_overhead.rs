//! Cost of the `vist-obs` instrumentation on the query hot path.
//!
//! One binary measures the same query workload in three in-process
//! configurations:
//!
//!   * **metrics on, tracing off** — the production default (counters,
//!     gauges and latency histograms move; no span trees are built);
//!   * **timing gate off** — counters still move but `vist_obs::now()`
//!     returns `None`, so no `Instant` reads and no histogram records;
//!   * **tracing on** — full hierarchical span trees per query;
//!   * **attribution on** — a per-query [`vist_obs::AttrCounters`] block
//!     installed around every query, exactly as the serve path does, so
//!     every buffer-pool touch pays the thread-local charge.
//!
//! Compile with `-p vist-bench --features obs-noop` to get the
//! uninstrumented reference build: every counter increment and timer read
//! compiles to nothing. The CI `obs-overhead` job runs the reference build
//! first, then the instrumented build with `--baseline-ms <reference>`
//! `--gate 5`, which makes this binary exit non-zero if enabled-but-idle
//! instrumentation costs more than 5% — checked for both the production
//! default and the attribution-enabled configuration.
//!
//! ```sh
//! cargo run --release -p vist-bench --bin obs_overhead                      # writes BENCH_obs_overhead.json
//! cargo run --release -p vist-bench --features obs-noop --bin obs_overhead  # reference
//! cargo run --release -p vist-bench --bin obs_overhead -- --smoke --baseline-ms 123.4 --gate 5
//! ```

use std::time::{Duration, Instant};

use vist_bench::{ms, print_table};
use vist_core::{IndexOptions, QueryOptions, VistIndex};
use vist_datagen::synthetic::{SyntheticConfig, SyntheticGen};
use vist_query::Pattern;

const WILDCARD_PROB: f64 = 0.4;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let gate_pct: f64 = arg_value("--gate")
        .map(|v| v.parse().expect("bad --gate"))
        .unwrap_or(5.0);
    let baseline_ms: Option<f64> =
        arg_value("--baseline-ms").map(|v| v.parse().expect("bad --baseline-ms"));

    // Corpus size is deliberately small even for the full run: query
    // *selection* must execute wildcard-heavy candidates to measure them
    // against the admission budget, and a rejected candidate cannot be
    // aborted mid-run — at larger corpora a single pathological candidate
    // dominates the whole benchmark. Overhead is a *ratio*, so the full
    // run buys precision with more queries, passes, and rounds instead.
    let n = 800;
    let per_len = if smoke { 3 } else { 6 };
    let iters = if smoke { 7 } else { 9 };
    let passes = if smoke { 1 } else { 3 };
    // Frame-expansion budget for admitting a query: wildcard-heavy
    // patterns can be pathological, and a latency gate needs a workload
    // of uniformly moderate queries, not a few dominating outliers.
    let budget: u64 = 2_000;

    let cfg = SyntheticConfig {
        k: 10,
        j: 8,
        l: 30,
        seed: 7,
    };
    let config = if cfg!(feature = "obs-noop") {
        "obs-noop"
    } else {
        "instrumented"
    };
    eprintln!("[{config}] generating {n} synthetic documents (k=10, j=8, L=30) ...");
    let mut gen = SyntheticGen::new(cfg);
    let index = VistIndex::in_memory(IndexOptions {
        store_documents: false,
        cache_pages: 1 << 16,
        ..Default::default()
    })
    .expect("index");
    for _ in 0..n {
        let d = gen.document();
        index.insert_document(&d).expect("insert");
    }
    eprintln!("[{config}] built ({} nodes)", index.stats().nodes);

    let mut patterns: Vec<Pattern> = Vec::new();
    let mut rejected = 0usize;
    let select_opts = QueryOptions::default();
    for qlen in (2..=8).step_by(2) {
        let mut kept = 0usize;
        let mut attempts = 0usize;
        while kept < per_len && attempts < per_len * 10 {
            attempts += 1;
            let p = gen.query(qlen, WILDCARD_PROB);
            let r = index.query_pattern(&p, &select_opts).expect("query");
            if r.stats.work_items <= budget {
                patterns.push(p);
                kept += 1;
            } else {
                rejected += 1;
            }
        }
    }
    eprintln!(
        "[{config}] selected {} queries ({rejected} rejected: over {budget}-frame budget)",
        patterns.len()
    );

    let run = |workers: usize, attribution: bool| {
        let opts = QueryOptions {
            workers,
            ..Default::default()
        };
        // `passes` repetitions inside the timed region: long enough to
        // resolve a few-percent delta above timer granularity.
        for _ in 0..passes {
            for p in &patterns {
                // Mirror the serve path: one counter block per query,
                // installed before the engine runs, snapshotted after.
                let ctx = attribution.then(vist_obs::AttrCounters::new);
                let guard = ctx.clone().map(vist_obs::attr::install);
                let _ = index.query_pattern(p, &opts).expect("query");
                drop(guard);
                if let Some(ctx) = ctx {
                    std::hint::black_box(ctx.snapshot());
                }
            }
        }
    };

    // Warm the buffer pool and symbol table out of the timed region.
    run(1, false);

    // Interleave the configurations round-robin and keep the per-config
    // minimum: sequential blocks would let clock-frequency or allocator
    // drift masquerade as instrumentation overhead.
    // (timing on, tracing on, attribution on, workers)
    let configs: [(bool, bool, bool, usize); 5] = [
        (true, false, false, 1),
        (true, false, false, 2),
        (false, false, false, 1),
        (true, true, false, 1),
        (true, false, true, 1),
    ];
    let mut mins = [Duration::MAX; 5];
    for round in 0..iters {
        // Rotate the starting configuration so no slot systematically
        // inherits a colder or warmer machine state from its predecessor.
        for k in 0..configs.len() {
            let i = (round + k) % configs.len();
            let (timing, tracing, attribution, workers) = configs[i];
            vist_obs::set_timing(timing);
            vist_obs::set_tracing(tracing);
            let t = Instant::now();
            run(workers, attribution);
            mins[i] = mins[i].min(t.elapsed());
        }
    }
    vist_obs::set_timing(true);
    vist_obs::set_tracing(false);
    let [off_1, off_2, notime_1, trace_1, attr_1] = mins;

    let rel = |t: Duration| format!("{:.2}", t.as_secs_f64() / off_1.as_secs_f64());
    let rows = vec![
        vec![
            "metrics on, tracing off (1 worker)".to_string(),
            ms(off_1),
            "1.00".to_string(),
        ],
        vec![
            "metrics on, tracing off (2 workers)".to_string(),
            ms(off_2),
            rel(off_2),
        ],
        vec![
            "timing gate off (1 worker)".to_string(),
            ms(notime_1),
            rel(notime_1),
        ],
        vec![
            "tracing on (1 worker)".to_string(),
            ms(trace_1),
            rel(trace_1),
        ],
        vec![
            "attribution on (1 worker)".to_string(),
            ms(attr_1),
            rel(attr_1),
        ],
    ];
    println!(
        "\nobs_overhead [{config}] — {} queries x {passes} pass(es) over {n} documents, min of {iters}",
        patterns.len()
    );
    print_table(&["configuration", "total (ms)", "vs tracing-off"], &rows);

    let off_ms = off_1.as_secs_f64() * 1e3;
    let attr_ms = attr_1.as_secs_f64() * 1e3;
    // Machine-readable line for the CI gate to pick up as the baseline.
    println!("\ntracing_off_1w_ms={off_ms:.3}");
    let mut overhead_pct: Option<f64> = None;
    let mut attr_overhead_pct: Option<f64> = None;
    if let Some(base) = baseline_ms {
        let pct = (off_ms - base) / base * 100.0;
        let attr_pct = (attr_ms - base) / base * 100.0;
        overhead_pct = Some(pct);
        attr_overhead_pct = Some(attr_pct);
        println!(
            "\noverhead vs uninstrumented baseline {base:.3} ms: \
             metrics-only {pct:+.2}%, attribution on {attr_pct:+.2}% (gate {gate_pct:.1}%)"
        );
        if pct > gate_pct || attr_pct > gate_pct {
            eprintln!("FAIL: enabled-but-idle instrumentation exceeds the {gate_pct:.1}% gate");
            std::process::exit(1);
        }
        println!("gate passed");
    }

    if !smoke && !cfg!(feature = "obs-noop") {
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"obs_overhead\",\n",
                "  \"corpus\": {{ \"generator\": \"synthetic\", \"docs\": {}, \"k\": 10, \"j\": 8, \"l\": 30, \"seed\": 7 }},\n",
                "  \"queries\": {}, \"wildcard_prob\": {}, \"passes\": {}, \"iters\": {}, \"estimator\": \"min\",\n",
                "  \"host_cores\": {},\n",
                "  \"noop_baseline_ms\": {},\n",
                "  \"metrics_on_tracing_off_1w_ms\": {:.3},\n",
                "  \"metrics_on_tracing_off_2w_ms\": {:.3},\n",
                "  \"timing_gate_off_1w_ms\": {:.3},\n",
                "  \"tracing_on_1w_ms\": {:.3},\n",
                "  \"attribution_on_1w_ms\": {:.3},\n",
                "  \"overhead_off_vs_noop_pct\": {},\n",
                "  \"overhead_attr_vs_noop_pct\": {},\n",
                "  \"gate_pct\": {:.1}\n",
                "}}\n"
            ),
            n,
            patterns.len(),
            WILDCARD_PROB,
            passes,
            iters,
            std::thread::available_parallelism().map_or(1, |c| c.get()),
            baseline_ms.map_or("null".to_string(), |b| format!("{b:.3}")),
            off_ms,
            off_2.as_secs_f64() * 1e3,
            notime_1.as_secs_f64() * 1e3,
            trace_1.as_secs_f64() * 1e3,
            attr_ms,
            overhead_pct.map_or("null".to_string(), |p| format!("{p:.3}")),
            attr_overhead_pct.map_or("null".to_string(), |p| format!("{p:.3}")),
            gate_pct,
        );
        std::fs::write("BENCH_obs_overhead.json", &json).expect("write json");
        eprintln!("wrote BENCH_obs_overhead.json");
    }
}
