//! **Ablation A3**: the cost and effect of exact verification.
//!
//! ViST's subsequence matching admits false positives (two query branches
//! may bind under *different* repeated siblings). This ablation plants a
//! controlled fraction of anomaly-inducing documents, then measures the raw
//! candidate count, the verified answer count, and the query-time overhead
//! of verification.
//!
//! ```sh
//! cargo run --release -p vist-bench --bin ablation_verify
//! ```

use std::time::Instant;

use vist_bench::{ms, print_table, scaled};
use vist_core::{IndexOptions, QueryOptions, VistIndex};
use vist_xml::parse;

fn main() {
    let n = scaled(10_000, 1_000);
    // 1 in 10 documents is the anomaly shape: the query predicate pair is
    // split across two sibling `b` elements, so raw ViST accepts it but the
    // exact semantics rejects it. The rest: half genuine matches, half
    // non-matches.
    let index = VistIndex::in_memory(IndexOptions {
        cache_pages: 1 << 16,
        ..Default::default()
    })
    .expect("index");
    let mut planted_fp = 0u64;
    let mut planted_tp = 0u64;
    for i in 0..n {
        let xml = match i % 10 {
            0 => {
                planted_fp += 1;
                "<a><b><c>1</c></b><b><d>2</d></b></a>".to_string()
            }
            1..=5 => {
                planted_tp += 1;
                "<a><b><c>1</c><d>2</d></b></a>".to_string()
            }
            _ => format!("<a><b><c>{}</c><d>{}</d></b></a>", i % 97 + 2, i % 89 + 3),
        };
        index
            .insert_document(&parse(&xml).unwrap())
            .expect("insert");
    }

    let q = "/a/b[c='1'][d='2']";
    let raw_opts = QueryOptions::default();
    let verify_opts = QueryOptions {
        verify: true,
        ..Default::default()
    };

    let t = Instant::now();
    let raw = index.query(q, &raw_opts).expect("query");
    let t_raw = t.elapsed();
    let t = Instant::now();
    let verified = index.query(q, &verify_opts).expect("query");
    let t_verified = t.elapsed();

    assert_eq!(raw.doc_ids.len() as u64, planted_fp + planted_tp);
    assert_eq!(verified.doc_ids.len() as u64, planted_tp);

    println!("\nAblation A3 — exact verification (N={n}, query {q})\n");
    print_table(
        &["mode", "answers", "false positives", "time (ms)"],
        &[
            vec![
                "raw ViST (paper semantics)".to_string(),
                raw.doc_ids.len().to_string(),
                planted_fp.to_string(),
                ms(t_raw),
            ],
            vec![
                "verified (filter-and-refine)".to_string(),
                verified.doc_ids.len().to_string(),
                "0".to_string(),
                ms(t_verified),
            ],
        ],
    );
    println!(
        "\nverification overhead: {:.1}x (fetch + parse + exact match per candidate)",
        t_verified.as_secs_f64() / t_raw.as_secs_f64().max(1e-9)
    );
}
