//! Shared harness for the table/figure benchmark binaries.
//!
//! Every binary regenerates one artifact of the paper's Section 4 (see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for recorded
//! results). Sizes default to laptop scale and grow with the
//! `VIST_BENCH_SCALE` environment variable (e.g. `VIST_BENCH_SCALE=10` for
//! 10x the default workload; the paper's scale corresponds to roughly
//! 10-50x depending on the experiment).

use std::time::{Duration, Instant};

/// Workload scale factor from `VIST_BENCH_SCALE` (default 1.0).
#[must_use]
pub fn scale() -> f64 {
    std::env::var("VIST_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// `base` scaled and clamped to at least `min`.
#[must_use]
pub fn scaled(base: usize, min: usize) -> usize {
    ((base as f64 * scale()) as usize).max(min)
}

/// Run `f` once to warm up, then `iters` timed repetitions; returns the mean
/// wall-clock duration.
pub fn time_avg<F: FnMut()>(iters: usize, mut f: F) -> Duration {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed() / iters as u32
}

/// Milliseconds with two decimals, for table cells.
#[must_use]
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Print a markdown-style table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(" {:>w$} |", c, w = widths[i]));
        }
        println!("{out}");
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&sep);
    for row in rows {
        line(row);
    }
}

/// Human-readable byte size in MiB.
#[must_use]
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Wildcard probability for random synthetic queries, from
/// `VIST_BENCH_WILDCARDS` (default 0.0 — the paper's random queries are
/// generated "in the same way" as the data, i.e. concrete subtrees).
#[must_use]
pub fn wildcard_prob() -> f64 {
    std::env::var("VIST_BENCH_WILDCARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

/// Wall-clock one run of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_clamps() {
        assert_eq!(scaled(5, 10).max(10), scaled(5, 10));
        assert!(scaled(100, 10) >= 10);
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.50");
        assert_eq!(mib(3 * 1024 * 1024), "3.00");
    }

    #[test]
    fn time_avg_counts() {
        let mut n = 0;
        let _ = time_avg(3, || n += 1);
        assert_eq!(n, 4, "one warm-up + three timed");
    }
}
