//! Shared harness for the table/figure benchmark binaries.
//!
//! Every binary regenerates one artifact of the paper's Section 4 (see
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for recorded
//! results). Sizes default to laptop scale and grow with the
//! `VIST_BENCH_SCALE` environment variable (e.g. `VIST_BENCH_SCALE=10` for
//! 10x the default workload; the paper's scale corresponds to roughly
//! 10-50x depending on the experiment).

use std::time::{Duration, Instant};

/// Workload scale factor from `VIST_BENCH_SCALE` (default 1.0).
#[must_use]
pub fn scale() -> f64 {
    std::env::var("VIST_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// `base` scaled and clamped to at least `min`.
#[must_use]
pub fn scaled(base: usize, min: usize) -> usize {
    ((base as f64 * scale()) as usize).max(min)
}

/// Run `f` once to warm up, then `iters` timed repetitions; returns the mean
/// wall-clock duration.
pub fn time_avg<F: FnMut()>(iters: usize, mut f: F) -> Duration {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed() / iters as u32
}

/// Milliseconds with two decimals, for table cells.
#[must_use]
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Print a markdown-style table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(" {:>w$} |", c, w = widths[i]));
        }
        println!("{out}");
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&sep);
    for row in rows {
        line(row);
    }
}

/// Human-readable byte size in MiB.
#[must_use]
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Wildcard probability for random synthetic queries, from
/// `VIST_BENCH_WILDCARDS` (default 0.0 — the paper's random queries are
/// generated "in the same way" as the data, i.e. concrete subtrees).
#[must_use]
pub fn wildcard_prob() -> f64 {
    std::env::var("VIST_BENCH_WILDCARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0)
}

/// Wall-clock one run of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// Minimal micro-benchmark runner used by `benches/micro.rs` (this build
/// carries no third-party bench framework). Each benchmark's setup +
/// timing closure is re-run with a growing iteration count until the timed
/// region is long enough, then the mean ns/iteration is reported.
pub mod micro {
    use std::time::Instant;

    /// Identity that defeats constant folding of the result.
    pub fn black_box<T>(x: T) -> T {
        std::hint::black_box(x)
    }

    /// Passed to each benchmark closure; call [`Bencher::iter`] exactly
    /// once with the code to time.
    pub struct Bencher {
        iters: u64,
        elapsed_ns: u128,
    }

    impl Bencher {
        /// Time `f` over this calibration round's iteration count.
        pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
            let t0 = Instant::now();
            for _ in 0..self.iters {
                black_box(f());
            }
            self.elapsed_ns = t0.elapsed().as_nanos();
        }
    }

    /// Benchmark registry: name filtering from argv plus a time budget per
    /// benchmark from `VIST_MICRO_MS` (default 200 ms).
    pub struct Runner {
        filter: Option<String>,
        target_ns: u128,
    }

    impl Default for Runner {
        fn default() -> Self {
            Self::from_env()
        }
    }

    impl Runner {
        /// Build from process args (first non-flag arg = substring filter)
        /// and environment.
        #[must_use]
        pub fn from_env() -> Self {
            let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
            let target_ms: u128 = std::env::var("VIST_MICRO_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(200);
            Runner {
                filter,
                target_ns: target_ms.max(1) * 1_000_000,
            }
        }

        /// Run one benchmark; returns mean ns/iteration (`None` when
        /// filtered out).
        pub fn bench<F: FnMut(&mut Bencher)>(&self, name: &str, mut f: F) -> Option<f64> {
            if let Some(filt) = &self.filter {
                if !name.contains(filt.as_str()) {
                    return None;
                }
            }
            let mut iters = 1u64;
            loop {
                let mut b = Bencher {
                    iters,
                    elapsed_ns: 0,
                };
                f(&mut b);
                if b.elapsed_ns >= self.target_ns || iters >= 1 << 30 {
                    let per = b.elapsed_ns as f64 / iters as f64;
                    println!("{name:<44} {per:>14.1} ns/iter  ({iters} iters)");
                    return Some(per);
                }
                let grow = (self.target_ns as f64 / b.elapsed_ns.max(1) as f64).ceil() as u64;
                iters = iters.saturating_mul(grow.clamp(2, 16));
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bencher_runs_requested_iters() {
            let runner = Runner {
                filter: None,
                target_ns: 1, // one calibration round suffices
            };
            let mut count = 0u64;
            let per = runner.bench("unit", |b| {
                b.iter(|| count += 1);
            });
            assert!(per.is_some());
            assert!(count >= 1);
        }

        #[test]
        fn filter_skips_nonmatching() {
            let runner = Runner {
                filter: Some("match-me".into()),
                target_ns: 1,
            };
            assert!(runner.bench("other", |b| b.iter(|| ())).is_none());
            assert!(runner.bench("match-me/x", |b| b.iter(|| ())).is_some());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_clamps() {
        assert_eq!(scaled(5, 10).max(10), scaled(5, 10));
        assert!(scaled(100, 10) >= 10);
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.50");
        assert_eq!(mib(3 * 1024 * 1024), "3.00");
    }

    #[test]
    fn time_avg_counts() {
        let mut n = 0;
        let _ = time_avg(3, || n += 1);
        assert_eq!(n, 4, "one warm-up + three timed");
    }
}
