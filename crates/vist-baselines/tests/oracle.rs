//! Randomized tests: the node index (structural joins) must agree *exactly*
//! with the tree-embedding oracle; the raw-path index must be complete
//! (no false negatives) at the document level. Driven by a seeded
//! splitmix64 generator so runs are deterministic.

use vist_baselines::{NodeIndex, PathIndex};
use vist_query::{matches_document, parse_query};
use vist_seq::SiblingOrder;
use vist_xml::{Document, ElementBuilder};

const NAMES: [&str; 4] = ["a", "b", "c", "d"];
const VALUES: [&str; 3] = ["1", "2", "3"];

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_element(rng: &mut Rng, depth: usize) -> ElementBuilder {
    let mut e = ElementBuilder::new(NAMES[rng.below(NAMES.len())]);
    if rng.below(2) == 0 {
        e = e.text(VALUES[rng.below(VALUES.len())]);
    }
    if depth > 0 {
        let kids: Vec<ElementBuilder> = (0..rng.below(3))
            .map(|_| random_element(rng, depth - 1))
            .collect();
        e = e.children(kids);
    }
    e
}

fn random_doc(rng: &mut Rng) -> Document {
    let depth = rng.below(4);
    random_element(rng, depth).into_document()
}

fn random_query(rng: &mut Rng) -> String {
    let steps = 1 + rng.below(3);
    let mut q = String::new();
    for _ in 0..steps {
        let n = rng.below(NAMES.len() + 1);
        let name = if n == NAMES.len() { "*" } else { NAMES[n] };
        q.push_str(if rng.below(2) == 0 { "//" } else { "/" });
        q.push_str(name);
    }
    if rng.below(2) == 0 {
        q.push_str(&format!(
            "[{}='{}']",
            NAMES[rng.below(NAMES.len())],
            VALUES[rng.below(VALUES.len())]
        ));
    }
    q
}

#[test]
fn node_index_equals_exact_oracle() {
    for case in 0..48u64 {
        let mut rng = Rng(0x0DE1 ^ (case << 9));
        let docs: Vec<Document> = (0..1 + rng.below(9))
            .map(|_| random_doc(&mut rng))
            .collect();
        let queries: Vec<String> = (0..1 + rng.below(4))
            .map(|_| random_query(&mut rng))
            .collect();
        let mut idx = NodeIndex::in_memory(4096, 256).unwrap();
        for d in &docs {
            idx.insert_document(d).unwrap();
        }
        for q in &queries {
            let pattern = parse_query(q).unwrap().to_pattern();
            let exact: Vec<u64> = docs
                .iter()
                .enumerate()
                .filter(|(_, d)| matches_document(&pattern, d, &SiblingOrder::Lexicographic))
                .map(|(i, _)| i as u64)
                .collect();
            let got = idx.query(q).unwrap();
            assert_eq!(&got, &exact, "query {q}");
        }
    }
}

#[test]
fn path_index_is_complete() {
    for case in 0..48u64 {
        let mut rng = Rng(0x9A7B ^ (case << 9));
        let docs: Vec<Document> = (0..1 + rng.below(9))
            .map(|_| random_doc(&mut rng))
            .collect();
        let queries: Vec<String> = (0..1 + rng.below(4))
            .map(|_| random_query(&mut rng))
            .collect();
        let mut idx = PathIndex::in_memory(4096, 256).unwrap();
        for d in &docs {
            idx.insert_document(d).unwrap();
        }
        for q in &queries {
            let pattern = parse_query(q).unwrap().to_pattern();
            let got = idx.query(q).unwrap();
            for (i, d) in docs.iter().enumerate() {
                if matches_document(&pattern, d, &SiblingOrder::Lexicographic) {
                    assert!(got.contains(&(i as u64)), "false negative doc {i} for {q}");
                }
            }
        }
    }
}
