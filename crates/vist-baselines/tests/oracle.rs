//! Property tests: the node index (structural joins) must agree *exactly*
//! with the tree-embedding oracle; the raw-path index must be complete
//! (no false negatives) at the document level.

use proptest::prelude::*;
use vist_baselines::{NodeIndex, PathIndex};
use vist_query::{matches_document, parse_query};
use vist_seq::SiblingOrder;
use vist_xml::{Document, ElementBuilder};

const NAMES: [&str; 4] = ["a", "b", "c", "d"];
const VALUES: [&str; 3] = ["1", "2", "3"];

fn doc_strategy() -> impl Strategy<Value = Document> {
    let leaf = (0usize..NAMES.len(), proptest::option::of(0usize..VALUES.len())).prop_map(
        |(n, v)| {
            let mut e = ElementBuilder::new(NAMES[n]);
            if let Some(v) = v {
                e = e.text(VALUES[v]);
            }
            e
        },
    );
    leaf.prop_recursive(3, 16, 3, |inner| {
        (
            0usize..NAMES.len(),
            proptest::collection::vec(inner, 0..3),
            proptest::option::of(0usize..VALUES.len()),
        )
            .prop_map(|(n, children, v)| {
                let mut e = ElementBuilder::new(NAMES[n]).children(children);
                if let Some(v) = v {
                    e = e.text(VALUES[v]);
                }
                e
            })
    })
    .prop_map(ElementBuilder::into_document)
}

fn query_strategy() -> impl Strategy<Value = String> {
    let step = (0usize..=NAMES.len(), prop::bool::ANY).prop_map(|(n, dslash)| {
        let name = if n == NAMES.len() { "*" } else { NAMES[n] };
        format!("{}{}", if dslash { "//" } else { "/" }, name)
    });
    (
        proptest::collection::vec(step, 1..4),
        proptest::option::of((0usize..NAMES.len(), 0usize..VALUES.len())),
    )
        .prop_map(|(steps, branch)| {
            let mut q = steps.concat();
            if let Some((bn, bv)) = branch {
                q.push_str(&format!("[{}='{}']", NAMES[bn], VALUES[bv]));
            }
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn node_index_equals_exact_oracle(
        docs in proptest::collection::vec(doc_strategy(), 1..10),
        queries in proptest::collection::vec(query_strategy(), 1..5),
    ) {
        let mut idx = NodeIndex::in_memory(4096, 256).unwrap();
        for d in &docs {
            idx.insert_document(d).unwrap();
        }
        for q in &queries {
            let pattern = parse_query(q).unwrap().to_pattern();
            let exact: Vec<u64> = docs
                .iter()
                .enumerate()
                .filter(|(_, d)| matches_document(&pattern, d, &SiblingOrder::Lexicographic))
                .map(|(i, _)| i as u64)
                .collect();
            let got = idx.query(q).unwrap();
            prop_assert_eq!(&got, &exact, "query {}", q);
        }
    }

    #[test]
    fn path_index_is_complete(
        docs in proptest::collection::vec(doc_strategy(), 1..10),
        queries in proptest::collection::vec(query_strategy(), 1..5),
    ) {
        let mut idx = PathIndex::in_memory(4096, 256).unwrap();
        for d in &docs {
            idx.insert_document(d).unwrap();
        }
        for q in &queries {
            let pattern = parse_query(q).unwrap().to_pattern();
            let got = idx.query(q).unwrap();
            for (i, d) in docs.iter().enumerate() {
                if matches_document(&pattern, d, &SiblingOrder::Lexicographic) {
                    prop_assert!(
                        got.contains(&(i as u64)),
                        "false negative doc {} for {}",
                        i,
                        q
                    );
                }
            }
        }
    }
}
