//! Index-Fabric-style raw-path index.
//!
//! Every root-to-leaf path of the record tree (element/attribute names, with
//! the hashed value as the final step) is inserted as one key. A structural
//! query is *disassembled* into its root-to-leaf pattern paths; each is
//! answered by a prefix scan (falling back to wider scans when wildcards
//! appear before any concrete step — exactly why Table 4 shows this method
//! degrading on `*` and `//` queries), and the per-path document-id sets are
//! intersected ("combined by expensive join operations").
//!
//! Like the original, matching at the document level can accept a document
//! where two branch paths are satisfied by *different* instances of a shared
//! ancestor — the same class of false positives ViST has. The exact matcher
//! in `vist-query` is the oracle.

use std::collections::BTreeSet;
use std::sync::Arc;

use vist_btree::BTree;
use vist_query::{parse_query, Axis, Pattern, PatternNode, PatternTest};
use vist_seq::{document_to_record_tree, hash_value, RecordNode, SiblingOrder, Sym, SymbolTable};
use vist_storage::{BufferPool, MemPager};
use vist_xml::Document;

use crate::DocId;

/// One step of a disassembled query path.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PStep {
    Sym(Sym),
    Star,
    DSlash,
}

/// The raw-path index.
pub struct PathIndex {
    tree: BTree,
    table: SymbolTable,
    order: SiblingOrder,
    next_doc: DocId,
    doc_count: u64,
}

impl PathIndex {
    /// An empty in-memory path index.
    pub fn in_memory(page_size: usize, cache_pages: usize) -> vist_storage::Result<Self> {
        let pool = Arc::new(BufferPool::with_capacity(
            MemPager::new(page_size),
            cache_pages,
        ));
        Ok(PathIndex {
            tree: BTree::create(pool)?,
            table: SymbolTable::new(),
            order: SiblingOrder::Lexicographic,
            next_doc: 0,
            doc_count: 0,
        })
    }

    /// Number of indexed documents.
    #[must_use]
    pub fn doc_count(&self) -> u64 {
        self.doc_count
    }

    /// Total bytes of the backing store.
    #[must_use]
    pub fn store_bytes(&self) -> u64 {
        self.tree.pool().store_bytes()
    }

    /// Index a document, returning its id.
    pub fn insert_document(&mut self, doc: &Document) -> vist_storage::Result<DocId> {
        let id = self.next_doc;
        self.next_doc += 1;
        self.doc_count += 1;
        let Some(tree) = document_to_record_tree(doc, &mut self.table, &self.order) else {
            return Ok(id);
        };
        let mut path = Vec::new();
        self.insert_paths(&tree, &mut path, id)?;
        Ok(id)
    }

    fn insert_paths(
        &mut self,
        node: &RecordNode,
        path: &mut Vec<u8>,
        doc: DocId,
    ) -> vist_storage::Result<()> {
        let mark = path.len();
        path.extend_from_slice(&node.sym.encode());
        if node.children.is_empty() {
            // Leaf: materialize the raw path key.
            let mut key = path.clone();
            key.push(0x00);
            key.extend_from_slice(&doc.to_be_bytes());
            self.tree.insert(&key, &[])?;
        } else {
            for c in &node.children {
                self.insert_paths(c, path, doc)?;
            }
        }
        path.truncate(mark);
        Ok(())
    }

    /// Parse and run a query: disassemble into root-to-leaf pattern paths,
    /// evaluate each, intersect the document-id sets.
    pub fn query(&mut self, expr: &str) -> Result<Vec<DocId>, QueryError> {
        let pattern = parse_query(expr).map_err(QueryError::Parse)?.to_pattern();
        self.query_pattern(&pattern).map_err(QueryError::Storage)
    }

    /// Run a pre-parsed pattern.
    pub fn query_pattern(&mut self, pattern: &Pattern) -> vist_storage::Result<Vec<DocId>> {
        let mut paths = Vec::new();
        collect_paths(&pattern.root, &mut Vec::new(), &mut paths, &mut self.table);
        let mut result: Option<BTreeSet<DocId>> = None;
        for p in &paths {
            let docs = self.eval_path(p)?;
            result = Some(match result {
                None => docs,
                Some(acc) => acc.intersection(&docs).copied().collect(),
            });
            if result.as_ref().is_some_and(BTreeSet::is_empty) {
                break; // join already empty
            }
        }
        Ok(result.unwrap_or_default().into_iter().collect())
    }

    /// Evaluate one pattern path: prefix-scan up to the first wildcard, then
    /// filter decoded paths against the full pattern.
    fn eval_path(&self, steps: &[PStep]) -> vist_storage::Result<BTreeSet<DocId>> {
        // Longest concrete byte prefix.
        let mut prefix = Vec::new();
        let mut wildcarded = false;
        for s in steps {
            match s {
                PStep::Sym(sym) => prefix.extend_from_slice(&sym.encode()),
                PStep::Star | PStep::DSlash => {
                    wildcarded = true;
                    break;
                }
            }
        }
        let mut out = BTreeSet::new();
        for item in self.tree.scan_prefix(&prefix)? {
            let (key, _) = item?;
            let (path, doc) = decode_key(&key);
            if !wildcarded || prefix_match(steps, &path) {
                out.insert(doc);
            } else {
                continue;
            }
            // Fully-concrete patterns matched by raw prefix still need the
            // step boundary check: the scan prefix ends exactly at a symbol
            // boundary by construction, so any hit is a real path prefix.
        }
        Ok(out)
    }
}

/// Decode a stored key back into its path symbols and document id.
fn decode_key(key: &[u8]) -> (Vec<Sym>, DocId) {
    let mut syms = Vec::new();
    let mut pos = 0;
    while key[pos] != 0x00 {
        let (sym, used) = Sym::decode(&key[pos..]);
        syms.push(sym);
        pos += used;
    }
    let doc = DocId::from_be_bytes(key[pos + 1..pos + 9].try_into().expect("doc id"));
    (syms, doc)
}

/// Does the pattern match a *prefix* of the stored path? (`*` = one step,
/// `//` = zero or more steps.)
fn prefix_match(pat: &[PStep], path: &[Sym]) -> bool {
    match pat.first() {
        None => true,
        Some(PStep::Sym(s)) => path.first() == Some(s) && prefix_match(&pat[1..], &path[1..]),
        Some(PStep::Star) => !path.is_empty() && prefix_match(&pat[1..], &path[1..]),
        Some(PStep::DSlash) => (0..=path.len()).any(|k| prefix_match(&pat[1..], &path[k..])),
    }
}

/// Disassemble a pattern tree into its root-to-leaf paths.
fn collect_paths(
    node: &PatternNode,
    cur: &mut Vec<PStep>,
    out: &mut Vec<Vec<PStep>>,
    table: &mut SymbolTable,
) {
    let mark = cur.len();
    if node.axis == Axis::Descendant {
        cur.push(PStep::DSlash);
    }
    match &node.test {
        PatternTest::Tag(name) => cur.push(PStep::Sym(Sym::Tag(table.intern(name)))),
        PatternTest::Star => cur.push(PStep::Star),
        PatternTest::Value(lit) => cur.push(PStep::Sym(Sym::Value(hash_value(lit)))),
    }
    if node.children.is_empty() {
        out.push(cur.clone());
    } else {
        for c in &node.children {
            collect_paths(c, cur, out, table);
        }
    }
    cur.truncate(mark);
}

/// Errors from [`PathIndex::query`].
#[derive(Debug)]
pub enum QueryError {
    /// The expression failed to parse.
    Parse(vist_query::QueryParseError),
    /// The storage layer failed.
    Storage(vist_storage::Error),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;
    use vist_xml::parse;

    fn filled() -> PathIndex {
        let mut idx = PathIndex::in_memory(4096, 256).unwrap();
        for xml in [
            "<p><s><l>boston</l></s><b><l>newyork</l></b></p>",
            "<p><s><l>tokyo</l></s><b><l>newyork</l></b></p>",
            "<p><s><l>boston</l></s><b><l>paris</l></b></p>",
        ] {
            idx.insert_document(&parse(xml).unwrap()).unwrap();
        }
        idx
    }

    #[test]
    fn single_path_queries() {
        let mut idx = filled();
        assert_eq!(idx.query("/p/s/l[text='boston']").unwrap(), vec![0, 2]);
        assert_eq!(idx.query("/p/s/l").unwrap(), vec![0, 1, 2]);
        assert!(idx.query("/p/s/x").unwrap().is_empty());
        assert!(idx.query("/q").unwrap().is_empty());
    }

    #[test]
    fn branching_queries_join_paths() {
        let mut idx = filled();
        assert_eq!(
            idx.query("/p[s/l='boston']/b[l='newyork']").unwrap(),
            vec![0]
        );
        assert_eq!(
            idx.query("/p[s/l='tokyo']/b[l='newyork']").unwrap(),
            vec![1]
        );
        assert!(idx
            .query("/p[s/l='tokyo']/b[l='paris']")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn wildcard_queries() {
        let mut idx = filled();
        assert_eq!(idx.query("/p/*[l='newyork']").unwrap(), vec![0, 1]);
        assert_eq!(idx.query("//l[text='paris']").unwrap(), vec![2]);
        assert_eq!(idx.query("/p//l").unwrap(), vec![0, 1, 2]);
        assert_eq!(idx.query("/*/s").unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn attributes_indexed_as_path_steps() {
        let mut idx = PathIndex::in_memory(4096, 64).unwrap();
        idx.insert_document(&parse(r#"<item location="US"><name>cpu</name></item>"#).unwrap())
            .unwrap();
        assert_eq!(idx.query("/item[location='US']").unwrap(), vec![0]);
        assert!(idx.query("/item[location='EU']").unwrap().is_empty());
    }

    #[test]
    fn doc_level_join_false_positive_documented() {
        // Two branch paths satisfied by DIFFERENT b-subtrees: the raw-path
        // join (by doc id) accepts — same approximation class as ViST.
        let mut idx = PathIndex::in_memory(4096, 64).unwrap();
        idx.insert_document(&parse("<a><b><c>1</c></b><b><d>2</d></b></a>").unwrap())
            .unwrap();
        assert_eq!(idx.query("/a/b[c='1'][d='2']").unwrap(), vec![0]);
    }
}
