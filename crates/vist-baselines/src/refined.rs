//! Index Fabric's *refined paths* extension.
//!
//! The paper benchmarks Index Fabric "without the extra index for refined
//! paths" and criticizes the mechanism on three grounds: "i) we need to
//! monitor query patterns, ii) it is not a general approach since not every
//! branching query is optimized, and iii) the number of refined paths can
//! have a huge impact on the size and the maintenance cost of the index."
//!
//! [`RefinedPathIndex`] implements the mechanism so those claims can be
//! measured: frequently-asked branching queries are *registered*; each gets
//! a dedicated posting list maintained on every insert (the maintenance
//! cost), registered queries answer with one lookup, and everything else
//! falls back to raw-path decomposition + joins (the generality gap).

use std::collections::BTreeSet;

use vist_query::{matches_document, parse_query, Pattern, PatternNode};
use vist_seq::SiblingOrder;
use vist_xml::Document;

use crate::pathindex::{PathIndex, QueryError};
use crate::DocId;

/// Canonical form of a pattern, insensitive to branch order.
fn canonical(p: &Pattern) -> String {
    fn node(n: &PatternNode) -> String {
        let mut kids: Vec<String> = n.children.iter().map(node).collect();
        kids.sort();
        format!("{:?}|{:?}|{:?}", n.axis, n.test, kids)
    }
    node(&p.root)
}

struct Refined {
    pattern: Pattern,
    key: String,
    posting: BTreeSet<DocId>,
}

/// The raw-path index plus a registry of refined paths.
pub struct RefinedPathIndex {
    base: PathIndex,
    refined: Vec<Refined>,
    /// Retained documents, so late registrations can backfill (Index Fabric
    /// rebuilds its refined indexes offline; retention is the simplest
    /// equivalent).
    docs: Vec<Document>,
    order: SiblingOrder,
    /// Hits answered from a refined posting vs the fallback.
    pub refined_hits: u64,
    /// Queries that had to fall back to decomposition + joins.
    pub fallback_hits: u64,
}

impl RefinedPathIndex {
    /// An empty index.
    pub fn in_memory(page_size: usize, cache_pages: usize) -> vist_storage::Result<Self> {
        Ok(RefinedPathIndex {
            base: PathIndex::in_memory(page_size, cache_pages)?,
            refined: Vec::new(),
            docs: Vec::new(),
            order: SiblingOrder::Lexicographic,
            refined_hits: 0,
            fallback_hits: 0,
        })
    }

    /// Register a frequently-occurring query as a refined path. Existing
    /// documents are backfilled; future inserts maintain the posting.
    pub fn register_refined(&mut self, expr: &str) -> Result<(), QueryError> {
        let pattern = parse_query(expr).map_err(QueryError::Parse)?.to_pattern();
        let key = canonical(&pattern);
        if self.refined.iter().any(|r| r.key == key) {
            return Ok(());
        }
        let mut posting = BTreeSet::new();
        for (id, d) in self.docs.iter().enumerate() {
            if matches_document(&pattern, d, &self.order) {
                posting.insert(id as DocId);
            }
        }
        self.refined.push(Refined {
            pattern,
            key,
            posting,
        });
        Ok(())
    }

    /// Number of registered refined paths.
    #[must_use]
    pub fn refined_count(&self) -> usize {
        self.refined.len()
    }

    /// Index a document: the raw paths always, plus one exact-match probe
    /// per registered refined path (the maintenance cost the paper calls
    /// out).
    pub fn insert_document(&mut self, doc: &Document) -> vist_storage::Result<DocId> {
        let id = self.base.insert_document(doc)?;
        for r in &mut self.refined {
            if matches_document(&r.pattern, doc, &self.order) {
                r.posting.insert(id);
            }
        }
        self.docs.push(doc.clone());
        Ok(id)
    }

    /// Answer a query: one posting-list read when its shape is registered,
    /// decomposition + joins otherwise.
    pub fn query(&mut self, expr: &str) -> Result<Vec<DocId>, QueryError> {
        let pattern = parse_query(expr).map_err(QueryError::Parse)?.to_pattern();
        let key = canonical(&pattern);
        if let Some(r) = self.refined.iter().find(|r| r.key == key) {
            self.refined_hits += 1;
            return Ok(r.posting.iter().copied().collect());
        }
        self.fallback_hits += 1;
        self.base
            .query_pattern(&pattern)
            .map_err(QueryError::Storage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vist_xml::parse;

    fn docs() -> Vec<Document> {
        [
            "<p><s><l>boston</l></s><b><l>newyork</l></b></p>",
            "<p><s><l>tokyo</l></s><b><l>newyork</l></b></p>",
            "<p><s><l>boston</l></s><b><l>paris</l></b></p>",
        ]
        .iter()
        .map(|x| parse(x).unwrap())
        .collect()
    }

    #[test]
    fn registered_query_uses_posting() {
        let mut idx = RefinedPathIndex::in_memory(4096, 128).unwrap();
        idx.register_refined("/p[s/l='boston']/b[l='newyork']")
            .unwrap();
        for d in docs() {
            idx.insert_document(&d).unwrap();
        }
        let r = idx.query("/p[s/l='boston']/b[l='newyork']").unwrap();
        assert_eq!(r, vec![0]);
        assert_eq!(idx.refined_hits, 1);
        assert_eq!(idx.fallback_hits, 0);
        // Branch order doesn't matter: the canonical form matches.
        let r = idx.query("/p[b/l='newyork'][s/l='boston']").unwrap();
        assert_eq!(r, vec![0]);
        assert_eq!(idx.refined_hits, 2);
    }

    #[test]
    fn refined_is_exact_unlike_raw_joins() {
        // The doc-level join false positive disappears for registered
        // queries (postings come from exact matching).
        let mut idx = RefinedPathIndex::in_memory(4096, 128).unwrap();
        idx.register_refined("/a/b[c='1'][d='2']").unwrap();
        idx.insert_document(&parse("<a><b><c>1</c></b><b><d>2</d></b></a>").unwrap())
            .unwrap();
        idx.insert_document(&parse("<a><b><c>1</c><d>2</d></b></a>").unwrap())
            .unwrap();
        assert_eq!(idx.query("/a/b[c='1'][d='2']").unwrap(), vec![1]);
    }

    #[test]
    fn unregistered_queries_fall_back() {
        let mut idx = RefinedPathIndex::in_memory(4096, 128).unwrap();
        idx.register_refined("/p[s/l='boston']/b[l='newyork']")
            .unwrap();
        for d in docs() {
            idx.insert_document(&d).unwrap();
        }
        // Same flavour, different value: NOT optimized — the paper's point
        // ii) ("not every branching query is optimized").
        let r = idx.query("/p[s/l='tokyo']/b[l='newyork']").unwrap();
        assert_eq!(r, vec![1]);
        assert_eq!(idx.fallback_hits, 1);
    }

    #[test]
    fn late_registration_backfills() {
        let mut idx = RefinedPathIndex::in_memory(4096, 128).unwrap();
        for d in docs() {
            idx.insert_document(&d).unwrap();
        }
        idx.register_refined("/p/s/l[text='boston']").unwrap();
        assert_eq!(idx.query("/p/s/l[text='boston']").unwrap(), vec![0, 2]);
        assert_eq!(idx.refined_hits, 1);
    }

    #[test]
    fn duplicate_registration_ignored() {
        let mut idx = RefinedPathIndex::in_memory(4096, 128).unwrap();
        idx.register_refined("/p/s").unwrap();
        idx.register_refined("/p/s").unwrap();
        assert_eq!(idx.refined_count(), 1);
    }
}
