//! The two comparison systems of the paper's Section 4, rebuilt from their
//! descriptions:
//!
//! * [`PathIndex`] — "a path index method similar to Index Fabric \[9\]
//!   (without the extra index for refined paths)": every *raw path* from the
//!   root to a node is indexed; branching queries are disassembled into path
//!   sub-queries whose document-id result sets are joined. The original uses
//!   a layered Patricia trie; we realize the same raw-path key space on our
//!   B+Tree substrate (substitution documented in DESIGN.md — both give
//!   O(log n) path lookup, and the *query decomposition + join* behaviour
//!   that Table 4 measures is identical).
//! * [`NodeIndex`] — "a node index method similar to XISS \[16\]": every
//!   element/attribute/value node is indexed under its name with an extended
//!   preorder region label `(doc, begin, end, level)`; complex expressions
//!   decompose into atomic name lookups combined by structural
//!   (containment) joins.
//!
//! Both share the query front-end of `vist-query` so all systems in the
//! benchmark answer the exact same parsed queries.

mod nodeindex;
mod pathindex;
mod refined;

pub use nodeindex::NodeIndex;
pub use pathindex::{PathIndex, QueryError};
pub use refined::RefinedPathIndex;

/// Document id type, shared with `vist-core`.
pub type DocId = u64;
