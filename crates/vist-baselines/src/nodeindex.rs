//! XISS-style node index with structural joins.
//!
//! Every record-tree node is indexed under its name (or hashed value) with
//! an *extended preorder* region label `(doc, begin, end, level)`, as in Li
//! & Moon's XISS. "A complex path expression is decomposed into a collection
//! of basic path expressions … all other forms of expressions involve join
//! operations": we evaluate the pattern tree bottom-up, fetching candidate
//! node lists per name and combining them with containment
//! (ancestor-descendant) and parent-child structural joins.
//!
//! Unlike the raw-path index and ViST's subsequence matching, structural
//! joins bind node *instances*, so this baseline is exact — which is why it
//! pays for its precision with joins on every query (Table 4's `node index`
//! column).

use std::collections::HashMap;
use std::sync::Arc;

use vist_btree::BTree;
use vist_query::{parse_query, Axis, Pattern, PatternNode, PatternTest};
use vist_seq::{document_to_record_tree, hash_value, RecordNode, SiblingOrder, Sym, SymbolTable};
use vist_storage::{BufferPool, MemPager};
use vist_xml::Document;

use crate::DocId;

/// A region-labeled node occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Region {
    doc: DocId,
    begin: u32,
    end: u32,
    level: u16,
}

/// The XISS-style node index.
pub struct NodeIndex {
    /// key = sym ‖ doc ‖ begin → value = (end, level)
    tree: BTree,
    table: SymbolTable,
    order: SiblingOrder,
    next_doc: DocId,
    doc_count: u64,
}

impl NodeIndex {
    /// An empty in-memory node index.
    pub fn in_memory(page_size: usize, cache_pages: usize) -> vist_storage::Result<Self> {
        let pool = Arc::new(BufferPool::with_capacity(
            MemPager::new(page_size),
            cache_pages,
        ));
        Ok(NodeIndex {
            tree: BTree::create(pool)?,
            table: SymbolTable::new(),
            order: SiblingOrder::Lexicographic,
            next_doc: 0,
            doc_count: 0,
        })
    }

    /// Number of indexed documents.
    #[must_use]
    pub fn doc_count(&self) -> u64 {
        self.doc_count
    }

    /// Total bytes of the backing store.
    #[must_use]
    pub fn store_bytes(&self) -> u64 {
        self.tree.pool().store_bytes()
    }

    /// Index a document, returning its id.
    pub fn insert_document(&mut self, doc: &Document) -> vist_storage::Result<DocId> {
        let id = self.next_doc;
        self.next_doc += 1;
        self.doc_count += 1;
        let Some(tree) = document_to_record_tree(doc, &mut self.table, &self.order) else {
            return Ok(id);
        };
        let mut counter = 0u32;
        self.insert_regions(&tree, id, 0, &mut counter)?;
        Ok(id)
    }

    fn insert_regions(
        &mut self,
        node: &RecordNode,
        doc: DocId,
        level: u16,
        counter: &mut u32,
    ) -> vist_storage::Result<u32> {
        let begin = *counter;
        *counter += 1;
        for c in &node.children {
            self.insert_regions(c, doc, level + 1, counter)?;
        }
        let end = *counter;
        let mut key = node.sym.encode();
        key.extend_from_slice(&doc.to_be_bytes());
        key.extend_from_slice(&begin.to_be_bytes());
        let mut value = Vec::with_capacity(6);
        value.extend_from_slice(&end.to_le_bytes());
        value.extend_from_slice(&level.to_le_bytes());
        self.tree.insert(&key, &value)?;
        Ok(end)
    }

    /// Parse and run a query via structural joins.
    pub fn query(&mut self, expr: &str) -> Result<Vec<DocId>, crate::pathindex::QueryError> {
        let pattern = parse_query(expr)
            .map_err(crate::pathindex::QueryError::Parse)?
            .to_pattern();
        self.query_pattern(&pattern)
            .map_err(crate::pathindex::QueryError::Storage)
    }

    /// Run a pre-parsed pattern.
    pub fn query_pattern(&mut self, pattern: &Pattern) -> vist_storage::Result<Vec<DocId>> {
        let matches = self.eval(&pattern.root)?;
        let mut docs: Vec<DocId> = matches
            .into_iter()
            .filter(|r| pattern.root.axis == Axis::Descendant || r.level == 0)
            .map(|r| r.doc)
            .collect();
        docs.sort_unstable();
        docs.dedup();
        Ok(docs)
    }

    /// Nodes whose subtree satisfies the pattern rooted at `p`.
    fn eval(&self, p: &PatternNode) -> vist_storage::Result<Vec<Region>> {
        let mut candidates = self.fetch(&p.test)?;
        for child in &p.children {
            if candidates.is_empty() {
                break;
            }
            let child_matches = self.eval(child)?;
            // Structural join: group the inner side by document, sorted by
            // begin, then probe per candidate.
            let mut by_doc: HashMap<DocId, Vec<Region>> = HashMap::new();
            for m in child_matches {
                by_doc.entry(m.doc).or_default().push(m);
            }
            for v in by_doc.values_mut() {
                v.sort_by_key(|r| r.begin);
            }
            candidates.retain(|c| {
                let Some(inner) = by_doc.get(&c.doc) else {
                    return false;
                };
                // Find inner regions contained in (c.begin, c.end).
                let start = inner.partition_point(|r| r.begin <= c.begin);
                inner[start..]
                    .iter()
                    .take_while(|r| r.begin < c.end)
                    .any(|r| match child.axis {
                        Axis::Child => r.level == c.level + 1,
                        Axis::Descendant => true,
                    })
            });
        }
        Ok(candidates)
    }

    /// Atomic lookup: all occurrences of a name test.
    fn fetch(&self, test: &PatternTest) -> vist_storage::Result<Vec<Region>> {
        let ranges: Vec<Vec<u8>> = match test {
            PatternTest::Tag(name) => match self.table.lookup(name) {
                Some(sym) => vec![Sym::Tag(sym).encode()],
                None => return Ok(Vec::new()),
            },
            PatternTest::Value(lit) => vec![Sym::Value(hash_value(lit)).encode()],
            // '*' matches any element: XISS has no better option than
            // touching every element entry (tag-kind keys start with 0x01).
            PatternTest::Star => vec![vec![0x01]],
        };
        let mut out = Vec::new();
        for prefix in ranges {
            for item in self.tree.scan_prefix(&prefix)? {
                let (key, value) = item?;
                let (_, used) = Sym::decode(&key);
                let doc = DocId::from_be_bytes(key[used..used + 8].try_into().expect("doc"));
                let begin = u32::from_be_bytes(key[used + 8..used + 12].try_into().expect("begin"));
                let end = u32::from_le_bytes(value[0..4].try_into().expect("end"));
                let level = u16::from_le_bytes(value[4..6].try_into().expect("level"));
                out.push(Region {
                    doc,
                    begin,
                    end,
                    level,
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vist_xml::parse;

    fn filled() -> NodeIndex {
        let mut idx = NodeIndex::in_memory(4096, 256).unwrap();
        for xml in [
            "<p><s><l>boston</l></s><b><l>newyork</l></b></p>",
            "<p><s><l>tokyo</l></s><b><l>newyork</l></b></p>",
            "<p><s><l>boston</l></s><b><l>paris</l></b></p>",
        ] {
            idx.insert_document(&parse(xml).unwrap()).unwrap();
        }
        idx
    }

    #[test]
    fn atomic_and_path_queries() {
        let mut idx = filled();
        assert_eq!(idx.query("/p/s/l[text='boston']").unwrap(), vec![0, 2]);
        assert_eq!(idx.query("//l").unwrap(), vec![0, 1, 2]);
        assert!(
            idx.query("/p/l").unwrap().is_empty(),
            "l is not a child of p"
        );
        assert_eq!(idx.query("/p//l").unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn branching_and_wildcards() {
        let mut idx = filled();
        assert_eq!(
            idx.query("/p[s/l='boston']/b[l='newyork']").unwrap(),
            vec![0]
        );
        assert_eq!(idx.query("/p/*[l='newyork']").unwrap(), vec![0, 1]);
        assert_eq!(idx.query("/*/s").unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn structural_joins_are_exact() {
        // The ViST/path-index false positive is correctly rejected here.
        let mut idx = NodeIndex::in_memory(4096, 64).unwrap();
        idx.insert_document(&parse("<a><b><c>1</c></b><b><d>2</d></b></a>").unwrap())
            .unwrap();
        idx.insert_document(&parse("<a><b><c>1</c><d>2</d></b></a>").unwrap())
            .unwrap();
        assert_eq!(idx.query("/a/b[c='1'][d='2']").unwrap(), vec![1]);
    }

    #[test]
    fn attribute_regions() {
        let mut idx = NodeIndex::in_memory(4096, 64).unwrap();
        idx.insert_document(&parse(r#"<item location="US"/>"#).unwrap())
            .unwrap();
        assert_eq!(idx.query("/item[location='US']").unwrap(), vec![0]);
        assert!(idx.query("/item[location='EU']").unwrap().is_empty());
    }

    #[test]
    fn unknown_names_return_empty() {
        let mut idx = filled();
        assert!(idx.query("/unknown").unwrap().is_empty());
        assert!(idx.query("//nothing[text='x']").unwrap().is_empty());
    }
}
