//! Property tests for dynamic scope allocation: under arbitrary allocation
//! sequences (any λ, adaptivity, clue model, min sizes), child scopes are
//! always disjoint, nested in their parent, and never overlap the parent's
//! own label.

use proptest::prelude::*;
use vist_core::{Allocation, AllocatorKind, NodeState, ScopeAllocator, StatsModel};
use vist_seq::{Sym, Symbol, MAX_SCOPE};

#[derive(Debug, Clone)]
struct AllocOp {
    sym: u32,
    min_size: u128,
}

fn ops_strategy() -> impl Strategy<Value = Vec<AllocOp>> {
    proptest::collection::vec(
        (0u32..8, 1u128..64).prop_map(|(sym, min_size)| AllocOp { sym, min_size }),
        1..200,
    )
}

fn model() -> StatsModel {
    // A hand-made model with extreme probabilities to stress the clamps.
    StatsModel::from_triples((0..8).flat_map(|a| {
        (0..8).map(move |b| {
            (
                Sym::Tag(Symbol(a)),
                Sym::Tag(Symbol(b)),
                if b == 0 { 0.93 } else { 0.01 },
            )
        })
    }))
}

fn check(alloc: &ScopeAllocator, parent_size: u128, ops: &[AllocOp]) {
    let mut parent = NodeState {
        n: 7,
        size: parent_size,
        next: 8,
        k: 0,
    };
    let mut children: Vec<NodeState> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match alloc.allocate(
            &mut parent,
            Some(Sym::Tag(Symbol(0))),
            Sym::Tag(Symbol(op.sym)),
            op.min_size,
        ) {
            Allocation::Child { state, .. } => {
                assert!(state.size >= op.min_size, "op {i}: min size honoured");
                assert!(state.n > parent.n, "op {i}: child after parent label");
                assert!(
                    state.n + state.size <= parent.n + parent.size,
                    "op {i}: child inside parent"
                );
                if let Some(prev) = children.last() {
                    assert!(
                        state.n >= prev.n + prev.size,
                        "op {i}: children disjoint and ordered"
                    );
                }
                assert_eq!(state.next, state.n + 1, "op {i}: fresh cursor");
                children.push(state);
            }
            Allocation::Underflow => {
                // Underflow must only occur when the parent truly cannot
                // supply the requested labels.
                assert!(
                    parent.available() < op.min_size
                        || parent.available() == 0
                        || op.min_size > parent.available(),
                    "op {i}: spurious underflow (avail={}, want={})",
                    parent.available(),
                    op.min_size
                );
            }
        }
        assert_eq!(parent.k as usize, children.len(), "op {i}: k tracks children");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn geometric_invariants(
        ops in ops_strategy(),
        lambda in 2u64..64,
        adaptive in any::<bool>(),
        size_exp in 8u32..120,
    ) {
        let alloc = ScopeAllocator::new(lambda, adaptive, AllocatorKind::NoClues);
        check(&alloc, 1u128 << size_exp, &ops);
    }

    #[test]
    fn with_clues_invariants(
        ops in ops_strategy(),
        lambda in 2u64..64,
        size_exp in 8u32..120,
    ) {
        let alloc = ScopeAllocator::new(lambda, true, AllocatorKind::WithClues(model()));
        check(&alloc, 1u128 << size_exp, &ops);
    }

    #[test]
    fn full_scope_never_overflows(ops in ops_strategy()) {
        let alloc = ScopeAllocator::new(2, true, AllocatorKind::NoClues);
        check(&alloc, MAX_SCOPE, &ops);
    }
}
