//! Randomized tests for dynamic scope allocation: under arbitrary
//! allocation sequences (any λ, adaptivity, clue model, min sizes), child
//! scopes are always disjoint, nested in their parent, and never overlap
//! the parent's own label. Driven by a seeded splitmix64 generator so runs
//! are deterministic.

use vist_core::{Allocation, AllocatorKind, NodeState, ScopeAllocator, StatsModel};
use vist_seq::{Sym, Symbol, MAX_SCOPE};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Debug, Clone)]
struct AllocOp {
    sym: u32,
    min_size: u128,
}

fn random_ops(rng: &mut Rng) -> Vec<AllocOp> {
    let len = 1 + rng.below(199) as usize;
    (0..len)
        .map(|_| AllocOp {
            sym: rng.below(8) as u32,
            min_size: u128::from(1 + rng.below(63)),
        })
        .collect()
}

fn model() -> StatsModel {
    // A hand-made model with extreme probabilities to stress the clamps.
    StatsModel::from_triples((0..8).flat_map(|a| {
        (0..8).map(move |b| {
            (
                Sym::Tag(Symbol(a)),
                Sym::Tag(Symbol(b)),
                if b == 0 { 0.93 } else { 0.01 },
            )
        })
    }))
}

fn check(alloc: &ScopeAllocator, parent_size: u128, ops: &[AllocOp]) {
    let mut parent = NodeState {
        n: 7,
        size: parent_size,
        next: 8,
        k: 0,
    };
    let mut children: Vec<NodeState> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match alloc.allocate(
            &mut parent,
            Some(Sym::Tag(Symbol(0))),
            Sym::Tag(Symbol(op.sym)),
            op.min_size,
        ) {
            Allocation::Child { state, .. } => {
                assert!(state.size >= op.min_size, "op {i}: min size honoured");
                assert!(state.n > parent.n, "op {i}: child after parent label");
                assert!(
                    state.n + state.size <= parent.n + parent.size,
                    "op {i}: child inside parent"
                );
                if let Some(prev) = children.last() {
                    assert!(
                        state.n >= prev.n + prev.size,
                        "op {i}: children disjoint and ordered"
                    );
                }
                assert_eq!(state.next, state.n + 1, "op {i}: fresh cursor");
                children.push(state);
            }
            Allocation::Underflow => {
                // Underflow must only occur when the parent truly cannot
                // supply the requested labels.
                assert!(
                    parent.available() < op.min_size
                        || parent.available() == 0
                        || op.min_size > parent.available(),
                    "op {i}: spurious underflow (avail={}, want={})",
                    parent.available(),
                    op.min_size
                );
            }
        }
        assert_eq!(
            parent.k as usize,
            children.len(),
            "op {i}: k tracks children"
        );
    }
}

#[test]
fn geometric_invariants() {
    for case in 0..64u64 {
        let mut rng = Rng(0x00A1_10C8 ^ (case << 8));
        let ops = random_ops(&mut rng);
        let lambda = 2 + rng.below(62);
        let adaptive = rng.below(2) == 0;
        let size_exp = 8 + rng.below(112) as u32;
        let alloc = ScopeAllocator::new(lambda, adaptive, AllocatorKind::NoClues);
        check(&alloc, 1u128 << size_exp, &ops);
    }
}

#[test]
fn with_clues_invariants() {
    for case in 0..64u64 {
        let mut rng = Rng(0xC1DE5 ^ (case << 8));
        let ops = random_ops(&mut rng);
        let lambda = 2 + rng.below(62);
        let size_exp = 8 + rng.below(112) as u32;
        let alloc = ScopeAllocator::new(lambda, true, AllocatorKind::WithClues(model()));
        check(&alloc, 1u128 << size_exp, &ops);
    }
}

#[test]
fn full_scope_never_overflows() {
    for case in 0..64u64 {
        let mut rng = Rng(0xF0_5C0 ^ (case << 8));
        let ops = random_ops(&mut rng);
        let alloc = ScopeAllocator::new(2, true, AllocatorKind::NoClues);
        check(&alloc, MAX_SCOPE, &ops);
    }
}
