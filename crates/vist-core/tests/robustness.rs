//! Failure injection: corrupted files and abuse must yield clean errors,
//! never panics or silent wrong answers.

use vist_core::{Error, IndexOptions, QueryOptions, VistIndex};

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vist-robust-{name}-{}", std::process::id()))
}

#[test]
fn opening_a_missing_file_errors() {
    let Err(err) = VistIndex::open_file("/nonexistent/path/idx.vist", 64) else {
        panic!("opening a missing file must fail");
    };
    assert!(matches!(err, Error::Storage(_)), "{err}");
}

#[test]
fn opening_garbage_errors_cleanly() {
    let path = tmp("garbage");
    std::fs::write(&path, vec![0xABu8; 8192]).unwrap();
    let Err(err) = VistIndex::open_file(&path, 64) else {
        panic!("opening garbage must fail");
    };
    // Either bad pager magic or bad index magic, both reported as errors.
    let msg = err.to_string();
    assert!(msg.contains("corrupt") || msg.contains("magic"), "{msg}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_index_file_errors_not_panics() {
    let path = tmp("truncated");
    {
        let idx = VistIndex::create_file(&path, IndexOptions::default()).unwrap();
        for i in 0..200 {
            idx.insert_xml(&format!("<a><b>{i}</b></a>")).unwrap();
        }
        idx.flush().unwrap();
    }
    // Chop the file in half.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    // Opening may succeed (meta page intact) but operations must error, not
    // panic.
    match VistIndex::open_file(&path, 64) {
        Err(_) => {}
        Ok(idx) => {
            let _ = idx.query("/a/b", &QueryOptions::default());
            let _ = idx.insert_xml("<a><b>new</b></a>");
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bad_xml_rejected_without_state_damage() {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let good = idx.insert_xml("<a><b>1</b></a>").unwrap();
    assert!(idx.insert_xml("<a><b>").is_err());
    assert!(idx.insert_xml("").is_err());
    assert!(idx.insert_xml("not xml at all").is_err());
    // The index still answers correctly; the doc counter only advanced for
    // committed inserts... (failed parses never reached insert_sequence).
    let r = idx
        .query("/a/b[text='1']", &QueryOptions::default())
        .unwrap();
    assert_eq!(r.doc_ids, vec![good]);
}

#[test]
fn bad_queries_rejected() {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    idx.insert_xml("<a/>").unwrap();
    for q in ["", "a", "/a[", "/a]']", "//", "/a[text=]"] {
        assert!(
            matches!(idx.query(q, &QueryOptions::default()), Err(Error::Query(_))),
            "{q} should be a parse error"
        );
    }
}

#[test]
fn huge_values_and_names_handled() {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    // A very long text value: hashed, so it indexes fine.
    let long_text = "x".repeat(100_000);
    let id = idx
        .insert_xml(&format!("<a><b>{long_text}</b></a>"))
        .unwrap();
    let r = idx
        .query(
            &format!("/a/b[text='{long_text}']"),
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(r.doc_ids, vec![id]);
    // A deep document: prefix keys grow with depth; must either index or
    // error cleanly (here: depth 40 fits comfortably).
    let mut deep = String::new();
    for i in 0..40 {
        deep.push_str(&format!("<d{i}>"));
    }
    deep.push_str("leaf");
    for i in (0..40).rev() {
        deep.push_str(&format!("</d{i}>"));
    }
    let id = idx.insert_xml(&deep).unwrap();
    let r = idx
        .query("//d39[text='leaf']", &QueryOptions::default())
        .unwrap();
    assert_eq!(r.doc_ids, vec![id]);
}

#[test]
fn remove_twice_and_remove_unknown() {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let id = idx.insert_xml("<a/>").unwrap();
    idx.remove_document(id).unwrap();
    assert!(matches!(
        idx.remove_document(id),
        Err(Error::NoSuchDocument(_))
    ));
    assert!(matches!(
        idx.remove_document(999),
        Err(Error::NoSuchDocument(_))
    ));
}
