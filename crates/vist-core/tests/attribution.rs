//! Per-query I/O attribution invariants.
//!
//! Every buffer-pool probe, page read, and WAL append that happens while
//! a query runs is charged to that query's attribution context
//! ([`vist_obs::attr`]), including work done on match-pool worker
//! threads. Two properties pin the design down:
//!
//! 1. **Differential**: over a query-only window, the sum of per-query
//!    attribution counters equals the process-global registry deltas —
//!    nothing double-charged, nothing leaked.
//! 2. **Schedule independence**: for a concrete (wildcard-free) query on
//!    a cold cache large enough to avoid evictions, attribution is
//!    bit-for-bit identical between a serial run and a 4-worker run: the
//!    set of frames expanded is schedule-invariant, so the first touch
//!    of each page is a miss and every later touch a hit regardless of
//!    which worker made it. (Wildcard queries are exempt: their dedup
//!    sets are per-worker, so duplicate sub-problems may be re-expanded
//!    under one schedule and skipped under another.)
//! 3. **Stolen work stays charged**: a wildcard query over structurally
//!    diverse documents fans out enough frames that 4 workers observably
//!    steal; the per-query sum still equals the registry delta, so I/O
//!    done on a donated frame landed in the owning query's context, not
//!    nowhere.
//!
//! The tests serialize on a shared lock: the registry is process-global
//! and the deltas must not see another test's I/O.

use std::sync::{Mutex, MutexGuard, OnceLock};

use vist_core::{IndexOptions, QueryOptions, QueryStats, VistIndex};
use vist_obs::AttrSnapshot;
use vist_storage::testutil::TempDir;

const QUERIES: &[&str] = &[
    "/r/a[text='3']",
    "/r/b/c",
    "/r[a='1']/b/c[text='2']",
    "/r/b[c='5']",
    "/r/a",
];

fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn build_file_index(dir: &TempDir) -> std::path::PathBuf {
    let path = dir.file("attr.vist");
    let idx = VistIndex::create_file(&path, IndexOptions::default()).unwrap();
    for i in 0..300 {
        idx.insert_xml(&format!("<r><a>{}</a><b><c>{}</c></b></r>", i % 13, i % 7))
            .unwrap();
    }
    idx.flush().unwrap();
    path
}

fn io_of(s: &QueryStats) -> AttrSnapshot {
    AttrSnapshot {
        pool_hits: s.io_pool_hits,
        pool_misses: s.io_pool_misses,
        pages_read: s.io_pages_read,
        bytes_read: s.io_bytes_read,
        wal_appends: s.io_wal_appends,
    }
}

fn add(a: AttrSnapshot, b: AttrSnapshot) -> AttrSnapshot {
    AttrSnapshot {
        pool_hits: a.pool_hits + b.pool_hits,
        pool_misses: a.pool_misses + b.pool_misses,
        pages_read: a.pages_read + b.pages_read,
        bytes_read: a.bytes_read + b.bytes_read,
        wal_appends: a.wal_appends + b.wal_appends,
    }
}

#[test]
fn per_query_attribution_sums_to_registry_deltas() {
    let _g = registry_lock();
    let dir = TempDir::new("attr-diff");
    let path = build_file_index(&dir);
    for workers in [1usize, 4] {
        // A small cache forces real misses and page reads mid-query.
        let idx = VistIndex::open_file(&path, 64).unwrap();
        let before = vist_obs::snapshot();
        let mut sum = AttrSnapshot::default();
        for q in QUERIES {
            let r = idx
                .query(
                    q,
                    &QueryOptions {
                        workers,
                        ..Default::default()
                    },
                )
                .unwrap();
            assert_ne!(r.trace_id, 0, "query ran without a trace id");
            sum = add(sum, io_of(&r.stats));
        }
        let after = vist_obs::snapshot();
        let delta = |name: &str| after.counter(name) - before.counter(name);
        assert_eq!(
            sum.pool_hits,
            delta("vist_storage_pool_hit_total"),
            "workers={workers}"
        );
        assert_eq!(
            sum.pool_misses,
            delta("vist_storage_pool_miss_total"),
            "workers={workers}"
        );
        // Each miss reads exactly one page; queries never append to the WAL.
        assert_eq!(sum.pages_read, sum.pool_misses, "workers={workers}");
        assert_eq!(sum.wal_appends, 0, "workers={workers}");
        assert_eq!(delta("vist_storage_wal_append_total"), 0);
        assert!(
            sum.pool_hits + sum.pool_misses > 0,
            "workload did no pool I/O"
        );
        assert!(sum.pages_read > 0, "cache of 64 pages produced no misses");
        if sum.pages_read > 0 {
            assert_eq!(sum.bytes_read % sum.pages_read, 0, "non-uniform page size");
        }
    }
}

fn find_span<'a>(node: &'a vist_obs::SpanNode, name: &str) -> Option<&'a vist_obs::SpanNode> {
    if node.name == name {
        return Some(node);
    }
    node.children.iter().find_map(|c| find_span(c, name))
}

#[test]
fn parallel_attribution_is_bit_for_bit_serial_for_concrete_queries() {
    let _g = registry_lock();
    let dir = TempDir::new("attr-par");
    let path = build_file_index(&dir);
    // Each run opens the index fresh: cold cache, no evictions at this
    // capacity, so hit/miss splits depend only on the (deterministic)
    // set of pages the concrete query touches — not on which worker
    // touched a page first.
    let run = |workers: usize, seed: u64, q: &str| {
        let idx = VistIndex::open_file(&path, 4096).unwrap();
        idx.query(
            q,
            &QueryOptions {
                workers,
                schedule_seed: Some(seed),
                ..Default::default()
            },
        )
        .unwrap()
    };
    vist_obs::set_tracing(true);
    for seed in 0..4u64 {
        for q in QUERIES {
            let serial = run(1, seed, q);
            let parallel = run(4, seed, q);
            assert_eq!(serial.doc_ids, parallel.doc_ids, "seed={seed} q={q}");
            assert_eq!(serial.stats.steals, 0, "serial run stole work");
            assert_eq!(
                io_of(&serial.stats),
                io_of(&parallel.stats),
                "attribution is schedule-dependent (seed={seed}, q={q})"
            );
            let trace = parallel.trace.as_ref().expect("tracing was enabled");
            let workers_span = find_span(trace, "workers")
                .expect("worker busy time was not grafted into the span tree");
            assert_eq!(workers_span.count, 4, "one workers node covering all 4");
            assert!(
                find_span(trace, "workers_idle").is_some(),
                "worker idle time missing from the span tree"
            );
            // tracez retained this trace under the query's id.
            let kept = vist_obs::tracez::get(parallel.trace_id)
                .expect("finished trace was not retained in tracez");
            assert_eq!(kept.label, *q);
        }
    }
    vist_obs::set_tracing(false);
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Structurally diverse random documents: wildcard queries over these
/// fan out into hundreds of independent frames, which is what makes
/// 4 workers actually donate ("steal") work.
fn rand_xml(rng: &mut Rng, depth: usize, out: &mut String) {
    const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
    let name = NAMES[rng.below(5)];
    out.push('<');
    out.push_str(name);
    out.push('>');
    if depth == 0 || rng.below(3) == 0 {
        out.push_str(&rng.below(4).to_string());
    } else {
        for _ in 0..1 + rng.below(3) {
            rand_xml(rng, depth - 1, out);
        }
    }
    out.push_str("</");
    out.push_str(name);
    out.push('>');
}

#[test]
fn stolen_work_is_charged_to_the_owning_query() {
    let _g = registry_lock();
    let dir = TempDir::new("attr-steal");
    let path = dir.file("steal.vist");
    {
        let idx = VistIndex::create_file(&path, IndexOptions::default()).unwrap();
        let mut rng = Rng(42);
        for _ in 0..400 {
            let mut s = String::new();
            rand_xml(&mut rng, 4, &mut s);
            idx.insert_xml(&s).unwrap();
        }
        idx.flush().unwrap();
    }
    let serial = {
        let idx = VistIndex::open_file(&path, 4096).unwrap();
        idx.query(
            "//a//c",
            &QueryOptions {
                workers: 1,
                ..Default::default()
            },
        )
        .unwrap()
    };
    let mut stole = false;
    for seed in 0..16u64 {
        let idx = VistIndex::open_file(&path, 4096).unwrap();
        let before = vist_obs::snapshot();
        let r = idx
            .query(
                "//a//c",
                &QueryOptions {
                    workers: 4,
                    schedule_seed: Some(seed),
                    ..Default::default()
                },
            )
            .unwrap();
        let after = vist_obs::snapshot();
        assert_eq!(serial.doc_ids, r.doc_ids, "answers differ (seed={seed})");
        let sum = io_of(&r.stats);
        // Even with frames bouncing between workers mid-query, every
        // pool probe landed in this query's context: the per-query sum
        // matches the global deltas exactly.
        let delta = |name: &str| after.counter(name) - before.counter(name);
        assert_eq!(sum.pool_hits, delta("vist_storage_pool_hit_total"));
        assert_eq!(sum.pool_misses, delta("vist_storage_pool_miss_total"));
        assert_eq!(sum.wal_appends, delta("vist_storage_wal_append_total"));
        assert!(sum.pool_hits + sum.pool_misses > 0, "query did no pool I/O");
        if r.stats.steals > 0 {
            stole = true;
            break;
        }
    }
    assert!(stole, "16 seeded 4-worker wildcard runs never stole work");
}
