//! Shared-read concurrency: `query(&self)` from many threads over one
//! `Arc<VistIndex>`, with and without a concurrent writer, exercising the
//! sharded buffer pool and the single-writer/multi-reader index contract.

use std::sync::Arc;

use vist_core::{IndexOptions, QueryOptions, VistIndex};

#[test]
fn parallel_queries_agree_with_serial() {
    let idx = VistIndex::in_memory(IndexOptions {
        cache_pages: 64, // tiny cache: force eviction churn under contention
        ..Default::default()
    })
    .unwrap();
    for i in 0..400 {
        idx.insert_xml(&format!("<r><a>{}</a><b><c>{}</c></b></r>", i % 13, i % 7))
            .unwrap();
    }
    let queries: Vec<String> = (0..13)
        .map(|v| format!("/r/a[text='{v}']"))
        .chain((0..7).map(|v| format!("/r[b/c='{v}']")))
        .chain(["//c".to_string(), "/r/*[c='3']".to_string()])
        .collect();
    let expected: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| idx.query(q, &QueryOptions::default()).unwrap().doc_ids)
        .collect();

    let idx = &idx;
    let queries = &queries;
    let expected = &expected;
    std::thread::scope(|s| {
        for t in 0..8 {
            s.spawn(move || {
                for round in 0..20 {
                    let qi = (t * 7 + round) % queries.len();
                    let got = idx
                        .query(&queries[qi], &QueryOptions::default())
                        .unwrap()
                        .doc_ids;
                    assert_eq!(got, expected[qi], "thread {t} round {round}");
                }
            });
        }
    });
}

/// One inserter + seven query threads on a shared `Arc<VistIndex>`: queries
/// must never error or return wrong answers for already-committed
/// documents, and after the writer quiesces the index must answer exactly
/// like a serially built one.
#[test]
fn readers_with_concurrent_writer_match_serial_oracle() {
    const PREFILL: u64 = 150;
    const EXTRA: u64 = 350;
    let opts = IndexOptions {
        cache_pages: 64, // eviction churn across shards while racing
        ..Default::default()
    };
    let doc = |i: u64| format!("<r><a>{}</a><b><c>{}</c></b></r>", i % 13, i % 7);

    // Serial oracle: the same documents inserted with no concurrency.
    let oracle = VistIndex::in_memory(opts.clone()).unwrap();
    for i in 0..PREFILL + EXTRA {
        oracle.insert_xml(&doc(i)).unwrap();
    }

    let idx = Arc::new(VistIndex::in_memory(opts).unwrap());
    for i in 0..PREFILL {
        idx.insert_xml(&doc(i)).unwrap();
    }
    // Answers over the prefilled documents never change: every later
    // insert appends a fresh doc id, so these exact ids stay visible.
    let prefill_queries: Vec<String> = (0..13).map(|v| format!("/r/a[text='{v}']")).collect();
    let prefill_expected: Vec<Vec<u64>> = prefill_queries
        .iter()
        .map(|q| {
            let mut ids = idx.query(q, &QueryOptions::default()).unwrap().doc_ids;
            ids.retain(|&id| id < PREFILL);
            ids
        })
        .collect();

    std::thread::scope(|s| {
        let writer = {
            let idx = Arc::clone(&idx);
            s.spawn(move || {
                for i in PREFILL..PREFILL + EXTRA {
                    idx.insert_xml(&doc(i)).unwrap();
                }
            })
        };
        for t in 0..7usize {
            let idx = Arc::clone(&idx);
            let queries = &prefill_queries;
            let expected = &prefill_expected;
            s.spawn(move || {
                for round in 0..60usize {
                    let qi = (t * 5 + round) % queries.len();
                    let got = idx
                        .query(&queries[qi], &QueryOptions::default())
                        .unwrap()
                        .doc_ids;
                    // Concurrent inserts may append new matches, but every
                    // prefilled answer must still be present, in order.
                    let prefill_part: Vec<u64> =
                        got.iter().copied().filter(|&id| id < PREFILL).collect();
                    assert_eq!(
                        prefill_part, expected[qi],
                        "thread {t} round {round}: lost committed answers"
                    );
                }
            });
        }
        writer.join().unwrap();
    });

    // Post-quiesce: identical to the serial oracle on every query shape.
    assert_eq!(idx.doc_count(), PREFILL + EXTRA);
    let all_queries: Vec<String> = (0..13)
        .map(|v| format!("/r/a[text='{v}']"))
        .chain((0..7).map(|v| format!("/r[b/c='{v}']")))
        .chain(["//c".to_string(), "/r/*[c='3']".to_string()])
        .collect();
    for q in &all_queries {
        let got = idx.query(q, &QueryOptions::default()).unwrap().doc_ids;
        let want = oracle.query(q, &QueryOptions::default()).unwrap().doc_ids;
        assert_eq!(got, want, "{q}");
    }
    // The sharded pool saw traffic on multiple shards.
    let stats = idx.stats();
    assert!(stats.pool.shard_count() >= 1);
    assert!(stats.pool.totals().hits > 0);
}

/// One remover + six query threads: documents are split into a stable
/// group (never removed) and a victim group the writer deletes one by one
/// while readers query. Stable answers must survive every removal
/// (deletion takes the maintenance latch exclusively, so readers see each
/// remove atomically), victim ids must never resurface after the writer
/// quiesces, and the end state must match a serially built oracle.
#[test]
fn readers_with_concurrent_remover_match_serial_oracle() {
    const STABLE: u64 = 120;
    const VICTIMS: u64 = 120;
    let opts = IndexOptions {
        cache_pages: 64, // B+Tree deletion frees pages: force pool churn
        ..Default::default()
    };
    // Even ids = stable group, odd ids = victims (interleaved so removals
    // punch holes all over the trees, not just at one end).
    let doc = |i: u64| format!("<r><a>{}</a><b><c>{}</c></b></r>", i % 13, i % 7);

    let idx = Arc::new(VistIndex::in_memory(opts.clone()).unwrap());
    for i in 0..STABLE + VICTIMS {
        idx.insert_xml(&doc(i)).unwrap();
    }

    let stable_queries: Vec<String> = (0..13)
        .map(|v| format!("/r/a[text='{v}']"))
        .chain(["//c".to_string()])
        .collect();
    let stable_expected: Vec<Vec<u64>> = stable_queries
        .iter()
        .map(|q| {
            let mut ids = idx.query(q, &QueryOptions::default()).unwrap().doc_ids;
            ids.retain(|id| id % 2 == 0);
            ids
        })
        .collect();

    std::thread::scope(|s| {
        let remover = {
            let idx = Arc::clone(&idx);
            s.spawn(move || {
                for id in (0..STABLE + VICTIMS).filter(|id| id % 2 == 1) {
                    idx.remove_document(id).unwrap();
                }
            })
        };
        for t in 0..6usize {
            let idx = Arc::clone(&idx);
            let queries = &stable_queries;
            let expected = &stable_expected;
            s.spawn(move || {
                for round in 0..50usize {
                    let qi = (t * 5 + round) % queries.len();
                    let got = idx
                        .query(&queries[qi], &QueryOptions::default())
                        .unwrap()
                        .doc_ids;
                    // Concurrent removes only ever delete odd ids; every
                    // stable (even) answer must still be present, in order.
                    let stable_part: Vec<u64> =
                        got.iter().copied().filter(|id| id % 2 == 0).collect();
                    assert_eq!(
                        stable_part, expected[qi],
                        "thread {t} round {round}: remove clobbered a stable answer"
                    );
                }
            });
        }
        remover.join().unwrap();
    });

    // Post-quiesce: no victim id anywhere, and answers equal an index
    // that only ever contained the stable group.
    assert_eq!(idx.doc_count(), STABLE);
    let oracle = VistIndex::in_memory(opts).unwrap();
    for i in (0..STABLE + VICTIMS).filter(|i| i % 2 == 0) {
        oracle
            .insert_document(&vist_xml::parse(&doc(i)).unwrap())
            .unwrap();
    }
    // The oracle assigns dense ids 0,1,2,...; the racing index kept the
    // even originals. Map oracle ids back (oracle id k = original 2k).
    let all_queries: Vec<String> = (0..13)
        .map(|v| format!("/r/a[text='{v}']"))
        .chain((0..7).map(|v| format!("/r[b/c='{v}']")))
        .chain(["//c".to_string(), "/r/*[c='3']".to_string()])
        .collect();
    for q in &all_queries {
        let got = idx.query(q, &QueryOptions::default()).unwrap().doc_ids;
        assert!(
            got.iter().all(|id| id % 2 == 0),
            "{q}: removed doc resurfaced in {got:?}"
        );
        let want: Vec<u64> = oracle
            .query(q, &QueryOptions::default())
            .unwrap()
            .doc_ids
            .into_iter()
            .map(|k| 2 * k)
            .collect();
        assert_eq!(got, want, "{q}");
    }
    idx.check().unwrap();
}

/// Group-commit visibility: query threads run continuously while ingest
/// batches land (`insert_batch`, parallel prepare). Each batch's documents
/// carry a marker element no other document has, so a reader probing that
/// marker must see either *nothing* (pre-batch) or the *complete* batch
/// (post-batch) — a non-empty strict subset would be torn scope
/// visibility across the batch's apply phase, which holds the maintenance
/// latch exclusively precisely to prevent that.
#[test]
fn readers_never_observe_a_torn_batch() {
    const PREFILL: u64 = 100;
    const BATCHES: usize = 3;
    const BATCH_SIZE: u64 = 40;
    // One unique marker element per batch; prefill docs use none of them.
    const MARKERS: [&str; BATCHES] = ["u", "v", "w"];
    let opts = IndexOptions {
        cache_pages: 64, // eviction churn while the batch applies
        ..Default::default()
    };
    let prefill_doc = |i: u64| format!("<r><a>{}</a><b><c>{}</c></b></r>", i % 13, i % 7);
    let batch_doc = |marker: &str, i: u64| {
        format!(
            "<r><{marker}>x</{marker}><a>{}</a><b><c>{}</c></b></r>",
            i % 13,
            i % 7
        )
    };

    let idx = Arc::new(VistIndex::in_memory(opts.clone()).unwrap());
    for i in 0..PREFILL {
        idx.insert_xml(&prefill_doc(i)).unwrap();
    }
    // The complete id set each batch will occupy: ids are deterministic
    // (the ingest thread is the only writer).
    let batch_ids: Vec<Vec<u64>> = (0..BATCHES as u64)
        .map(|k| {
            let first = PREFILL + k * BATCH_SIZE;
            (first..first + BATCH_SIZE).collect()
        })
        .collect();
    let prefill_queries: Vec<String> = (0..13).map(|v| format!("/r/a[text='{v}']")).collect();
    let prefill_expected: Vec<Vec<u64>> = prefill_queries
        .iter()
        .map(|q| {
            let mut ids = idx.query(q, &QueryOptions::default()).unwrap().doc_ids;
            ids.retain(|&id| id < PREFILL);
            ids
        })
        .collect();

    let batch_ids = &batch_ids;
    std::thread::scope(|s| {
        let ingester = {
            let idx = Arc::clone(&idx);
            s.spawn(move || {
                for (k, marker) in MARKERS.iter().enumerate() {
                    let first = PREFILL + k as u64 * BATCH_SIZE;
                    let docs: Vec<String> = (first..first + BATCH_SIZE)
                        .map(|i| batch_doc(marker, i))
                        .collect();
                    let ids = idx.insert_batch(&docs, 3).unwrap();
                    assert_eq!(ids, batch_ids[k], "batch {k} id drift");
                }
            })
        };
        for t in 0..6usize {
            let idx = Arc::clone(&idx);
            let prefill_queries = &prefill_queries;
            let prefill_expected = &prefill_expected;
            s.spawn(move || {
                for round in 0..80usize {
                    // Marker probe: all-or-nothing per batch.
                    let k = (t + round) % BATCHES;
                    let got = idx
                        .query(&format!("//{}", MARKERS[k]), &QueryOptions::default())
                        .unwrap()
                        .doc_ids;
                    assert!(
                        got.is_empty() || got == batch_ids[k],
                        "thread {t} round {round}: torn batch {k} visible: \
                         {} of {} docs",
                        got.len(),
                        batch_ids[k].len(),
                    );
                    // Prefill answers stay intact throughout.
                    let qi = (t * 5 + round) % prefill_queries.len();
                    let got = idx
                        .query(&prefill_queries[qi], &QueryOptions::default())
                        .unwrap()
                        .doc_ids;
                    let prefill_part: Vec<u64> =
                        got.iter().copied().filter(|&id| id < PREFILL).collect();
                    assert_eq!(
                        prefill_part, prefill_expected[qi],
                        "thread {t} round {round}: batch clobbered a committed answer"
                    );
                }
            });
        }
        ingester.join().unwrap();
    });

    // Post-quiesce: identical to a serially built oracle — doc ids,
    // answers, and scope sets (batch apply replays serial insertion).
    let oracle = VistIndex::in_memory(opts).unwrap();
    for i in 0..PREFILL {
        oracle.insert_xml(&prefill_doc(i)).unwrap();
    }
    for (k, marker) in MARKERS.iter().enumerate() {
        let first = PREFILL + k as u64 * BATCH_SIZE;
        for i in first..first + BATCH_SIZE {
            oracle.insert_xml(&batch_doc(marker, i)).unwrap();
        }
    }
    assert_eq!(idx.doc_count(), oracle.doc_count());
    let all_queries: Vec<String> = (0..13)
        .map(|v| format!("/r/a[text='{v}']"))
        .chain((0..7).map(|v| format!("/r[b/c='{v}']")))
        .chain([
            "//c".to_string(),
            "//u".to_string(),
            "/r/*[c='3']".to_string(),
        ])
        .collect();
    for q in &all_queries {
        let got = idx.query(q, &QueryOptions::default()).unwrap().doc_ids;
        let want = oracle.query(q, &QueryOptions::default()).unwrap().doc_ids;
        assert_eq!(got, want, "{q}");
        let pattern = vist_query::parse_query(q).unwrap().to_pattern();
        let (got_scopes, _) = idx
            .match_scopes(&pattern, &QueryOptions::default())
            .unwrap();
        let (want_scopes, _) = oracle
            .match_scopes(&pattern, &QueryOptions::default())
            .unwrap();
        assert_eq!(got_scopes, want_scopes, "{q}: scope sets diverge");
    }
    idx.check().unwrap();
}

#[test]
fn index_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<VistIndex>();
    assert_send_sync::<Arc<VistIndex>>();
}
