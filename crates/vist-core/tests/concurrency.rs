//! Shared-read concurrency: `query_shared(&self)` from many threads over
//! one index, exercising the buffer pool's synchronization.

use vist_core::{IndexOptions, QueryOptions, VistIndex};

#[test]
fn parallel_shared_queries_agree_with_serial() {
    let mut idx = VistIndex::in_memory(IndexOptions {
        cache_pages: 64, // tiny cache: force eviction churn under contention
        ..Default::default()
    })
    .unwrap();
    for i in 0..400 {
        idx.insert_xml(&format!(
            "<r><a>{}</a><b><c>{}</c></b></r>",
            i % 13,
            i % 7
        ))
        .unwrap();
    }
    let queries: Vec<String> = (0..13)
        .map(|v| format!("/r/a[text='{v}']"))
        .chain((0..7).map(|v| format!("/r[b/c='{v}']")))
        .chain(["//c".to_string(), "/r/*[c='3']".to_string()])
        .collect();
    let expected: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| idx.query_shared(q, &QueryOptions::default()).unwrap().doc_ids)
        .collect();

    let idx = &idx;
    let queries = &queries;
    let expected = &expected;
    std::thread::scope(|s| {
        for t in 0..8 {
            s.spawn(move || {
                for round in 0..20 {
                    let qi = (t * 7 + round) % queries.len();
                    let got = idx
                        .query_shared(&queries[qi], &QueryOptions::default())
                        .unwrap()
                        .doc_ids;
                    assert_eq!(got, expected[qi], "thread {t} round {round}");
                }
            });
        }
    });
}

#[test]
fn index_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<VistIndex>();
}
