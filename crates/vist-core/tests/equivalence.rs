//! Cross-engine equivalence tests over randomized inputs.
//!
//! The three engines of the paper — Naive (Algorithm 1 over the trie), RIST
//! (static labels + Algorithm 2), and ViST (dynamic labels + Algorithm 2) —
//! must return *identical* results on arbitrary document sets and queries,
//! and all must agree with the brute-force subsequence-matching reference
//! (`vist_query::sequence_matches`). With verification on, ViST must agree
//! with the exact tree-embedding oracle. Driven by a seeded splitmix64
//! generator so runs are deterministic.

use vist_core::{IndexOptions, NaiveIndex, QueryOptions, RistIndex, VistIndex};
use vist_query::{matches_document, sequence_matches, translate, Pattern, TranslateOptions};
use vist_seq::{document_to_sequence, SiblingOrder, SymbolTable};
use vist_xml::{Document, ElementBuilder};

/// Small vocabularies force structural sharing and collisions.
const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
const VALUES: [&str; 4] = ["1", "2", "3", "4"];

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_element(rng: &mut Rng, depth: usize) -> ElementBuilder {
    let mut e = ElementBuilder::new(NAMES[rng.below(NAMES.len())]);
    if rng.below(2) == 0 {
        e = e.text(VALUES[rng.below(VALUES.len())]);
    }
    if depth > 0 {
        let n_children = rng.below(4);
        let kids: Vec<ElementBuilder> = (0..n_children)
            .map(|_| random_element(rng, depth - 1))
            .collect();
        e = e.children(kids);
    }
    e
}

fn random_doc(rng: &mut Rng) -> Document {
    let depth = rng.below(4);
    random_element(rng, depth).into_document()
}

/// Random queries over the same vocabulary: paths with optional wildcards,
/// descendant steps, one optional branch predicate and one optional value.
fn random_query(rng: &mut Rng) -> String {
    let steps = 1 + rng.below(3);
    let mut q = String::new();
    for _ in 0..steps {
        let n = rng.below(NAMES.len() + 1);
        let name = if n == NAMES.len() { "*" } else { NAMES[n] };
        q.push_str(if rng.below(2) == 0 { "//" } else { "/" });
        q.push_str(name);
    }
    if rng.below(2) == 0 {
        q.push_str(&format!(
            "[{}='{}']",
            NAMES[rng.below(NAMES.len())],
            VALUES[rng.below(VALUES.len())]
        ));
    }
    if rng.below(2) == 0 {
        q.push_str(&format!("[text='{}']", VALUES[rng.below(VALUES.len())]));
    }
    q
}

/// Reference answer: brute-force subsequence matching per document.
fn reference_answer(pattern: &Pattern, docs: &[Document]) -> Vec<u64> {
    let mut table = SymbolTable::new();
    let seqs: Vec<_> = docs
        .iter()
        .map(|d| document_to_sequence(d, &mut table, &SiblingOrder::Lexicographic))
        .collect();
    let translation = translate(pattern, &mut table, &TranslateOptions::default());
    let mut out = Vec::new();
    for (i, seq) in seqs.iter().enumerate() {
        if translation
            .sequences
            .iter()
            .any(|qs| sequence_matches(qs, seq))
        {
            out.push(i as u64);
        }
    }
    out
}

#[test]
fn all_engines_agree() {
    for case in 0..48u64 {
        let mut rng = Rng(0xE9_A6E ^ (case << 9));
        let docs: Vec<Document> = (0..1 + rng.below(11))
            .map(|_| random_doc(&mut rng))
            .collect();
        let queries: Vec<String> = (0..1 + rng.below(5))
            .map(|_| random_query(&mut rng))
            .collect();

        let mut naive = NaiveIndex::default();
        let vist = VistIndex::in_memory(IndexOptions::default()).unwrap();
        // Stress dynamic labeling too: tiny λ without adaptivity.
        let vist_tiny = VistIndex::in_memory(IndexOptions {
            lambda: 2,
            adaptive: false,
            ..Default::default()
        })
        .unwrap();
        for d in &docs {
            naive.insert_document(d);
            vist.insert_document(d).unwrap();
            vist_tiny.insert_document(d).unwrap();
        }
        let mut rist = RistIndex::build_in_memory(&docs, IndexOptions::default()).unwrap();

        let opts = QueryOptions::default();
        for q in &queries {
            let pattern = vist_query::parse_query(q).unwrap().to_pattern();
            let expect = reference_answer(&pattern, &docs);
            let n = naive.query(q, &opts).unwrap();
            let r = rist.query(q, &opts).unwrap().doc_ids;
            let v = vist.query(q, &opts).unwrap().doc_ids;
            let vt = vist_tiny.query(q, &opts).unwrap().doc_ids;
            assert_eq!(&n, &expect, "naive vs reference: {q}");
            assert_eq!(&r, &expect, "rist vs reference: {q}");
            assert_eq!(&v, &expect, "vist vs reference: {q}");
            assert_eq!(&vt, &expect, "vist(λ=2 fixed) vs reference: {q}");
        }
    }
}

#[test]
fn verified_queries_match_exact_oracle() {
    for case in 0..48u64 {
        let mut rng = Rng(0x0_4AC1E ^ (case << 9));
        let docs: Vec<Document> = (0..1 + rng.below(9))
            .map(|_| random_doc(&mut rng))
            .collect();
        let queries: Vec<String> = (0..1 + rng.below(4))
            .map(|_| random_query(&mut rng))
            .collect();

        let vist = VistIndex::in_memory(IndexOptions::default()).unwrap();
        for d in &docs {
            vist.insert_document(d).unwrap();
        }
        for q in &queries {
            let pattern = vist_query::parse_query(q).unwrap().to_pattern();
            let exact: Vec<u64> = docs
                .iter()
                .enumerate()
                .filter(|(_, d)| matches_document(&pattern, d, &SiblingOrder::Lexicographic))
                .map(|(i, _)| i as u64)
                .collect();
            let verified = vist
                .query(
                    q,
                    &QueryOptions {
                        verify: true,
                        ..Default::default()
                    },
                )
                .unwrap();
            assert_eq!(&verified.doc_ids, &exact, "query {q}");
            // Raw candidates are always a superset of the exact answer
            // (completeness: no false negatives).
            let raw = vist.query(q, &QueryOptions::default()).unwrap();
            for id in &exact {
                assert!(raw.doc_ids.contains(id), "false negative {id} for {q}");
            }
        }
    }
}

#[test]
fn dynamic_deletion_equals_fresh_build() {
    for case in 0..48u64 {
        let mut rng = Rng(0xDE1E7E ^ (case << 9));
        let docs: Vec<Document> = (0..2 + rng.below(8))
            .map(|_| random_doc(&mut rng))
            .collect();
        let remove_mask: Vec<bool> = (0..docs.len()).map(|_| rng.below(2) == 0).collect();
        let query = random_query(&mut rng);

        let vist = VistIndex::in_memory(IndexOptions::default()).unwrap();
        let ids: Vec<u64> = docs
            .iter()
            .map(|d| vist.insert_document(d).unwrap())
            .collect();
        let mut kept = Vec::new();
        for (i, d) in docs.iter().enumerate() {
            if remove_mask[i] {
                vist.remove_document(ids[i]).unwrap();
            } else {
                kept.push((ids[i], d.clone()));
            }
        }
        let pattern = vist_query::parse_query(&query).unwrap().to_pattern();
        let kept_docs: Vec<Document> = kept.iter().map(|(_, d)| d.clone()).collect();
        let expect_local = reference_answer(&pattern, &kept_docs);
        // Map local indices back to original ids.
        let expect: Vec<u64> = expect_local.iter().map(|&i| kept[i as usize].0).collect();
        let got = vist
            .query(&query, &QueryOptions::default())
            .unwrap()
            .doc_ids;
        assert_eq!(got, expect, "after deletion: {query}");
    }
}
