//! Cross-engine equivalence property tests.
//!
//! The three engines of the paper — Naive (Algorithm 1 over the trie), RIST
//! (static labels + Algorithm 2), and ViST (dynamic labels + Algorithm 2) —
//! must return *identical* results on arbitrary document sets and queries,
//! and all must agree with the brute-force subsequence-matching reference
//! (`vist_query::sequence_matches`). With verification on, ViST must agree
//! with the exact tree-embedding oracle.

use proptest::prelude::*;
use vist_core::{IndexOptions, NaiveIndex, QueryOptions, RistIndex, VistIndex};
use vist_query::{matches_document, sequence_matches, translate, Pattern, TranslateOptions};
use vist_seq::{document_to_sequence, SiblingOrder, SymbolTable};
use vist_xml::{Document, ElementBuilder};

/// Small vocabularies force structural sharing and collisions.
const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
const VALUES: [&str; 4] = ["1", "2", "3", "4"];

fn doc_strategy() -> impl Strategy<Value = Document> {
    let leaf = (0usize..NAMES.len(), proptest::option::of(0usize..VALUES.len())).prop_map(
        |(n, v)| {
            let mut e = ElementBuilder::new(NAMES[n]);
            if let Some(v) = v {
                e = e.text(VALUES[v]);
            }
            e
        },
    );
    let tree = leaf.prop_recursive(3, 20, 4, |inner| {
        (
            0usize..NAMES.len(),
            proptest::collection::vec(inner, 0..4),
            proptest::option::of(0usize..VALUES.len()),
        )
            .prop_map(|(n, children, v)| {
                let mut e = ElementBuilder::new(NAMES[n]).children(children);
                if let Some(v) = v {
                    e = e.text(VALUES[v]);
                }
                e
            })
    });
    tree.prop_map(ElementBuilder::into_document)
}

/// Random queries over the same vocabulary: paths with optional wildcards,
/// descendant steps, one optional branch predicate and one optional value.
fn query_strategy() -> impl Strategy<Value = String> {
    let step = (0usize..=NAMES.len(), prop::bool::ANY).prop_map(|(n, dslash)| {
        let name = if n == NAMES.len() { "*" } else { NAMES[n] };
        format!("{}{}", if dslash { "//" } else { "/" }, name)
    });
    (
        proptest::collection::vec(step, 1..4),
        proptest::option::of((0usize..NAMES.len(), 0usize..VALUES.len())),
        proptest::option::of(0usize..VALUES.len()),
    )
        .prop_map(|(steps, branch, text)| {
            let mut q = steps.concat();
            if let Some((bn, bv)) = branch {
                q.push_str(&format!("[{}='{}']", NAMES[bn], VALUES[bv]));
            }
            if let Some(t) = text {
                q.push_str(&format!("[text='{}']", VALUES[t]));
            }
            q
        })
}

/// Reference answer: brute-force subsequence matching per document.
fn reference_answer(pattern: &Pattern, docs: &[Document]) -> Vec<u64> {
    let mut table = SymbolTable::new();
    let seqs: Vec<_> = docs
        .iter()
        .map(|d| document_to_sequence(d, &mut table, &SiblingOrder::Lexicographic))
        .collect();
    let translation = translate(
        pattern,
        &mut table,
        &TranslateOptions::default(),
    );
    let mut out = Vec::new();
    for (i, seq) in seqs.iter().enumerate() {
        if translation
            .sequences
            .iter()
            .any(|qs| sequence_matches(qs, seq))
        {
            out.push(i as u64);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn all_engines_agree(
        docs in proptest::collection::vec(doc_strategy(), 1..12),
        queries in proptest::collection::vec(query_strategy(), 1..6),
    ) {
        let mut naive = NaiveIndex::default();
        let mut vist = VistIndex::in_memory(IndexOptions::default()).unwrap();
        // Stress dynamic labeling too: tiny λ without adaptivity.
        let mut vist_tiny = VistIndex::in_memory(IndexOptions {
            lambda: 2,
            adaptive: false,
            ..Default::default()
        })
        .unwrap();
        for d in &docs {
            naive.insert_document(d);
            vist.insert_document(d).unwrap();
            vist_tiny.insert_document(d).unwrap();
        }
        let mut rist = RistIndex::build_in_memory(&docs, IndexOptions::default()).unwrap();

        let opts = QueryOptions::default();
        for q in &queries {
            let pattern = vist_query::parse_query(q).unwrap().to_pattern();
            let expect = reference_answer(&pattern, &docs);
            let n = naive.query(q, &opts).unwrap();
            let r = rist.query(q, &opts).unwrap().doc_ids;
            let v = vist.query(q, &opts).unwrap().doc_ids;
            let vt = vist_tiny.query(q, &opts).unwrap().doc_ids;
            prop_assert_eq!(&n, &expect, "naive vs reference: {}", q);
            prop_assert_eq!(&r, &expect, "rist vs reference: {}", q);
            prop_assert_eq!(&v, &expect, "vist vs reference: {}", q);
            prop_assert_eq!(&vt, &expect, "vist(λ=2 fixed) vs reference: {}", q);
        }
    }

    #[test]
    fn verified_queries_match_exact_oracle(
        docs in proptest::collection::vec(doc_strategy(), 1..10),
        queries in proptest::collection::vec(query_strategy(), 1..5),
    ) {
        let mut vist = VistIndex::in_memory(IndexOptions::default()).unwrap();
        for d in &docs {
            vist.insert_document(d).unwrap();
        }
        for q in &queries {
            let pattern = vist_query::parse_query(q).unwrap().to_pattern();
            let exact: Vec<u64> = docs
                .iter()
                .enumerate()
                .filter(|(_, d)| matches_document(&pattern, d, &SiblingOrder::Lexicographic))
                .map(|(i, _)| i as u64)
                .collect();
            let verified = vist
                .query(q, &QueryOptions { verify: true, ..Default::default() })
                .unwrap();
            prop_assert_eq!(&verified.doc_ids, &exact, "query {}", q);
            // Raw candidates are always a superset of the exact answer
            // (completeness: no false negatives).
            let raw = vist.query(q, &QueryOptions::default()).unwrap();
            for id in &exact {
                prop_assert!(raw.doc_ids.contains(id), "false negative {} for {}", id, q);
            }
        }
    }

    #[test]
    fn dynamic_deletion_equals_fresh_build(
        docs in proptest::collection::vec(doc_strategy(), 2..10),
        remove_mask in proptest::collection::vec(prop::bool::ANY, 2..10),
        query in query_strategy(),
    ) {
        let mut vist = VistIndex::in_memory(IndexOptions::default()).unwrap();
        let ids: Vec<u64> = docs.iter().map(|d| vist.insert_document(d).unwrap()).collect();
        let mut kept = Vec::new();
        for (i, d) in docs.iter().enumerate() {
            if remove_mask.get(i).copied().unwrap_or(false) {
                vist.remove_document(ids[i]).unwrap();
            } else {
                kept.push((ids[i], d.clone()));
            }
        }
        let pattern = vist_query::parse_query(&query).unwrap().to_pattern();
        let kept_docs: Vec<Document> = kept.iter().map(|(_, d)| d.clone()).collect();
        let expect_local = reference_answer(&pattern, &kept_docs);
        // Map local indices back to original ids.
        let expect: Vec<u64> = expect_local.iter().map(|&i| kept[i as usize].0).collect();
        let got = vist.query(&query, &QueryOptions::default()).unwrap().doc_ids;
        prop_assert_eq!(got, expect, "after deletion: {}", query);
    }
}
