//! Maintenance-path integration tests: unknown-name short-circuits,
//! rebuild/vacuum, and the space story after heavy deletion.

use vist_core::{IndexOptions, QueryOptions, VistIndex};

#[test]
fn query_short_circuits_unknown_names() {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    for i in 0..200 {
        idx.insert_xml(&format!("<r><a>{}</a><b>{}</b></r>", i % 7, i % 3))
            .unwrap();
    }
    let opts = QueryOptions::default();
    // Known names answer normally.
    assert_eq!(
        idx.query("/r/a[text='3']", &opts).unwrap().doc_ids.len(),
        29
    );
    assert_eq!(idx.query("//b", &opts).unwrap().doc_ids.len(), 200);
    // Unknown names cannot match any document: the unified `query` returns
    // empty without interning them into the shared symbol table.
    for q in ["/r/zzz", "/nothing//here", "/r[zzz='1']"] {
        let r = idx.query(q, &opts).unwrap();
        assert!(r.doc_ids.is_empty(), "{q}");
        assert_eq!(r.candidates, 0, "{q}");
    }
    // ...and repeatedly querying unknown names leaves the table unchanged.
    let before = idx.table().len();
    for _ in 0..5 {
        idx.query("/never/seen/name", &opts).unwrap();
    }
    assert_eq!(idx.table().len(), before);
    // Verify mode agrees with raw mode on a query with no false positives.
    let raw = idx.query("/r[a='3'][b='1']", &opts).unwrap().doc_ids;
    let verified = idx
        .query(
            "/r[a='3'][b='1']",
            &QueryOptions {
                verify: true,
                ..Default::default()
            },
        )
        .unwrap()
        .doc_ids;
    assert_eq!(verified, raw);
}

#[test]
fn rebuild_preserves_ids_and_reclaims_space() {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let mut ids = Vec::new();
    for i in 0..400 {
        ids.push(
            idx.insert_xml(&format!("<doc><k>{i}</k><tag>t{}</tag></doc>", i % 5))
                .unwrap(),
        );
    }
    // Delete 80% of the documents; incremental deletion leaves trie nodes.
    for id in &ids {
        if id % 5 != 0 {
            idx.remove_document(*id).unwrap();
        }
    }
    let before = idx.stats();
    assert_eq!(before.documents, 80);
    assert!(before.nodes > 400, "shared + value nodes linger");

    let rebuilt = idx.rebuild(IndexOptions::default()).unwrap();
    let after = rebuilt.stats();
    assert_eq!(after.documents, 80);
    assert!(
        after.nodes < before.nodes / 2,
        "rebuild drops dead nodes: {} -> {}",
        before.nodes,
        after.nodes
    );
    // Ids preserved; answers identical.
    for id in ids.iter().filter(|id| *id % 5 == 0) {
        let q = format!("/doc/k[text='{id}']");
        assert_eq!(
            idx.query(&q, &QueryOptions::default()).unwrap().doc_ids,
            vec![*id]
        );
        assert_eq!(
            rebuilt.query(&q, &QueryOptions::default()).unwrap().doc_ids,
            vec![*id],
            "{q}"
        );
    }
    // New inserts get fresh ids beyond the old space.
    let new_id = rebuilt.insert_xml("<doc><k>brand-new</k></doc>").unwrap();
    assert!(new_id >= 400);
}

#[test]
fn rebuild_to_file_roundtrip() {
    let path = std::env::temp_dir().join(format!("vist-rebuild-{}", std::process::id()));
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    for i in 0..50 {
        idx.insert_xml(&format!("<x><y>{i}</y></x>")).unwrap();
    }
    idx.remove_document(0).unwrap();
    let rebuilt = idx.rebuild_to_file(&path, IndexOptions::default()).unwrap();
    drop(rebuilt);
    let reopened = VistIndex::open_file(&path, 128).unwrap();
    assert_eq!(reopened.doc_count(), 49);
    let r = reopened
        .query("/x/y[text='7']", &QueryOptions::default())
        .unwrap();
    assert_eq!(r.doc_ids, vec![7]);
    let r = reopened
        .query("/x/y[text='0']", &QueryOptions::default())
        .unwrap();
    assert!(r.doc_ids.is_empty());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn tree_breakdown_accounts_all_trees() {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    for i in 0..300 {
        idx.insert_xml(&format!("<r><v>{i}</v></r>")).unwrap();
    }
    let b = idx.store().tree_breakdown().unwrap();
    // One DocId entry per document.
    assert_eq!(b.docid.entries, 300);
    // S-Ancestor: one entry per node.
    assert_eq!(b.sancestor.entries, idx.stats().nodes);
    // D-Ancestor: one entry per distinct (symbol, prefix).
    assert_eq!(b.dancestor.entries, idx.stats().dkeys);
    // Edges mirror the trie structure (>= nodes, incarnations add more).
    assert!(b.edges.entries >= idx.stats().nodes);
    assert!(b.ds_ancestor_bytes() > b.docid.total_bytes);
}

#[test]
fn stats_model_persists_across_reopen() {
    use vist_core::{AllocatorKind, StatsModel};
    use vist_seq::{document_to_sequence, SiblingOrder, SymbolTable};

    let path = std::env::temp_dir().join(format!("vist-stats-{}", std::process::id()));
    // Build a stats model from a small sample.
    let mut table = SymbolTable::new();
    let sample: Vec<_> = (0..20)
        .map(|i| {
            let doc = vist_xml::parse(&format!("<r><a>{i}</a><b/></r>")).unwrap();
            document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic)
        })
        .collect();
    let model = StatsModel::from_sequences(&sample);
    assert!(!model.is_empty());
    let contexts = model.contexts();
    {
        let idx = VistIndex::create_file(
            &path,
            IndexOptions {
                allocator: AllocatorKind::WithClues(model),
                ..Default::default()
            },
        )
        .unwrap();
        idx.insert_xml("<r><a>1</a><b/></r>").unwrap();
        idx.flush().unwrap();
    }
    {
        let idx = VistIndex::open_file(&path, 128).unwrap();
        // The model came back (observable via continued correct operation
        // and the roundtrip of triples; we check by rebuilding it).
        let reopened = idx.store().load_stats_model().unwrap().unwrap();
        assert_eq!(reopened.contexts(), contexts);
        // And the index remains fully usable.
        let id = idx.insert_xml("<r><a>2</a><b/></r>").unwrap();
        let r = idx
            .query("/r/a[text='2']", &QueryOptions::default())
            .unwrap();
        assert_eq!(r.doc_ids, vec![id]);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn explain_shows_translation_and_probes() {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    idx.insert_xml("<p><s><l>boston</l></s><b><l>newyork</l></b></p>")
        .unwrap();
    let out = idx
        .explain("/p[s[l='boston']]/b[l='newyork']", &QueryOptions::default())
        .unwrap();
    assert!(out.contains("alternative sequence(s)"), "{out}");
    assert!(out.contains("(p,)"), "Table-2-style rendering: {out}");
    assert!(out.contains("answers: 1 document(s)"), "{out}");
    assert!(out.contains("D-Ancestor gets"), "{out}");
    // The Q5 case shows multiple alternatives.
    idx.insert_xml("<A><B><C/></B><B><D/></B></A>").unwrap();
    let out = idx
        .explain("/A[B/C]/B/D", &QueryOptions::default())
        .unwrap();
    assert!(out.contains("2 alternative sequence(s)"), "{out}");
}
