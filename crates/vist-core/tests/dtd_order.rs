//! End-to-end with a DTD-derived sibling order (the paper's preferred
//! ordering source, Figure 1).

use vist_core::{IndexOptions, QueryOptions, VistIndex};
use vist_seq::SiblingOrder;

const FIGURE1_DTD: &str = r#"
    <!ELEMENT purchases (purchase*)>
    <!ELEMENT purchase  (seller, buyer)>
    <!ATTLIST seller    ID ID #REQUIRED location CDATA #IMPLIED name CDATA #IMPLIED>
    <!ELEMENT seller    (item*)>
    <!ATTLIST buyer     ID ID #REQUIRED location CDATA #IMPLIED name CDATA #IMPLIED>
    <!ELEMENT buyer     (item*)>
    <!ATTLIST item      name CDATA #REQUIRED manufacturer CDATA #IMPLIED>
"#;

fn purchase(seller_loc: &str, buyer_loc: &str) -> String {
    format!(
        "<purchase>\
           <seller ID='s1' location='{seller_loc}' name='dell'>\
             <item name='part1' manufacturer='intel'/>\
           </seller>\
           <buyer ID='b1' location='{buyer_loc}' name='acme'/>\
         </purchase>"
    )
}

#[test]
fn dtd_order_used_end_to_end() {
    let order = SiblingOrder::from_dtd(FIGURE1_DTD).unwrap();
    let idx = VistIndex::in_memory(IndexOptions {
        order,
        ..Default::default()
    })
    .unwrap();
    let a = idx.insert_xml(&purchase("boston", "newyork")).unwrap();
    let b = idx.insert_xml(&purchase("tokyo", "newyork")).unwrap();
    let opts = QueryOptions::default();

    // The paper's Q2 shape, now ordered by the DTD instead of lexicographic.
    let r = idx
        .query(
            "/purchase[seller[location='boston']]/buyer[location='newyork']",
            &opts,
        )
        .unwrap();
    assert_eq!(r.doc_ids, vec![a]);
    let r = idx.query("/purchase/*[location='newyork']", &opts).unwrap();
    assert_eq!(r.doc_ids, vec![a, b]);
    let r = idx.query("//item[manufacturer='intel']", &opts).unwrap();
    assert_eq!(r.doc_ids, vec![a, b]);
}

#[test]
fn dtd_order_persists_across_reopen() {
    let path = std::env::temp_dir().join(format!("vist-dtd-{}", std::process::id()));
    {
        let order = SiblingOrder::from_dtd(FIGURE1_DTD).unwrap();
        let idx = VistIndex::create_file(
            &path,
            IndexOptions {
                order,
                ..Default::default()
            },
        )
        .unwrap();
        idx.insert_xml(&purchase("boston", "newyork")).unwrap();
        idx.flush().unwrap();
    }
    {
        let idx = VistIndex::open_file(&path, 128).unwrap();
        assert!(
            matches!(idx.order(), SiblingOrder::Dtd(_)),
            "order restored"
        );
        // Inserting with the restored order keeps the index consistent.
        let b = idx.insert_xml(&purchase("boston", "paris")).unwrap();
        let r = idx
            .query(
                "/purchase[seller[location='boston']]/buyer[location='paris']",
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(r.doc_ids, vec![b]);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn different_orders_give_identical_answers() {
    // Ordering affects the encoding, never the semantics.
    let docs: Vec<String> = (0..60)
        .map(|i| purchase(if i % 2 == 0 { "boston" } else { "tokyo" }, "newyork"))
        .collect();
    let queries = [
        "/purchase/seller[location='boston']",
        "/purchase/*[location='newyork']",
        "//item",
    ];
    let lex = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let dtd = VistIndex::in_memory(IndexOptions {
        order: SiblingOrder::from_dtd(FIGURE1_DTD).unwrap(),
        ..Default::default()
    })
    .unwrap();
    for d in &docs {
        lex.insert_xml(d).unwrap();
        dtd.insert_xml(d).unwrap();
    }
    for q in queries {
        let a = lex.query(q, &QueryOptions::default()).unwrap().doc_ids;
        let b = dtd.query(q, &QueryOptions::default()).unwrap().doc_ids;
        assert_eq!(a, b, "{q}");
    }
}
