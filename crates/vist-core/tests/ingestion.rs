//! Streaming ingestion: the paper's XMARK break-down as an API.

use vist_core::{IndexOptions, QueryOptions, VistIndex};

#[test]
fn insert_records_splits_a_container_document() {
    let site = "<site>\
        <people>\
          <person id='p1'><name>Alice</name><address><city>Pocatello</city></address></person>\
          <person id='p2'><name>Bob</name></person>\
        </people>\
        <regions><europe>\
          <item id='i1' location='US'><mail><date>12/15/1999</date></mail></item>\
          <item id='i2' location='EU'><mail><date>01/01/2000</date></mail></item>\
        </europe></regions>\
    </site>";
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let ids = idx.insert_records(site, &["person", "item"]).unwrap();
    assert_eq!(ids.len(), 4);
    assert_eq!(idx.doc_count(), 4);

    let opts = QueryOptions::default();
    // Queries now address the records directly.
    let r = idx
        .query("/person/address/city[text='Pocatello']", &opts)
        .unwrap();
    assert_eq!(r.doc_ids.len(), 1);
    let r = idx
        .query("/item[location='US']/mail/date[text='12/15/1999']", &opts)
        .unwrap();
    assert_eq!(r.doc_ids.len(), 1);
    let r = idx.query("//date", &opts).unwrap();
    assert_eq!(r.doc_ids.len(), 2);
    // Records are independently removable.
    idx.remove_document(ids[0]).unwrap();
    let r = idx.query("/person", &opts).unwrap();
    assert_eq!(r.doc_ids.len(), 1);
}

#[test]
fn insert_records_rejects_malformed_container() {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    assert!(idx
        .insert_records("<site><person></site>", &["person"])
        .is_err());
}
