//! Differential test for the parallel work-list match engine.
//!
//! For every randomized corpus and query, the engine must return *identical*
//! document-id sets and final-scope sets at 1, 2, 4 and 8 workers — and the
//! doc ids must agree with the Naive oracle (Algorithm 1 over the trie).
//! Worker count is an execution detail; any divergence is a bug in work
//! distribution, dedup, or scope merging. Driven by a seeded splitmix64
//! generator so runs are deterministic.

use vist_core::{IndexOptions, NaiveIndex, QueryOptions, VistIndex};
use vist_xml::{Document, ElementBuilder};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Small vocabularies force structural sharing and overlapping scopes.
const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
const VALUES: [&str; 4] = ["1", "2", "3", "4"];

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_element(rng: &mut Rng, depth: usize) -> ElementBuilder {
    let mut e = ElementBuilder::new(NAMES[rng.below(NAMES.len())]);
    if rng.below(2) == 0 {
        e = e.text(VALUES[rng.below(VALUES.len())]);
    }
    if depth > 0 {
        let n_children = rng.below(4);
        let kids: Vec<ElementBuilder> = (0..n_children)
            .map(|_| random_element(rng, depth - 1))
            .collect();
        e = e.children(kids);
    }
    e
}

fn random_doc(rng: &mut Rng) -> Document {
    let depth = 1 + rng.below(4);
    random_element(rng, depth).into_document()
}

/// Wildcard-heavy random queries: most steps are `*` or `//`-prefixed, so
/// translation produces many alternative sequences and wide D-Ancestor
/// fan-out — the paths where parallel distribution and dedup actually run.
fn random_query(rng: &mut Rng) -> String {
    let steps = 1 + rng.below(4);
    let mut q = String::new();
    for _ in 0..steps {
        let n = rng.below(NAMES.len() + 3);
        let name = if n >= NAMES.len() { "*" } else { NAMES[n] };
        q.push_str(if rng.below(2) == 0 { "//" } else { "/" });
        q.push_str(name);
    }
    if rng.below(2) == 0 {
        q.push_str(&format!(
            "[{}='{}']",
            NAMES[rng.below(NAMES.len())],
            VALUES[rng.below(VALUES.len())]
        ));
    }
    if rng.below(3) == 0 {
        q.push_str(&format!("[text='{}']", VALUES[rng.below(VALUES.len())]));
    }
    q
}

#[test]
fn worker_count_never_changes_answers() {
    for case in 0..32u64 {
        let mut rng = Rng(0x9A_11E1 ^ (case << 9));
        let docs: Vec<Document> = (0..2 + rng.below(10))
            .map(|_| random_doc(&mut rng))
            .collect();
        let mut queries: Vec<String> = (0..2 + rng.below(4))
            .map(|_| random_query(&mut rng))
            .collect();
        // Always exercise an empty-result query: names absent from the data.
        queries.push("/zzz/yyy[text='none']".to_string());

        let mut naive = NaiveIndex::default();
        let vist = VistIndex::in_memory(IndexOptions::default()).unwrap();
        for d in &docs {
            naive.insert_document(d);
            vist.insert_document(d).unwrap();
        }

        for q in &queries {
            let pattern = vist_query::parse_query(q).unwrap().to_pattern();
            let oracle = naive.query(q, &QueryOptions::default()).unwrap();
            let serial = vist.query(q, &QueryOptions::default()).unwrap();
            assert_eq!(serial.doc_ids, oracle, "serial vs naive oracle: {q}");
            let (serial_scopes, _) = vist
                .match_scopes(&pattern, &QueryOptions::default())
                .unwrap();

            for &workers in &WORKER_COUNTS {
                let opts = QueryOptions {
                    workers,
                    ..Default::default()
                };
                let r = vist.query(q, &opts).unwrap();
                assert_eq!(
                    r.doc_ids, serial.doc_ids,
                    "doc ids diverge at {workers} workers: {q}"
                );
                assert_eq!(
                    r.candidates, serial.candidates,
                    "candidate count diverges at {workers} workers: {q}"
                );
                let (scopes, _) = vist.match_scopes(&pattern, &opts).unwrap();
                assert_eq!(
                    scopes, serial_scopes,
                    "scope set diverges at {workers} workers: {q}"
                );
            }
        }
    }
}

#[test]
fn dedup_skips_duplicate_wildcard_subproblems() {
    // `//a//a` reaches the same deep `a` chains through many wildcard
    // expansions; nested identical elements make those expansions overlap.
    let vist = VistIndex::in_memory(IndexOptions::default()).unwrap();
    for _ in 0..4 {
        vist.insert_xml("<a><a><a><a><b>1</b></a></a></a></a>")
            .unwrap();
    }
    let serial = vist.query("//a//a/b", &QueryOptions::default()).unwrap();
    assert!(!serial.doc_ids.is_empty());
    assert!(
        serial.stats.dedup_skips > 0,
        "expected duplicate sub-problems on a nested self-similar corpus: {:?}",
        serial.stats
    );
    for workers in [2, 4, 8] {
        let r = vist
            .query(
                "//a//a/b",
                &QueryOptions {
                    workers,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(r.doc_ids, serial.doc_ids, "workers={workers}");
    }
}

#[test]
fn merged_scope_resolution_counts_docs_once() {
    // Nested same-name elements: `//a` matches every level of each `a`
    // chain, and an inner level's scope is *contained* in its outer
    // level's. Interval merging must collapse the nest to one DocId range
    // query without changing the answer.
    let vist = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let mut ids = Vec::new();
    for i in 0..12 {
        let depth = 1 + i % 4;
        let open = "<a>".repeat(depth);
        let close = "</a>".repeat(depth);
        ids.push(
            vist.insert_xml(&format!("{open}<v>{i}</v>{close}"))
                .unwrap(),
        );
    }
    let r = vist.query("//a", &QueryOptions::default()).unwrap();
    assert_eq!(r.doc_ids, ids);
    assert!(
        r.stats.scopes_merged > 0,
        "expected interval merging on nested matches: {:?}",
        r.stats
    );
    assert!(
        r.stats.docid_scans < r.stats.nodes_visited,
        "merging must batch DocId scans: {:?}",
        r.stats
    );
}
