//! Span-tree invariants: `vist query --trace`'s tree must account for
//! the query's reported wall time — child stage durations sum to the
//! root total within the untimed-bookkeeping residue.

use vist_core::{IndexOptions, QueryOptions, VistIndex};

fn build_index() -> VistIndex {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    for i in 0..300 {
        idx.insert_xml(&format!(
            "<site><people><person><name>p{}</name><city>c{}</city></person></people></site>",
            i % 17,
            i % 5
        ))
        .unwrap();
    }
    idx
}

#[test]
fn span_tree_durations_sum_to_total() {
    let idx = build_index();
    vist_obs::set_tracing(true);
    let r = idx
        .query("/site/people/person/name", &QueryOptions::default())
        .unwrap();
    vist_obs::set_tracing(false);

    let tree = r.trace.expect("trace recorded while tracing is enabled");
    assert_eq!(tree.name, "query");
    assert!(tree.nanos > 0, "root span has no duration");

    // Children never exceed the root, and the pipeline stages (parse,
    // translate, plan, match, merge, docid) cover the bulk of the query:
    // the untimed residue is bookkeeping between stages.
    let child_sum = tree.child_nanos();
    assert!(
        child_sum <= tree.nanos,
        "children ({child_sum}) exceed root ({})",
        tree.nanos
    );
    assert!(
        child_sum * 2 >= tree.nanos,
        "stage spans cover less than half the query: {child_sum} of {}\n{}",
        tree.nanos,
        tree.render()
    );
    for name in ["translate", "match", "merge", "docid"] {
        assert!(
            tree.children.iter().any(|c| c.name == name),
            "missing stage '{name}' in:\n{}",
            tree.render()
        );
    }

    // The flat stage timings agree with the same invariant.
    assert!(r.timings.total_nanos > 0);
    assert!(r.timings.stage_sum() <= r.timings.total_nanos);
}

#[test]
fn no_trace_when_disabled() {
    let idx = build_index();
    let r = idx.query("//name", &QueryOptions::default()).unwrap();
    assert!(r.trace.is_none());
    assert!(r.timings.total_nanos > 0, "timings work without tracing");
}
