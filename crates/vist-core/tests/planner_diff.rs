//! Differential test for the cost-based query planner.
//!
//! The planner only reorders work and prunes provably-empty sequences, so
//! for every corpus and query the planned engine must return *identical*
//! document-id sets and final-scope sets to the unplanned (`no_plan`)
//! engine — and both must agree with the Naive oracle (Algorithm 1 over
//! the trie). `limit` is the one sanctioned deviation: a limited query
//! must return a subset of the full answer of size `min(limit, |full|)`.
//! Driven by a seeded splitmix64 generator so runs are deterministic.

use std::collections::BTreeSet;

use vist_core::{IndexOptions, NaiveIndex, QueryOptions, VistIndex};
use vist_xml::{Document, ElementBuilder};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Small vocabularies force structural sharing and overlapping scopes.
const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
const VALUES: [&str; 4] = ["1", "2", "3", "4"];

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_element(rng: &mut Rng, depth: usize) -> ElementBuilder {
    let mut e = ElementBuilder::new(NAMES[rng.below(NAMES.len())]);
    if rng.below(2) == 0 {
        e = e.text(VALUES[rng.below(VALUES.len())]);
    }
    if depth > 0 {
        let n_children = rng.below(4);
        let kids: Vec<ElementBuilder> = (0..n_children)
            .map(|_| random_element(rng, depth - 1))
            .collect();
        e = e.children(kids);
    }
    e
}

fn random_doc(rng: &mut Rng) -> Document {
    let depth = 1 + rng.below(4);
    random_element(rng, depth).into_document()
}

/// Wildcard-heavy queries: most steps are `*` or `//`-prefixed, so the
/// planner has many alternative sequences to rank and many expansions to
/// probe-prune.
fn random_wildcard_query(rng: &mut Rng) -> String {
    let steps = 1 + rng.below(4);
    let mut q = String::new();
    for _ in 0..steps {
        let n = rng.below(NAMES.len() + 4);
        let name = if n >= NAMES.len() { "*" } else { NAMES[n] };
        q.push_str(if rng.below(2) == 0 { "//" } else { "/" });
        q.push_str(name);
    }
    if rng.below(2) == 0 {
        q.push_str(&format!(
            "[{}='{}']",
            NAMES[rng.below(NAMES.len())],
            VALUES[rng.below(VALUES.len())]
        ));
    }
    q
}

/// Branch-heavy queries: one or two trunk steps carrying several
/// predicates each — the translation shapes whose alternative-sequence
/// order the planner rewrites most aggressively.
fn random_branch_query(rng: &mut Rng) -> String {
    let mut q = String::new();
    for _ in 0..1 + rng.below(2) {
        q.push('/');
        q.push_str(NAMES[rng.below(NAMES.len())]);
        for _ in 0..1 + rng.below(2) {
            if rng.below(2) == 0 {
                q.push_str(&format!("[{}]", NAMES[rng.below(NAMES.len())]));
            } else {
                q.push_str(&format!(
                    "[{}='{}']",
                    NAMES[rng.below(NAMES.len())],
                    VALUES[rng.below(VALUES.len())]
                ));
            }
        }
    }
    q
}

/// Queries whose D-Ancestor prefixes cannot exist in the data (names
/// outside the vocabulary, at several positions): the planner's
/// empty-prefix short-circuit must not change the (empty) answer.
fn empty_prefix_queries() -> Vec<String> {
    vec![
        "/zzz".into(),
        "//zzz".into(),
        "/zzz/yyy[text='none']".into(),
        "/a/zzz//b".into(),
        "//zzz/*".into(),
        "/a[zzz]/b".into(),
        "/*/zzz".into(),
    ]
}

/// Build the same corpus three ways: the naive oracle, a delta-only index,
/// and a tiered index (bulk-built segment + delta residue). The TempDir
/// backs the tiered index and must outlive it.
fn build_indexes(
    case: u64,
    docs: &[Document],
) -> (
    NaiveIndex,
    VistIndex,
    VistIndex,
    vist_storage::testutil::TempDir,
) {
    let mut naive = NaiveIndex::default();
    let delta_only = VistIndex::in_memory(IndexOptions::default()).unwrap();
    for d in docs {
        naive.insert_document(d);
        delta_only.insert_document(d).unwrap();
    }
    let dir = vist_storage::testutil::TempDir::new(&format!("planner-diff-{case}"));
    let tiered = VistIndex::create_file(dir.file("store"), IndexOptions::default()).unwrap();
    let split = docs.len() / 2;
    if split > 0 {
        let xml: Vec<String> = docs[..split].iter().map(|d| d.to_xml()).collect();
        tiered.bulk_build(xml).unwrap();
    }
    for d in &docs[split..] {
        tiered.insert_document(d).unwrap();
    }
    (naive, delta_only, tiered, dir)
}

fn check_query(naive: &mut NaiveIndex, vist: &VistIndex, label: &str, q: &str) {
    let Ok(parsed) = vist_query::parse_query(q) else {
        return; // a random branch query can be syntactically degenerate
    };
    let pattern = parsed.to_pattern();
    let oracle = naive.query(q, &QueryOptions::default()).unwrap();

    let unplanned_opts = QueryOptions {
        no_plan: true,
        ..Default::default()
    };
    let unplanned = vist.query(q, &unplanned_opts).unwrap();
    assert_eq!(
        unplanned.doc_ids, oracle,
        "{label}: unplanned vs oracle: {q}"
    );
    let (unplanned_scopes, _) = vist.match_scopes(&pattern, &unplanned_opts).unwrap();

    for &workers in &WORKER_COUNTS {
        let opts = QueryOptions {
            workers,
            ..Default::default()
        };
        let planned = vist.query(q, &opts).unwrap();
        assert_eq!(
            planned.doc_ids, oracle,
            "{label}: planned@{workers} vs oracle: {q}"
        );
        assert_eq!(
            planned.candidates, unplanned.candidates,
            "{label}: candidate count diverges at {workers} workers: {q}"
        );
        let (scopes, _) = vist.match_scopes(&pattern, &opts).unwrap();
        assert_eq!(
            scopes, unplanned_scopes,
            "{label}: scope set diverges at {workers} workers: {q}"
        );

        // Limited queries: subset of the full answer, exact size. The
        // reference set depends on `verify` — raw (naive/ViST §3.2)
        // semantics without it, exact subtree matching with it.
        let full_verified: BTreeSet<u64> = vist
            .query(
                q,
                &QueryOptions {
                    workers,
                    verify: true,
                    ..Default::default()
                },
            )
            .unwrap()
            .doc_ids
            .into_iter()
            .collect();
        let full_raw: BTreeSet<u64> = oracle.iter().copied().collect();
        for limit in [
            0usize,
            1,
            2,
            oracle.len().saturating_sub(1),
            oracle.len() + 3,
        ] {
            for verify in [false, true] {
                let full = if verify { &full_verified } else { &full_raw };
                let r = vist
                    .query(
                        q,
                        &QueryOptions {
                            workers,
                            verify,
                            limit: Some(limit),
                            ..Default::default()
                        },
                    )
                    .unwrap();
                assert_eq!(
                    r.doc_ids.len(),
                    limit.min(full.len()),
                    "{label}: limit {limit} (verify={verify}) wrong size at {workers} workers: {q}"
                );
                assert!(
                    r.doc_ids.iter().all(|id| full.contains(id)),
                    "{label}: limit {limit} (verify={verify}) returned non-answer at \
                     {workers} workers: {q}: {:?} not in {full:?}",
                    r.doc_ids
                );
            }
        }
    }
}

#[test]
fn planner_never_changes_answers() {
    for case in 0..24u64 {
        let mut rng = Rng(0x71A_0001 ^ (case << 11));
        let docs: Vec<Document> = (0..2 + rng.below(10))
            .map(|_| random_doc(&mut rng))
            .collect();
        let mut queries: Vec<String> = (0..3).map(|_| random_wildcard_query(&mut rng)).collect();
        queries.extend((0..3).map(|_| random_branch_query(&mut rng)));
        if case % 4 == 0 {
            queries.extend(empty_prefix_queries());
        }

        let (mut naive, delta_only, tiered, _dir) = build_indexes(case, &docs);
        for q in &queries {
            check_query(&mut naive, &delta_only, "delta", q);
            check_query(&mut naive, &tiered, "tiered", q);
        }
    }
}

#[test]
fn planner_prunes_absent_prefixes_without_changing_answers() {
    // A corpus where the planner's empty-prefix short-circuit fires on
    // every alternative involving the absent name.
    let vist = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let mut naive = NaiveIndex::default();
    for i in 0..8 {
        let xml = format!("<a><b><c>{}</c></b><d>x</d></a>", i % 4 + 1);
        vist.insert_xml(&xml).unwrap();
        let doc = vist_xml::parse(&xml).unwrap();
        naive.insert_document(&doc);
    }
    for q in empty_prefix_queries() {
        check_query(&mut naive, &vist, "absent", &q);
    }
    // A dead-prefix query over *interned* symbols must record a prune
    // (`b` exists, but never at the root, so the (b, ε) prefix is empty;
    // a never-seen name like `zzz` is killed earlier, at translation).
    check_query(&mut naive, &vist, "absent", "/b/c");
    let r = vist.query("/b/c", &QueryOptions::default()).unwrap();
    assert!(r.doc_ids.is_empty());
    assert!(
        r.stats.planner_seqs_pruned > 0,
        "expected an empty-prefix prune: {:?}",
        r.stats
    );
    // And the planner-off path must not prune (naive order runs it all).
    let r = vist
        .query(
            "/b/c",
            &QueryOptions {
                no_plan: true,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(r.doc_ids.is_empty());
    assert_eq!(r.stats.planner_seqs_pruned, 0, "{:?}", r.stats);
}

#[test]
fn planner_prunes_wildcard_expansions() {
    // Forty sibling subtrees under the root, only one of which carries the
    // `/r/*/c/d` tail: the planner's child-probe prune must kill the dead
    // expansions before they spawn work items, and cut match work by a
    // wide margin, without changing the answer.
    let vist = VistIndex::in_memory(IndexOptions::default()).unwrap();
    let mut naive = NaiveIndex::default();
    for i in 0..6 {
        let mut xml = String::from("<r>");
        for m in 0..40 {
            if m == 7 {
                xml.push_str(&format!("<m{m}><c><d>hit{i}</d></c></m{m}>"));
            } else {
                xml.push_str(&format!("<m{m}><c>miss</c></m{m}>"));
            }
        }
        xml.push_str("</r>");
        vist.insert_xml(&xml).unwrap();
        naive.insert_document(&vist_xml::parse(&xml).unwrap());
    }
    let q = "/r/*/c/d";
    check_query(&mut naive, &vist, "fanout", q);

    let planned = vist.query(q, &QueryOptions::default()).unwrap();
    let unplanned = vist
        .query(
            q,
            &QueryOptions {
                no_plan: true,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(planned.doc_ids, unplanned.doc_ids);
    assert!(
        planned.stats.planner_probe_prunes > 0,
        "expected child-probe prunes on the dead middles: {:?}",
        planned.stats
    );
    assert!(
        planned.stats.work_items * 2 <= unplanned.stats.work_items,
        "planner must cut work items at least 2x: planned {} vs naive {}",
        planned.stats.work_items,
        unplanned.stats.work_items
    );
}
