//! Counter-aggregation invariants: the per-query [`QueryStats`] the match
//! engine reports must fold correctly into the index-lifetime
//! [`MatchCounters`] totals, and the *logical* work counters must not
//! depend on how many workers executed the query.
//!
//! Concrete (wildcard-free) queries are used throughout: their frame
//! expansion is deterministic, so `work_items` and `scopes_merged` must be
//! bit-identical between a serial and a parallel run. `steals` is the one
//! counter that legitimately varies with scheduling — it must simply be
//! zero whenever a single worker runs.

use vist_core::{IndexOptions, QueryOptions, QueryStats, VistIndex};

const QUERIES: &[&str] = &[
    "/r/a[text='3']",
    "/r/b/c",
    "/r[a='1']/b/c[text='2']",
    "/r/b[c='5']",
    "/r/a",
];

fn build_index() -> VistIndex {
    let idx = VistIndex::in_memory(IndexOptions::default()).unwrap();
    for i in 0..200 {
        idx.insert_xml(&format!("<r><a>{}</a><b><c>{}</c></b></r>", i % 13, i % 7))
            .unwrap();
    }
    idx
}

/// Run the workload on a fresh index; return each query's result stats and
/// doc ids alongside the index's final cumulative counters.
fn run_workload(workers: usize) -> (Vec<(Vec<u64>, QueryStats)>, vist_core::IndexStats) {
    let idx = build_index();
    let per_query: Vec<(Vec<u64>, QueryStats)> = QUERIES
        .iter()
        .map(|q| {
            let r = idx
                .query(
                    q,
                    &QueryOptions {
                        workers,
                        ..Default::default()
                    },
                )
                .unwrap();
            (r.doc_ids, r.stats)
        })
        .collect();
    let stats = idx.stats();
    (per_query, stats)
}

#[test]
fn cumulative_counters_equal_per_query_sums() {
    for workers in [1, 4] {
        let (per_query, stats) = run_workload(workers);
        let sum = per_query
            .iter()
            .fold(QueryStats::default(), |mut acc, (_, s)| {
                acc.work_items += s.work_items;
                acc.steals += s.steals;
                acc.scopes_merged += s.scopes_merged;
                acc.dedup_skips += s.dedup_skips;
                acc
            });
        assert_eq!(stats.match_work_items, sum.work_items, "workers={workers}");
        assert_eq!(stats.match_steals, sum.steals, "workers={workers}");
        assert_eq!(
            stats.match_scopes_merged, sum.scopes_merged,
            "workers={workers}"
        );
        assert_eq!(
            stats.match_dedup_skips, sum.dedup_skips,
            "workers={workers}"
        );
        assert!(sum.work_items > 0, "workload expanded no frames");
    }
}

#[test]
fn logical_work_is_worker_count_invariant() {
    let (serial, serial_stats) = run_workload(1);
    let (parallel, parallel_stats) = run_workload(4);
    for (q, ((docs1, s1), (docs4, s4))) in QUERIES.iter().zip(serial.iter().zip(parallel.iter())) {
        assert_eq!(docs1, docs4, "answers differ for {q}");
        assert_eq!(s1.work_items, s4.work_items, "work_items differ for {q}");
        assert_eq!(
            s1.scopes_merged, s4.scopes_merged,
            "scopes_merged differ for {q}"
        );
        assert_eq!(s1.steals, 0, "serial run stole work for {q}");
    }
    assert_eq!(
        serial_stats.match_work_items,
        parallel_stats.match_work_items
    );
    assert_eq!(
        serial_stats.match_scopes_merged,
        parallel_stats.match_scopes_merged
    );
    assert_eq!(serial_stats.match_steals, 0);
}
