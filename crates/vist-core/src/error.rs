//! Error type for index operations.

use std::fmt;

/// Result alias for index operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from building or querying an index.
#[derive(Debug)]
pub enum Error {
    /// The storage/B+Tree layer failed.
    Storage(vist_storage::Error),
    /// A query expression failed to parse.
    Query(vist_query::QueryParseError),
    /// The on-disk index is malformed or from an incompatible version.
    Corrupt(String),
    /// The requested operation needs stored documents
    /// (`IndexOptions::store_documents`), but the index was built without.
    DocumentsNotStored,
    /// The document id is not present in the index.
    NoSuchDocument(u64),
    /// The requested operation (bulk load, compaction) needs tiered
    /// storage, which only file-backed indexes opened through
    /// `VistIndex::create_at` / `open_at` (or the `create_file` /
    /// `open_file` shorthands) have.
    NotTiered,
    /// The query's deadline (`QueryOptions::deadline`) passed before the
    /// search completed. The cancellation is cooperative — checked at
    /// match work-item granularity — and leaves the index fully readable:
    /// no locks are poisoned and no state is mutated, so the next query
    /// on the same index returns exactly what an undisturbed run would.
    DeadlineExceeded,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Storage(e) => write!(f, "storage error: {e}"),
            Error::Query(e) => write!(f, "{e}"),
            Error::Corrupt(m) => write!(f, "corrupt index: {m}"),
            Error::DocumentsNotStored => {
                write!(
                    f,
                    "operation requires store_documents=true at index creation"
                )
            }
            Error::NoSuchDocument(id) => write!(f, "no document with id {id}"),
            Error::NotTiered => {
                write!(f, "operation requires a tiered (file-backed) index")
            }
            Error::DeadlineExceeded => write!(f, "query deadline exceeded"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Storage(e) => Some(e),
            Error::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vist_storage::Error> for Error {
    fn from(e: vist_storage::Error) -> Self {
        Error::Storage(e)
    }
}

impl From<vist_query::QueryParseError> for Error {
    fn from(e: vist_query::QueryParseError) -> Self {
        Error::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::DocumentsNotStored
            .to_string()
            .contains("store_documents"));
        assert!(Error::NoSuchDocument(9).to_string().contains('9'));
        assert!(Error::Corrupt("bad".into()).to_string().contains("bad"));
        assert!(Error::NotTiered.to_string().contains("tiered"));
        assert!(Error::DeadlineExceeded.to_string().contains("deadline"));
    }
}
