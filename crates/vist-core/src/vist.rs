//! [`VistIndex`]: the paper's main contribution — the dynamically labeled,
//! fully B+Tree-resident index (Algorithms 2–4).
//!
//! # Concurrency
//!
//! The index is single-writer / multi-reader behind a uniform `&self` API:
//! share it as `Arc<VistIndex>` and call [`VistIndex::query`] from any
//! number of threads while one thread runs [`VistIndex::insert_xml`] (and
//! friends). Writers serialize on an internal lock; queries never block
//! other queries. [`VistIndex::remove_document`] is *maintenance*: it frees
//! B+Tree pages and therefore briefly excludes queries via an internal
//! read-write latch. See `docs/CONCURRENCY.md` for the full lock hierarchy.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use vist_query::{
    matches_document, parse_query, translate_with, try_translate, Pattern, TranslateOptions,
    Translation,
};
use vist_seq::{
    dkey, document_to_sequence, PathSym, Sequence, SiblingOrder, Sym, SymbolTable, TableOverlay,
};
use vist_storage::sync::{Mutex, RwLock};
use vist_storage::{BufferPool, FilePager, Manifest, MemPager, PageId, RealVfs, Vfs};
use vist_xml::Document;

use crate::alloc::{Allocation, AllocatorKind, ScopeAllocator, SimMutation};
use crate::error::{Error, Result};
use crate::extsort::DEFAULT_SORT_BUDGET;
use crate::ingest::IngestCache;
use crate::search::{
    search_sequences_opts, DocIdStrategy, PruneReason, QueryStats, SearchMode, SearchOptions,
    StageTimings,
};
use crate::segment::{Segment, SegmentBuilder};
use crate::stats::{IndexStats, IngestCounters, MatchCounters};
use crate::store::{DocId, NodeState, Store, StoreBreakdown};

/// Configuration for creating an index.
#[derive(Debug, Clone)]
pub struct IndexOptions {
    /// Page size of the backing store (the paper uses 2 KiB; we default to
    /// 4 KiB).
    pub page_size: usize,
    /// Buffer-pool capacity, in pages.
    pub cache_pages: usize,
    /// Scope-allocation λ (expected fanout).
    pub lambda: u64,
    /// Grow the allocation divisor with child count (prevents hot-node
    /// scope exhaustion; see `alloc`).
    pub adaptive: bool,
    /// Allocation scheme (geometric, or probability-guided by a
    /// [`crate::StatsModel`]).
    pub allocator: AllocatorKind,
    /// Store original documents (enables exact verification and deletion).
    pub store_documents: bool,
    /// Sibling ordering used for sequence conversion.
    pub order: SiblingOrder,
    /// Deliberately planted allocation bug for validating the `vist-sim`
    /// harness ([`SimMutation::None`] everywhere else — see
    /// [`crate::SimMutation`]). Not persisted: a reopened index is always
    /// un-mutated unless [`VistIndex::set_sim_mutation`] re-arms it.
    pub mutation: SimMutation,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            page_size: 4096,
            cache_pages: 1024,
            lambda: 16,
            adaptive: true,
            allocator: AllocatorKind::NoClues,
            store_documents: true,
            order: SiblingOrder::Lexicographic,
            mutation: SimMutation::None,
        }
    }
}

/// Options for a single query.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Post-filter candidates through the exact tree-pattern matcher,
    /// removing ViST's known false positives. Requires
    /// [`IndexOptions::store_documents`].
    pub verify: bool,
    /// Cap on alternative query sequences (see
    /// [`TranslateOptions::max_sequences`]).
    pub max_sequences: usize,
    /// Worker threads for the match engine (`<= 1` runs the search inline
    /// on the calling thread). Alternative sequences and independent
    /// D-Ancestor branches are distributed across the workers.
    pub workers: usize,
    /// Seeded scheduling of match-frame expansion (the `vist-sim`
    /// scheduler hook; see [`crate::search_sequences_with`]). `None` (the
    /// default) keeps the production depth-first/FIFO order. Any seed must
    /// produce identical answers.
    pub schedule_seed: Option<u64>,
    /// Disable the cost-based planner (ViST §3.4 statistical clues) and
    /// run sequences in naive translation order with no plan-time
    /// probing. Results are identical either way — the planner only
    /// reorders work and prunes provably-empty branches — so this exists
    /// to bisect regressions and to measure the planner's effect
    /// (`vist query --no-plan`, `bench_planner`).
    pub no_plan: bool,
    /// Stop after this many distinct matching documents (early
    /// termination). The returned ids are a size-`limit` subset of the
    /// full answer; *which* subset may depend on planning and tier
    /// order. With `verify` the limit applies to verified answers.
    pub limit: Option<usize>,
    /// Cooperative deadline: once this instant passes, the query stops at
    /// the next match work-item (or per-document verification) boundary
    /// and returns [`Error::DeadlineExceeded`]. Cancellation never
    /// poisons locks or mutates the index — the next query on the same
    /// index is undisturbed. `None` (the default) runs to completion.
    pub deadline: Option<std::time::Instant>,
    /// Request-scoped 128-bit trace id. `0` (the default) mints a fresh
    /// one; a caller that already has an id (e.g. `vist-serve` echoing a
    /// client-supplied `X-Vist-Trace-Id`) passes it here so slow-log
    /// entries, retained traces, and histogram exemplars all key to the
    /// same id. The effective id is returned on
    /// [`QueryResult::trace_id`].
    pub trace_id: u128,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            verify: false,
            max_sequences: 24,
            workers: 1,
            schedule_seed: None,
            no_plan: false,
            limit: None,
            deadline: None,
            trace_id: 0,
        }
    }
}

/// Result of a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Matching document ids, ascending.
    pub doc_ids: Vec<DocId>,
    /// Candidate count before verification (equals `doc_ids.len()` when
    /// verification is off).
    pub candidates: usize,
    /// Whether alternative-sequence generation was truncated (possible
    /// false negatives).
    pub truncated: bool,
    /// Search instrumentation.
    pub stats: QueryStats,
    /// Per-stage wall-clock breakdown (zeros when `vist-obs` timing is
    /// disabled).
    pub timings: StageTimings,
    /// Hierarchical span tree of this query's execution, present when
    /// `vist_obs::set_tracing(true)` was active and this query started
    /// the trace (e.g. `vist query --trace`).
    pub trace: Option<vist_obs::SpanNode>,
    /// The trace id this query ran under: [`QueryOptions::trace_id`] if
    /// non-zero, otherwise freshly minted. Keys the slow log, retained
    /// traces (`tracez`), and latency exemplars (all inert under the
    /// `noop` feature, but the id itself is always present).
    pub trace_id: u128,
}

/// The ViST index.
///
/// See the crate docs for an end-to-end example, and the module docs for
/// the concurrency contract (`Arc<VistIndex>` + `&self` everywhere).
pub struct VistIndex {
    pub(crate) store: Store,
    /// Symbol table shared by data and queries. Writers intern new names
    /// under the write lock; queries translate under the read lock.
    pub(crate) table: RwLock<SymbolTable>,
    pub(crate) order: SiblingOrder,
    alloc: Mutex<ScopeAllocator>,
    /// Serializes all mutations (inserts, removes, flushes). Top of the
    /// lock hierarchy: writer → maintenance → table → (btree/pool locks).
    pub(crate) writer: Mutex<()>,
    /// Readers hold this shared; `remove_document` holds it exclusively
    /// because B+Tree deletion frees pages and is not reader-safe.
    /// `insert_batch` also holds it exclusively across its apply phase so
    /// readers never observe a torn (partially applied) batch.
    pub(crate) maintenance: RwLock<()>,
    /// Cumulative parallel-match counters across all queries.
    match_counters: MatchCounters,
    /// Cumulative batched-ingest counters across all `insert_batch` calls.
    pub(crate) ingest_counters: IngestCounters,
    /// Tiered storage: immutable packed segments beneath the mutable
    /// delta. `None` for in-memory and pool-provided indexes, which stay
    /// single-tier.
    tier: Option<Tier>,
}

/// How many segments accumulate before [`VistIndex::bulk_build`]
/// auto-triggers a compaction.
const COMPACT_SEGMENT_THRESHOLD: usize = 4;

/// Run a background operation — compaction, checkpoint, segment build,
/// WAL-recovery reopen — as a traced unit of work: `vist_bg_<op>_*`
/// in-progress/last-duration/total metrics, one wide event carrying its
/// own freshly minted trace id, and (when tracing is on and the op is
/// not nested inside another traced operation on this thread) a span
/// tree retained in `tracez` under that id.
fn bg_op<T>(op: &'static str, f: impl FnOnce() -> Result<T>) -> Result<T> {
    let trace_id = vist_obs::traceid::mint();
    let inprogress = vist_obs::registry::gauge(&format!("vist_bg_{op}_inprogress"));
    inprogress.add(1);
    let trace = vist_obs::Trace::begin(op);
    let start = vist_obs::now();
    let result = f();
    let nanos = vist_obs::elapsed_nanos(start).unwrap_or(0);
    inprogress.add(-1);
    vist_obs::registry::gauge(&format!("vist_bg_{op}_last_duration_ms"))
        .set(i64::try_from(nanos / 1_000_000).unwrap_or(i64::MAX));
    vist_obs::registry::counter(&format!("vist_bg_{op}_total")).inc();
    if let Some(trace) = trace {
        let root = trace.finish();
        vist_obs::tracez::record(trace_id, format!("bg:{op}"), root.nanos, root);
    }
    vist_obs::WideEvent::new(op)
        .str_field("trace_id", &vist_obs::traceid::format(trace_id))
        .u64_field("total_nanos", nanos)
        .str_field("outcome", if result.is_ok() { "ok" } else { "error" })
        .emit();
    result
}

/// The segment tier of a file-backed index: the manifest naming the live
/// segments, and the opened segments themselves (newest last, matching
/// manifest order).
struct TierState {
    manifest: Manifest,
    segments: Vec<Arc<Segment>>,
}

struct Tier {
    vfs: Arc<dyn Vfs>,
    /// Base path of the index file; the manifest and segments derive their
    /// paths from it (`<base>.manifest`, `<base>.seg-<id>`).
    path: PathBuf,
    page_size: usize,
    cache_pages: usize,
    /// Acquired after `maintenance` in the lock hierarchy; held only to
    /// clone or swap the segment list, never across IO.
    state: RwLock<TierState>,
}

impl Tier {
    /// Spill directory for external-sort runs during a bulk build or
    /// compaction (scratch only — never read after a crash).
    fn scratch_dir(&self) -> PathBuf {
        let mut os = self.path.as_os_str().to_os_string();
        os.push(".ingest-tmp");
        PathBuf::from(os)
    }

    fn next_segment_id(&self) -> u64 {
        self.state
            .read()
            .manifest
            .segments
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            + 1
    }
}

#[derive(Debug, Clone, Copy)]
enum Loc {
    Root,
    Node(u64),
}

/// Sentinel dkey-id for overflow edges: `edge(x, OVERFLOW_EDGE)` points from
/// a node incarnation to its successor incarnation. Real dkey-ids are dense
/// from 0 and never reach this value.
const OVERFLOW_EDGE: u64 = u64::MAX;

struct ChainEntry {
    loc: Loc,
    /// The original node's label (head of its incarnation chain).
    head_n: u128,
    /// Allocation state of the *latest* incarnation.
    state: NodeState,
    sym: Option<Sym>,
}

impl VistIndex {
    /// Create a transient in-memory index.
    pub fn in_memory(opts: IndexOptions) -> Result<Self> {
        let pool = Arc::new(BufferPool::with_capacity(
            MemPager::new(opts.page_size),
            opts.cache_pages,
        ));
        Self::create_on(pool, opts)
    }

    /// Create a new index file at `path` (truncates any existing file).
    /// File-backed indexes are *tiered*: they support
    /// [`VistIndex::bulk_build`] and [`VistIndex::compact`].
    pub fn create_file<P: AsRef<Path>>(path: P, opts: IndexOptions) -> Result<Self> {
        Self::create_at(Arc::new(RealVfs), path.as_ref(), opts)
    }

    /// [`VistIndex::create_file`] through an explicit [`Vfs`] (tests inject
    /// faults into every tier file — index, WAL, segments, manifest).
    pub fn create_at(vfs: Arc<dyn Vfs>, path: &Path, opts: IndexOptions) -> Result<Self> {
        let page_size = opts.page_size;
        let cache_pages = opts.cache_pages;
        let pager = FilePager::create_with_vfs(vfs.as_ref(), path, page_size)?;
        let pool = Arc::new(BufferPool::with_capacity(pager, cache_pages));
        let mut idx = Self::create_on(pool, opts)?;
        idx.tier = Some(Tier {
            vfs,
            path: path.to_path_buf(),
            page_size,
            cache_pages,
            state: RwLock::new(TierState {
                manifest: Manifest {
                    generation: 0,
                    delta_epoch: 0,
                    segments: Vec::new(),
                },
                segments: Vec::new(),
            }),
        });
        Ok(idx)
    }

    /// Create an index on an existing pool (advanced; lets tests share
    /// pagers).
    pub fn create_on(pool: Arc<BufferPool>, opts: IndexOptions) -> Result<Self> {
        crate::register_metrics();
        let store = Store::create(pool, opts.lambda, opts.adaptive, opts.store_documents)?;
        Ok(VistIndex {
            store,
            table: RwLock::new(SymbolTable::new()),
            order: opts.order,
            alloc: Mutex::new({
                let mut alloc = ScopeAllocator::new(opts.lambda, opts.adaptive, opts.allocator);
                alloc.mutation = opts.mutation;
                alloc
            }),
            writer: Mutex::new(()),
            maintenance: RwLock::new(()),
            match_counters: MatchCounters::default(),
            ingest_counters: IngestCounters::default(),
            tier: None,
        })
    }

    /// Reopen an index file created by [`VistIndex::create_file`] (after a
    /// [`VistIndex::flush`]). Opening replays any committed write-ahead-log
    /// records a crash left behind (see `docs/DURABILITY.md`); the
    /// [`IndexStats::io`] counters `recovered_pages` / `wal_discarded_bytes`
    /// report what recovery did. A persisted statistics model (from a
    /// `WithClues` allocator) is restored automatically. The segment tier
    /// is reopened from the manifest, finishing any compaction or bulk
    /// load a crash interrupted (see `docs/SEGMENTS.md`).
    pub fn open_file<P: AsRef<Path>>(path: P, cache_pages: usize) -> Result<Self> {
        Self::open_at(Arc::new(RealVfs), path.as_ref(), cache_pages)
    }

    /// [`VistIndex::open_file`] through an explicit [`Vfs`]. The open —
    /// which replays any pending WAL and redoes interrupted compactions
    /// and bulk loads — is a traced `wal_recovery` background operation.
    pub fn open_at(vfs: Arc<dyn Vfs>, path: &Path, cache_pages: usize) -> Result<Self> {
        bg_op("wal_recovery", move || {
            Self::open_at_inner(vfs, path, cache_pages)
        })
    }

    fn open_at_inner(vfs: Arc<dyn Vfs>, path: &Path, cache_pages: usize) -> Result<Self> {
        let pager = FilePager::open_with_vfs(vfs.as_ref(), path)?;
        let pool = Arc::new(BufferPool::with_capacity(pager, cache_pages));
        let page_size = pool.page_size();
        let mut idx = Self::open_on(pool)?;
        let manifest = Manifest::load(vfs.as_ref(), path)?.unwrap_or(Manifest {
            generation: 0,
            delta_epoch: 0,
            segments: Vec::new(),
        });
        // Compaction redo: the manifest swap is the commit point, so a
        // manifest ahead of the delta's epoch means the post-swap delta
        // clear never reached disk. Re-run it — the delta's content was
        // absorbed into the compacted segment before the swap.
        if manifest.delta_epoch > idx.store.meta().delta_epoch {
            idx.store.clear_delta(manifest.delta_epoch)?;
            let table = idx.table.read().clone();
            idx.store.flush(&table, &idx.order)?;
        }
        let mut segments = Vec::with_capacity(manifest.segments.len());
        for &id in &manifest.segments {
            segments.push(Arc::new(Segment::open(
                vfs.as_ref(),
                path,
                id,
                cache_pages,
            )?));
        }
        // Bulk-load redo: a segment whose doc ids reach past `next_doc` was
        // committed (manifest swapped) before the meta bump was flushed.
        // Bulk ids are contiguous from the old `next_doc`, so the whole
        // segment is unaccounted.
        {
            let mut fixed = false;
            for seg in &segments {
                let mut meta = idx.store.meta_mut();
                if seg.doc_count > 0 && seg.max_doc >= meta.next_doc {
                    meta.doc_count += seg.doc_count;
                    meta.next_doc = seg.max_doc + 1;
                    fixed = true;
                }
            }
            if fixed {
                let table = idx.table.read().clone();
                idx.store.flush(&table, &idx.order)?;
            }
        }
        idx.tier = Some(Tier {
            vfs,
            path: path.to_path_buf(),
            page_size,
            cache_pages,
            state: RwLock::new(TierState { manifest, segments }),
        });
        Ok(idx)
    }

    /// Reopen an index from an existing pool (advanced; pairs with
    /// [`VistIndex::create_on`] the way [`VistIndex::open_file`] pairs with
    /// [`VistIndex::create_file`], and lets tests open through a
    /// fault-injecting pager).
    pub fn open_on(pool: Arc<BufferPool>) -> Result<Self> {
        crate::register_metrics();
        // The meta page is always the first page a FilePager hands out.
        let meta_page: PageId = 1;
        let (store, table, order) = Store::open(pool, meta_page)?;
        let kind = match store.load_stats_model()? {
            Some(model) => AllocatorKind::WithClues(model),
            None => AllocatorKind::NoClues,
        };
        let (lambda, adaptive) = {
            let meta = store.meta();
            (meta.lambda, meta.adaptive)
        };
        let alloc = ScopeAllocator::new(lambda, adaptive, kind);
        Ok(VistIndex {
            store,
            table: RwLock::new(table),
            order,
            alloc: Mutex::new(alloc),
            writer: Mutex::new(()),
            maintenance: RwLock::new(()),
            match_counters: MatchCounters::default(),
            ingest_counters: IngestCounters::default(),
            tier: None,
        })
    }

    /// Snapshot the open segments (newest last). Cheap: clones a small
    /// `Vec<Arc<_>>` under a brief tier-state read lock.
    fn segments_snapshot(&self) -> Vec<Arc<Segment>> {
        match &self.tier {
            Some(t) => t.state.read().segments.clone(),
            None => Vec::new(),
        }
    }

    /// Fetch a stored document from whichever tier holds it: the delta
    /// first, then the segments. Does NOT consult tombstones — callers
    /// mask deleted segment docs themselves.
    fn doc_get_any(&self, doc: DocId, segments: &[Arc<Segment>]) -> Result<Option<Vec<u8>>> {
        if let Some(xml) = self.store.doc_get(doc)? {
            return Ok(Some(xml));
        }
        for seg in segments.iter().rev() {
            if let Some(xml) = seg.doc_get(doc)? {
                return Ok(Some(xml));
            }
        }
        Ok(None)
    }

    /// Ids of all live documents (tombstone-masked), ascending. Caller
    /// holds the maintenance latch.
    fn live_doc_ids(&self, segments: &[Arc<Segment>]) -> Result<Vec<DocId>> {
        let mut ids: BTreeSet<DocId> = self.store.doc_ids()?.into_iter().collect();
        if !segments.is_empty() {
            let tombs: BTreeSet<DocId> = self.store.tomb_ids()?.into_iter().collect();
            for seg in segments {
                for id in seg.doc_ids()? {
                    if !tombs.contains(&id) {
                        ids.insert(id);
                    }
                }
            }
        }
        Ok(ids.into_iter().collect())
    }

    /// Replace the scope-allocation policy (e.g. re-supply clues after
    /// reopening).
    pub fn set_allocator(&self, kind: AllocatorKind) {
        let (lambda, adaptive) = {
            let meta = self.store.meta();
            (meta.lambda, meta.adaptive)
        };
        *self.alloc.lock() = ScopeAllocator::new(lambda, adaptive, kind);
    }

    /// Re-arm (or clear) the planted allocation bug used to validate the
    /// `vist-sim` harness. Needed after reopen: [`VistIndex::open_on`]
    /// rebuilds the allocator, which resets the mutation to
    /// [`SimMutation::None`].
    pub fn set_sim_mutation(&self, mutation: SimMutation) {
        self.alloc.lock().mutation = mutation;
    }

    /// A snapshot of the symbol table shared by data and queries.
    #[must_use]
    pub fn table(&self) -> SymbolTable {
        self.table.read().clone()
    }

    /// The sibling order used for sequence conversion.
    #[must_use]
    pub fn order(&self) -> &SiblingOrder {
        &self.order
    }

    /// Direct read access to the underlying store (benchmarks, tools).
    #[must_use]
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Number of live documents.
    #[must_use]
    pub fn doc_count(&self) -> u64 {
        self.store.meta().doc_count
    }

    /// Index statistics (sizes, underflow counters, I/O, per-shard pool
    /// counters).
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        let meta = self.store.meta();
        let mc = self.match_counters.snapshot();
        let ic = self.ingest_counters.snapshot();
        vist_obs::gauge!("vist_core_documents")
            .set(i64::try_from(meta.doc_count).unwrap_or(i64::MAX));
        let segments = self.segments_snapshot();
        let segment_docs: u64 = segments.iter().map(|s| s.doc_count).sum();
        let segment_bytes: u64 = segments.iter().map(|s| s.store_bytes()).sum();
        let tombstones = if segments.is_empty() {
            0
        } else {
            self.store.tomb_ids().map(|v| v.len() as u64).unwrap_or(0)
        };
        vist_obs::gauge!("vist_core_segments").set(segments.len() as i64);
        IndexStats {
            segments: segments.len() as u64,
            segment_docs,
            segment_bytes,
            tombstones,
            documents: meta.doc_count,
            nodes: meta.node_count,
            dkeys: meta.next_dkey,
            underflows: meta.underflows,
            deep_borrows: meta.deep_borrows,
            match_work_items: mc.work_items,
            match_steals: mc.steals,
            match_scopes_merged: mc.scopes_merged,
            match_dedup_skips: mc.dedup_skips,
            match_planner_seqs_pruned: mc.planner_seqs_pruned,
            match_planner_probes: mc.planner_probes,
            match_planner_probe_prunes: mc.planner_probe_prunes,
            match_planner_docid_sweeps: mc.planner_docid_sweeps,
            ingest_batches: ic.batches,
            ingest_batch_docs: ic.docs,
            ingest_dkey_cache_hits: ic.dkey_cache_hits,
            ingest_dkey_cache_misses: ic.dkey_cache_misses,
            ingest_edge_cache_hits: ic.edge_cache_hits,
            ingest_edge_cache_misses: ic.edge_cache_misses,
            store_bytes: self.store.store_bytes(),
            io: self.store.pool().stats(),
            pool: self.store.pool().pool_stats(),
        }
    }

    /// Verify the structural invariants of every B+Tree in the index (key
    /// order, node bounds, uniform depth, leaf chains) plus basic meta
    /// consistency. Returns a human-readable report when everything is
    /// clean, or [`Error::Corrupt`] carrying the report when it is not.
    /// Backs the `vist check` CLI command; intended to run after a crash
    /// recovery.
    pub fn check(&self) -> Result<String> {
        let _m = self.maintenance.read();
        use std::fmt::Write as _;
        let mut report = String::new();
        let mut dirty = 0usize;
        for (name, problem) in self.store.verify() {
            match problem {
                None => writeln!(report, "tree {name:<9} ok").unwrap(),
                Some(msg) => {
                    dirty += 1;
                    writeln!(report, "tree {name:<9} CORRUPT: {msg}").unwrap();
                }
            }
        }
        let segments = self.segments_snapshot();
        if !segments.is_empty() {
            let seg_docs: u64 = segments.iter().map(|s| s.doc_count).sum();
            let seg_nodes: u64 = segments.iter().map(|s| s.node_count).sum();
            let seg_dkeys: u64 = segments.iter().map(|s| s.dkey_count).sum();
            let tombs = self.store.tomb_ids().map(|v| v.len()).unwrap_or(0);
            writeln!(
                report,
                "segments {} ({seg_docs} docs, {seg_nodes} nodes, {seg_dkeys} dkeys, {tombs} tombstoned)",
                segments.len()
            )
            .unwrap();
        }
        if self.store.meta().store_documents {
            match self.live_doc_ids(&segments) {
                Ok(ids) => {
                    let n = ids.len() as u64;
                    let meta_n = self.store.meta().doc_count;
                    if n == meta_n {
                        writeln!(report, "documents {n} (matches meta)").unwrap();
                    } else {
                        dirty += 1;
                        writeln!(report, "documents {n} but meta says {meta_n}").unwrap();
                    }
                }
                Err(e) => {
                    dirty += 1;
                    writeln!(report, "documents UNREADABLE: {e}").unwrap();
                }
            }
        }
        if dirty > 0 {
            return Err(Error::Corrupt(format!(
                "{dirty} check(s) failed:\n{report}"
            )));
        }
        Ok(report)
    }

    /// Persist meta state and flush dirty pages to the backing store. A
    /// `WithClues` allocator's statistics model is persisted too, so it is
    /// restored by [`VistIndex::open_file`]. Runs as a traced
    /// `checkpoint` background operation.
    pub fn flush(&self) -> Result<()> {
        bg_op("checkpoint", || {
            let _w = self.writer.lock();
            self.checkpoint_locked()
        })
    }

    /// Full checkpoint under an already-held writer lock: persist a
    /// `WithClues` allocator's statistics model, then flush the delta. The
    /// WAL commit record this writes is the durability point for
    /// everything applied since the previous checkpoint — the group-commit
    /// path ([`VistIndex::insert_batch`]) relies on that by applying a
    /// whole batch and then calling this once.
    pub(crate) fn checkpoint_locked(&self) -> Result<()> {
        let model = match &self.alloc.lock().kind {
            AllocatorKind::WithClues(model) => Some(model.clone()),
            AllocatorKind::NoClues => None,
        };
        if let Some(model) = model {
            self.store.save_stats_model(&model)?;
        }
        self.flush_locked()
    }

    /// Flush the delta store under an already-held writer lock, persisting
    /// the symbol table alongside meta and dirty pages.
    fn flush_locked(&self) -> Result<()> {
        let table = self.table.read().clone();
        self.store.flush(&table, &self.order)?;
        Ok(())
    }

    /// Bulk-load a batch of XML documents into one immutable packed
    /// segment, bypassing the per-document dynamic insert path entirely:
    /// sequences are merged into an in-memory trie, labeled exactly by
    /// preorder rank + subtree size (no scope allocation, no underflows),
    /// externally sorted, and written as B+Trees at ~100% leaf fill.
    ///
    /// Returns the assigned document ids (contiguous, ascending). The
    /// segment is durable and published in the manifest when this returns;
    /// accumulating [`COMPACT_SEGMENT_THRESHOLD`] segments auto-triggers
    /// [`VistIndex::compact`]. Requires a tiered index
    /// ([`VistIndex::create_file`] / [`VistIndex::open_file`] or the
    /// `_at` variants), else [`Error::NotTiered`].
    pub fn bulk_build<I, S>(&self, docs: I) -> Result<Vec<DocId>>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        bg_op("segment_build", move || self.bulk_build_inner(docs))
    }

    fn bulk_build_inner<I, S>(&self, docs: I) -> Result<Vec<DocId>>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let _w = self.writer.lock();
        let tier = self.tier.as_ref().ok_or(Error::NotTiered)?;
        let (store_documents, first_doc) = {
            let meta = self.store.meta();
            (meta.store_documents, meta.next_doc)
        };
        let mut builder = SegmentBuilder::new(
            tier.scratch_dir(),
            tier.page_size,
            store_documents,
            DEFAULT_SORT_BUDGET,
        )?;
        let mut ids = Vec::new();
        let mut next = first_doc;
        for xml in docs {
            let xml = xml.as_ref();
            let doc = vist_xml::parse(xml).map_err(|e| Error::Corrupt(format!("bad XML: {e}")))?;
            let seq = {
                let mut table = self.table.write();
                document_to_sequence(&doc, &mut table, &self.order)
            };
            builder.add_doc(next, &seq, xml)?;
            ids.push(next);
            next += 1;
        }
        if ids.is_empty() {
            return Ok(ids);
        }
        let seg_id = tier.next_segment_id();
        let seg = builder.finish(
            tier.vfs.as_ref(),
            &tier.path,
            seg_id,
            tier.page_size,
            tier.cache_pages,
            DEFAULT_SORT_BUDGET,
        )?;
        // The segment's dkeys encode symbols interned above: persist the
        // table BEFORE the manifest can reference the segment.
        self.flush_locked()?;
        // Commit point. A crash before this leaves an orphan file (the id
        // gets reused and truncated); a crash after is healed on reopen by
        // the max_doc watermark (see open_at).
        let manifest = {
            let st = tier.state.read();
            let mut segs = st.manifest.segments.clone();
            segs.push(seg_id);
            Manifest {
                generation: st.manifest.generation + 1,
                delta_epoch: st.manifest.delta_epoch,
                segments: segs,
            }
        };
        manifest.store(tier.vfs.as_ref(), &tier.path)?;
        {
            let mut st = tier.state.write();
            st.manifest = manifest;
            st.segments.push(Arc::new(seg));
        }
        {
            let mut meta = self.store.meta_mut();
            meta.next_doc = next;
            meta.doc_count += ids.len() as u64;
        }
        self.flush_locked()?;
        vist_obs::counter!("vist_core_bulk_docs_total").add(ids.len() as u64);
        let should_compact =
            store_documents && tier.state.read().segments.len() >= COMPACT_SEGMENT_THRESHOLD;
        if should_compact {
            self.compact_locked()?;
        }
        Ok(ids)
    }

    /// Merge the delta and every segment into one fresh packed segment,
    /// dropping tombstoned documents for good, then reset the delta.
    /// Document ids are preserved. The manifest swap is the commit point:
    /// a crash at any earlier point leaves the old state, a crash after it
    /// is finished on reopen by re-clearing the delta (`delta_epoch`
    /// handshake — see `docs/SEGMENTS.md`). Requires a tiered index with
    /// stored documents.
    pub fn compact(&self) -> Result<()> {
        let _w = self.writer.lock();
        self.compact_locked()
    }

    fn compact_locked(&self) -> Result<()> {
        bg_op("compaction", || self.compact_inner())
    }

    fn compact_inner(&self) -> Result<()> {
        let tier = self.tier.as_ref().ok_or(Error::NotTiered)?;
        if !self.store.meta().store_documents {
            return Err(Error::DocumentsNotStored);
        }
        let segments = self.segments_snapshot();
        let old_ids: Vec<u64> = tier.state.read().manifest.segments.clone();
        let live = self.live_doc_ids(&segments)?;
        let new_segment = if live.is_empty() {
            None
        } else {
            let seg_id = tier.next_segment_id();
            let mut builder = SegmentBuilder::new(
                tier.scratch_dir(),
                tier.page_size,
                true,
                DEFAULT_SORT_BUDGET,
            )?;
            for &id in &live {
                let xml = self
                    .doc_get_any(id, &segments)?
                    .ok_or(Error::NoSuchDocument(id))?;
                let text = String::from_utf8(xml)
                    .map_err(|_| Error::Corrupt("stored document is not UTF-8".into()))?;
                let doc = vist_xml::parse(&text)
                    .map_err(|e| Error::Corrupt(format!("stored document unparseable: {e}")))?;
                let seq = {
                    let mut table = self.table.write();
                    document_to_sequence(&doc, &mut table, &self.order)
                };
                builder.add_doc(id, &seq, &text)?;
            }
            Some((
                seg_id,
                builder.finish(
                    tier.vfs.as_ref(),
                    &tier.path,
                    seg_id,
                    tier.page_size,
                    tier.cache_pages,
                    DEFAULT_SORT_BUDGET,
                )?,
            ))
        };
        self.flush_locked()?;
        // Commit point: the new manifest names only the compacted segment
        // and advances the delta epoch, obligating a delta clear.
        let manifest = {
            let st = tier.state.read();
            Manifest {
                generation: st.manifest.generation + 1,
                delta_epoch: st.manifest.delta_epoch + 1,
                segments: new_segment.iter().map(|(id, _)| *id).collect(),
            }
        };
        manifest.store(tier.vfs.as_ref(), &tier.path)?;
        {
            // Clearing frees B+Tree pages: exclude readers.
            let _m = self.maintenance.write();
            self.store.clear_delta(manifest.delta_epoch)?;
            let mut st = tier.state.write();
            st.manifest = manifest;
            st.segments = match new_segment {
                Some((_, seg)) => vec![Arc::new(seg)],
                None => Vec::new(),
            };
        }
        self.flush_locked()?;
        // The replaced segment files are garbage; unlink best-effort.
        // Concurrent readers that cloned the old Arcs keep their open
        // handles and finish safely.
        for id in old_ids {
            let _ = std::fs::remove_file(Manifest::segment_path(&tier.path, id));
        }
        vist_obs::counter!("vist_core_compactions_total").inc();
        Ok(())
    }

    /// Per-tree space breakdown of the delta and of every segment, also
    /// publishing average leaf fill to the `vist_core_delta_leaf_fill_bp` /
    /// `vist_core_segment_leaf_fill_bp` gauges (basis points). Scans every
    /// tree; intended for `vist stats`, not hot paths.
    pub fn tier_breakdown(&self) -> Result<(StoreBreakdown, Vec<(u64, StoreBreakdown)>)> {
        let _m = self.maintenance.read();
        let delta = self.store.tree_breakdown()?;
        let mut segs = Vec::new();
        for seg in self.segments_snapshot() {
            segs.push((seg.id, seg.breakdown()?));
        }
        let fill_bp = |bs: &[&StoreBreakdown]| -> i64 {
            let (mut used, mut total) = (0u64, 0u64);
            for b in bs {
                for t in [
                    &b.dancestor,
                    &b.sancestor,
                    &b.docid,
                    &b.edges,
                    &b.aux,
                    &b.stats,
                ] {
                    used += t.leaf_used_bytes;
                    total += t.leaf_total_bytes;
                }
            }
            (used * 10_000).checked_div(total).unwrap_or(0) as i64
        };
        vist_obs::gauge!("vist_core_delta_leaf_fill_bp").set(fill_bp(&[&delta]));
        let seg_refs: Vec<&StoreBreakdown> = segs.iter().map(|(_, b)| b).collect();
        vist_obs::gauge!("vist_core_segment_leaf_fill_bp").set(fill_bp(&seg_refs));
        Ok((delta, segs))
    }

    /// Parse and insert an XML document, returning its id.
    pub fn insert_xml(&self, xml: &str) -> Result<DocId> {
        let doc = vist_xml::parse(xml).map_err(|e| Error::Corrupt(format!("bad XML: {e}")))?;
        self.insert_document_impl(&doc, Some(xml))
    }

    /// Insert a parsed document (Algorithm 4), returning its id.
    pub fn insert_document(&self, doc: &Document) -> Result<DocId> {
        self.insert_document_impl(doc, None)
    }

    /// Stream a large container document (e.g. a whole XMARK `site`) and
    /// index each sub-tree rooted at one of `record_names` as its own
    /// document — the paper's break-down methodology ("we break down its
    /// tree structure into a set of sub structures ... and convert each
    /// instance of these sub structures into a structure-encoded
    /// sequence"). The container is never materialized.
    pub fn insert_records(&self, xml: &str, record_names: &[&str]) -> Result<Vec<DocId>> {
        let mut ids = Vec::new();
        for rec in vist_xml::RecordSplitter::new(xml, record_names) {
            let doc = rec.map_err(|e| Error::Corrupt(format!("bad XML: {e}")))?;
            ids.push(self.insert_document(&doc)?);
        }
        Ok(ids)
    }

    fn insert_document_impl(&self, doc: &Document, raw: Option<&str>) -> Result<DocId> {
        vist_obs::counter!("vist_core_insert_total").inc();
        let insert_start = vist_obs::now();
        let _w = self.writer.lock();
        let seq = {
            let mut table = self.table.write();
            document_to_sequence(doc, &mut table, &self.order)
        };
        let xml_owned;
        let xml: Option<&str> = if self.store.meta().store_documents {
            Some(match raw {
                Some(r) => r,
                None => {
                    xml_owned = doc.to_xml();
                    &xml_owned
                }
            })
        } else {
            None
        };
        let id = self.insert_sequence_locked(&seq, xml)?;
        vist_obs::observe_since(vist_obs::histogram!("vist_core_insert_nanos"), insert_start);
        Ok(id)
    }

    /// Insert a pre-converted structure-encoded sequence. `xml` is stored
    /// for verification/deletion when document storage is enabled.
    pub fn insert_sequence(&self, seq: &Sequence, xml: Option<&str>) -> Result<DocId> {
        let _w = self.writer.lock();
        self.insert_sequence_locked(seq, xml)
    }

    /// Core of Algorithm 4. Caller must hold `self.writer`.
    fn insert_sequence_locked(&self, seq: &Sequence, xml: Option<&str>) -> Result<DocId> {
        self.insert_sequence_cached(seq, xml, None)
    }

    /// [`VistIndex::insert_sequence_locked`] with an optional per-batch
    /// cache (see [`IngestCache`]): repeated dkey lookups and trie-edge
    /// probes — the bulk of the B+Tree traffic for structure-sharing
    /// corpora — are answered from the cache instead of the trees. Caller
    /// must hold `self.writer`; the cache must not outlive it.
    pub(crate) fn insert_sequence_cached(
        &self,
        seq: &Sequence,
        xml: Option<&str>,
        mut cache: Option<&mut IngestCache>,
    ) -> Result<DocId> {
        let (doc_id, store_documents, root_state) = {
            let mut meta = self.store.meta_mut();
            let id = meta.next_doc;
            meta.next_doc += 1;
            meta.doc_count += 1;
            (id, meta.store_documents, meta.root)
        };
        if store_documents {
            self.store.doc_put(doc_id, xml.unwrap_or("").as_bytes())?;
        }

        let n = seq.len();
        let mut chain: Vec<ChainEntry> = vec![ChainEntry {
            loc: Loc::Root,
            head_n: 0,
            state: root_state,
            sym: None,
        }];
        for (i, elem) in seq.iter().enumerate() {
            let prefix = elem
                .prefix
                .as_concrete()
                .ok_or_else(|| Error::Corrupt("wildcard in data sequence".into()))?;
            let key = dkey::encode(elem.sym, &prefix);
            let dkid = self.dkid_cached(&key, cache.as_deref_mut())?;

            // Follow an existing branch if there is one (Algorithm 4:
            // "search in e for scope r such that r is an immediate child of
            // s"), checking every incarnation of the parent.
            let head_n = chain.last().expect("chain non-empty").head_n;
            if let Some(child_n) = self.find_child_cached(head_n, dkid, cache.as_deref_mut())? {
                let state = self
                    .store
                    .node_get(dkid, child_n)?
                    .ok_or_else(|| Error::Corrupt("edge points to missing node".into()))?;
                chain.push(ChainEntry {
                    loc: Loc::Node(dkid),
                    head_n: child_n,
                    state,
                    sym: Some(elem.sym),
                });
                continue;
            }

            // Allocate a fresh child scope from the parent's latest
            // incarnation. The remaining tail (this element included) must
            // be able to nest below it.
            let rem = (n - i) as u128;
            let parent_sym = chain.last().expect("non-empty").sym;
            let mut pstate = chain.last().expect("non-empty").state;
            let allocation = self
                .alloc
                .lock()
                .allocate(&mut pstate, parent_sym, elem.sym, rem);
            match allocation {
                Allocation::Child { state, tight } => {
                    if tight {
                        self.store.meta_mut().underflows += 1;
                    }
                    let parent_inc_n = chain.last().expect("non-empty").state.n;
                    let ploc = chain.last().expect("non-empty").loc;
                    self.write_state(ploc, &pstate)?;
                    chain.last_mut().expect("non-empty").state = pstate;
                    self.store.node_put(dkid, &state)?;
                    self.store.edge_put(parent_inc_n, dkid, state.n)?;
                    // The fresh edge is keyed under the chain head, which is
                    // where `find_child` starts, so future batch documents
                    // resolve it from the cache.
                    if let Some(c) = cache.as_deref_mut() {
                        c.edges.insert((head_n, dkid), state.n);
                    }
                    self.store.meta_mut().node_count += 1;
                    self.store.stats_node_added(dkid);
                    if let Loc::Node(pd) = ploc {
                        self.store.stats_child_added(pd);
                    }
                    chain.push(ChainEntry {
                        loc: Loc::Node(dkid),
                        head_n: state.n,
                        state,
                        sym: Some(elem.sym),
                    });
                }
                Allocation::Underflow => {
                    // Scope underflow (paper §3.4.1), resolved *soundly* by
                    // node incarnations — see `grow_and_insert_tail`.
                    let (last_n, last_dkid) =
                        self.grow_and_insert_tail(&mut chain, &seq.0[i..], cache)?;
                    self.store.docid_put(last_n, doc_id)?;
                    if let Some(dk) = last_dkid {
                        self.store.stats_doc_added(dk);
                    }
                    return Ok(doc_id);
                }
            }
        }
        let last = chain.last().expect("non-empty");
        let (last_n, last_loc) = (last.state.n, last.loc);
        self.store.docid_put(last_n, doc_id)?;
        // Empty sequences attach to the virtual root, which has no dkey;
        // mirror the segment builder, which skips them too.
        if let Loc::Node(dk) = last_loc {
            self.store.stats_doc_added(dk);
        }
        Ok(doc_id)
    }

    /// [`VistIndex::find_child`] through an optional per-batch edge cache.
    /// Only positive results are cached: an edge, once present, is never
    /// modified or removed while the writer lock is held, so a cached hit
    /// can never go stale within a batch — but an absent edge may appear.
    fn find_child_cached(
        &self,
        head_n: u128,
        dkid: u64,
        cache: Option<&mut IngestCache>,
    ) -> Result<Option<u128>> {
        let Some(c) = cache else {
            return self.find_child(head_n, dkid);
        };
        if let Some(&n) = c.edges.get(&(head_n, dkid)) {
            c.edge_hits += 1;
            return Ok(Some(n));
        }
        c.edge_misses += 1;
        let found = self.find_child(head_n, dkid)?;
        if let Some(n) = found {
            c.edges.insert((head_n, dkid), n);
        }
        Ok(found)
    }

    /// `Store::dkey_get_or_create` through an optional per-batch cache.
    /// Dkey ids are append-only, so cached entries can never go stale.
    fn dkid_cached(&self, key: &[u8], cache: Option<&mut IngestCache>) -> Result<u64> {
        let Some(c) = cache else {
            return self.store.dkey_get_or_create(key);
        };
        if let Some(&id) = c.dkeys.get(key) {
            c.dkey_hits += 1;
            return Ok(id);
        }
        c.dkey_misses += 1;
        let id = self.store.dkey_get_or_create(key)?;
        c.dkeys.insert(key.to_vec(), id);
        Ok(id)
    }

    /// Find the child of a node for `dkid`, following the node's overflow
    /// (incarnation) chain.
    fn find_child(&self, head_n: u128, dkid: u64) -> Result<Option<u128>> {
        let mut n = head_n;
        loop {
            if let Some(c) = self.store.edge_get(n, dkid)? {
                return Ok(Some(c));
            }
            match self.store.edge_get(n, OVERFLOW_EDGE)? {
                Some(next) => n = next,
                None => return Ok(None),
            }
        }
    }

    /// Scope underflow resolution.
    ///
    /// The paper borrows the remaining labels from the nearest ancestor with
    /// spare scope — which breaks S-Ancestor containment whenever the donor
    /// is not the direct parent, silently losing future matches through the
    /// borrowed chain. We fix this with **node incarnations**: the donor's
    /// block is nested into one fresh S-Ancestor entry *per intermediate
    /// level*, each carrying the same D-Ancestor key as the node it extends
    /// and linked from it by an overflow edge. Containment then holds by
    /// construction at every level, and since Algorithm 2 already iterates
    /// all S-Ancestor entries of a D-Ancestor key, queries find incarnations
    /// with no changes. The `deep_borrows` counter tallies these events.
    /// Returns the label of the last inserted node plus its dkey-id (for
    /// the caller's DocId statistics hook; `None` only when the document
    /// would attach to the virtual root, which has no dkey).
    fn grow_and_insert_tail(
        &self,
        chain: &mut [ChainEntry],
        tail: &[vist_seq::SeqElem],
        mut cache: Option<&mut IngestCache>,
    ) -> Result<(u128, Option<u64>)> {
        let rem = tail.len() as u128;
        // Donor j must cover incarnations for chain[j+1..] plus the tail.
        let donor = (0..chain.len() - 1)
            .rev()
            .find(|&j| {
                let levels = (chain.len() - 1 - j) as u128;
                chain[j].state.available() >= levels + rem
            })
            .ok_or_else(|| Error::Corrupt("virtual suffix tree label space exhausted".into()))?;
        self.store.meta_mut().deep_borrows += 1;
        let levels = (chain.len() - 1 - donor) as u128;
        let needed = levels + rem;
        let block = chain[donor].state.next;
        chain[donor].state.next += needed;
        chain[donor].state.k += 1;
        let donor_loc = chain[donor].loc;
        let donor_state = chain[donor].state;
        self.write_state(donor_loc, &donor_state)?;

        // One incarnation per level between the donor and the exhausted
        // parent, nested like a chain.
        let mut off = 0u128;
        #[allow(clippy::needless_range_loop)] // chain[lvl] is both read and written
        for lvl in donor + 1..chain.len() {
            let Loc::Node(dkid) = chain[lvl].loc else {
                return Err(Error::Corrupt("root cannot be incarnated".into()));
            };
            let inc = NodeState {
                n: block + off,
                size: needed - off,
                next: block + off + 1,
                k: 0,
            };
            self.store.node_put(dkid, &inc)?;
            self.store
                .edge_put(chain[lvl].state.n, OVERFLOW_EDGE, inc.n)?;
            // Incarnations are extra S-Ancestor entries under the same
            // dkey (not counted by meta.node_count, which tracks virtual
            // trie nodes).
            self.store.stats_node_added(dkid);
            chain[lvl].state = inc;
            off += 1;
        }

        // Sequentially label the remaining elements, nested below the
        // parent's fresh incarnation.
        let mut prev_n = chain.last().expect("non-empty").state.n;
        let mut prev_dkid = match chain.last().expect("non-empty").loc {
            Loc::Node(dk) => Some(dk),
            Loc::Root => None,
        };
        let mut last_n = prev_n;
        for elem in tail {
            let prefix = elem
                .prefix
                .as_concrete()
                .ok_or_else(|| Error::Corrupt("wildcard in data sequence".into()))?;
            let key = dkey::encode(elem.sym, &prefix);
            let dkid = self.dkid_cached(&key, cache.as_deref_mut())?;
            let state = NodeState {
                n: block + off,
                size: needed - off,
                next: block + off + 1,
                k: 0,
            };
            self.store.node_put(dkid, &state)?;
            // Tail edges hang off fresh incarnations, not chain heads, so
            // they are deliberately NOT added to the edge cache (its keys
            // are chain-head labels).
            self.store.edge_put(prev_n, dkid, state.n)?;
            self.store.meta_mut().node_count += 1;
            self.store.stats_node_added(dkid);
            if let Some(pd) = prev_dkid {
                self.store.stats_child_added(pd);
            }
            prev_n = state.n;
            prev_dkid = Some(dkid);
            last_n = state.n;
            off += 1;
        }
        Ok((last_n, prev_dkid))
    }

    fn write_state(&self, loc: Loc, state: &NodeState) -> Result<()> {
        match loc {
            Loc::Root => {
                self.store.meta_mut().root = *state;
                Ok(())
            }
            Loc::Node(dkid) => self.store.node_put(dkid, state),
        }
    }

    /// Remove a document (requires stored documents). The document's id
    /// disappears from all query results; shared trie nodes remain, as in
    /// the paper's design (rebuild to reclaim space).
    ///
    /// This is a *maintenance* operation: B+Tree deletion frees pages, so
    /// it holds the maintenance latch exclusively, briefly blocking
    /// concurrent queries.
    pub fn remove_document(&self, doc_id: DocId) -> Result<()> {
        let _w = self.writer.lock();
        let _m = self.maintenance.write();
        if !self.store.meta().store_documents {
            return Err(Error::DocumentsNotStored);
        }
        let Some(xml) = self.store.doc_get(doc_id)? else {
            // Not in the delta: a segment-resident document is deleted by
            // writing a tombstone into the delta, which masks it from every
            // query until compaction drops it for good.
            let segments = self.segments_snapshot();
            if !self.store.tomb_contains(doc_id)? {
                for seg in &segments {
                    if seg.contains_doc(doc_id)? {
                        self.store.tomb_put(doc_id)?;
                        let mut meta = self.store.meta_mut();
                        meta.doc_count = meta.doc_count.saturating_sub(1);
                        return Ok(());
                    }
                }
            }
            return Err(Error::NoSuchDocument(doc_id));
        };
        let text = String::from_utf8(xml)
            .map_err(|_| Error::Corrupt("stored document is not UTF-8".into()))?;
        let doc = vist_xml::parse(&text)
            .map_err(|e| Error::Corrupt(format!("stored document unparseable: {e}")))?;
        let seq = {
            let mut table = self.table.write();
            document_to_sequence(&doc, &mut table, &self.order)
        };
        // Walk the trie edges to the final node.
        let mut cur = 0u128; // virtual root label
        let mut last_dkid = None;
        for elem in seq.iter() {
            let prefix = elem
                .prefix
                .as_concrete()
                .ok_or_else(|| Error::Corrupt("wildcard in data sequence".into()))?;
            let key = dkey::encode(elem.sym, &prefix);
            let dkid = self
                .store
                .dkey_get(&key)?
                .ok_or_else(|| Error::Corrupt("document path missing from index".into()))?;
            cur = self
                .find_child(cur, dkid)?
                .ok_or_else(|| Error::Corrupt("document path missing from index".into()))?;
            last_dkid = Some(dkid);
        }
        if !self.store.docid_delete(cur, doc_id)? {
            return Err(Error::NoSuchDocument(doc_id));
        }
        if let Some(dk) = last_dkid {
            self.store.stats_doc_removed(dk);
        }
        self.store.doc_remove(doc_id)?;
        {
            let mut meta = self.store.meta_mut();
            meta.doc_count = meta.doc_count.saturating_sub(1);
        }
        Ok(())
    }

    /// Ids of all stored documents, ascending (requires stored documents).
    pub fn document_ids(&self) -> Result<Vec<DocId>> {
        let _m = self.maintenance.read();
        if !self.store.meta().store_documents {
            return Err(Error::DocumentsNotStored);
        }
        self.live_doc_ids(&self.segments_snapshot())
    }

    /// Fetch a stored document's XML text.
    pub fn get_document_xml(&self, doc_id: DocId) -> Result<String> {
        let _m = self.maintenance.read();
        if !self.store.meta().store_documents {
            return Err(Error::DocumentsNotStored);
        }
        let xml = match self.store.doc_get(doc_id)? {
            Some(xml) => xml,
            None if !self.store.tomb_contains(doc_id)? => self
                .doc_get_any(doc_id, &self.segments_snapshot())?
                .ok_or(Error::NoSuchDocument(doc_id))?,
            None => return Err(Error::NoSuchDocument(doc_id)),
        };
        String::from_utf8(xml).map_err(|_| Error::Corrupt("stored document is not UTF-8".into()))
    }

    /// Run a pattern and return the matched final *scopes* without resolving
    /// them to document ids — the quantity the paper times in Figure 10
    /// (match cost excluding DocId output).
    pub fn match_scopes(
        &self,
        pattern: &Pattern,
        opts: &QueryOptions,
    ) -> Result<(Vec<(u128, u128)>, QueryStats)> {
        let translation = self.translate_overlay(pattern, opts);
        let sopts = SearchOptions {
            workers: opts.workers,
            mode: SearchMode::Scopes,
            schedule_seed: opts.schedule_seed,
            plan: !opts.no_plan,
            deadline: opts.deadline,
            ..SearchOptions::default()
        };
        // Lock order: the table read guard (above, inside the helper) is
        // released before the maintenance latch is taken.
        let _m = self.maintenance.read();
        let mut outcome = search_sequences_opts(&self.store, &translation.sequences, &sopts)?;
        // Segment scopes live in per-segment label spaces; they are
        // reported as-is after the delta's (scope values from different
        // sources are not comparable).
        for seg in self.segments_snapshot() {
            let o = search_sequences_opts(seg.as_ref(), &translation.sequences, &sopts)?;
            outcome.stats.merge(&o.stats);
            outcome.scopes.extend(o.scopes);
        }
        self.match_counters.record(&outcome.stats);
        Ok((outcome.scopes, outcome.stats))
    }

    /// Translate under a brief shared table lock, interning query-only
    /// names into an ephemeral [`TableOverlay`] instead of cloning the
    /// whole table per query. Overlay symbols cannot occur in the data, so
    /// elements naming them simply never match.
    fn translate_overlay(&self, pattern: &Pattern, opts: &QueryOptions) -> Translation {
        let table = self.table.read();
        let mut overlay = TableOverlay::new(&table);
        translate_with(
            pattern,
            &mut overlay,
            &TranslateOptions {
                order: self.order.clone(),
                max_sequences: opts.max_sequences,
            },
        )
        .expect("overlay resolver never fails")
    }

    /// Explain a query: show its translation into structure-encoded
    /// sequence(s) (the paper's Table 2 form), then run it and report the
    /// per-tree probe counts. Intended for debugging and teaching; the
    /// output format is human-oriented and not stable.
    pub fn explain(&self, expr: &str, opts: &QueryOptions) -> Result<String> {
        self.explain_with(expr, opts, false)
    }

    /// [`VistIndex::explain`] plus, when `show_plan` is set, the
    /// cost-based planner's report per tier: estimated vs actual
    /// cardinalities per step, sequence ranks and prunes, and the DocId
    /// resolution strategy (`vist explain --plan`).
    pub fn explain_with(&self, expr: &str, opts: &QueryOptions, show_plan: bool) -> Result<String> {
        use std::fmt::Write as _;
        let pattern = parse_query(expr)?.to_pattern();
        let mut out = String::new();
        writeln!(out, "query:   {expr}").unwrap();
        writeln!(out, "pattern: {}", pattern.to_expr()).unwrap();
        // Translate + render inside one brief table read guard: the overlay
        // borrows the guard, and rendering needs the overlay for names of
        // query-only symbols. Dropped before any search runs.
        let elem_labels: Vec<Vec<String>> = {
            let table = self.table.read();
            let mut overlay = TableOverlay::new(&table);
            let translation = translate_with(
                &pattern,
                &mut overlay,
                &TranslateOptions {
                    order: self.order.clone(),
                    max_sequences: opts.max_sequences,
                },
            )
            .expect("overlay resolver never fails");
            writeln!(
                out,
                "{} alternative sequence(s){}:",
                translation.sequences.len(),
                if translation.truncated {
                    " (truncated)"
                } else {
                    ""
                }
            )
            .unwrap();
            let mut labels = Vec::with_capacity(translation.sequences.len());
            for (i, qs) in translation.sequences.iter().enumerate() {
                let mut line = String::new();
                let mut seq_labels = Vec::with_capacity(qs.elems.len());
                for e in &qs.elems {
                    let sym = match e.sym {
                        Sym::Tag(t) => overlay.name(t).to_string(),
                        Sym::Value(v) => format!("v{:04x}", v & 0xFFFF),
                    };
                    let prefix = e
                        .prefix
                        .0
                        .iter()
                        .map(|s| match s {
                            PathSym::Tag(t) => overlay.name(*t).to_string(),
                            PathSym::Star => "*".to_string(),
                            PathSym::DoubleSlash => "//".to_string(),
                        })
                        .collect::<Vec<_>>()
                        .join("/");
                    let label = format!("({sym},{prefix})");
                    line.push_str(&label);
                    seq_labels.push(label);
                }
                writeln!(out, "  #{i}: {line}").unwrap();
                labels.push(seq_labels);
            }
            labels
        };
        if show_plan {
            self.render_plan(&pattern, opts, &elem_labels, &mut out)?;
        }
        let result = self.query_pattern(&pattern, opts)?;
        let st = result.stats;
        writeln!(out, "answers: {} document(s)", result.doc_ids.len()).unwrap();
        writeln!(
            out,
            "probes:  {} D-Ancestor gets, {} D-Ancestor range scans, {} dkeys matched,",
            st.dancestor_gets, st.dancestor_scans, st.dkeys_matched
        )
        .unwrap();
        writeln!(
            out,
            "         {} S-Ancestor scans, {} nodes visited, {} DocId scans",
            st.sancestor_scans, st.nodes_visited, st.docid_scans
        )
        .unwrap();
        writeln!(
            out,
            "engine:  {} worker(s), {} work items, {} steals, {} scopes merged, {} dedup skips",
            opts.workers.max(1),
            st.work_items,
            st.steals,
            st.scopes_merged,
            st.dedup_skips
        )
        .unwrap();
        writeln!(
            out,
            "planner: {} sequence(s) pruned, {} probes, {} probe prunes, {} docid sweeps",
            st.planner_seqs_pruned,
            st.planner_probes,
            st.planner_probe_prunes,
            st.planner_docid_sweeps
        )
        .unwrap();
        let pool = self.store.pool().pool_stats();
        let t = pool.totals();
        writeln!(
            out,
            "pool:    {} shard(s), {} hits ({} uncontended), {} misses, {} write-backs",
            pool.shard_count(),
            t.hits,
            t.uncontended_hits,
            t.misses,
            t.write_backs
        )
        .unwrap();
        for (i, s) in pool.shards.iter().enumerate() {
            writeln!(
                out,
                "         shard {i}: {} hits ({} uncontended), {} misses, {:.1}% hit",
                s.hits,
                s.uncontended_hits,
                s.misses,
                s.hit_ratio().unwrap_or(0.0) * 100.0
            )
            .unwrap();
        }
        Ok(out)
    }

    /// Append the planner's per-tier report to an `explain` rendering:
    /// one search per source with plan collection on, showing sequence
    /// ranks/prunes, per-step estimated vs actual cardinalities, and the
    /// chosen DocId strategy.
    fn render_plan(
        &self,
        pattern: &Pattern,
        opts: &QueryOptions,
        elem_labels: &[Vec<String>],
        out: &mut String,
    ) -> Result<()> {
        use std::fmt::Write as _;
        let translation = self.translate_overlay(pattern, opts);
        let popts = SearchOptions {
            workers: opts.workers,
            mode: SearchMode::Docs,
            schedule_seed: opts.schedule_seed,
            plan: !opts.no_plan,
            limit: opts.limit,
            collect_plan: true,
            deadline: opts.deadline,
            trace_id: opts.trace_id,
        };
        let _m = self.maintenance.read();
        let mut sources = Vec::new();
        let delta = search_sequences_opts(&self.store, &translation.sequences, &popts)?;
        sources.push(("delta".to_string(), delta.plan));
        for seg in self.segments_snapshot() {
            let o = search_sequences_opts(seg.as_ref(), &translation.sequences, &popts)?;
            sources.push((format!("segment {}", seg.id), o.plan));
        }
        for (name, plan) in sources {
            let Some(plan) = plan else { continue };
            writeln!(
                out,
                "plan ({name}){}:",
                if opts.no_plan {
                    " [planner off: naive order]"
                } else {
                    ""
                }
            )
            .unwrap();
            for sp in &plan.seqs {
                match sp.pruned {
                    Some(PruneReason::EmptyConcrete { qi }) => writeln!(
                        out,
                        "  seq #{}: pruned (empty concrete prefix at step {qi})",
                        sp.index
                    )
                    .unwrap(),
                    Some(PruneReason::EmptyWildcard { qi }) => writeln!(
                        out,
                        "  seq #{}: pruned (empty wildcard prefix at step {qi})",
                        sp.index
                    )
                    .unwrap(),
                    None => {
                        writeln!(
                            out,
                            "  seq #{}: rank {}, est cost {} node visit(s)",
                            sp.index, sp.rank, sp.est_cost
                        )
                        .unwrap();
                        for st in &sp.steps {
                            let label = elem_labels
                                .get(sp.index)
                                .and_then(|l| l.get(st.qi))
                                .map(String::as_str)
                                .unwrap_or("?");
                            writeln!(
                                out,
                                "    step {:<2} {:<24} est {} cand / {} nodes, \
                                 actual {} frame(s) / {} node(s){}",
                                st.qi,
                                label,
                                st.est_candidates,
                                st.est_nodes,
                                st.actual_frames,
                                st.actual_nodes,
                                if st.wildcard { "  [wildcard]" } else { "" }
                            )
                            .unwrap();
                        }
                    }
                }
            }
            match plan.docid_strategy {
                DocIdStrategy::Jump { ranges } => {
                    writeln!(out, "  docid: range jumps ({ranges} scope(s))").unwrap();
                }
                DocIdStrategy::Sweep { ranges, postings } => writeln!(
                    out,
                    "  docid: keyed sweep ({ranges} scope(s), ~{postings} posting(s))"
                )
                .unwrap(),
                DocIdStrategy::NotRun => writeln!(out, "  docid: not resolved").unwrap(),
            }
        }
        Ok(())
    }

    /// Parse and run a path-expression query.
    ///
    /// Safe to call concurrently from many threads (`&self`); see the
    /// module docs. Translation does not intern unseen names: a query
    /// naming an element absent from the data returns an empty result
    /// directly.
    pub fn query(&self, expr: &str, opts: &QueryOptions) -> Result<QueryResult> {
        // The effective trace id: honor a caller-supplied one (serve echoes
        // the client's), otherwise mint. Everything this query emits — slow
        // log, retained trace, exemplars — keys to this single id.
        let trace_id = if opts.trace_id != 0 {
            opts.trace_id
        } else {
            vist_obs::traceid::mint()
        };
        // Per-query I/O attribution: installed here, cloned onto every
        // match worker (see `search.rs`), charged by the storage layer.
        let attr_ctx = vist_obs::AttrCounters::new();
        let attr_guard = vist_obs::attr::install(attr_ctx.clone());
        let trace = vist_obs::Trace::begin("query");
        let total_start = vist_obs::now();
        let parse_span = vist_obs::Span::enter("parse");
        let pattern = parse_query(expr)?.to_pattern();
        drop(parse_span);
        let effective = QueryOptions {
            trace_id,
            ..opts.clone()
        };
        let mut result = self.query_pattern(&pattern, &effective)?;
        drop(attr_guard);
        result.stats.set_io(&attr_ctx.snapshot());
        if let Some(total) = vist_obs::elapsed_nanos(total_start) {
            result.timings.total_nanos = total;
            vist_obs::histogram!("vist_core_query_nanos").record_with_exemplar(total, trace_id);
            vist_obs::histogram!("vist_core_stage_translate_nanos")
                .record(result.timings.translate_nanos);
            vist_obs::histogram!("vist_core_stage_match_nanos").record(result.timings.match_nanos);
            vist_obs::histogram!("vist_core_stage_merge_nanos").record(result.timings.merge_nanos);
            vist_obs::histogram!("vist_core_stage_docid_nanos").record(result.timings.docid_nanos);
            let s = &result.stats;
            vist_obs::slowlog::record(vist_obs::SlowQuery {
                trace_id,
                query: expr.to_owned(),
                workers: opts.workers.max(1),
                total_nanos: total,
                stages: result.timings.stages().to_vec(),
                counters: vec![
                    ("work_items", s.work_items),
                    ("nodes_visited", s.nodes_visited),
                    ("dancestor_gets", s.dancestor_gets),
                    ("dancestor_scans", s.dancestor_scans),
                    ("sancestor_scans", s.sancestor_scans),
                    ("docid_scans", s.docid_scans),
                    ("steals", s.steals),
                    ("scopes_merged", s.scopes_merged),
                    ("dedup_skips", s.dedup_skips),
                    ("planner_seqs_pruned", s.planner_seqs_pruned),
                    ("planner_probes", s.planner_probes),
                    ("planner_probe_prunes", s.planner_probe_prunes),
                    ("planner_docid_sweeps", s.planner_docid_sweeps),
                    ("io_pool_hits", s.io_pool_hits),
                    ("io_pool_misses", s.io_pool_misses),
                    ("io_pages_read", s.io_pages_read),
                    ("io_bytes_read", s.io_bytes_read),
                    ("io_wal_appends", s.io_wal_appends),
                ],
            });
        }
        result.trace_id = trace_id;
        if let Some(trace) = trace {
            let root = trace.finish();
            vist_obs::tracez::record(trace_id, expr.to_owned(), root.nanos, root.clone());
            result.trace = Some(root);
        }
        Ok(result)
    }

    /// Rebuild the index from its stored documents into a fresh one,
    /// reclaiming the space left behind by deletions (shared trie nodes are
    /// never removed incrementally, matching the paper's design). Document
    /// ids are preserved. Requires [`IndexOptions::store_documents`].
    pub fn rebuild(&self, opts: IndexOptions) -> Result<VistIndex> {
        if !self.store.meta().store_documents {
            return Err(Error::DocumentsNotStored);
        }
        let fresh = VistIndex::in_memory(opts)?;
        self.rebuild_into(&fresh)?;
        Ok(fresh)
    }

    /// Rebuild into a fresh file-backed index at `path` (same semantics as
    /// [`VistIndex::rebuild`]).
    pub fn rebuild_to_file<P: AsRef<Path>>(
        &self,
        path: P,
        opts: IndexOptions,
    ) -> Result<VistIndex> {
        if !self.store.meta().store_documents {
            return Err(Error::DocumentsNotStored);
        }
        let fresh = VistIndex::create_file(path, opts)?;
        self.rebuild_into(&fresh)?;
        fresh.flush()?;
        Ok(fresh)
    }

    fn rebuild_into(&self, fresh: &VistIndex) -> Result<()> {
        let _m = self.maintenance.read();
        let segments = self.segments_snapshot();
        for id in self.live_doc_ids(&segments)? {
            let xml = self
                .doc_get_any(id, &segments)?
                .ok_or(Error::NoSuchDocument(id))?;
            let text = String::from_utf8(xml)
                .map_err(|_| Error::Corrupt("stored document is not UTF-8".into()))?;
            // Preserve the original ids: ids are ascending, so pinning
            // next_doc before each insert keeps them stable.
            fresh.store.meta_mut().next_doc = id;
            fresh.insert_xml(&text)?;
        }
        fresh.store.meta_mut().next_doc = self.store.meta().next_doc;
        Ok(())
    }

    /// Run a pre-parsed query pattern (`&self`; see [`VistIndex::query`]).
    pub fn query_pattern(&self, pattern: &Pattern, opts: &QueryOptions) -> Result<QueryResult> {
        vist_obs::counter!("vist_core_query_total").inc();
        let topts = TranslateOptions {
            order: self.order.clone(),
            max_sequences: opts.max_sequences,
        };
        let translate_span = vist_obs::Span::enter("translate");
        let translate_start = vist_obs::now();
        let translation = {
            let table = self.table.read();
            try_translate(pattern, &table, &topts)
        };
        let translate_nanos = vist_obs::elapsed_nanos(translate_start).unwrap_or(0);
        drop(translate_span);
        let Some(translation) = translation else {
            // A query name absent from every document cannot match.
            return Ok(QueryResult {
                doc_ids: Vec::new(),
                candidates: 0,
                truncated: false,
                stats: QueryStats::default(),
                timings: StageTimings {
                    translate_nanos,
                    ..StageTimings::default()
                },
                trace: None,
                trace_id: opts.trace_id,
            });
        };
        let _m = self.maintenance.read();
        let segments = self.segments_snapshot();
        // Under verification the raw search must stay unlimited: the
        // limit applies to *verified* answers, and any raw candidate may
        // be a false positive.
        let raw_limit = if opts.verify { None } else { opts.limit };
        let base = SearchOptions {
            workers: opts.workers,
            mode: SearchMode::Docs,
            schedule_seed: opts.schedule_seed,
            plan: !opts.no_plan,
            limit: raw_limit,
            collect_plan: false,
            deadline: opts.deadline,
            trace_id: opts.trace_id,
        };
        let mut outcome = search_sequences_opts(&self.store, &translation.sequences, &base)?;
        if !segments.is_empty() {
            // Each segment is its own label space: run the match per
            // source and union document ids, masking tombstoned segment
            // docs. Delta docs are never tombstoned.
            let tombs: BTreeSet<DocId> = self.store.tomb_ids()?.into_iter().collect();
            for seg in &segments {
                if raw_limit.is_some_and(|k| outcome.docs.len() >= k) {
                    break;
                }
                // Over-provision a limited segment search by the tombstone
                // count: up to that many of its hits may be masked below.
                let seg_opts = SearchOptions {
                    limit: raw_limit.map(|k| k - outcome.docs.len() + tombs.len()),
                    ..base
                };
                let o = search_sequences_opts(seg.as_ref(), &translation.sequences, &seg_opts)?;
                outcome.stats.merge(&o.stats);
                outcome.timings.match_nanos += o.timings.match_nanos;
                outcome.timings.merge_nanos += o.timings.merge_nanos;
                outcome.timings.docid_nanos += o.timings.docid_nanos;
                outcome
                    .docs
                    .extend(o.docs.into_iter().filter(|d| !tombs.contains(d)));
            }
            // The union can overshoot the limit; keep the smallest k.
            if let Some(k) = raw_limit {
                while outcome.docs.len() > k {
                    let last = *outcome.docs.iter().next_back().expect("non-empty");
                    outcome.docs.remove(&last);
                }
            }
        }
        self.match_counters.record(&outcome.stats);
        let stats = outcome.stats;
        vist_obs::counter!("vist_core_work_items_total").add(stats.work_items);
        vist_obs::counter!("vist_core_nodes_visited_total").add(stats.nodes_visited);
        vist_obs::counter!("vist_core_steals_total").add(stats.steals);
        vist_obs::counter!("vist_core_dedup_skips_total").add(stats.dedup_skips);
        vist_obs::counter!("vist_core_planner_seqs_pruned_total").add(stats.planner_seqs_pruned);
        vist_obs::counter!("vist_core_planner_probes_total").add(stats.planner_probes);
        vist_obs::counter!("vist_core_planner_probe_prunes_total").add(stats.planner_probe_prunes);
        vist_obs::counter!("vist_core_planner_docid_sweeps_total").add(stats.planner_docid_sweeps);
        let mut timings = outcome.timings;
        timings.translate_nanos = translate_nanos;
        let out = outcome.docs;
        let candidates = out.len();
        let doc_ids: Vec<DocId> = if opts.verify {
            if !self.store.meta().store_documents {
                return Err(Error::DocumentsNotStored);
            }
            let _span = vist_obs::Span::enter("verify");
            let verify_start = vist_obs::now();
            let mut verified = Vec::new();
            for id in out {
                if opts.limit.is_some_and(|k| verified.len() >= k) {
                    break;
                }
                if opts
                    .deadline
                    .is_some_and(|d| std::time::Instant::now() >= d)
                {
                    return Err(Error::DeadlineExceeded);
                }
                let xml = self
                    .doc_get_any(id, &segments)?
                    .ok_or(Error::NoSuchDocument(id))?;
                let text = String::from_utf8(xml)
                    .map_err(|_| Error::Corrupt("stored document is not UTF-8".into()))?;
                let doc = vist_xml::parse(&text)
                    .map_err(|e| Error::Corrupt(format!("stored document unparseable: {e}")))?;
                if matches_document(pattern, &doc, &self.order) {
                    verified.push(id);
                }
            }
            timings.verify_nanos = vist_obs::elapsed_nanos(verify_start).unwrap_or(0);
            verified
        } else {
            out.into_iter().collect()
        };
        Ok(QueryResult {
            doc_ids,
            candidates,
            truncated: translation.truncated,
            stats,
            timings,
            trace: None,
            trace_id: opts.trace_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> VistIndex {
        VistIndex::in_memory(IndexOptions::default()).unwrap()
    }

    #[test]
    fn insert_and_query_single_document() {
        let idx = index();
        let id = idx
            .insert_xml("<book><author>David</author></book>")
            .unwrap();
        let r = idx
            .query("/book/author[text='David']", &QueryOptions::default())
            .unwrap();
        assert_eq!(r.doc_ids, vec![id]);
        let r = idx
            .query("/book/author[text='Mary']", &QueryOptions::default())
            .unwrap();
        assert!(r.doc_ids.is_empty());
    }

    #[test]
    fn selective_across_documents() {
        let idx = index();
        let mut ids = Vec::new();
        for i in 0..50 {
            let author = if i % 5 == 0 { "David" } else { "Other" };
            let xml = format!(
                "<book><author>{author}</author><year>{}</year></book>",
                1990 + i
            );
            ids.push(idx.insert_xml(&xml).unwrap());
        }
        let r = idx
            .query("/book/author[text='David']", &QueryOptions::default())
            .unwrap();
        let expect: Vec<DocId> = ids.iter().copied().step_by(5).collect();
        assert_eq!(r.doc_ids, expect);
        // Year-specific query hits exactly one.
        let r = idx
            .query("/book[year='2013']", &QueryOptions::default())
            .unwrap();
        assert_eq!(r.doc_ids.len(), 1);
    }

    #[test]
    fn wildcard_and_descendant_queries() {
        let idx = index();
        let a = idx
            .insert_xml("<p><s><l>boston</l></s><b><l>newyork</l></b></p>")
            .unwrap();
        let b = idx
            .insert_xml("<p><s><l>tokyo</l></s><b><l>paris</l></b></p>")
            .unwrap();
        let r = idx
            .query("/p/*[l='boston']", &QueryOptions::default())
            .unwrap();
        assert_eq!(r.doc_ids, vec![a]);
        let r = idx
            .query("//l[text='paris']", &QueryOptions::default())
            .unwrap();
        assert_eq!(r.doc_ids, vec![b]);
        let r = idx.query("/p//l", &QueryOptions::default()).unwrap();
        assert_eq!(r.doc_ids, vec![a, b]);
    }

    #[test]
    fn verification_removes_false_positives() {
        let idx = index();
        let fp = idx
            .insert_xml("<a><b><c>1</c></b><b><d>2</d></b></a>")
            .unwrap();
        let real = idx.insert_xml("<a><b><c>1</c><d>2</d></b></a>").unwrap();
        let raw = idx
            .query("/a/b[c='1'][d='2']", &QueryOptions::default())
            .unwrap();
        assert_eq!(
            raw.doc_ids,
            vec![fp, real],
            "raw ViST semantics includes the false positive"
        );
        let verified = idx
            .query(
                "/a/b[c='1'][d='2']",
                &QueryOptions {
                    verify: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(verified.doc_ids, vec![real]);
        assert_eq!(verified.candidates, 2);
    }

    #[test]
    fn remove_document_hides_it() {
        let idx = index();
        let a = idx.insert_xml("<r><x>1</x></r>").unwrap();
        let b = idx.insert_xml("<r><x>1</x></r>").unwrap();
        assert_eq!(idx.doc_count(), 2);
        idx.remove_document(a).unwrap();
        assert_eq!(idx.doc_count(), 1);
        let r = idx
            .query("/r/x[text='1']", &QueryOptions::default())
            .unwrap();
        assert_eq!(r.doc_ids, vec![b]);
        assert!(matches!(
            idx.remove_document(a),
            Err(Error::NoSuchDocument(_))
        ));
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = vist_storage::testutil::TempDir::new("vist-core-roundtrip");
        let path = dir.file("store");
        let id;
        {
            let idx = VistIndex::create_file(&path, IndexOptions::default()).unwrap();
            id = idx
                .insert_xml("<book><author>David</author></book>")
                .unwrap();
            idx.insert_xml("<book><author>Mary</author></book>")
                .unwrap();
            idx.flush().unwrap();
        }
        {
            let idx = VistIndex::open_file(&path, 256).unwrap();
            assert_eq!(idx.doc_count(), 2);
            let r = idx
                .query("/book/author[text='David']", &QueryOptions::default())
                .unwrap();
            assert_eq!(r.doc_ids, vec![id]);
            // And it stays dynamic after reopen.
            let id3 = idx
                .insert_xml("<book><author>David</author><extra/></book>")
                .unwrap();
            let r = idx
                .query("/book/author[text='David']", &QueryOptions::default())
                .unwrap();
            assert_eq!(r.doc_ids, vec![id, id3]);
        }
    }

    #[test]
    fn underflow_path_exercised_with_tiny_lambda() {
        // Force deep borrows by a pathological allocator: fixed λ=2 exhausts
        // a hot node's scope after ~126 children.
        let idx = VistIndex::in_memory(IndexOptions {
            lambda: 2,
            adaptive: false,
            ..Default::default()
        })
        .unwrap();
        for i in 0..500 {
            idx.insert_xml(&format!("<r><v>{i}</v></r>")).unwrap();
        }
        let stats = idx.stats();
        assert!(
            stats.underflows + stats.deep_borrows > 0,
            "expected scope underflows: {stats:?}"
        );
        // Incarnations keep the index sound: EVERY document remains findable
        // by its unique value, and the umbrella query finds all of them.
        for i in 0..500 {
            let r = idx
                .query(&format!("/r/v[text='{i}']"), &QueryOptions::default())
                .unwrap();
            assert_eq!(r.doc_ids.len(), 1, "value {i}");
        }
        let all = idx.query("/r/v", &QueryOptions::default()).unwrap();
        assert_eq!(all.doc_ids.len(), 500);
    }

    #[test]
    fn table4_style_queries_end_to_end() {
        let idx = index();
        let d1 = idx
            .insert_xml(
                "<site><reg><item location=\"US\"><mail><date>12/15/1999</date></mail></item></reg></site>",
            )
            .unwrap();
        let _d2 = idx
            .insert_xml(
                "<site><reg><item location=\"EU\"><mail><date>01/01/2000</date></mail></item></reg></site>",
            )
            .unwrap();
        let r = idx
            .query(
                "/site//item[location='US']/mail/date[text='12/15/1999']",
                &QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(r.doc_ids, vec![d1]);
    }

    #[test]
    fn bulk_build_and_query_across_tiers() {
        let dir = vist_storage::testutil::TempDir::new("vist-core-tiered");
        let path = dir.file("store");
        let idx = VistIndex::create_file(&path, IndexOptions::default()).unwrap();
        // Delta insert + two bulk batches → three sources.
        let d0 = idx
            .insert_xml("<book><author>Delta</author></book>")
            .unwrap();
        let b1 = idx
            .bulk_build((0..40).map(|i| format!("<book><author>A{}</author></book>", i % 4)))
            .unwrap();
        let b2 = idx
            .bulk_build(["<book><author>Delta</author></book>".to_string()])
            .unwrap();
        assert_eq!(b1.len(), 40);
        assert_eq!(idx.doc_count(), 42);
        assert_eq!(idx.stats().segments, 2);
        let r = idx
            .query("/book/author[text='Delta']", &QueryOptions::default())
            .unwrap();
        assert_eq!(r.doc_ids, vec![d0, b2[0]]);
        let r = idx
            .query("/book/author[text='A0']", &QueryOptions::default())
            .unwrap();
        assert_eq!(r.doc_ids.len(), 10);
        // Verification reaches segment-resident documents too.
        let r = idx
            .query(
                "/book/author[text='A1']",
                &QueryOptions {
                    verify: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(r.doc_ids.len(), 10);
        idx.check().unwrap();

        // Reopen: manifest, segments and counts survive.
        idx.flush().unwrap();
        drop(idx);
        let idx = VistIndex::open_file(&path, 256).unwrap();
        assert_eq!(idx.doc_count(), 42);
        assert_eq!(idx.stats().segments, 2);
        let r = idx
            .query("/book/author[text='Delta']", &QueryOptions::default())
            .unwrap();
        assert_eq!(r.doc_ids, vec![d0, b2[0]]);
        idx.check().unwrap();
    }

    #[test]
    fn segment_docs_removable_via_tombstones_and_compaction() {
        let dir = vist_storage::testutil::TempDir::new("vist-core-tomb");
        let path = dir.file("store");
        let idx = VistIndex::create_file(&path, IndexOptions::default()).unwrap();
        let ids = idx
            .bulk_build((0..10).map(|i| format!("<r><v>x{i}</v></r>")))
            .unwrap();
        idx.remove_document(ids[3]).unwrap();
        assert_eq!(idx.doc_count(), 9);
        assert_eq!(idx.stats().tombstones, 1);
        assert!(matches!(
            idx.remove_document(ids[3]),
            Err(Error::NoSuchDocument(_))
        ));
        let r = idx
            .query("/r/v[text='x3']", &QueryOptions::default())
            .unwrap();
        assert!(r.doc_ids.is_empty());
        assert!(matches!(
            idx.get_document_xml(ids[3]),
            Err(Error::NoSuchDocument(_))
        ));
        // Compaction drops the tombstoned doc for good and preserves ids.
        idx.insert_xml("<r><v>delta</v></r>").unwrap();
        idx.compact().unwrap();
        let s = idx.stats();
        assert_eq!(s.segments, 1);
        assert_eq!(s.tombstones, 0);
        assert_eq!(idx.doc_count(), 10);
        let r = idx
            .query("/r/v[text='x3']", &QueryOptions::default())
            .unwrap();
        assert!(r.doc_ids.is_empty());
        let r = idx
            .query("/r/v[text='x7']", &QueryOptions::default())
            .unwrap();
        assert_eq!(r.doc_ids, vec![ids[7]]);
        let r = idx
            .query("/r/v[text='delta']", &QueryOptions::default())
            .unwrap();
        assert_eq!(r.doc_ids.len(), 1);
        idx.check().unwrap();
        // And survives reopen.
        idx.flush().unwrap();
        drop(idx);
        let idx = VistIndex::open_file(&path, 256).unwrap();
        assert_eq!(idx.doc_count(), 10);
        let r = idx
            .query("/r/v[text='x7']", &QueryOptions::default())
            .unwrap();
        assert_eq!(r.doc_ids, vec![ids[7]]);
        idx.check().unwrap();
    }

    #[test]
    fn bulk_build_auto_compacts_at_threshold() {
        let dir = vist_storage::testutil::TempDir::new("vist-core-autocompact");
        let path = dir.file("store");
        let idx = VistIndex::create_file(&path, IndexOptions::default()).unwrap();
        for b in 0..COMPACT_SEGMENT_THRESHOLD {
            idx.bulk_build((0..5).map(|i| format!("<r><v>b{b}i{i}</v></r>")))
                .unwrap();
        }
        let s = idx.stats();
        assert_eq!(s.segments, 1, "threshold batch must trigger compaction");
        assert_eq!(idx.doc_count(), 5 * COMPACT_SEGMENT_THRESHOLD as u64);
        let r = idx.query("/r/v", &QueryOptions::default()).unwrap();
        assert_eq!(r.doc_ids.len(), 5 * COMPACT_SEGMENT_THRESHOLD);
        idx.check().unwrap();
    }

    #[test]
    fn untiered_index_rejects_bulk_ops() {
        let idx = index();
        assert!(matches!(
            idx.bulk_build(["<a/>".to_string()]),
            Err(Error::NotTiered)
        ));
        assert!(matches!(idx.compact(), Err(Error::NotTiered)));
    }

    #[test]
    fn query_parse_errors_propagate() {
        let idx = index();
        assert!(matches!(
            idx.query("not a query", &QueryOptions::default()),
            Err(Error::Query(_))
        ));
    }

    #[test]
    fn without_stored_documents_verify_errors() {
        let idx = VistIndex::in_memory(IndexOptions {
            store_documents: false,
            ..Default::default()
        })
        .unwrap();
        idx.insert_xml("<a><b/></a>").unwrap();
        let r = idx.query("/a/b", &QueryOptions::default()).unwrap();
        assert_eq!(r.doc_ids.len(), 1);
        assert!(matches!(
            idx.query(
                "/a/b",
                &QueryOptions {
                    verify: true,
                    ..Default::default()
                }
            ),
            Err(Error::DocumentsNotStored)
        ));
        assert!(matches!(
            idx.remove_document(0),
            Err(Error::DocumentsNotStored)
        ));
    }
}
