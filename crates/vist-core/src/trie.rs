//! The suffix-tree-like trie of structure-encoded sequences (paper Figure 5).
//!
//! Every document's whole sequence is inserted from the root, sharing
//! prefixes with previously inserted sequences; a document's id is attached
//! to the node its last element reaches. This structure *is* the "suffix
//! tree" of the paper's naive algorithm and the labeling source for RIST;
//! ViST never materializes it.

use std::collections::HashMap;

use vist_seq::{Sequence, Sym, Symbol};

use crate::store::DocId;

/// Identity of a trie node's element: `(symbol, concrete prefix)`.
pub type ElemKey = (Sym, Vec<Symbol>);

/// One trie node.
#[derive(Debug, Clone)]
pub struct TrieNode {
    /// The element this node represents (`None` for the root).
    pub elem: Option<ElemKey>,
    /// Children, keyed by element; insertion order retained separately for
    /// deterministic traversal/labeling.
    pub children: HashMap<ElemKey, usize>,
    /// Child node indices in insertion order.
    pub child_order: Vec<usize>,
    /// Documents whose sequences end at this node.
    pub docs: Vec<DocId>,
}

/// Trie of structure-encoded sequences.
#[derive(Debug, Clone)]
pub struct Trie {
    /// Node arena; index 0 is the root.
    pub nodes: Vec<TrieNode>,
}

impl Default for Trie {
    fn default() -> Self {
        Trie::new()
    }
}

impl Trie {
    /// An empty trie (root only).
    #[must_use]
    pub fn new() -> Self {
        Trie {
            nodes: vec![TrieNode {
                elem: None,
                children: HashMap::new(),
                child_order: Vec::new(),
                docs: Vec::new(),
            }],
        }
    }

    /// Number of nodes, including the root.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when only the root exists.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Insert a document's sequence, attaching `doc` at the final node.
    ///
    /// # Panics
    /// Panics if the sequence contains wildcard prefixes (data sequences are
    /// always concrete).
    pub fn insert_sequence(&mut self, seq: &Sequence, doc: DocId) {
        let mut cur = 0usize;
        for elem in seq.iter() {
            let key: ElemKey = (
                elem.sym,
                elem.prefix
                    .as_concrete()
                    .expect("data sequences have concrete prefixes"),
            );
            cur = match self.nodes[cur].children.get(&key) {
                Some(&c) => c,
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(TrieNode {
                        elem: Some(key.clone()),
                        children: HashMap::new(),
                        child_order: Vec::new(),
                        docs: Vec::new(),
                    });
                    self.nodes[cur].children.insert(key, idx);
                    self.nodes[cur].child_order.push(idx);
                    idx
                }
            };
        }
        self.nodes[cur].docs.push(doc);
    }

    /// Assign static RIST labels: preorder rank `n` and subtree size
    /// (`[n, n+size)` covers the node and all descendants). Returns labels
    /// indexed like `nodes`.
    #[must_use]
    pub fn static_labels(&self) -> Vec<(u128, u128)> {
        let mut labels = vec![(0u128, 0u128); self.nodes.len()];
        let mut counter = 0u128;
        self.label_rec(0, &mut counter, &mut labels);
        labels
    }

    fn label_rec(&self, node: usize, counter: &mut u128, labels: &mut [(u128, u128)]) -> u128 {
        let n = *counter;
        *counter += 1;
        let mut size = 1u128;
        for &c in &self.nodes[node].child_order {
            size += self.label_rec(c, counter, labels);
        }
        labels[node] = (n, size);
        size
    }

    /// All document ids attached to `node` or any of its descendants.
    pub fn docs_under(&self, node: usize, out: &mut Vec<DocId>) {
        out.extend_from_slice(&self.nodes[node].docs);
        for &c in &self.nodes[node].child_order {
            self.docs_under(c, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vist_seq::{document_to_sequence, SiblingOrder, SymbolTable};
    use vist_xml::parse;

    fn seq(xml: &str, table: &mut SymbolTable) -> Sequence {
        document_to_sequence(&parse(xml).unwrap(), table, &SiblingOrder::Lexicographic)
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let mut table = SymbolTable::new();
        let s1 = seq("<p><s><n>dell</n></s></p>", &mut table);
        let s2 = seq("<p><s><n>ibm</n></s></p>", &mut table);
        let mut trie = Trie::new();
        trie.insert_sequence(&s1, 1);
        trie.insert_sequence(&s2, 2);
        // Shared: root + (p,)(s,p)(n,ps); distinct: the two values.
        assert_eq!(trie.len(), 1 + 3 + 2);
        // Same sequence again: no new nodes, doc id recorded.
        trie.insert_sequence(&s1, 3);
        assert_eq!(trie.len(), 6);
        let mut docs = Vec::new();
        trie.docs_under(0, &mut docs);
        docs.sort_unstable();
        assert_eq!(docs, vec![1, 2, 3]);
    }

    #[test]
    fn figure5_example_structure() {
        // Doc1 = (P,)(S,P)(N,PS)(v1,PSN)(L,PS)(v2,PSL)
        // Doc2 = (P,)(B,P)(L,PB)(v2,PBL)
        // Paper Figure 5: 9 suffix-tree nodes + root.
        let mut table = SymbolTable::new();
        let d1 = seq("<P><S><N>v1</N><L>v2</L></S></P>", &mut table);
        let d2 = seq("<P><B><L>v2</L></B></P>", &mut table);
        assert_eq!(d1.len(), 6);
        assert_eq!(d2.len(), 4);
        let mut trie = Trie::new();
        trie.insert_sequence(&d1, 1);
        trie.insert_sequence(&d2, 2);
        // Shared: root, (P,). Doc1 adds 5 more, Doc2 adds 3 more.
        assert_eq!(trie.len(), 1 + 1 + 5 + 3);
    }

    #[test]
    fn static_labels_nested_and_preorder() {
        let mut table = SymbolTable::new();
        let s1 = seq("<a><b>x</b></a>", &mut table);
        let s2 = seq("<a><c>y</c></a>", &mut table);
        let mut trie = Trie::new();
        trie.insert_sequence(&s1, 1);
        trie.insert_sequence(&s2, 2);
        let labels = trie.static_labels();
        // Root label covers everything.
        assert_eq!(labels[0].0, 0);
        assert_eq!(labels[0].1, trie.len() as u128);
        // Every child scope nests strictly inside its parent's.
        for (i, node) in trie.nodes.iter().enumerate() {
            let (pn, psize) = labels[i];
            for &c in &node.child_order {
                let (cn, csize) = labels[c];
                assert!(cn > pn && cn + csize <= pn + psize, "child {c} of {i}");
            }
        }
        // Labels are unique preorder ranks 0..len.
        let mut ns: Vec<u128> = labels.iter().map(|l| l.0).collect();
        ns.sort_unstable();
        let expect: Vec<u128> = (0..trie.len() as u128).collect();
        assert_eq!(ns, expect);
    }

    #[test]
    fn empty_sequence_attaches_doc_to_root() {
        let mut trie = Trie::new();
        trie.insert_sequence(&Sequence::default(), 9);
        assert_eq!(trie.nodes[0].docs, vec![9]);
    }
}
