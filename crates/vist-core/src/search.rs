//! Algorithm 2: non-contiguous subsequence matching using B+Trees.
//!
//! Shared by [`crate::VistIndex`] and [`crate::RistIndex`] — "ViST uses the
//! same sequence matching algorithm as RIST".
//!
//! For each query element the D-Ancestor tree is consulted (an exact get for
//! concrete prefixes, a range query for `*`/`//` prefixes), and within each
//! matching D-Ancestor entry the S-Ancestor tree is range-queried for labels
//! strictly inside the previous match's scope — the "jump" that eliminates
//! suffix-tree traversal. When the last element matches, the DocId tree is
//! range-queried over the final node's scope.

use std::collections::BTreeSet;

use vist_query::{QueryElem, QuerySequence};
use vist_seq::{dkey, PathSym, Prefix, Sym, Symbol};

use crate::error::Result;
use crate::store::{DocId, Store};

/// Instrumentation counters for one search.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// Exact D-Ancestor lookups performed.
    pub dancestor_gets: u64,
    /// D-Ancestor range scans performed (wildcard prefixes).
    pub dancestor_scans: u64,
    /// D-Ancestor entries that matched some query element.
    pub dkeys_matched: u64,
    /// S-Ancestor range queries performed.
    pub sancestor_scans: u64,
    /// Virtual suffix tree nodes visited (partial matches explored).
    pub nodes_visited: u64,
    /// DocId range queries performed.
    pub docid_scans: u64,
}

impl QueryStats {
    /// Accumulate another search's counters into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.dancestor_gets += other.dancestor_gets;
        self.dancestor_scans += other.dancestor_scans;
        self.dkeys_matched += other.dkeys_matched;
        self.sancestor_scans += other.sancestor_scans;
        self.nodes_visited += other.nodes_visited;
        self.docid_scans += other.docid_scans;
    }
}

/// Where matched results go: either resolved to document ids (the normal
/// mode) or kept as the final nodes' scopes (the paper's measured quantity
/// for Figure 10, which excludes "the time spent in data output after each
/// range query on the DocId B+Tree").
pub enum MatchOutput<'a> {
    /// Resolve matches to document ids via DocId range queries.
    Docs(&'a mut BTreeSet<DocId>),
    /// Collect the final matched scopes `[n, n+size)` without touching the
    /// DocId tree.
    Scopes(&'a mut Vec<(u128, u128)>),
}

/// Run Algorithm 2 for one query sequence, adding matching document ids to
/// `out`.
pub fn search_store(
    store: &Store,
    qseq: &QuerySequence,
    out: &mut BTreeSet<DocId>,
    stats: &mut QueryStats,
) -> Result<()> {
    search_store_into(store, qseq, &mut MatchOutput::Docs(out), stats)
}

/// Run Algorithm 2 with an explicit output mode (see [`MatchOutput`]).
pub fn search_store_into(
    store: &Store,
    qseq: &QuerySequence,
    out: &mut MatchOutput<'_>,
    stats: &mut QueryStats,
) -> Result<()> {
    if qseq.elems.is_empty() {
        return Ok(());
    }
    let mut ctx = Ctx {
        paths: vec![Vec::new(); qseq.elems.len()],
        concrete_cache: vec![None; qseq.elems.len()],
    };
    // The virtual root covers the whole label space; its own label 0 is
    // excluded from descendant ranges by the strict lower bound.
    step(store, qseq, 0, 0, vist_seq::MAX_SCOPE, &mut ctx, out, stats)
}

/// Cached D-Ancestor resolution: `None` = not yet looked up; `Some(None)` =
/// looked up, key absent; `Some(Some((prefix, dkey-id)))` = present.
type CachedLookup = Option<Option<(Vec<Symbol>, u64)>>;

struct Ctx {
    /// Concrete root-to-self path of each matched query element.
    paths: Vec<Vec<Symbol>>,
    /// For elements whose *pattern* prefix is fully concrete, the D-Ancestor
    /// lookup is independent of the bindings; resolve it once per query.
    concrete_cache: Vec<CachedLookup>,
}

/// Rebuild the lookup prefix for element `qi` from its parent's instantiated
/// concrete path plus the placeholder steps between them.
fn lookup_prefix(qe: &QueryElem, paths: &[Vec<Symbol>]) -> Prefix {
    // (only called for wildcarded prefixes; concrete ones take the cached
    // fast path in `step`)
    let mut steps: Vec<PathSym> = match qe.parent {
        Some(p) => paths[p].iter().map(|&s| PathSym::Tag(s)).collect(),
        None => Vec::new(),
    };
    steps.extend_from_slice(&qe.steps_after_parent);
    Prefix(steps)
}

#[allow(clippy::too_many_arguments)]
fn step(
    store: &Store,
    qseq: &QuerySequence,
    qi: usize,
    prev_n: u128,
    prev_end: u128,
    ctx: &mut Ctx,
    out: &mut MatchOutput<'_>,
    stats: &mut QueryStats,
) -> Result<()> {
    if qi == qseq.elems.len() {
        match out {
            MatchOutput::Docs(set) => {
                // "Perform a range query [n, n+size) on the DocId B+Tree."
                stats.docid_scans += 1;
                set.extend(store.docids_in_range(prev_n, prev_end)?);
            }
            MatchOutput::Scopes(v) => v.push((prev_n, prev_end)),
        }
        return Ok(());
    }
    let qe = &qseq.elems[qi];

    // Fast path: a fully concrete pattern prefix means the D-Ancestor lookup
    // does not depend on what earlier elements bound to — resolve it once.
    if !qe.prefix.has_wildcard() {
        if ctx.concrete_cache[qi].is_none() {
            stats.dancestor_gets += 1;
            let concrete = qe.prefix.as_concrete().expect("concrete prefix");
            let key = dkey::encode(qe.sym, &concrete);
            ctx.concrete_cache[qi] = Some(store.dkey_get(&key)?.map(|id| (concrete, id)));
        }
        let Some(Some((prefix_syms, dkid))) = ctx.concrete_cache[qi].clone() else {
            return Ok(());
        };
        return descend(
            store,
            qseq,
            qi,
            prev_n,
            prev_end,
            prefix_syms,
            dkid,
            ctx,
            out,
            stats,
        );
    }

    // Wildcarded prefix: rebuild the lookup pattern from the parent's
    // instantiated path, then exact-get or range-scan the D-Ancestor tree.
    let pattern = lookup_prefix(qe, &ctx.paths);
    let candidates: Vec<(Vec<Symbol>, u64)> = match dkey::query_for(qe.sym, &pattern) {
        dkey::DKeyQuery::Exact(key) => {
            stats.dancestor_gets += 1;
            match store.dkey_get(&key)? {
                Some(id) => {
                    let (_, prefix_syms) = dkey::decode(&key);
                    vec![(prefix_syms, id)]
                }
                None => Vec::new(),
            }
        }
        dkey::DKeyQuery::Range { lo, hi, pattern } => {
            stats.dancestor_scans += 1;
            store
                .dkey_scan(&lo, &hi)?
                .into_iter()
                .filter_map(|(key, id)| {
                    let (_, prefix_syms) = dkey::decode(&key);
                    pattern.matches(&prefix_syms).then_some((prefix_syms, id))
                })
                .collect()
        }
    };
    for (prefix_syms, dkid) in candidates {
        descend(
            store,
            qseq,
            qi,
            prev_n,
            prev_end,
            prefix_syms,
            dkid,
            ctx,
            out,
            stats,
        )?;
    }
    Ok(())
}

/// Range-query the S-Ancestor entries of one matched D-Ancestor key inside
/// the previous match's scope, binding and recursing on each hit.
#[allow(clippy::too_many_arguments)]
fn descend(
    store: &Store,
    qseq: &QuerySequence,
    qi: usize,
    prev_n: u128,
    prev_end: u128,
    prefix_syms: Vec<Symbol>,
    dkid: u64,
    ctx: &mut Ctx,
    out: &mut MatchOutput<'_>,
    stats: &mut QueryStats,
) -> Result<()> {
    stats.dkeys_matched += 1;
    stats.sancestor_scans += 1;
    let nodes = store.nodes_in_scope(dkid, prev_n, prev_end)?;
    if nodes.is_empty() {
        return Ok(());
    }
    let qe = &qseq.elems[qi];
    // Bind this element's concrete path for descendant instantiation.
    ctx.paths[qi] = prefix_syms;
    if let Sym::Tag(t) = qe.sym {
        ctx.paths[qi].push(t);
    }
    for node in nodes {
        stats.nodes_visited += 1;
        step(store, qseq, qi + 1, node.n, node.end(), ctx, out, stats)?;
    }
    Ok(())
}
