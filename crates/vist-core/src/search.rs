//! Algorithm 2: non-contiguous subsequence matching using B+Trees,
//! formulated as an explicit **work-list of match frames**.
//!
//! Shared by [`crate::VistIndex`] and [`crate::RistIndex`] — "ViST uses the
//! same sequence matching algorithm as RIST".
//!
//! For each query element the D-Ancestor tree is consulted (an exact get for
//! concrete prefixes, a range query for `*`/`//` prefixes), and within each
//! matching D-Ancestor entry the S-Ancestor tree is range-queried for labels
//! strictly inside the previous match's scope — the "jump" that eliminates
//! suffix-tree traversal. When the last element matches, the DocId tree is
//! range-queried over the final node's scope.
//!
//! # Work-list formulation
//!
//! Where the paper (and our previous implementation) phrases the search as
//! recursion — `step` over query elements, `descend` over S-Ancestor hits —
//! this module reifies every partial match as a [`Frame`]: *"element `qi`
//! of sequence `seq` must next match inside scope `(lo, hi)`, given these
//! wildcard bindings"*. Expanding a frame performs the D-Ancestor lookup
//! and one S-Ancestor range query per candidate, pushing one child frame
//! per hit. Frames are independent, which buys three things:
//!
//! 1. **Parallelism** — frames are unit of work for the scoped worker pool
//!    in [`crate::pool`]: alternative sequences from `translate()` and
//!    independent D-Ancestor candidate branches run on different workers.
//! 2. **Dedup** — distinct wildcard expansions that converge on the same
//!    `(dkey, scope)` sub-problem are detected by a visited set and
//!    expanded once instead of re-scanning the same subtree.
//! 3. **Batched DocId resolution** — final scopes accumulate and are
//!    interval-merged before the DocId tree is consulted, so overlapping
//!    `[n, n+size)` scopes from different branches cost one range query
//!    instead of many.
//!
//! The inner loop is allocation-light: B+Tree probes stream through the
//! `*_with` cursor APIs of [`Store`] (no per-probe `Vec`), and bindings are
//! shared between frames through a persistent [`BindNode`] chain.
//!
//! # Cost-based planning (ViST §3.4 "statistical clues")
//!
//! The plan stage between translation and matching uses cheap per-D-Ancestor
//! statistics ([`DkStats`], maintained incrementally by the delta and
//! computed exactly at segment build time) to transform the work-list
//! **without changing its answer**:
//!
//! - **Empty-prefix short-circuits** — a sequence whose concrete-prefix
//!   element is absent from the D-Ancestor tree, or whose `*`/`//` element's
//!   pattern probe matches nothing, can never complete and is never seeded.
//!   (The static pattern covers every runtime instantiation, so an empty
//!   probe is a proof, not a heuristic.)
//! - **Selectivity ordering** — live sequences are seeded cheapest-first
//!   (by estimated node visits), and within a wildcard expansion the
//!   D-Ancestor candidates are descended smallest-first.
//! - **Child-probe pruning** — before range-scanning the S-Ancestor entries
//!   of a matched key, the planner probes the (fully determined) D-Ancestor
//!   keys of wildcarded child elements reachable from that binding by
//!   concrete steps; any absent key proves the whole subtree dead.
//! - **DocId strategy choice** — the final merged scopes are resolved
//!   either by one range jump per scope or by a single keyed sweep of the
//!   covering range, picked from the source's posting total.
//! - **`limit` early termination** — bounded runs resolve completed scopes
//!   eagerly and stop as soon as enough distinct documents are in hand.
//!
//! Every transform only reorders work or prunes provably-empty work, so
//! (unlimited) results are bit-identical with planning on or off —
//! [`SearchOptions::plan`] exists purely for bisection and benchmarks.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use vist_query::{QueryElem, QuerySequence};
use vist_seq::{dkey, PathSym, Prefix, Sym, Symbol};

use crate::error::Result;
use crate::pool;
use crate::store::{DocId, NodeState, Store};

/// Cheap per-D-Ancestor-entry statistics driving the planner. The delta
/// maintains them incrementally on insert/remove (persisted through
/// `Store::flush`); segments compute them exactly at build time and pack
/// them as an extra tree. Missing statistics degrade ordering, never
/// correctness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DkStats {
    /// S-Ancestor entries under this key (virtual suffix-tree nodes,
    /// including incarnations).
    pub nodes: u64,
    /// DocId postings attached to this key's nodes (an upper bound on the
    /// distinct document ids below it).
    pub docs: u64,
    /// Child nodes allocated under this key's nodes (scope fan-out).
    pub fanout: u64,
}

/// Source-wide statistic totals, for the planner's DocId strategy choice.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SourceTotals {
    /// Total S-Ancestor entries in the source.
    pub nodes: u64,
    /// Total DocId postings in the source.
    pub postings: u64,
}

/// The B+Tree probe surface Algorithm 2 needs, abstracted over where the
/// trees live: the mutable delta ([`Store`]) or an immutable packed
/// segment. Every source is a self-contained label space (each segment is
/// bulk-labeled independently), so the tiered index runs the match once
/// per source and unions document ids — scopes from different sources are
/// never compared.
///
/// Callbacks are `&mut dyn FnMut` so the trait stays object-safe; the
/// same page-latch rule as the [`Store`] `*_with` cursors applies (the
/// callback must not touch the buffer pool).
pub trait SearchSource: Sync {
    /// Exact D-Ancestor lookup: the id of `dkey`, if present.
    fn dkey_get(&self, dkey: &[u8]) -> Result<Option<u64>>;

    /// Scan D-Ancestor keys in `[lo, hi)`, invoking `f(dkey, id)` in key
    /// order.
    fn dkey_scan_range(&self, lo: &[u8], hi: &[u8], f: &mut dyn FnMut(&[u8], u64)) -> Result<()>;

    /// S-Ancestor nodes of `dkey_id` labeled strictly inside `(lo, hi)`,
    /// in label order.
    fn nodes_in_scope(
        &self,
        dkey_id: u64,
        lo: u128,
        hi: u128,
        f: &mut dyn FnMut(NodeState),
    ) -> Result<()>;

    /// Document ids attached to labels in `[lo, hi)`, in label order.
    fn docids_in_range(&self, lo: u128, hi: u128, f: &mut dyn FnMut(DocId)) -> Result<()>;

    /// Like [`SearchSource::docids_in_range`] but also hands `f` each
    /// posting's label, so the planner's sweep strategy can test membership
    /// against the merged scope list while scanning the covering range
    /// once.
    fn docids_in_range_keyed(
        &self,
        lo: u128,
        hi: u128,
        f: &mut dyn FnMut(u128, DocId),
    ) -> Result<()>;

    /// Planner statistics for one D-Ancestor entry, when the source
    /// maintains them. `None` falls back to candidate counting.
    fn dkid_stats(&self, _dkid: u64) -> Option<DkStats> {
        None
    }

    /// Source-wide totals, when known. `None` disables the planner's
    /// DocId sweep strategy for this source.
    fn totals(&self) -> Option<SourceTotals> {
        None
    }
}

impl SearchSource for Store {
    fn dkey_get(&self, dkey: &[u8]) -> Result<Option<u64>> {
        Store::dkey_get(self, dkey)
    }

    fn dkey_scan_range(&self, lo: &[u8], hi: &[u8], f: &mut dyn FnMut(&[u8], u64)) -> Result<()> {
        self.dkey_scan_with(lo, hi, f)
    }

    fn nodes_in_scope(
        &self,
        dkey_id: u64,
        lo: u128,
        hi: u128,
        f: &mut dyn FnMut(NodeState),
    ) -> Result<()> {
        self.nodes_in_scope_with(dkey_id, lo, hi, f)
    }

    fn docids_in_range(&self, lo: u128, hi: u128, f: &mut dyn FnMut(DocId)) -> Result<()> {
        self.docids_in_range_with(lo, hi, f)
    }

    fn docids_in_range_keyed(
        &self,
        lo: u128,
        hi: u128,
        f: &mut dyn FnMut(u128, DocId),
    ) -> Result<()> {
        self.docids_in_range_keyed_with(lo, hi, f)
    }

    fn dkid_stats(&self, dkid: u64) -> Option<DkStats> {
        Store::dkid_stats(self, dkid)
    }

    fn totals(&self) -> Option<SourceTotals> {
        Some(self.stats_totals())
    }
}

/// Instrumentation counters for one search.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// Exact D-Ancestor lookups performed.
    pub dancestor_gets: u64,
    /// D-Ancestor range scans performed (wildcard prefixes).
    pub dancestor_scans: u64,
    /// D-Ancestor entries that matched some query element.
    pub dkeys_matched: u64,
    /// S-Ancestor range queries performed.
    pub sancestor_scans: u64,
    /// Virtual suffix tree nodes visited (partial matches explored).
    pub nodes_visited: u64,
    /// DocId range queries performed.
    pub docid_scans: u64,
    /// Match frames expanded by the work-list engine.
    pub work_items: u64,
    /// Frames executed after being donated through the shared queue —
    /// work transferred between workers.
    pub steals: u64,
    /// Final scopes coalesced away by interval merging before DocId
    /// resolution (raw matched scopes minus DocId range queries issued).
    pub scopes_merged: u64,
    /// Duplicate sub-problems skipped by the visited set (identical
    /// `(dkey, scope)` reached via different wildcard expansions).
    pub dedup_skips: u64,
    /// Sequences the planner proved empty and never seeded (absent
    /// concrete prefix or empty wildcard pattern probe).
    pub planner_seqs_pruned: u64,
    /// D-Ancestor probes issued by the planner (plan-time pattern probes
    /// plus memoized child-probe lookups in the match loop).
    pub planner_probes: u64,
    /// S-Ancestor descents skipped because a child probe proved the
    /// subtree dead.
    pub planner_probe_prunes: u64,
    /// DocId resolutions where the planner chose the keyed sweep over
    /// per-scope range jumps.
    pub planner_docid_sweeps: u64,
    /// Buffer-pool hits attributed to this query (filled by the index
    /// layer from the request's [`vist_obs::attr`] context; zero for
    /// direct `search_sequences` calls and `noop` builds).
    pub io_pool_hits: u64,
    /// Buffer-pool misses attributed to this query.
    pub io_pool_misses: u64,
    /// Pages read from the backing file for this query.
    pub io_pages_read: u64,
    /// Bytes read from the backing file for this query.
    pub io_bytes_read: u64,
    /// WAL appends issued while this query's context was installed.
    pub io_wal_appends: u64,
}

impl QueryStats {
    /// Accumulate another search's counters into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.dancestor_gets += other.dancestor_gets;
        self.dancestor_scans += other.dancestor_scans;
        self.dkeys_matched += other.dkeys_matched;
        self.sancestor_scans += other.sancestor_scans;
        self.nodes_visited += other.nodes_visited;
        self.docid_scans += other.docid_scans;
        self.work_items += other.work_items;
        self.steals += other.steals;
        self.scopes_merged += other.scopes_merged;
        self.dedup_skips += other.dedup_skips;
        self.planner_seqs_pruned += other.planner_seqs_pruned;
        self.planner_probes += other.planner_probes;
        self.planner_probe_prunes += other.planner_probe_prunes;
        self.planner_docid_sweeps += other.planner_docid_sweeps;
        self.io_pool_hits += other.io_pool_hits;
        self.io_pool_misses += other.io_pool_misses;
        self.io_pages_read += other.io_pages_read;
        self.io_bytes_read += other.io_bytes_read;
        self.io_wal_appends += other.io_wal_appends;
    }

    /// Copy the attributed I/O counters from an attribution snapshot.
    pub fn set_io(&mut self, io: &vist_obs::AttrSnapshot) {
        self.io_pool_hits = io.pool_hits;
        self.io_pool_misses = io.pool_misses;
        self.io_pages_read = io.pages_read;
        self.io_bytes_read = io.bytes_read;
        self.io_wal_appends = io.wal_appends;
    }
}

/// Per-stage wall-clock breakdown of one query, in nanoseconds. All
/// zeros when `vist-obs` timing is disabled. Kept separate from
/// [`QueryStats`] so the deterministic counters stay comparable with
/// `==` in tests while timings vary run to run.
#[derive(Debug, Default, Clone, Copy)]
pub struct StageTimings {
    /// Query parse + translation to structure-encoded sequences
    /// (recorded by the index, zero for direct `search_sequences` calls).
    pub translate_nanos: u64,
    /// The planner: per-sequence context build, up-front D-Ancestor
    /// probes, selectivity ordering.
    pub plan_nanos: u64,
    /// The work-list match loop (D-Ancestor candidates + S-Ancestor
    /// range scans), across all workers, in wall-clock time.
    pub match_nanos: u64,
    /// Final-scope sort/dedup/interval-merge.
    pub merge_nanos: u64,
    /// DocId range queries over the merged scopes.
    pub docid_nanos: u64,
    /// Match verification against stored documents (recorded by the
    /// index when `QueryOptions::verify` is on).
    pub verify_nanos: u64,
    /// Whole-query wall time (recorded by the index; covers the stages
    /// above plus residual bookkeeping).
    pub total_nanos: u64,
}

impl StageTimings {
    /// The stages as `(name, nanos)` pairs in execution order, for slow-query
    /// log entries and profiling tables. Excludes `total_nanos`.
    #[must_use]
    pub fn stages(&self) -> [(&'static str, u64); 6] {
        [
            ("translate", self.translate_nanos),
            ("plan", self.plan_nanos),
            ("match", self.match_nanos),
            ("merge", self.merge_nanos),
            ("docid", self.docid_nanos),
            ("verify", self.verify_nanos),
        ]
    }

    /// Sum of the individual stages (excluding `total_nanos`).
    #[must_use]
    pub fn stage_sum(&self) -> u64 {
        self.stages().iter().map(|(_, n)| n).sum()
    }
}

/// What [`search_sequences`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Resolve matches to document ids via (merged) DocId range queries.
    Docs,
    /// Collect the final matched scopes `[n, n+size)` without touching the
    /// DocId tree (the paper's measured quantity for Figure 10, which
    /// excludes "the time spent in data output after each range query on
    /// the DocId B+Tree").
    Scopes,
}

/// Knobs for one [`search_sequences_opts`] run.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Match-engine worker threads (`<= 1` runs inline on the caller).
    pub workers: usize,
    /// Resolve documents or collect scopes.
    pub mode: SearchMode,
    /// Seeded frame scheduling (the `vist-sim` hook); `None` is the
    /// default depth-first/FIFO order.
    pub schedule_seed: Option<u64>,
    /// Cost-based planning (see the module docs). On by default; turning
    /// it off restores the naive fixed-preorder engine for bisection.
    pub plan: bool,
    /// Stop after this many distinct documents ([`SearchMode::Docs`]
    /// only). Forces serial execution with eager DocId resolution; the
    /// result is a subset of the unlimited answer of size
    /// `min(limit, total)`.
    pub limit: Option<usize>,
    /// Attach a per-step [`PlanReport`] (estimated vs actual
    /// cardinalities) to the outcome — `vist explain --plan`.
    pub collect_plan: bool,
    /// Cooperative cancellation point: once this instant passes, the
    /// engine stops at the next work-item boundary (every execution path
    /// checks before expanding a frame, and the DocId stage checks
    /// between range queries) and returns
    /// [`crate::Error::DeadlineExceeded`]. The check costs one clock
    /// read per frame and only when a deadline is set; expiry never
    /// poisons locks or mutates the index.
    pub deadline: Option<Instant>,
    /// Trace id of the owning request (0 = none). The engine does not
    /// act on it; it rides along so every layer below the serve
    /// front-end sees the same id the response will carry.
    pub trace_id: u128,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            workers: 1,
            mode: SearchMode::Docs,
            schedule_seed: None,
            plan: true,
            limit: None,
            collect_plan: false,
            deadline: None,
            trace_id: 0,
        }
    }
}

/// Whether `deadline` has passed. One clock read; `None` is never
/// expired, so unlimited queries pay nothing.
#[inline]
fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Why the planner refused to seed a sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// Element `qi`'s concrete-prefix D-Ancestor key is absent.
    EmptyConcrete {
        /// The element whose key is absent.
        qi: usize,
    },
    /// Element `qi`'s `*`/`//` D-Ancestor pattern probe matched nothing;
    /// the static pattern covers every runtime instantiation.
    EmptyWildcard {
        /// The element whose pattern probe came up empty.
        qi: usize,
    },
}

/// How the final merged scopes were resolved against the DocId tree.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum DocIdStrategy {
    /// One range query per merged scope (the paper's jump). For `limit`
    /// runs this counts the eagerly resolved scopes.
    Jump {
        /// Ranges queried.
        ranges: u64,
    },
    /// One keyed scan over the covering range, filtering labels against
    /// the merged scope list — chosen when the source's posting total is
    /// small relative to the number of ranges.
    Sweep {
        /// Merged ranges the sweep replaced.
        ranges: u64,
        /// The source's posting total that justified the sweep.
        postings: u64,
    },
    /// DocId resolution did not run ([`SearchMode::Scopes`]).
    #[default]
    NotRun,
}

/// Per-element plan row: estimates from the statistics layer next to the
/// counters the match loop actually produced.
#[derive(Debug, Clone, Default)]
pub struct StepPlan {
    /// Element position in the sequence.
    pub qi: usize,
    /// Whether the element's prefix carries `*`/`//` (estimates come from
    /// a plan-time pattern probe instead of an exact lookup).
    pub wildcard: bool,
    /// D-Ancestor entries estimated to match the element.
    pub est_candidates: u64,
    /// S-Ancestor entries estimated under the matching keys.
    pub est_nodes: u64,
    /// Frames actually expanded at this element (collect_plan only).
    pub actual_frames: u64,
    /// S-Ancestor nodes actually visited at this element.
    pub actual_nodes: u64,
}

/// One sequence's plan.
#[derive(Debug, Clone)]
pub struct SeqPlan {
    /// Index in the caller's sequence list.
    pub index: usize,
    /// Execution rank after selectivity ordering (0 = seeded first).
    pub rank: usize,
    /// Set when the sequence was short-circuited and never seeded.
    pub pruned: Option<PruneReason>,
    /// Estimated node visits (sum of per-step `est_nodes`).
    pub est_cost: u64,
    /// Per-element rows, in sequence order.
    pub steps: Vec<StepPlan>,
}

/// What the planner decided for one source, collected when
/// [`SearchOptions::collect_plan`] is set.
#[derive(Debug, Clone, Default)]
pub struct PlanReport {
    /// One entry per input sequence, in input order.
    pub seqs: Vec<SeqPlan>,
    /// The DocId resolution strategy the run used.
    pub docid_strategy: DocIdStrategy,
}

/// Result of one [`search_sequences`] run.
#[derive(Debug, Default)]
pub struct SearchOutcome {
    /// Matching document ids ([`SearchMode::Docs`] only).
    pub docs: BTreeSet<DocId>,
    /// In [`SearchMode::Scopes`]: the distinct final matched scopes,
    /// ascending. In [`SearchMode::Docs`]: the merged intervals the DocId
    /// tree was queried with.
    pub scopes: Vec<(u128, u128)>,
    /// Search instrumentation, merged across workers.
    pub stats: QueryStats,
    /// Wall-clock stage breakdown (zeros when timing is disabled).
    pub timings: StageTimings,
    /// The plan, when [`SearchOptions::collect_plan`] asked for it.
    pub plan: Option<PlanReport>,
}

/// Run Algorithm 2 over every alternative sequence of one query, unioning
/// results, on `workers` threads (`<= 1` runs inline on the caller).
///
/// A sequence with no elements (an all-wildcard query such as `/*`)
/// contributes the whole label space — every document matches.
///
/// Callers must hold whatever latch protects the store from page frees for
/// the duration of the call (queries hold the maintenance latch shared);
/// the engine itself acquires no index locks.
pub fn search_sequences(
    source: &dyn SearchSource,
    seqs: &[QuerySequence],
    workers: usize,
    mode: SearchMode,
) -> Result<SearchOutcome> {
    search_sequences_opts(
        source,
        seqs,
        &SearchOptions {
            workers,
            mode,
            ..SearchOptions::default()
        },
    )
}

/// [`search_sequences`] with an explicit frame-scheduling seed.
///
/// `schedule_seed: Some(s)` replaces the engine's default expansion order
/// (depth-first serial, FIFO shared queue) with a seeded pseudo-random pick
/// among the pending frames — the `vist-sim` harness's scheduler hook.
/// Answers are sets, so **every** seed must return exactly the same result;
/// the simulation uses differing seeds to hunt for order-dependent bugs in
/// work distribution, dedup, and scope merging.
pub fn search_sequences_with(
    source: &dyn SearchSource,
    seqs: &[QuerySequence],
    workers: usize,
    mode: SearchMode,
    schedule_seed: Option<u64>,
) -> Result<SearchOutcome> {
    search_sequences_opts(
        source,
        seqs,
        &SearchOptions {
            workers,
            mode,
            schedule_seed,
            ..SearchOptions::default()
        },
    )
}

/// Estimated S-Ancestor entries under one D-Ancestor key; at least 1 so
/// candidate counting still orders sources without statistics.
fn est_nodes(source: &dyn SearchSource, dkid: u64) -> u64 {
    source.dkid_stats(dkid).map_or(1, |s| s.nodes.max(1))
}

/// Entries a plan-time pattern probe will scan before it stops trusting
/// (and stops refining) its estimate. A capped probe never prunes.
const PLAN_PROBE_CAP: u64 = 4096;

/// Merged scopes below this count always use per-scope jumps; at or above
/// it the sweep competes on the posting total.
const SWEEP_MIN_RANGES: usize = 4;

/// The sweep is chosen when `postings <= ranges * SWEEP_FACTOR`: `ranges`
/// tree descents cost about `SWEEP_FACTOR` sequential posting reads each.
const SWEEP_FACTOR: u64 = 16;

/// [`search_sequences`] with the full option set: planning, limits, plan
/// report collection (see [`SearchOptions`]).
pub fn search_sequences_opts(
    source: &dyn SearchSource,
    seqs: &[QuerySequence],
    opts: &SearchOptions,
) -> Result<SearchOutcome> {
    let mut stats = QueryStats::default();
    let mut timings = StageTimings::default();
    // Scopes contributed before the match loop runs: an empty sequence
    // (all-wildcard query) matches the whole label space.
    let mut pre_scopes: Vec<(u128, u128)> = Vec::new();
    let mut ctxs: Vec<SeqCtx<'_>> = Vec::with_capacity(seqs.len());
    let mut plans: Vec<SeqPlan> = Vec::with_capacity(seqs.len());
    let order: Vec<usize>;
    {
        let _span = vist_obs::Span::enter("plan");
        let t = vist_obs::now();
        for (i, qs) in seqs.iter().enumerate() {
            if expired(opts.deadline) {
                return Err(crate::error::Error::DeadlineExceeded);
            }
            if qs.elems.is_empty() {
                pre_scopes.push((0, vist_seq::MAX_SCOPE));
            }
            let ctx = SeqCtx::build(source, qs, &mut stats)?;
            let plan = if opts.plan {
                plan_sequence(source, &ctx, i, &mut stats)?
            } else {
                skeleton_plan(&ctx, i, opts.collect_plan)
            };
            ctxs.push(ctx);
            plans.push(plan);
        }
        // Seed live sequences cheapest-first. With planning off this is
        // the input order and nothing is pruned (dead concrete branches
        // still die inside `expand`, as before).
        let mut live: Vec<usize> = (0..seqs.len())
            .filter(|&i| !seqs[i].elems.is_empty() && plans[i].pruned.is_none())
            .collect();
        if opts.plan {
            live.sort_by_key(|&i| (plans[i].est_cost, i));
        }
        for (rank, &i) in live.iter().enumerate() {
            plans[i].rank = rank;
        }
        order = live;
        timings.plan_nanos = vist_obs::elapsed_nanos(t).unwrap_or(0);
    }
    let seeds: Vec<Frame> = order
        .iter()
        .map(|&i| Frame {
            // The virtual root covers the whole label space; its own label 0
            // is excluded from descendant ranges by the strict lower bound.
            seq: i as u32,
            qi: 0,
            lo: 0,
            hi: vist_seq::MAX_SCOPE,
            binds: None,
        })
        .collect();
    let track = opts.collect_plan;

    if let (Some(limit), SearchMode::Docs) = (opts.limit, opts.mode) {
        return run_limited(
            source, &ctxs, plans, seeds, pre_scopes, stats, timings, opts, limit,
        );
    }

    let mut scopes = pre_scopes;
    let workers = opts.workers.max(1);
    let match_span = vist_obs::Span::enter("match");
    let match_start = vist_obs::now();
    if workers == 1 || seeds.len() + 1 < 2 {
        // Inline serial path: a plain explicit stack, no threads. With a
        // schedule seed the next frame is a seeded pick instead of the
        // depth-first top of stack (see `search_sequences_with`).
        let mut out = WorkerOut::new(opts.plan, track);
        let mut sched = opts.schedule_seed;
        let mut stack = seeds;
        // `pop` takes the back, so reverse to expand rank 0 first.
        stack.reverse();
        loop {
            let frame = match &mut sched {
                _ if stack.is_empty() => None,
                None => stack.pop(),
                Some(rng) => {
                    let i = (pool::splitmix64(rng) % stack.len() as u64) as usize;
                    Some(stack.swap_remove(i))
                }
            };
            let Some(frame) = frame else { break };
            if expired(opts.deadline) {
                return Err(crate::error::Error::DeadlineExceeded);
            }
            out.stats.work_items += 1;
            expand(source, &ctxs, &frame, &mut stack, &mut out)?;
        }
        stats.merge(&out.stats);
        scopes.append(&mut out.scopes);
        absorb_steps(&mut plans, &out);
    } else {
        let outs: Vec<Mutex<WorkerOut>> = (0..workers)
            .map(|_| Mutex::new(WorkerOut::new(opts.plan, track)))
            .collect();
        let first_err: Mutex<Option<crate::error::Error>> = Mutex::new(None);
        let policy = match opts.schedule_seed {
            None => pool::SchedPolicy::Fifo,
            Some(s) => pool::SchedPolicy::Seeded(s),
        };
        // One attribution context per query, shared by every worker: a
        // frame donated through the stealing queue is still charged to
        // the owning query no matter which thread expands it.
        let attr_ctx = vist_obs::attr::current();
        pool::run_workers_with(workers, seeds, policy, |id, queue| {
            let _attr = attr_ctx.clone().map(vist_obs::attr::install);
            let worker_start = vist_obs::now();
            let mut busy_nanos = 0u64;
            let mut out = outs[id].lock().unwrap_or_else(|e| e.into_inner());
            let mut local: Vec<Frame> = Vec::new();
            while let Some((frame, donated)) = queue.take() {
                let batch_start = vist_obs::now();
                if donated {
                    out.stats.steals += 1;
                }
                local.push(frame);
                while let Some(frame) = local.pop() {
                    // Cooperative cancellation: every worker checks the
                    // deadline at each work item; the first to notice
                    // stops the shared queue so the others drain out.
                    let late = expired(opts.deadline);
                    out.stats.work_items += 1;
                    let step = if late {
                        Err(crate::error::Error::DeadlineExceeded)
                    } else {
                        expand(source, &ctxs, &frame, &mut local, &mut out)
                    };
                    if let Err(e) = step {
                        let mut slot = first_err.lock().unwrap_or_else(|e| e.into_inner());
                        slot.get_or_insert(e);
                        drop(slot);
                        queue.stop();
                        local.clear();
                        break;
                    }
                    // Donate the shallow half of the stack (largest
                    // subtrees) when another worker is starving.
                    if local.len() > 1 && queue.is_hungry() {
                        let half = local.len() / 2;
                        queue.donate(local.drain(..half));
                    }
                }
                busy_nanos += vist_obs::elapsed_nanos(batch_start).unwrap_or(0);
                queue.finish_one();
            }
            if let Some(wall) = vist_obs::elapsed_nanos(worker_start) {
                vist_obs::histogram!("vist_core_worker_busy_nanos").record(busy_nanos);
                vist_obs::histogram!("vist_core_worker_idle_nanos")
                    .record(wall.saturating_sub(busy_nanos));
                out.busy_nanos = busy_nanos;
                out.idle_nanos = wall.saturating_sub(busy_nanos);
            }
        });
        if let Some(e) = first_err.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(e);
        }
        let (mut busy_total, mut idle_total) = (0u64, 0u64);
        for out in outs {
            let mut out = out.into_inner().unwrap_or_else(|e| e.into_inner());
            busy_total += out.busy_nanos;
            idle_total += out.idle_nanos;
            stats.merge(&out.stats);
            scopes.append(&mut out.scopes);
            absorb_steps(&mut plans, &out);
        }
        // Worker threads have no span collector of their own; graft
        // their aggregate busy/idle time onto the open `match` span so
        // the trace tree covers parallel execution. CPU time across N
        // workers can legitimately exceed the match span's wall time.
        vist_obs::span::attach(vist_obs::SpanNode {
            name: "workers",
            nanos: busy_total,
            count: workers as u64,
            children: Vec::new(),
        });
        vist_obs::span::attach(vist_obs::SpanNode {
            name: "workers_idle",
            nanos: idle_total,
            count: workers as u64,
            children: Vec::new(),
        });
    }
    timings.match_nanos = vist_obs::elapsed_nanos(match_start).unwrap_or(0);
    drop(match_span);

    match opts.mode {
        SearchMode::Scopes => {
            // Canonical form: matched scopes are a *set* (different
            // branches, sequences, or workers can reach the same final
            // node).
            let _span = vist_obs::Span::enter("merge");
            let t = vist_obs::now();
            scopes.sort_unstable();
            scopes.dedup();
            timings.merge_nanos = vist_obs::elapsed_nanos(t).unwrap_or(0);
            Ok(SearchOutcome {
                docs: BTreeSet::new(),
                scopes,
                stats,
                timings,
                plan: track.then_some(PlanReport {
                    seqs: plans,
                    docid_strategy: DocIdStrategy::NotRun,
                }),
            })
        }
        SearchMode::Docs => {
            let merge_span = vist_obs::Span::enter("merge");
            let t = vist_obs::now();
            let raw = scopes.len() as u64;
            let merged = coalesce(scopes);
            stats.scopes_merged += raw - merged.len() as u64;
            timings.merge_nanos = vist_obs::elapsed_nanos(t).unwrap_or(0);
            drop(merge_span);
            let _span = vist_obs::Span::enter("docid");
            let t = vist_obs::now();
            let mut docs = BTreeSet::new();
            // Strategy choice: many scopes over a small posting set are
            // cheaper as one keyed sweep of the covering range than as one
            // tree descent per scope. The sweep visits exactly the same
            // postings the jumps would, so the id set is identical.
            let totals = if opts.plan { source.totals() } else { None };
            let sweep = merged.len() >= SWEEP_MIN_RANGES
                && totals.is_some_and(|t| {
                    t.postings <= (merged.len() as u64).saturating_mul(SWEEP_FACTOR)
                });
            let strategy = if sweep {
                stats.planner_docid_sweeps += 1;
                stats.docid_scans += 1;
                let lo = merged.first().map_or(0, |m| m.0);
                let hi = merged.last().map_or(0, |m| m.1);
                let mut at = 0usize;
                source.docids_in_range_keyed(lo, hi, &mut |n, doc| {
                    // `merged` is sorted and disjoint and `n` arrives
                    // ascending, so a single cursor suffices.
                    while at < merged.len() && n >= merged[at].1 {
                        at += 1;
                    }
                    if at < merged.len() && n >= merged[at].0 {
                        docs.insert(doc);
                    }
                })?;
                DocIdStrategy::Sweep {
                    ranges: merged.len() as u64,
                    postings: totals.map_or(0, |t| t.postings),
                }
            } else {
                for &(lo, hi) in &merged {
                    if expired(opts.deadline) {
                        return Err(crate::error::Error::DeadlineExceeded);
                    }
                    // "Perform a range query [n, n+size) on the DocId
                    // B+Tree."
                    stats.docid_scans += 1;
                    source.docids_in_range(lo, hi, &mut |doc| {
                        docs.insert(doc);
                    })?;
                }
                DocIdStrategy::Jump {
                    ranges: merged.len() as u64,
                }
            };
            timings.docid_nanos = vist_obs::elapsed_nanos(t).unwrap_or(0);
            Ok(SearchOutcome {
                docs,
                scopes: merged,
                stats,
                timings,
                plan: track.then_some(PlanReport {
                    seqs: plans,
                    docid_strategy: strategy,
                }),
            })
        }
    }
}

/// The `limit` path: serial, resolving completed scopes eagerly so the
/// run stops as soon as `limit` distinct documents are in hand. The result
/// is a subset of the unlimited answer of size `min(limit, total)`.
#[allow(clippy::too_many_arguments)]
fn run_limited(
    source: &dyn SearchSource,
    ctxs: &[SeqCtx<'_>],
    mut plans: Vec<SeqPlan>,
    seeds: Vec<Frame>,
    pre_scopes: Vec<(u128, u128)>,
    mut stats: QueryStats,
    mut timings: StageTimings,
    opts: &SearchOptions,
    limit: usize,
) -> Result<SearchOutcome> {
    let match_span = vist_obs::Span::enter("match");
    let match_start = vist_obs::now();
    let mut out = WorkerOut::new(opts.plan, opts.collect_plan);
    let mut docs: BTreeSet<DocId> = BTreeSet::new();
    let mut queried: Vec<(u128, u128)> = Vec::new();
    let mut sched = opts.schedule_seed;
    let mut stack = seeds;
    stack.reverse();
    let mut pending = pre_scopes;
    loop {
        for (lo, hi) in pending.drain(..) {
            if docs.len() >= limit {
                break;
            }
            if expired(opts.deadline) {
                return Err(crate::error::Error::DeadlineExceeded);
            }
            stats.docid_scans += 1;
            queried.push((lo, hi));
            source.docids_in_range(lo, hi, &mut |doc| {
                docs.insert(doc);
            })?;
        }
        if docs.len() >= limit || stack.is_empty() {
            break;
        }
        let frame = match &mut sched {
            None => stack.pop().expect("non-empty stack"),
            Some(rng) => {
                let i = (pool::splitmix64(rng) % stack.len() as u64) as usize;
                stack.swap_remove(i)
            }
        };
        if expired(opts.deadline) {
            return Err(crate::error::Error::DeadlineExceeded);
        }
        out.stats.work_items += 1;
        expand(source, ctxs, &frame, &mut stack, &mut out)?;
        pending.append(&mut out.scopes);
    }
    // The last resolved scope can overshoot; keep the smallest ids so the
    // truncation is deterministic for a fixed expansion order.
    while docs.len() > limit {
        let last = *docs.iter().next_back().expect("non-empty set");
        docs.remove(&last);
    }
    stats.merge(&out.stats);
    absorb_steps(&mut plans, &out);
    timings.match_nanos = vist_obs::elapsed_nanos(match_start).unwrap_or(0);
    drop(match_span);
    let ranges = queried.len() as u64;
    Ok(SearchOutcome {
        docs,
        scopes: queried,
        stats,
        timings,
        plan: opts.collect_plan.then_some(PlanReport {
            seqs: plans,
            docid_strategy: DocIdStrategy::Jump { ranges },
        }),
    })
}

/// Build one sequence's plan: resolve estimates for every element and
/// decide whether the sequence can be short-circuited. Wildcard elements
/// are probed against their **static** pattern prefix, which covers every
/// runtime instantiation (any concrete prefix a frame can build from its
/// parent bindings matches the pattern), so an empty probe proves the
/// sequence dead.
fn plan_sequence(
    source: &dyn SearchSource,
    ctx: &SeqCtx<'_>,
    index: usize,
    stats: &mut QueryStats,
) -> Result<SeqPlan> {
    let mut steps: Vec<StepPlan> = Vec::with_capacity(ctx.seq.elems.len());
    let mut pruned: Option<PruneReason> = None;
    let mut est_cost = 0u64;
    for (qi, qe) in ctx.seq.elems.iter().enumerate() {
        let mut sp = StepPlan {
            qi,
            ..StepPlan::default()
        };
        match &ctx.concrete[qi] {
            Some(Some((_, dkid))) => {
                sp.est_candidates = 1;
                sp.est_nodes = est_nodes(source, *dkid);
            }
            Some(None) => {
                if pruned.is_none() {
                    pruned = Some(PruneReason::EmptyConcrete { qi });
                }
            }
            None => {
                sp.wildcard = true;
                stats.planner_probes += 1;
                match dkey::query_for(qe.sym, &qe.prefix) {
                    dkey::DKeyQuery::Exact(key) => {
                        if let Some(id) = source.dkey_get(&key)? {
                            sp.est_candidates = 1;
                            sp.est_nodes = est_nodes(source, id);
                        }
                    }
                    dkey::DKeyQuery::Range { lo, hi, pattern } => {
                        let mut cands = 0u64;
                        let mut nodes = 0u64;
                        let mut scanned = 0u64;
                        source.dkey_scan_range(&lo, &hi, &mut |key, id| {
                            scanned += 1;
                            if scanned > PLAN_PROBE_CAP {
                                return;
                            }
                            let (_, prefix_syms) = dkey::decode(key);
                            if pattern.matches(&prefix_syms) {
                                cands += 1;
                                nodes = nodes.saturating_add(est_nodes(source, id));
                            }
                        })?;
                        if scanned > PLAN_PROBE_CAP {
                            // Capped probe: treat the estimate as a floor
                            // and never prune on it.
                            cands = cands.max(1);
                            nodes = nodes.max(scanned);
                        }
                        sp.est_candidates = cands;
                        sp.est_nodes = nodes;
                    }
                }
                if sp.est_candidates == 0 && pruned.is_none() {
                    pruned = Some(PruneReason::EmptyWildcard { qi });
                }
            }
        }
        est_cost = est_cost.saturating_add(sp.est_nodes);
        steps.push(sp);
    }
    if pruned.is_some() {
        stats.planner_seqs_pruned += 1;
    }
    Ok(SeqPlan {
        index,
        rank: usize::MAX,
        pruned,
        est_cost,
        steps,
    })
}

/// The no-planning stand-in for [`plan_sequence`]: no probes, no pruning,
/// input order. Step rows exist only when a plan report was requested, so
/// actual counters still have somewhere to land.
fn skeleton_plan(ctx: &SeqCtx<'_>, index: usize, with_steps: bool) -> SeqPlan {
    let steps = if with_steps {
        ctx.seq
            .elems
            .iter()
            .enumerate()
            .map(|(qi, qe)| StepPlan {
                qi,
                wildcard: qe.prefix.has_wildcard(),
                ..StepPlan::default()
            })
            .collect()
    } else {
        Vec::new()
    };
    SeqPlan {
        index,
        rank: index,
        pruned: None,
        est_cost: 0,
        steps,
    }
}

/// Fold one worker's per-step actual counters into the plan rows.
fn absorb_steps(plans: &mut [SeqPlan], out: &WorkerOut) {
    for (&(seq, qi), &(frames, nodes)) in &out.steps {
        if let Some(sp) = plans
            .get_mut(seq as usize)
            .and_then(|p| p.steps.get_mut(qi as usize))
        {
            sp.actual_frames += frames;
            sp.actual_nodes += nodes;
        }
    }
}

/// Sort and merge overlapping or adjacent half-open intervals. The union of
/// covered labels is preserved exactly, so querying the DocId tree once per
/// merged interval returns the same id set as once per raw scope.
fn coalesce(mut scopes: Vec<(u128, u128)>) -> Vec<(u128, u128)> {
    scopes.sort_unstable();
    let mut merged: Vec<(u128, u128)> = Vec::with_capacity(scopes.len());
    for (lo, hi) in scopes {
        match merged.last_mut() {
            Some((_, end)) if lo <= *end => *end = (*end).max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

/// One partial match: element `qi` of sequence `seq` must next match a node
/// labeled strictly inside `(lo, hi)`, under the wildcard bindings `binds`.
/// `qi == len` marks a completed match whose final scope is `[lo, hi)`.
#[derive(Debug, Clone)]
struct Frame {
    seq: u32,
    qi: u32,
    lo: u128,
    hi: u128,
    binds: Option<Arc<BindNode>>,
}

/// Persistent (shared-tail) list of wildcard bindings: element `elem`
/// matched D-Ancestor entry `dkid`, instantiating its concrete root-to-self
/// `path`. Child frames extend the chain without copying it.
#[derive(Debug)]
struct BindNode {
    elem: u32,
    dkid: u64,
    /// Instantiated concrete path *including* the element's own tag symbol
    /// (what descendants splice in front of their placeholder steps).
    path: Vec<Symbol>,
    prev: Option<Arc<BindNode>>,
}

fn find_bind(binds: &Option<Arc<BindNode>>, elem: u32) -> Option<&BindNode> {
    let mut cur = binds.as_ref();
    while let Some(node) = cur {
        if node.elem == elem {
            return Some(node);
        }
        cur = node.prev.as_ref();
    }
    None
}

/// Cached D-Ancestor resolution for a concrete-prefix element: `None` =
/// key absent; `Some((prefix, dkey-id))` = present.
type ConcreteLookup = Option<(Vec<Symbol>, u64)>;

/// A wildcarded child element whose D-Ancestor key becomes fully concrete
/// once its parent's binding is known: all steps between parent and child
/// are tags. Probing that single key refutes whole subtrees.
struct ChildProbe {
    /// The child element's symbol.
    sym: Sym,
    /// Concrete tag steps between the parent element and the child.
    steps: Vec<Symbol>,
}

/// Per-sequence immutable context, shared read-only by all workers.
struct SeqCtx<'a> {
    seq: &'a QuerySequence,
    /// For elements whose *pattern* prefix is fully concrete, the
    /// D-Ancestor lookup is independent of the bindings; resolved once per
    /// query. `None` for wildcarded prefixes (resolved per frame).
    concrete: Vec<Option<ConcreteLookup>>,
    /// `bind[qi]`: some later wildcarded element rebuilds its lookup prefix
    /// from `qi`'s instantiated path, so matches at `qi` must be recorded
    /// in the binding chain. (Fully concrete sequences bind nothing.)
    bind: Vec<bool>,
    /// `sig[qi]`: the positions `< qi` whose bindings any element `> qi`
    /// still consults — the part of the binding chain that can influence
    /// the subtree below a match at `qi`. Used as the dedup signature.
    sig: Vec<Vec<u32>>,
    /// `probe_children[qi]`: wildcarded children of `qi` reachable by
    /// concrete steps — the planner's look-ahead prune targets.
    probe_children: Vec<Vec<ChildProbe>>,
    /// Dedup is only worthwhile (and the visited sets only populated) when
    /// some prefix carries a wildcard: concrete-only sequences cannot reach
    /// one sub-problem twice.
    dedup: bool,
}

impl<'a> SeqCtx<'a> {
    fn build(
        source: &dyn SearchSource,
        seq: &'a QuerySequence,
        stats: &mut QueryStats,
    ) -> Result<Self> {
        let n = seq.elems.len();
        let mut concrete: Vec<Option<ConcreteLookup>> = Vec::with_capacity(n);
        for qe in &seq.elems {
            if qe.prefix.has_wildcard() {
                concrete.push(None);
            } else {
                stats.dancestor_gets += 1;
                let syms = qe.prefix.as_concrete().expect("concrete prefix");
                let key = dkey::encode(qe.sym, &syms);
                concrete.push(Some(source.dkey_get(&key)?.map(|id| (syms, id))));
            }
        }
        let mut bind = vec![false; n];
        let mut probe_children: Vec<Vec<ChildProbe>> = (0..n).map(|_| Vec::new()).collect();
        for qe in &seq.elems {
            if qe.prefix.has_wildcard() {
                if let Some(p) = qe.parent {
                    bind[p] = true;
                    let tags: Option<Vec<Symbol>> = qe
                        .steps_after_parent
                        .iter()
                        .map(|s| match s {
                            PathSym::Tag(t) => Some(*t),
                            _ => None,
                        })
                        .collect();
                    if let Some(steps) = tags {
                        probe_children[p].push(ChildProbe { sym: qe.sym, steps });
                    }
                }
            }
        }
        let mut sig: Vec<Vec<u32>> = Vec::with_capacity(n);
        for qi in 0..n {
            let mut ps: Vec<u32> = seq
                .elems
                .iter()
                .enumerate()
                .skip(qi + 1)
                .filter(|(_, e)| e.prefix.has_wildcard())
                .filter_map(|(_, e)| e.parent)
                .filter(|&p| p < qi)
                .map(|p| p as u32)
                .collect();
            ps.sort_unstable();
            ps.dedup();
            sig.push(ps);
        }
        let dedup = seq.elems.iter().any(|e| e.prefix.has_wildcard());
        Ok(SeqCtx {
            seq,
            concrete,
            bind,
            sig,
            probe_children,
            dedup,
        })
    }
}

/// Per-worker mutable state; merged after the run.
#[derive(Default)]
struct WorkerOut {
    /// Planner transforms enabled (candidate ordering, child probes).
    plan: bool,
    /// Collect per-step actual counters into `steps`.
    track: bool,
    stats: QueryStats,
    /// Final matched scopes.
    scopes: Vec<(u128, u128)>,
    /// Sub-problems already expanded: `(seq, qi, dkid, lo, hi, binding
    /// signature)` — a repeat re-scans the same S-Ancestor window and
    /// re-derives the same subtree, so it is skipped.
    descended: HashSet<(u32, u32, u64, u128, u128, Vec<u64>)>,
    /// Nodes already pushed as child frames: `(seq, next qi, dkid, n,
    /// binding signature)` — catches *overlapping* scope windows that both
    /// contain the same node.
    visited: HashSet<(u32, u32, u64, u128, Vec<u64>)>,
    /// Memoized child-probe D-Ancestor lookups (key present?).
    probed: HashMap<Vec<u8>, bool>,
    /// Per-`(seq, qi)` actual `(frames, nodes)` counts (`track` only).
    steps: HashMap<(u32, u32), (u64, u64)>,
    /// Wall time this worker spent expanding frames (zero when timing is
    /// off); grafted onto the `match` span as a `workers` node.
    busy_nanos: u64,
    /// Wall time this worker spent waiting on the shared queue.
    idle_nanos: u64,
}

impl WorkerOut {
    fn new(plan: bool, track: bool) -> Self {
        WorkerOut {
            plan,
            track,
            ..WorkerOut::default()
        }
    }
}

/// Rebuild the lookup prefix for a wildcarded element from its parent's
/// instantiated concrete path plus the placeholder steps between them.
fn lookup_prefix(qe: &QueryElem, binds: &Option<Arc<BindNode>>) -> Prefix {
    let mut steps: Vec<PathSym> = match qe.parent {
        Some(p) => {
            // Invariant: a wildcarded element's parent is a bind target
            // (see `SeqCtx::bind`), so it is always on the chain.
            let node = find_bind(binds, p as u32).expect("parent binding on chain");
            node.path.iter().map(|&s| PathSym::Tag(s)).collect()
        }
        None => Vec::new(),
    };
    steps.extend_from_slice(&qe.steps_after_parent);
    Prefix(steps)
}

/// The binding signature at `qi`: the dkids bound at the still-relevant
/// earlier positions. Two frames agreeing on `(seq, qi, dkid, scope)` and
/// this signature derive identical subtrees — a dkid determines its
/// `(symbol, prefix)` pair, hence the instantiated path later lookups use.
fn bind_sig(positions: &[u32], binds: &Option<Arc<BindNode>>) -> Vec<u64> {
    positions
        .iter()
        .map(|&p| find_bind(binds, p).expect("relevant binding on chain").dkid)
        .collect()
}

/// Expand one frame: resolve the D-Ancestor candidates for its element and
/// push one child frame per S-Ancestor hit onto `push`. Completed matches
/// land in `out.scopes`.
fn expand(
    source: &dyn SearchSource,
    ctxs: &[SeqCtx<'_>],
    frame: &Frame,
    push: &mut Vec<Frame>,
    out: &mut WorkerOut,
) -> Result<()> {
    let sc = &ctxs[frame.seq as usize];
    let qi = frame.qi as usize;
    if qi == sc.seq.elems.len() {
        out.scopes.push((frame.lo, frame.hi));
        return Ok(());
    }
    if out.track {
        out.steps.entry((frame.seq, frame.qi)).or_insert((0, 0)).0 += 1;
    }
    match &sc.concrete[qi] {
        // Concrete prefix, present in the data: one candidate, pre-resolved.
        Some(Some((prefix_syms, dkid))) => {
            descend(source, sc, frame, prefix_syms, *dkid, push, out)?;
        }
        // Concrete prefix, absent: dead branch.
        Some(None) => {}
        // Wildcarded prefix: rebuild the lookup pattern from the parent's
        // instantiated path, then exact-get or range-scan the D-Ancestor
        // tree.
        None => {
            let qe = &sc.seq.elems[qi];
            let pattern = lookup_prefix(qe, &frame.binds);
            match dkey::query_for(qe.sym, &pattern) {
                dkey::DKeyQuery::Exact(key) => {
                    let _span = vist_obs::Span::enter("dancestor_get");
                    out.stats.dancestor_gets += 1;
                    if let Some(id) = source.dkey_get(&key)? {
                        let (_, prefix_syms) = dkey::decode(&key);
                        descend(source, sc, frame, &prefix_syms, id, push, out)?;
                    }
                }
                dkey::DKeyQuery::Range { lo, hi, pattern } => {
                    out.stats.dancestor_scans += 1;
                    let mut candidates: Vec<(Vec<Symbol>, u64)> = Vec::new();
                    {
                        let _span = vist_obs::Span::enter("dancestor_scan");
                        source.dkey_scan_range(&lo, &hi, &mut |key, id| {
                            let (_, prefix_syms) = dkey::decode(key);
                            if pattern.matches(&prefix_syms) {
                                candidates.push((prefix_syms, id));
                            }
                        })?;
                    }
                    if out.plan && candidates.len() > 1 {
                        // Most-selective-first: cheap candidates emit their
                        // subtrees (and their prunes) before expensive
                        // ones. Stable, so ties keep key order.
                        candidates
                            .sort_by_cached_key(|c: &(Vec<Symbol>, u64)| est_nodes(source, c.1));
                    }
                    for (prefix_syms, id) in &candidates {
                        descend(source, sc, frame, prefix_syms, *id, push, out)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Range-query the S-Ancestor entries of one matched D-Ancestor key inside
/// the frame's scope, binding and pushing a child frame per hit.
fn descend(
    source: &dyn SearchSource,
    sc: &SeqCtx<'_>,
    frame: &Frame,
    prefix_syms: &[Symbol],
    dkid: u64,
    push: &mut Vec<Frame>,
    out: &mut WorkerOut,
) -> Result<()> {
    out.stats.dkeys_matched += 1;
    let qi = frame.qi;
    let qe = &sc.seq.elems[qi as usize];
    let sig = sc
        .dedup
        .then(|| bind_sig(&sc.sig[qi as usize], &frame.binds));
    if let Some(s) = &sig {
        // Identical sub-problem (same dkey, same scope window, same
        // relevant bindings) already expanded: same subtree, skip.
        if !out
            .descended
            .insert((frame.seq, qi, dkid, frame.lo, frame.hi, s.clone()))
        {
            out.stats.dedup_skips += 1;
            return Ok(());
        }
    }
    if out.plan && !sc.probe_children[qi as usize].is_empty() {
        // Look-ahead prune: under this binding each wildcarded child
        // reachable by concrete steps has exactly one possible D-Ancestor
        // key; every element of the sequence must eventually match, so one
        // absent key proves the whole subtree dead before we pay for the
        // S-Ancestor scan.
        let mut path = prefix_syms.to_vec();
        if let Sym::Tag(t) = qe.sym {
            path.push(t);
        }
        for probe in &sc.probe_children[qi as usize] {
            let mut p = path.clone();
            p.extend_from_slice(&probe.steps);
            let key = dkey::encode(probe.sym, &p);
            let present = match out.probed.get(&key) {
                Some(&b) => b,
                None => {
                    out.stats.planner_probes += 1;
                    let b = source.dkey_get(&key)?.is_some();
                    out.probed.insert(key, b);
                    b
                }
            };
            if !present {
                out.stats.planner_probe_prunes += 1;
                return Ok(());
            }
        }
    }
    out.stats.sancestor_scans += 1;
    // Bind this element's instantiated path for descendant lookups — only
    // when some later wildcarded element will actually consult it.
    let child_binds = if sc.bind[qi as usize] {
        let mut path = prefix_syms.to_vec();
        if let Sym::Tag(t) = qe.sym {
            path.push(t);
        }
        Some(Arc::new(BindNode {
            elem: qi,
            dkid,
            path,
            prev: frame.binds.clone(),
        }))
    } else {
        frame.binds.clone()
    };
    let track = out.track;
    let stats = &mut out.stats;
    let visited = &mut out.visited;
    let steps = &mut out.steps;
    let seq = frame.seq;
    let _span = vist_obs::Span::enter("sancestor_scan");
    source.nodes_in_scope(dkid, frame.lo, frame.hi, &mut |node| {
        stats.nodes_visited += 1;
        if track {
            steps.entry((seq, qi)).or_insert((0, 0)).1 += 1;
        }
        if let Some(s) = &sig {
            if !visited.insert((seq, qi + 1, dkid, node.n, s.clone())) {
                stats.dedup_skips += 1;
                return;
            }
        }
        push.push(Frame {
            seq,
            qi: qi + 1,
            lo: node.n,
            hi: node.end(),
            binds: child_binds.clone(),
        });
    })?;
    Ok(())
}
