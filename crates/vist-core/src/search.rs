//! Algorithm 2: non-contiguous subsequence matching using B+Trees,
//! formulated as an explicit **work-list of match frames**.
//!
//! Shared by [`crate::VistIndex`] and [`crate::RistIndex`] — "ViST uses the
//! same sequence matching algorithm as RIST".
//!
//! For each query element the D-Ancestor tree is consulted (an exact get for
//! concrete prefixes, a range query for `*`/`//` prefixes), and within each
//! matching D-Ancestor entry the S-Ancestor tree is range-queried for labels
//! strictly inside the previous match's scope — the "jump" that eliminates
//! suffix-tree traversal. When the last element matches, the DocId tree is
//! range-queried over the final node's scope.
//!
//! # Work-list formulation
//!
//! Where the paper (and our previous implementation) phrases the search as
//! recursion — `step` over query elements, `descend` over S-Ancestor hits —
//! this module reifies every partial match as a [`Frame`]: *"element `qi`
//! of sequence `seq` must next match inside scope `(lo, hi)`, given these
//! wildcard bindings"*. Expanding a frame performs the D-Ancestor lookup
//! and one S-Ancestor range query per candidate, pushing one child frame
//! per hit. Frames are independent, which buys three things:
//!
//! 1. **Parallelism** — frames are unit of work for the scoped worker pool
//!    in [`crate::pool`]: alternative sequences from `translate()` and
//!    independent D-Ancestor candidate branches run on different workers.
//! 2. **Dedup** — distinct wildcard expansions that converge on the same
//!    `(dkey, scope)` sub-problem are detected by a visited set and
//!    expanded once instead of re-scanning the same subtree.
//! 3. **Batched DocId resolution** — final scopes accumulate and are
//!    interval-merged before the DocId tree is consulted, so overlapping
//!    `[n, n+size)` scopes from different branches cost one range query
//!    instead of many.
//!
//! The inner loop is allocation-light: B+Tree probes stream through the
//! `*_with` cursor APIs of [`Store`] (no per-probe `Vec`), and bindings are
//! shared between frames through a persistent [`BindNode`] chain.

use std::collections::{BTreeSet, HashSet};
use std::sync::{Arc, Mutex};

use vist_query::{QueryElem, QuerySequence};
use vist_seq::{dkey, PathSym, Prefix, Sym, Symbol};

use crate::error::Result;
use crate::pool;
use crate::store::{DocId, NodeState, Store};

/// The B+Tree probe surface Algorithm 2 needs, abstracted over where the
/// trees live: the mutable delta ([`Store`]) or an immutable packed
/// segment. Every source is a self-contained label space (each segment is
/// bulk-labeled independently), so the tiered index runs the match once
/// per source and unions document ids — scopes from different sources are
/// never compared.
///
/// Callbacks are `&mut dyn FnMut` so the trait stays object-safe; the
/// same page-latch rule as the [`Store`] `*_with` cursors applies (the
/// callback must not touch the buffer pool).
pub trait SearchSource: Sync {
    /// Exact D-Ancestor lookup: the id of `dkey`, if present.
    fn dkey_get(&self, dkey: &[u8]) -> Result<Option<u64>>;

    /// Scan D-Ancestor keys in `[lo, hi)`, invoking `f(dkey, id)` in key
    /// order.
    fn dkey_scan_range(&self, lo: &[u8], hi: &[u8], f: &mut dyn FnMut(&[u8], u64)) -> Result<()>;

    /// S-Ancestor nodes of `dkey_id` labeled strictly inside `(lo, hi)`,
    /// in label order.
    fn nodes_in_scope(
        &self,
        dkey_id: u64,
        lo: u128,
        hi: u128,
        f: &mut dyn FnMut(NodeState),
    ) -> Result<()>;

    /// Document ids attached to labels in `[lo, hi)`, in label order.
    fn docids_in_range(&self, lo: u128, hi: u128, f: &mut dyn FnMut(DocId)) -> Result<()>;
}

impl SearchSource for Store {
    fn dkey_get(&self, dkey: &[u8]) -> Result<Option<u64>> {
        Store::dkey_get(self, dkey)
    }

    fn dkey_scan_range(&self, lo: &[u8], hi: &[u8], f: &mut dyn FnMut(&[u8], u64)) -> Result<()> {
        self.dkey_scan_with(lo, hi, f)
    }

    fn nodes_in_scope(
        &self,
        dkey_id: u64,
        lo: u128,
        hi: u128,
        f: &mut dyn FnMut(NodeState),
    ) -> Result<()> {
        self.nodes_in_scope_with(dkey_id, lo, hi, f)
    }

    fn docids_in_range(&self, lo: u128, hi: u128, f: &mut dyn FnMut(DocId)) -> Result<()> {
        self.docids_in_range_with(lo, hi, f)
    }
}

/// Instrumentation counters for one search.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// Exact D-Ancestor lookups performed.
    pub dancestor_gets: u64,
    /// D-Ancestor range scans performed (wildcard prefixes).
    pub dancestor_scans: u64,
    /// D-Ancestor entries that matched some query element.
    pub dkeys_matched: u64,
    /// S-Ancestor range queries performed.
    pub sancestor_scans: u64,
    /// Virtual suffix tree nodes visited (partial matches explored).
    pub nodes_visited: u64,
    /// DocId range queries performed.
    pub docid_scans: u64,
    /// Match frames expanded by the work-list engine.
    pub work_items: u64,
    /// Frames executed after being donated through the shared queue —
    /// work transferred between workers.
    pub steals: u64,
    /// Final scopes coalesced away by interval merging before DocId
    /// resolution (raw matched scopes minus DocId range queries issued).
    pub scopes_merged: u64,
    /// Duplicate sub-problems skipped by the visited set (identical
    /// `(dkey, scope)` reached via different wildcard expansions).
    pub dedup_skips: u64,
}

impl QueryStats {
    /// Accumulate another search's counters into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.dancestor_gets += other.dancestor_gets;
        self.dancestor_scans += other.dancestor_scans;
        self.dkeys_matched += other.dkeys_matched;
        self.sancestor_scans += other.sancestor_scans;
        self.nodes_visited += other.nodes_visited;
        self.docid_scans += other.docid_scans;
        self.work_items += other.work_items;
        self.steals += other.steals;
        self.scopes_merged += other.scopes_merged;
        self.dedup_skips += other.dedup_skips;
    }
}

/// Per-stage wall-clock breakdown of one query, in nanoseconds. All
/// zeros when `vist-obs` timing is disabled. Kept separate from
/// [`QueryStats`] so the deterministic counters stay comparable with
/// `==` in tests while timings vary run to run.
#[derive(Debug, Default, Clone, Copy)]
pub struct StageTimings {
    /// Query parse + translation to structure-encoded sequences
    /// (recorded by the index, zero for direct `search_sequences` calls).
    pub translate_nanos: u64,
    /// Per-sequence context build: the up-front D-Ancestor probes for
    /// concrete prefixes.
    pub plan_nanos: u64,
    /// The work-list match loop (D-Ancestor candidates + S-Ancestor
    /// range scans), across all workers, in wall-clock time.
    pub match_nanos: u64,
    /// Final-scope sort/dedup/interval-merge.
    pub merge_nanos: u64,
    /// DocId range queries over the merged scopes.
    pub docid_nanos: u64,
    /// Match verification against stored documents (recorded by the
    /// index when `QueryOptions::verify` is on).
    pub verify_nanos: u64,
    /// Whole-query wall time (recorded by the index; covers the stages
    /// above plus residual bookkeeping).
    pub total_nanos: u64,
}

impl StageTimings {
    /// The stages as `(name, nanos)` pairs in execution order, for slow-query
    /// log entries and profiling tables. Excludes `total_nanos`.
    #[must_use]
    pub fn stages(&self) -> [(&'static str, u64); 6] {
        [
            ("translate", self.translate_nanos),
            ("plan", self.plan_nanos),
            ("match", self.match_nanos),
            ("merge", self.merge_nanos),
            ("docid", self.docid_nanos),
            ("verify", self.verify_nanos),
        ]
    }

    /// Sum of the individual stages (excluding `total_nanos`).
    #[must_use]
    pub fn stage_sum(&self) -> u64 {
        self.stages().iter().map(|(_, n)| n).sum()
    }
}

/// What [`search_sequences`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Resolve matches to document ids via (merged) DocId range queries.
    Docs,
    /// Collect the final matched scopes `[n, n+size)` without touching the
    /// DocId tree (the paper's measured quantity for Figure 10, which
    /// excludes "the time spent in data output after each range query on
    /// the DocId B+Tree").
    Scopes,
}

/// Result of one [`search_sequences`] run.
#[derive(Debug, Default)]
pub struct SearchOutcome {
    /// Matching document ids ([`SearchMode::Docs`] only).
    pub docs: BTreeSet<DocId>,
    /// In [`SearchMode::Scopes`]: the distinct final matched scopes,
    /// ascending. In [`SearchMode::Docs`]: the merged intervals the DocId
    /// tree was queried with.
    pub scopes: Vec<(u128, u128)>,
    /// Search instrumentation, merged across workers.
    pub stats: QueryStats,
    /// Wall-clock stage breakdown (zeros when timing is disabled).
    pub timings: StageTimings,
}

/// Run Algorithm 2 over every alternative sequence of one query, unioning
/// results, on `workers` threads (`<= 1` runs inline on the caller).
///
/// A sequence with no elements (an all-wildcard query such as `/*`)
/// contributes the whole label space — every document matches.
///
/// Callers must hold whatever latch protects the store from page frees for
/// the duration of the call (queries hold the maintenance latch shared);
/// the engine itself acquires no index locks.
pub fn search_sequences(
    source: &dyn SearchSource,
    seqs: &[QuerySequence],
    workers: usize,
    mode: SearchMode,
) -> Result<SearchOutcome> {
    search_sequences_with(source, seqs, workers, mode, None)
}

/// [`search_sequences`] with an explicit frame-scheduling seed.
///
/// `schedule_seed: Some(s)` replaces the engine's default expansion order
/// (depth-first serial, FIFO shared queue) with a seeded pseudo-random pick
/// among the pending frames — the `vist-sim` harness's scheduler hook.
/// Answers are sets, so **every** seed must return exactly the same result;
/// the simulation uses differing seeds to hunt for order-dependent bugs in
/// work distribution, dedup, and scope merging.
pub fn search_sequences_with(
    source: &dyn SearchSource,
    seqs: &[QuerySequence],
    workers: usize,
    mode: SearchMode,
    schedule_seed: Option<u64>,
) -> Result<SearchOutcome> {
    let mut stats = QueryStats::default();
    let mut timings = StageTimings::default();
    let mut scopes: Vec<(u128, u128)> = Vec::new();
    let mut ctxs: Vec<SeqCtx<'_>> = Vec::with_capacity(seqs.len());
    {
        let _span = vist_obs::Span::enter("plan");
        let t = vist_obs::now();
        for qs in seqs {
            if qs.elems.is_empty() {
                scopes.push((0, vist_seq::MAX_SCOPE));
            }
            ctxs.push(SeqCtx::build(source, qs, &mut stats)?);
        }
        timings.plan_nanos = vist_obs::elapsed_nanos(t).unwrap_or(0);
    }
    let seeds: Vec<Frame> = seqs
        .iter()
        .enumerate()
        .filter(|(_, qs)| !qs.elems.is_empty())
        .map(|(i, _)| Frame {
            // The virtual root covers the whole label space; its own label 0
            // is excluded from descendant ranges by the strict lower bound.
            seq: i as u32,
            qi: 0,
            lo: 0,
            hi: vist_seq::MAX_SCOPE,
            binds: None,
        })
        .collect();

    let workers = workers.max(1);
    let match_span = vist_obs::Span::enter("match");
    let match_start = vist_obs::now();
    if workers == 1 || seeds.len() + 1 < 2 {
        // Inline serial path: a plain explicit stack, no threads. With a
        // schedule seed the next frame is a seeded pick instead of the
        // depth-first top of stack (see `search_sequences_with`).
        let mut out = WorkerOut::default();
        let mut sched = schedule_seed;
        let mut stack = seeds;
        loop {
            let frame = match &mut sched {
                _ if stack.is_empty() => None,
                None => stack.pop(),
                Some(rng) => {
                    let i = (pool::splitmix64(rng) % stack.len() as u64) as usize;
                    Some(stack.swap_remove(i))
                }
            };
            let Some(frame) = frame else { break };
            out.stats.work_items += 1;
            expand(source, &ctxs, &frame, &mut stack, &mut out)?;
        }
        stats.merge(&out.stats);
        scopes.append(&mut out.scopes);
    } else {
        let outs: Vec<Mutex<WorkerOut>> = (0..workers)
            .map(|_| Mutex::new(WorkerOut::default()))
            .collect();
        let first_err: Mutex<Option<crate::error::Error>> = Mutex::new(None);
        let policy = match schedule_seed {
            None => pool::SchedPolicy::Fifo,
            Some(s) => pool::SchedPolicy::Seeded(s),
        };
        pool::run_workers_with(workers, seeds, policy, |id, queue| {
            let worker_start = vist_obs::now();
            let mut busy_nanos = 0u64;
            let mut out = outs[id].lock().unwrap_or_else(|e| e.into_inner());
            let mut local: Vec<Frame> = Vec::new();
            while let Some((frame, donated)) = queue.take() {
                let batch_start = vist_obs::now();
                if donated {
                    out.stats.steals += 1;
                }
                local.push(frame);
                while let Some(frame) = local.pop() {
                    out.stats.work_items += 1;
                    if let Err(e) = expand(source, &ctxs, &frame, &mut local, &mut out) {
                        let mut slot = first_err.lock().unwrap_or_else(|e| e.into_inner());
                        slot.get_or_insert(e);
                        drop(slot);
                        queue.stop();
                        local.clear();
                        break;
                    }
                    // Donate the shallow half of the stack (largest
                    // subtrees) when another worker is starving.
                    if local.len() > 1 && queue.is_hungry() {
                        let half = local.len() / 2;
                        queue.donate(local.drain(..half));
                    }
                }
                busy_nanos += vist_obs::elapsed_nanos(batch_start).unwrap_or(0);
                queue.finish_one();
            }
            if let Some(wall) = vist_obs::elapsed_nanos(worker_start) {
                vist_obs::histogram!("vist_core_worker_busy_nanos").record(busy_nanos);
                vist_obs::histogram!("vist_core_worker_idle_nanos")
                    .record(wall.saturating_sub(busy_nanos));
            }
        });
        if let Some(e) = first_err.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(e);
        }
        for out in outs {
            let mut out = out.into_inner().unwrap_or_else(|e| e.into_inner());
            stats.merge(&out.stats);
            scopes.append(&mut out.scopes);
        }
    }
    timings.match_nanos = vist_obs::elapsed_nanos(match_start).unwrap_or(0);
    drop(match_span);

    match mode {
        SearchMode::Scopes => {
            // Canonical form: matched scopes are a *set* (different
            // branches, sequences, or workers can reach the same final
            // node).
            let _span = vist_obs::Span::enter("merge");
            let t = vist_obs::now();
            scopes.sort_unstable();
            scopes.dedup();
            timings.merge_nanos = vist_obs::elapsed_nanos(t).unwrap_or(0);
            Ok(SearchOutcome {
                docs: BTreeSet::new(),
                scopes,
                stats,
                timings,
            })
        }
        SearchMode::Docs => {
            let merge_span = vist_obs::Span::enter("merge");
            let t = vist_obs::now();
            let raw = scopes.len() as u64;
            let merged = coalesce(scopes);
            stats.scopes_merged += raw - merged.len() as u64;
            timings.merge_nanos = vist_obs::elapsed_nanos(t).unwrap_or(0);
            drop(merge_span);
            let _span = vist_obs::Span::enter("docid");
            let t = vist_obs::now();
            let mut docs = BTreeSet::new();
            for &(lo, hi) in &merged {
                // "Perform a range query [n, n+size) on the DocId B+Tree."
                stats.docid_scans += 1;
                source.docids_in_range(lo, hi, &mut |doc| {
                    docs.insert(doc);
                })?;
            }
            timings.docid_nanos = vist_obs::elapsed_nanos(t).unwrap_or(0);
            Ok(SearchOutcome {
                docs,
                scopes: merged,
                stats,
                timings,
            })
        }
    }
}

/// Sort and merge overlapping or adjacent half-open intervals. The union of
/// covered labels is preserved exactly, so querying the DocId tree once per
/// merged interval returns the same id set as once per raw scope.
fn coalesce(mut scopes: Vec<(u128, u128)>) -> Vec<(u128, u128)> {
    scopes.sort_unstable();
    let mut merged: Vec<(u128, u128)> = Vec::with_capacity(scopes.len());
    for (lo, hi) in scopes {
        match merged.last_mut() {
            Some((_, end)) if lo <= *end => *end = (*end).max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

/// One partial match: element `qi` of sequence `seq` must next match a node
/// labeled strictly inside `(lo, hi)`, under the wildcard bindings `binds`.
/// `qi == len` marks a completed match whose final scope is `[lo, hi)`.
#[derive(Debug, Clone)]
struct Frame {
    seq: u32,
    qi: u32,
    lo: u128,
    hi: u128,
    binds: Option<Arc<BindNode>>,
}

/// Persistent (shared-tail) list of wildcard bindings: element `elem`
/// matched D-Ancestor entry `dkid`, instantiating its concrete root-to-self
/// `path`. Child frames extend the chain without copying it.
#[derive(Debug)]
struct BindNode {
    elem: u32,
    dkid: u64,
    /// Instantiated concrete path *including* the element's own tag symbol
    /// (what descendants splice in front of their placeholder steps).
    path: Vec<Symbol>,
    prev: Option<Arc<BindNode>>,
}

fn find_bind(binds: &Option<Arc<BindNode>>, elem: u32) -> Option<&BindNode> {
    let mut cur = binds.as_ref();
    while let Some(node) = cur {
        if node.elem == elem {
            return Some(node);
        }
        cur = node.prev.as_ref();
    }
    None
}

/// Cached D-Ancestor resolution for a concrete-prefix element: `None` =
/// key absent; `Some((prefix, dkey-id))` = present.
type ConcreteLookup = Option<(Vec<Symbol>, u64)>;

/// Per-sequence immutable context, shared read-only by all workers.
struct SeqCtx<'a> {
    seq: &'a QuerySequence,
    /// For elements whose *pattern* prefix is fully concrete, the
    /// D-Ancestor lookup is independent of the bindings; resolved once per
    /// query. `None` for wildcarded prefixes (resolved per frame).
    concrete: Vec<Option<ConcreteLookup>>,
    /// `bind[qi]`: some later wildcarded element rebuilds its lookup prefix
    /// from `qi`'s instantiated path, so matches at `qi` must be recorded
    /// in the binding chain. (Fully concrete sequences bind nothing.)
    bind: Vec<bool>,
    /// `sig[qi]`: the positions `< qi` whose bindings any element `> qi`
    /// still consults — the part of the binding chain that can influence
    /// the subtree below a match at `qi`. Used as the dedup signature.
    sig: Vec<Vec<u32>>,
    /// Dedup is only worthwhile (and the visited sets only populated) when
    /// some prefix carries a wildcard: concrete-only sequences cannot reach
    /// one sub-problem twice.
    dedup: bool,
}

impl<'a> SeqCtx<'a> {
    fn build(
        source: &dyn SearchSource,
        seq: &'a QuerySequence,
        stats: &mut QueryStats,
    ) -> Result<Self> {
        let n = seq.elems.len();
        let mut concrete: Vec<Option<ConcreteLookup>> = Vec::with_capacity(n);
        for qe in &seq.elems {
            if qe.prefix.has_wildcard() {
                concrete.push(None);
            } else {
                stats.dancestor_gets += 1;
                let syms = qe.prefix.as_concrete().expect("concrete prefix");
                let key = dkey::encode(qe.sym, &syms);
                concrete.push(Some(source.dkey_get(&key)?.map(|id| (syms, id))));
            }
        }
        let mut bind = vec![false; n];
        for qe in &seq.elems {
            if qe.prefix.has_wildcard() {
                if let Some(p) = qe.parent {
                    bind[p] = true;
                }
            }
        }
        let mut sig: Vec<Vec<u32>> = Vec::with_capacity(n);
        for qi in 0..n {
            let mut ps: Vec<u32> = seq
                .elems
                .iter()
                .enumerate()
                .skip(qi + 1)
                .filter(|(_, e)| e.prefix.has_wildcard())
                .filter_map(|(_, e)| e.parent)
                .filter(|&p| p < qi)
                .map(|p| p as u32)
                .collect();
            ps.sort_unstable();
            ps.dedup();
            sig.push(ps);
        }
        let dedup = seq.elems.iter().any(|e| e.prefix.has_wildcard());
        Ok(SeqCtx {
            seq,
            concrete,
            bind,
            sig,
            dedup,
        })
    }
}

/// Per-worker mutable state; merged after the run.
#[derive(Default)]
struct WorkerOut {
    stats: QueryStats,
    /// Final matched scopes.
    scopes: Vec<(u128, u128)>,
    /// Sub-problems already expanded: `(seq, qi, dkid, lo, hi, binding
    /// signature)` — a repeat re-scans the same S-Ancestor window and
    /// re-derives the same subtree, so it is skipped.
    descended: HashSet<(u32, u32, u64, u128, u128, Vec<u64>)>,
    /// Nodes already pushed as child frames: `(seq, next qi, dkid, n,
    /// binding signature)` — catches *overlapping* scope windows that both
    /// contain the same node.
    visited: HashSet<(u32, u32, u64, u128, Vec<u64>)>,
}

/// Rebuild the lookup prefix for a wildcarded element from its parent's
/// instantiated concrete path plus the placeholder steps between them.
fn lookup_prefix(qe: &QueryElem, binds: &Option<Arc<BindNode>>) -> Prefix {
    let mut steps: Vec<PathSym> = match qe.parent {
        Some(p) => {
            // Invariant: a wildcarded element's parent is a bind target
            // (see `SeqCtx::bind`), so it is always on the chain.
            let node = find_bind(binds, p as u32).expect("parent binding on chain");
            node.path.iter().map(|&s| PathSym::Tag(s)).collect()
        }
        None => Vec::new(),
    };
    steps.extend_from_slice(&qe.steps_after_parent);
    Prefix(steps)
}

/// The binding signature at `qi`: the dkids bound at the still-relevant
/// earlier positions. Two frames agreeing on `(seq, qi, dkid, scope)` and
/// this signature derive identical subtrees — a dkid determines its
/// `(symbol, prefix)` pair, hence the instantiated path later lookups use.
fn bind_sig(positions: &[u32], binds: &Option<Arc<BindNode>>) -> Vec<u64> {
    positions
        .iter()
        .map(|&p| find_bind(binds, p).expect("relevant binding on chain").dkid)
        .collect()
}

/// Expand one frame: resolve the D-Ancestor candidates for its element and
/// push one child frame per S-Ancestor hit onto `push`. Completed matches
/// land in `out.scopes`.
fn expand(
    source: &dyn SearchSource,
    ctxs: &[SeqCtx<'_>],
    frame: &Frame,
    push: &mut Vec<Frame>,
    out: &mut WorkerOut,
) -> Result<()> {
    let sc = &ctxs[frame.seq as usize];
    let qi = frame.qi as usize;
    if qi == sc.seq.elems.len() {
        out.scopes.push((frame.lo, frame.hi));
        return Ok(());
    }
    match &sc.concrete[qi] {
        // Concrete prefix, present in the data: one candidate, pre-resolved.
        Some(Some((prefix_syms, dkid))) => {
            descend(source, sc, frame, prefix_syms, *dkid, push, out)?;
        }
        // Concrete prefix, absent: dead branch.
        Some(None) => {}
        // Wildcarded prefix: rebuild the lookup pattern from the parent's
        // instantiated path, then exact-get or range-scan the D-Ancestor
        // tree.
        None => {
            let qe = &sc.seq.elems[qi];
            let pattern = lookup_prefix(qe, &frame.binds);
            match dkey::query_for(qe.sym, &pattern) {
                dkey::DKeyQuery::Exact(key) => {
                    let _span = vist_obs::Span::enter("dancestor_get");
                    out.stats.dancestor_gets += 1;
                    if let Some(id) = source.dkey_get(&key)? {
                        let (_, prefix_syms) = dkey::decode(&key);
                        descend(source, sc, frame, &prefix_syms, id, push, out)?;
                    }
                }
                dkey::DKeyQuery::Range { lo, hi, pattern } => {
                    out.stats.dancestor_scans += 1;
                    let mut candidates: Vec<(Vec<Symbol>, u64)> = Vec::new();
                    {
                        let _span = vist_obs::Span::enter("dancestor_scan");
                        source.dkey_scan_range(&lo, &hi, &mut |key, id| {
                            let (_, prefix_syms) = dkey::decode(key);
                            if pattern.matches(&prefix_syms) {
                                candidates.push((prefix_syms, id));
                            }
                        })?;
                    }
                    for (prefix_syms, id) in &candidates {
                        descend(source, sc, frame, prefix_syms, *id, push, out)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Range-query the S-Ancestor entries of one matched D-Ancestor key inside
/// the frame's scope, binding and pushing a child frame per hit.
fn descend(
    source: &dyn SearchSource,
    sc: &SeqCtx<'_>,
    frame: &Frame,
    prefix_syms: &[Symbol],
    dkid: u64,
    push: &mut Vec<Frame>,
    out: &mut WorkerOut,
) -> Result<()> {
    out.stats.dkeys_matched += 1;
    let qi = frame.qi;
    let sig = sc
        .dedup
        .then(|| bind_sig(&sc.sig[qi as usize], &frame.binds));
    if let Some(s) = &sig {
        // Identical sub-problem (same dkey, same scope window, same
        // relevant bindings) already expanded: same subtree, skip.
        if !out
            .descended
            .insert((frame.seq, qi, dkid, frame.lo, frame.hi, s.clone()))
        {
            out.stats.dedup_skips += 1;
            return Ok(());
        }
    }
    out.stats.sancestor_scans += 1;
    let qe = &sc.seq.elems[qi as usize];
    // Bind this element's instantiated path for descendant lookups — only
    // when some later wildcarded element will actually consult it.
    let child_binds = if sc.bind[qi as usize] {
        let mut path = prefix_syms.to_vec();
        if let Sym::Tag(t) = qe.sym {
            path.push(t);
        }
        Some(Arc::new(BindNode {
            elem: qi,
            dkid,
            path,
            prev: frame.binds.clone(),
        }))
    } else {
        frame.binds.clone()
    };
    let stats = &mut out.stats;
    let visited = &mut out.visited;
    let seq = frame.seq;
    let _span = vist_obs::Span::enter("sancestor_scan");
    source.nodes_in_scope(dkid, frame.lo, frame.hi, &mut |node| {
        stats.nodes_visited += 1;
        if let Some(s) = &sig {
            if !visited.insert((seq, qi + 1, dkid, node.n, s.clone())) {
                stats.dedup_skips += 1;
                return;
            }
        }
        push.push(Frame {
            seq,
            qi: qi + 1,
            lo: node.n,
            hi: node.end(),
            binds: child_binds.clone(),
        });
    })?;
    Ok(())
}
