//! External sort for bulk ingest: buffer `(key, value)` records up to a
//! memory budget, spill sorted runs to disk, and k-way merge them back in
//! key order.
//!
//! The segment builder sorts three record streams this way (S-Ancestor
//! entries, DocId entries, stored-document chunks) so each B+Tree of a
//! packed segment can be bulk-loaded from one strictly ascending pass —
//! the classic build-a-read-only-index pipeline. Spill files live in a
//! scratch directory owned by the sorter and are deleted when it drops;
//! they are pure scratch (never read after a crash), so they use plain
//! `std::fs` rather than the fault-injectable `Vfs`.
//!
//! Record format in a run file: `[klen u32 LE][vlen u32 LE][key][value]`,
//! records in ascending key order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;

use crate::error::Result;

/// Default in-memory buffer budget before a run spills, in bytes.
pub const DEFAULT_SORT_BUDGET: usize = 32 << 20;

/// An external merge sorter over `(key, value)` byte-string records.
/// Duplicate keys are kept (callers needing unique keys must make them
/// unique, as the segment key codecs do).
pub struct ExtSorter {
    dir: PathBuf,
    tag: String,
    budget: usize,
    buf: Vec<(Vec<u8>, Vec<u8>)>,
    buf_bytes: usize,
    runs: Vec<PathBuf>,
}

impl ExtSorter {
    /// Create a sorter spilling into `dir` (created if absent). `tag`
    /// names this sorter's run files so several sorters can share `dir`.
    pub fn new(dir: PathBuf, tag: &str, budget: usize) -> Result<Self> {
        std::fs::create_dir_all(&dir).map_err(vist_storage::Error::Io)?;
        Ok(ExtSorter {
            dir,
            tag: tag.to_owned(),
            budget: budget.max(1 << 16),
            buf: Vec::new(),
            buf_bytes: 0,
            runs: Vec::new(),
        })
    }

    /// Add one record.
    pub fn push(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        self.buf_bytes += key.len() + value.len() + 48;
        self.buf.push((key, value));
        if self.buf_bytes >= self.budget {
            self.spill()?;
        }
        Ok(())
    }

    /// Number of run files spilled so far (tests).
    #[must_use]
    pub fn spilled_runs(&self) -> usize {
        self.runs.len()
    }

    fn spill(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort();
        let path = self
            .dir
            .join(format!("{}-{:04}.run", self.tag, self.runs.len()));
        let mut w = BufWriter::new(File::create(&path).map_err(vist_storage::Error::Io)?);
        for (k, v) in self.buf.drain(..) {
            write_record(&mut w, &k, &v)?;
        }
        w.flush().map_err(vist_storage::Error::Io)?;
        self.runs.push(path);
        self.buf_bytes = 0;
        Ok(())
    }

    /// Finish loading and return the merged, fully sorted stream.
    pub fn finish(mut self) -> Result<SortedStream> {
        if self.runs.is_empty() {
            // Everything fit in memory: no merge, just sort.
            self.buf.sort();
            let mem: Vec<(Vec<u8>, Vec<u8>)> = std::mem::take(&mut self.buf);
            return Ok(SortedStream {
                mem: mem.into_iter(),
                heap: BinaryHeap::new(),
                _runs: Vec::new(),
            });
        }
        self.spill()?;
        let mut heap = BinaryHeap::with_capacity(self.runs.len());
        for (i, path) in self.runs.iter().enumerate() {
            let mut reader = BufReader::new(File::open(path).map_err(vist_storage::Error::Io)?);
            if let Some((k, v)) = read_record(&mut reader)? {
                heap.push(HeapEntry {
                    key: k,
                    value: v,
                    run: i,
                    reader,
                });
            }
        }
        Ok(SortedStream {
            mem: Vec::new().into_iter(),
            heap,
            _runs: std::mem::take(&mut self.runs),
        })
    }
}

impl Drop for ExtSorter {
    fn drop(&mut self) {
        for path in &self.runs {
            let _ = std::fs::remove_file(path);
        }
    }
}

fn write_record(w: &mut impl Write, k: &[u8], v: &[u8]) -> Result<()> {
    let hdr = |n: usize| (n as u32).to_le_bytes();
    w.write_all(&hdr(k.len()))
        .and_then(|()| w.write_all(&hdr(v.len())))
        .and_then(|()| w.write_all(k))
        .and_then(|()| w.write_all(v))
        .map_err(vist_storage::Error::Io)?;
    Ok(())
}

fn read_record(r: &mut impl Read) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
    let mut hdr = [0u8; 8];
    match r.read_exact(&mut hdr) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(vist_storage::Error::Io(e).into()),
    }
    let klen = u32::from_le_bytes(hdr[0..4].try_into().expect("klen")) as usize;
    let vlen = u32::from_le_bytes(hdr[4..8].try_into().expect("vlen")) as usize;
    let mut k = vec![0u8; klen];
    let mut v = vec![0u8; vlen];
    r.read_exact(&mut k).map_err(vist_storage::Error::Io)?;
    r.read_exact(&mut v).map_err(vist_storage::Error::Io)?;
    Ok(Some((k, v)))
}

/// One run's cursor inside the merge heap. Ordered as a **min**-heap on
/// `(key, run)` (BinaryHeap is a max-heap, so comparisons are reversed);
/// the run index tiebreak keeps equal keys in insertion (spill) order.
struct HeapEntry {
    key: Vec<u8>,
    value: Vec<u8>,
    run: usize,
    reader: BufReader<File>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.run == other.run
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (&other.key, other.run).cmp(&(&self.key, self.run))
    }
}

/// The merged output of an [`ExtSorter`], yielding records in ascending
/// key order. IO errors surface through the `Result` items.
pub struct SortedStream {
    mem: std::vec::IntoIter<(Vec<u8>, Vec<u8>)>,
    heap: BinaryHeap<HeapEntry>,
    _runs: Vec<PathBuf>,
}

impl Iterator for SortedStream {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(kv) = self.mem.next() {
            return Some(Ok(kv));
        }
        let mut top = self.heap.pop()?;
        let out = (std::mem::take(&mut top.key), std::mem::take(&mut top.value));
        match read_record(&mut top.reader) {
            Ok(Some((k, v))) => {
                top.key = k;
                top.value = v;
                self.heap.push(top);
            }
            Ok(None) => {}
            Err(e) => return Some(Err(e)),
        }
        Some(Ok(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vist-extsort-{}-{}", name, std::process::id()))
    }

    fn collect(s: SortedStream) -> Vec<(Vec<u8>, Vec<u8>)> {
        s.collect::<Result<Vec<_>>>().unwrap()
    }

    #[test]
    fn in_memory_sort() {
        let mut sorter = ExtSorter::new(tmp("mem"), "t", 1 << 20).unwrap();
        for i in [5u32, 1, 9, 3, 7] {
            sorter
                .push(i.to_be_bytes().to_vec(), format!("v{i}").into_bytes())
                .unwrap();
        }
        assert_eq!(sorter.spilled_runs(), 0);
        let out = collect(sorter.finish().unwrap());
        let keys: Vec<u32> = out
            .iter()
            .map(|(k, _)| u32::from_be_bytes(k.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
        assert_eq!(out[0].1, b"v1");
    }

    #[test]
    fn spills_and_merges_many_runs() {
        // A tiny budget forces many spills (the floor is 64 KiB, so use
        // large values to cross it quickly).
        let mut sorter = ExtSorter::new(tmp("spill"), "t", 1).unwrap();
        let n = 500u32;
        for i in (0..n).rev() {
            sorter
                .push(i.to_be_bytes().to_vec(), vec![i as u8; 512])
                .unwrap();
        }
        assert!(sorter.spilled_runs() > 2, "expected multiple runs");
        let out = collect(sorter.finish().unwrap());
        assert_eq!(out.len(), n as usize);
        for (i, (k, v)) in out.iter().enumerate() {
            assert_eq!(k.as_slice(), (i as u32).to_be_bytes());
            assert_eq!(v.len(), 512);
        }
    }

    #[test]
    fn duplicate_keys_survive_merge() {
        let mut sorter = ExtSorter::new(tmp("dup"), "t", 1).unwrap();
        for round in 0..3 {
            for i in 0..200u32 {
                sorter
                    .push(i.to_be_bytes().to_vec(), vec![round; 700])
                    .unwrap();
            }
        }
        let out = collect(sorter.finish().unwrap());
        assert_eq!(out.len(), 600);
        // Every key appears exactly three times, grouped.
        for chunk in out.chunks(3) {
            assert_eq!(chunk[0].0, chunk[1].0);
            assert_eq!(chunk[1].0, chunk[2].0);
        }
    }

    #[test]
    fn empty_sorter_yields_nothing() {
        let sorter = ExtSorter::new(tmp("empty"), "t", 1 << 20).unwrap();
        assert!(collect(sorter.finish().unwrap()).is_empty());
    }
}
