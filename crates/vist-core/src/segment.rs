//! The read-only half of the tiered index: packed segments.
//!
//! A segment is one ingest batch (or one compaction's worth of the whole
//! index) converted to structure-encoded sequences, labeled **statically**
//! by preorder rank and subtree size — the RIST labeling, which is exact
//! and never underflows — and bulk-loaded at ~100% leaf fill into four
//! B+Trees packed in a single [`vist_btree::SegmentWriter`] file:
//!
//! | slot | tree | key | value |
//! |---|---|---|---|
//! | 0 | D-Ancestor | dkey bytes | dkey-id (u64 LE) |
//! | 1 | S-Ancestor | dkey-id ‖ `n` | `(size, next, k)` |
//! | 2 | DocId | `n` ‖ doc-id | — |
//! | 3 | documents | doc-id ‖ chunk | XML bytes |
//! | 4 | statistics | dkey-id | `(nodes, docs, fanout)` (u64 LE × 3) |
//!
//! The first three mirror the delta's [`Store`] trees exactly (same key
//! codecs), so one [`SearchSource`] impl serves Algorithm 2 unchanged; the
//! `edges` tree is *not* packed — it only supports inserts, and segments
//! never take any. Each segment is its own label space: queries run the
//! match per source and union document ids. The statistics tree is exact
//! (computed from the labeled trie at build time) and loaded whole at
//! open — it feeds the query planner's selectivity estimates; segments
//! packed before it existed open with an empty map and plan from
//! candidate counts instead.
//!
//! [`SegmentBuilder`] is the external-sort ingest pipeline: documents
//! stream in once (parse → sequence → shared in-memory trie, XML chunks
//! spilling through [`ExtSorter`]), the trie is labeled in one preorder
//! pass, and the sorted record streams bulk-load the packed trees.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use vist_btree::codec::KeyWriter;
use vist_btree::{BTree, SegmentReader, SegmentWriter};
use vist_seq::{dkey, Sequence};
use vist_storage::{BufferPool, FilePager, Manifest, Vfs};

use crate::error::{Error, Result};
use crate::extsort::{ExtSorter, SortedStream};
use crate::search::{DkStats, SearchSource, SourceTotals};
use crate::store::{DocId, NodeState, Store, StoreBreakdown};

/// Fixed-width prefix of the segment meta blob: doc, node and dkey counts
/// plus the highest document id packed (the reopen-reconciliation
/// watermark — see `VistIndex::open_at`).
const META_LEN: usize = 32;

fn doc_key(doc: DocId, chunk: u32) -> Vec<u8> {
    let mut k = KeyWriter::with_capacity(12);
    k.u64(doc).u32(chunk);
    k.finish()
}

/// An open packed segment: immutable, checksummed (by the pager's page
/// trailers), queried through the same Algorithm 2 engine as the delta.
pub(crate) struct Segment {
    pub(crate) id: u64,
    pub(crate) doc_count: u64,
    pub(crate) node_count: u64,
    pub(crate) dkey_count: u64,
    pub(crate) max_doc: u64,
    dancestor: BTree,
    sancestor: BTree,
    docid: BTree,
    docs: BTree,
    /// Per-dkid planner statistics, loaded whole from the packed
    /// statistics tree (slot 4). Empty for pre-statistics segments.
    stats: HashMap<u64, DkStats>,
    /// Handle on the packed statistics tree (space accounting only);
    /// `None` for pre-statistics segments.
    stats_tree: Option<BTree>,
    /// Exact totals (S-Ancestor / DocId entry counts from the header).
    totals: SourceTotals,
    pool: Arc<BufferPool>,
}

impl Segment {
    /// Open segment `id` of the index at `base`.
    pub(crate) fn open(vfs: &dyn Vfs, base: &Path, id: u64, cache_pages: usize) -> Result<Segment> {
        let path = Manifest::segment_path(base, id);
        let pager = FilePager::open_with_vfs(vfs, &path)?;
        let pool = Arc::new(BufferPool::with_capacity(pager, cache_pages));
        // The header is the first page after the pager's own (page 1).
        let reader = SegmentReader::open(Arc::clone(&pool), 1)?;
        if !(4..=5).contains(&reader.tree_count()) {
            return Err(Error::Corrupt(format!(
                "segment {id} packs {} trees, expected 4 or 5",
                reader.tree_count()
            )));
        }
        let meta = reader.meta();
        if meta.len() < META_LEN {
            return Err(Error::Corrupt(format!("segment {id} meta too short")));
        }
        let rd64 = |at: usize| u64::from_le_bytes(meta[at..at + 8].try_into().expect("meta"));
        let totals = SourceTotals {
            nodes: reader.entries(1),
            postings: reader.entries(2),
        };
        let mut stats = HashMap::new();
        let mut stats_tree = None;
        if reader.tree_count() == 5 {
            let tree = reader.tree(4)?;
            for item in tree.scan(..)? {
                let (k, v) = item?;
                if k.len() != 8 || v.len() != 24 {
                    return Err(Error::Corrupt(format!("segment {id} stats record")));
                }
                stats.insert(
                    u64::from_be_bytes(k[0..8].try_into().unwrap()),
                    DkStats {
                        nodes: u64::from_le_bytes(v[0..8].try_into().unwrap()),
                        docs: u64::from_le_bytes(v[8..16].try_into().unwrap()),
                        fanout: u64::from_le_bytes(v[16..24].try_into().unwrap()),
                    },
                );
            }
            stats_tree = Some(tree);
        }
        Ok(Segment {
            id,
            doc_count: rd64(0),
            node_count: rd64(8),
            dkey_count: rd64(16),
            max_doc: rd64(24),
            dancestor: reader.tree(0)?,
            sancestor: reader.tree(1)?,
            docid: reader.tree(2)?,
            docs: reader.tree(3)?,
            stats,
            stats_tree,
            totals,
            pool,
        })
    }

    /// Whether `doc` is stored in this segment.
    pub(crate) fn contains_doc(&self, doc: DocId) -> Result<bool> {
        Ok(self.docs.get(&doc_key(doc, 0))?.is_some())
    }

    /// Fetch a stored document's XML text.
    pub(crate) fn doc_get(&self, doc: DocId) -> Result<Option<Vec<u8>>> {
        let mut prefix = KeyWriter::with_capacity(8);
        prefix.u64(doc);
        let mut out = Vec::new();
        let mut found = false;
        for item in self.docs.scan_prefix(prefix.as_slice())? {
            let (_, v) = item?;
            out.extend_from_slice(&v);
            found = true;
        }
        Ok(found.then_some(out))
    }

    /// All stored document ids, ascending.
    pub(crate) fn doc_ids(&self) -> Result<Vec<DocId>> {
        let mut out = Vec::new();
        let mut last = None;
        for item in self.docs.scan(..)? {
            let (k, _) = item?;
            let id = u64::from_be_bytes(k[0..8].try_into().expect("doc key"));
            if last != Some(id) {
                out.push(id);
                last = Some(id);
            }
        }
        Ok(out)
    }

    /// Total bytes of the segment file's pages.
    #[must_use]
    pub(crate) fn store_bytes(&self) -> u64 {
        self.pool.store_bytes()
    }

    /// Per-tree space accounting (`documents` reported in the `aux` slot).
    pub(crate) fn breakdown(&self) -> Result<StoreBreakdown> {
        Ok(StoreBreakdown {
            dancestor: self.dancestor.tree_stats()?,
            sancestor: self.sancestor.tree_stats()?,
            docid: self.docid.tree_stats()?,
            edges: vist_btree::TreeStats::default(),
            aux: self.docs.tree_stats()?,
            stats: match &self.stats_tree {
                Some(t) => t.tree_stats()?,
                None => vist_btree::TreeStats::default(),
            },
        })
    }
}

impl SearchSource for Segment {
    fn dkey_get(&self, dkey: &[u8]) -> Result<Option<u64>> {
        Ok(self
            .dancestor
            .get(dkey)?
            .map(|v| u64::from_le_bytes(v.try_into().expect("dkey id width"))))
    }

    fn dkey_scan_range(&self, lo: &[u8], hi: &[u8], f: &mut dyn FnMut(&[u8], u64)) -> Result<()> {
        self.dancestor.for_each_in(lo..hi, |k, v| {
            f(k, u64::from_le_bytes(v.try_into().expect("dkey id width")));
            std::ops::ControlFlow::Continue(())
        })?;
        Ok(())
    }

    fn nodes_in_scope(
        &self,
        dkey_id: u64,
        lo: u128,
        hi: u128,
        f: &mut dyn FnMut(NodeState),
    ) -> Result<()> {
        let lo_key = Store::sanc_key(dkey_id, lo);
        let hi_key = Store::sanc_key(dkey_id, hi);
        self.sancestor.for_each_in(
            (
                std::ops::Bound::Excluded(lo_key.as_slice()),
                std::ops::Bound::Excluded(hi_key.as_slice()),
            ),
            |k, v| {
                let n = u128::from_be_bytes(k[8..24].try_into().expect("sanc key n"));
                f(Store::decode_node(n, v));
                std::ops::ControlFlow::Continue(())
            },
        )?;
        Ok(())
    }

    fn docids_in_range(&self, lo: u128, hi: u128, f: &mut dyn FnMut(DocId)) -> Result<()> {
        let lo_key = Store::docid_key(lo, 0);
        let hi_key = Store::docid_key(hi, 0);
        self.docid
            .for_each_in(lo_key.as_slice()..hi_key.as_slice(), |k, _| {
                f(u64::from_be_bytes(k[16..24].try_into().expect("docid key")));
                std::ops::ControlFlow::Continue(())
            })?;
        Ok(())
    }

    fn docids_in_range_keyed(
        &self,
        lo: u128,
        hi: u128,
        f: &mut dyn FnMut(u128, DocId),
    ) -> Result<()> {
        let lo_key = Store::docid_key(lo, 0);
        let hi_key = Store::docid_key(hi, 0);
        self.docid
            .for_each_in(lo_key.as_slice()..hi_key.as_slice(), |k, _| {
                let n = u128::from_be_bytes(k[0..16].try_into().expect("docid key n"));
                let doc = u64::from_be_bytes(k[16..24].try_into().expect("docid key doc"));
                f(n, doc);
                std::ops::ControlFlow::Continue(())
            })?;
        Ok(())
    }

    fn dkid_stats(&self, dkid: u64) -> Option<DkStats> {
        self.stats.get(&dkid).copied()
    }

    fn totals(&self) -> Option<SourceTotals> {
        Some(self.totals)
    }
}

/// One node of the in-memory ingest trie (the structure-encoded sequences
/// of a batch, merged). Children are keyed by dkey-id so labeling walks
/// them in a deterministic order.
struct TrieNode {
    dkid: u64,
    children: BTreeMap<u64, usize>,
    /// Preorder label, assigned by [`SegmentBuilder::label`].
    n: u128,
    /// Subtree node count (= scope size), assigned by `label`.
    size: u128,
}

/// Streaming segment build: feed documents one at a time, then
/// [`SegmentBuilder::finish`] labels the trie and bulk-loads the packed
/// trees through external sort.
pub(crate) struct SegmentBuilder {
    scratch: PathBuf,
    /// dkey bytes → dense id, in first-seen order (ids need no key order;
    /// the D-Ancestor tree itself is loaded from this sorted map).
    dkeys: BTreeMap<Vec<u8>, u64>,
    /// trie[0] is the virtual root.
    trie: Vec<TrieNode>,
    /// `(doc, trie node index of the sequence's last element)`.
    doc_ends: Vec<(DocId, usize)>,
    /// XML chunks, spilled as they arrive.
    docs: Option<ExtSorter>,
    chunk_size: usize,
    doc_count: u64,
    max_doc: u64,
}

impl SegmentBuilder {
    /// `scratch` is the spill directory (removed by `finish`);
    /// `page_size` sizes document chunks; `store_documents` mirrors the
    /// index option; `budget` caps each sorter's in-memory buffer.
    pub(crate) fn new(
        scratch: PathBuf,
        page_size: usize,
        store_documents: bool,
        budget: usize,
    ) -> Result<SegmentBuilder> {
        let docs = if store_documents {
            Some(ExtSorter::new(scratch.clone(), "docs", budget)?)
        } else {
            None
        };
        // Leave the same slack Store::doc_put leaves for the chunk key.
        let chunk_size = page_size / 4;
        Ok(SegmentBuilder {
            scratch,
            dkeys: BTreeMap::new(),
            trie: vec![TrieNode {
                dkid: u64::MAX,
                children: BTreeMap::new(),
                n: 0,
                size: 0,
            }],
            doc_ends: Vec::new(),
            docs,
            chunk_size,
            doc_count: 0,
            max_doc: 0,
        })
    }

    /// Add one document's structure-encoded sequence (and raw XML when
    /// documents are stored). Doc ids must be unique; order is free.
    pub(crate) fn add_doc(&mut self, doc: DocId, seq: &Sequence, xml: &str) -> Result<()> {
        let mut cur = 0usize;
        for elem in seq.iter() {
            let prefix = elem
                .prefix
                .as_concrete()
                .ok_or_else(|| Error::Corrupt("wildcard in data sequence".into()))?;
            let key = dkey::encode(elem.sym, &prefix);
            let next_id = self.dkeys.len() as u64;
            let dkid = *self.dkeys.entry(key).or_insert(next_id);
            cur = match self.trie[cur].children.get(&dkid) {
                Some(&c) => c,
                None => {
                    let c = self.trie.len();
                    self.trie.push(TrieNode {
                        dkid,
                        children: BTreeMap::new(),
                        n: 0,
                        size: 0,
                    });
                    self.trie[cur].children.insert(dkid, c);
                    c
                }
            };
        }
        self.doc_ends.push((doc, cur));
        if let Some(sorter) = &mut self.docs {
            let bytes = xml.as_bytes();
            if bytes.is_empty() {
                sorter.push(doc_key(doc, 0), Vec::new())?;
            }
            for (i, chunk) in bytes.chunks(self.chunk_size.max(1)).enumerate() {
                sorter.push(doc_key(doc, i as u32), chunk.to_vec())?;
            }
        }
        self.doc_count += 1;
        self.max_doc = self.max_doc.max(doc);
        Ok(())
    }

    /// Label the trie in preorder: `n` is the preorder rank (root's
    /// children start at 1), `size` the subtree node count, so every
    /// descendant label falls strictly inside `(n, n + size)` — the exact
    /// static labeling of RIST, which Algorithm 2's Excluded/Excluded
    /// range probes expect.
    fn label(&mut self) {
        let mut counter: u128 = 1;
        // Explicit stack; `Leave` back-patches size once the subtree is done.
        enum Walk {
            Enter(usize),
            Leave(usize),
        }
        let mut stack: Vec<Walk> = self.trie[0]
            .children
            .values()
            .rev()
            .map(|&c| Walk::Enter(c))
            .collect();
        while let Some(step) = stack.pop() {
            match step {
                Walk::Enter(i) => {
                    self.trie[i].n = counter;
                    counter += 1;
                    stack.push(Walk::Leave(i));
                    for &c in self.trie[i].children.values().rev() {
                        stack.push(Walk::Enter(c));
                    }
                }
                Walk::Leave(i) => {
                    self.trie[i].size = counter - self.trie[i].n;
                }
            }
        }
        self.trie[0].size = counter; // virtual root: covers every label
    }

    /// Label, sort, and write segment `id` of the index at `base`.
    /// Returns the opened segment. Durability: the segment file is fully
    /// checkpointed (WAL committed + pages synced) before this returns;
    /// publishing it in the manifest is the caller's step.
    pub(crate) fn finish(
        mut self,
        vfs: &dyn Vfs,
        base: &Path,
        id: u64,
        page_size: usize,
        cache_pages: usize,
        budget: usize,
    ) -> Result<Segment> {
        self.label();

        let mut sanc = ExtSorter::new(self.scratch.clone(), "sanc", budget)?;
        for node in &self.trie[1..] {
            let state = NodeState {
                n: node.n,
                size: node.size,
                next: node.n + node.size,
                k: node.children.len() as u64,
            };
            sanc.push(
                Store::sanc_key(node.dkid, node.n),
                Store::encode_node(&state).to_vec(),
            )?;
        }
        let mut docid = ExtSorter::new(self.scratch.clone(), "docid", budget)?;
        for &(doc, end) in &self.doc_ends {
            let n = if end == 0 { 0 } else { self.trie[end].n };
            docid.push(Store::docid_key(n, doc), Vec::new())?;
        }

        // Exact per-dkid planner statistics from the labeled trie: node
        // and fanout counts from the nodes themselves, doc postings from
        // the sequence end points. (An `end == 0` document is empty — its
        // posting hangs off the virtual root, which has no dkey.)
        let mut stats: BTreeMap<u64, DkStats> = BTreeMap::new();
        for node in &self.trie[1..] {
            let e = stats.entry(node.dkid).or_default();
            e.nodes += 1;
            e.fanout += node.children.len() as u64;
        }
        for &(_, end) in &self.doc_ends {
            if end != 0 {
                stats.entry(self.trie[end].dkid).or_default().docs += 1;
            }
        }

        let path = Manifest::segment_path(base, id);
        let pager = FilePager::create_with_vfs(vfs, &path, page_size)?;
        let pool = Arc::new(BufferPool::with_capacity(pager, cache_pages));
        let mut writer = SegmentWriter::create(Arc::clone(&pool))?;

        let dkey_count = self.dkeys.len() as u64;
        let dancestor_items: Vec<(Vec<u8>, Vec<u8>)> = std::mem::take(&mut self.dkeys)
            .into_iter()
            .map(|(k, id)| (k, id.to_le_bytes().to_vec()))
            .collect();
        writer.add_tree(dancestor_items)?;
        add_sorted_tree(&mut writer, sanc.finish()?)?;
        add_sorted_tree(&mut writer, docid.finish()?)?;
        match self.docs.take() {
            Some(sorter) => add_sorted_tree(&mut writer, sorter.finish()?)?,
            None => {
                writer.add_tree(Vec::new())?;
            }
        }
        let stats_items: Vec<(Vec<u8>, Vec<u8>)> = stats
            .into_iter()
            .map(|(dkid, s)| {
                let mut v = [0u8; 24];
                v[0..8].copy_from_slice(&s.nodes.to_le_bytes());
                v[8..16].copy_from_slice(&s.docs.to_le_bytes());
                v[16..24].copy_from_slice(&s.fanout.to_le_bytes());
                (dkid.to_be_bytes().to_vec(), v.to_vec())
            })
            .collect();
        writer.add_tree(stats_items)?;

        let mut meta = [0u8; META_LEN];
        meta[0..8].copy_from_slice(&self.doc_count.to_le_bytes());
        meta[8..16].copy_from_slice(&((self.trie.len() - 1) as u64).to_le_bytes());
        meta[16..24].copy_from_slice(&dkey_count.to_le_bytes());
        meta[24..32].copy_from_slice(&self.max_doc.to_le_bytes());
        writer.finish(&meta)?;
        pool.flush()?;
        drop(pool);
        let _ = std::fs::remove_dir_all(&self.scratch);
        Segment::open(vfs, base, id, cache_pages)
    }
}

/// Stream a [`SortedStream`] into [`SegmentWriter::add_tree`], routing IO
/// errors around the infallible-iterator API.
fn add_sorted_tree(writer: &mut SegmentWriter, stream: SortedStream) -> Result<()> {
    let mut err: Option<Error> = None;
    let iter = stream.map_while(|item| match item {
        Ok(kv) => Some(kv),
        Err(e) => {
            err = Some(e);
            None
        }
    });
    // The writer consumes the iterator fully (or fails on its own).
    let res = writer.add_tree(iter);
    if let Some(e) = err {
        return Err(e);
    }
    res?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vist_seq::{document_to_sequence, SiblingOrder, SymbolTable};
    use vist_storage::testutil::TempDir;
    use vist_storage::RealVfs;

    fn build(docs: &[(DocId, &str)]) -> (TempDir, Segment, SymbolTable) {
        let dir = TempDir::new("vist-core-segment");
        let base = dir.file("store");
        let mut table = SymbolTable::new();
        let mut b = SegmentBuilder::new(dir.file("scratch"), 4096, true, 1 << 20).unwrap();
        for &(id, xml) in docs {
            let doc = vist_xml::parse(xml).unwrap();
            let seq = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
            b.add_doc(id, &seq, xml).unwrap();
        }
        let seg = b.finish(&RealVfs, &base, 1, 4096, 64, 1 << 20).unwrap();
        (dir, seg, table)
    }

    #[test]
    fn builds_and_reopens_with_counts() {
        let (_dir, seg, _) = build(&[
            (0, "<book><author>David</author></book>"),
            (1, "<book><author>Mary</author></book>"),
            (2, "<book><author>David</author></book>"),
        ]);
        assert_eq!(seg.doc_count, 3);
        assert!(seg.node_count > 0);
        assert!(seg.dkey_count > 0);
        assert_eq!(seg.doc_ids().unwrap(), vec![0, 1, 2]);
        assert!(seg.contains_doc(1).unwrap());
        assert!(!seg.contains_doc(9).unwrap());
        assert_eq!(
            seg.doc_get(0).unwrap().unwrap(),
            b"<book><author>David</author></book>"
        );
    }

    #[test]
    fn segment_matches_delta_semantics() {
        // The same documents through the dynamic insert path and the bulk
        // path must answer queries identically.
        let xmls = [
            "<book><author>David</author><year>1999</year></book>",
            "<book><author>Mary</author><year>2000</year></book>",
            "<p><s><l>boston</l></s><b><l>newyork</l></b></p>",
        ];
        let (_dir, seg, _) = build(
            &xmls
                .iter()
                .enumerate()
                .map(|(i, &x)| (i as u64, x))
                .collect::<Vec<_>>(),
        );
        let idx = crate::VistIndex::in_memory(crate::IndexOptions::default()).unwrap();
        for x in &xmls {
            idx.insert_xml(x).unwrap();
        }
        let table = idx.table();
        for expr in [
            "/book/author[text='David']",
            "/book[year='2000']",
            "//l[text='boston']",
            "/p/*[l='newyork']",
            "/book",
        ] {
            let pattern = vist_query::parse_query(expr).unwrap().to_pattern();
            let translation = vist_query::try_translate(
                &pattern,
                &table,
                &vist_query::TranslateOptions::default(),
            )
            .unwrap();
            let from_delta = crate::search_sequences(
                idx.store(),
                &translation.sequences,
                1,
                crate::SearchMode::Docs,
            )
            .unwrap();
            let from_seg =
                crate::search_sequences(&seg, &translation.sequences, 1, crate::SearchMode::Docs)
                    .unwrap();
            assert_eq!(from_delta.docs, from_seg.docs, "query {expr}");
        }
    }

    #[test]
    fn packed_trees_are_dense() {
        let docs: Vec<(DocId, String)> = (0..300)
            .map(|i| (i, format!("<r><a>x{i}</a><b><c>y{}</c></b></r>", i % 17)))
            .collect();
        let dir = TempDir::new("vist-core-segment-fill");
        let base = dir.file("store");
        let mut table = SymbolTable::new();
        let mut b = SegmentBuilder::new(dir.file("scratch"), 4096, true, 1 << 20).unwrap();
        for (id, xml) in &docs {
            let doc = vist_xml::parse(xml).unwrap();
            let seq = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
            b.add_doc(*id, &seq, xml).unwrap();
        }
        let seg = b.finish(&RealVfs, &base, 3, 4096, 64, 1 << 20).unwrap();
        let breakdown = seg.breakdown().unwrap();
        assert!(
            breakdown.sancestor.leaf_fill() > 0.8,
            "bulk-loaded S-Ancestor leaves should be packed, got {}",
            breakdown.sancestor.leaf_fill()
        );
    }
}
