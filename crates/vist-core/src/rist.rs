//! [`RistIndex`] (paper §3.3): the statically labeled precursor of ViST.
//!
//! RIST builds the suffix-tree-like trie over all sequences, labels every
//! node `⟨n, size⟩` by a preorder traversal, and bulk-loads the labels into
//! the same D-Ancestor / S-Ancestor / DocId B+Trees that ViST uses. Search
//! is identical (Algorithm 2). The price of the *static* labels is that
//! "late insertions can change the number of nodes that appear before x …
//! which means neither n nor size can be fixed" — so RIST must be rebuilt
//! to add documents.

use std::sync::Arc;

use vist_query::{parse_query, translate, Pattern, TranslateOptions};
use vist_seq::{dkey, document_to_sequence, SiblingOrder, SymbolTable};
use vist_storage::{BufferPool, MemPager};
use vist_xml::Document;

use crate::error::Result;
use crate::search::{search_sequences, QueryStats, SearchMode};
use crate::stats::{IndexStats, MatchCounters};
use crate::store::{DocId, NodeState, Store};
use crate::trie::Trie;
use crate::vist::{IndexOptions, QueryOptions, QueryResult};

/// The statically labeled RIST index.
pub struct RistIndex {
    store: Store,
    table: SymbolTable,
    order: SiblingOrder,
    match_counters: MatchCounters,
}

impl RistIndex {
    /// Build an in-memory RIST index over `docs`.
    pub fn build_in_memory<'a>(
        docs: impl IntoIterator<Item = &'a Document>,
        opts: IndexOptions,
    ) -> Result<Self> {
        let pool = Arc::new(BufferPool::with_capacity(
            MemPager::new(opts.page_size),
            opts.cache_pages,
        ));
        Self::build_on(pool, docs, opts)
    }

    /// Build a RIST index over `docs` on the given pool.
    pub fn build_on<'a>(
        pool: Arc<BufferPool>,
        docs: impl IntoIterator<Item = &'a Document>,
        opts: IndexOptions,
    ) -> Result<Self> {
        let mut table = SymbolTable::new();
        let mut store = Store::create(pool, opts.lambda, opts.adaptive, opts.store_documents)?;

        // Phase i: add all sequences to the suffix tree.
        let mut trie = Trie::new();
        for doc in docs {
            let seq = document_to_sequence(doc, &mut table, &opts.order);
            let id = {
                let mut meta = store.meta_mut();
                let id = meta.next_doc;
                meta.next_doc += 1;
                meta.doc_count += 1;
                id
            };
            if opts.store_documents {
                store.doc_put(id, doc.to_xml().as_bytes())?;
            }
            trie.insert_sequence(&seq, id);
        }

        // Phase ii: label by preorder traversal.
        let labels = trie.static_labels();

        // Phase iii: bulk-load every node into the D-Ancestor and S-Ancestor
        // trees, and document ids into the DocId tree (sorted, bottom-up —
        // a static build needs no incremental inserts).
        let mut dkeys: std::collections::HashMap<Vec<u8>, u64> = std::collections::HashMap::new();
        let mut nodes: Vec<(u64, NodeState)> = Vec::with_capacity(trie.len());
        let mut docids: Vec<(u128, DocId)> = Vec::new();
        for (idx, node) in trie.nodes.iter().enumerate() {
            let (n, size) = labels[idx];
            if let Some((sym, prefix)) = &node.elem {
                let key = dkey::encode(*sym, prefix);
                let next_id = dkeys.len() as u64;
                let dkid = *dkeys.entry(key).or_insert(next_id);
                nodes.push((
                    dkid,
                    NodeState {
                        n,
                        size,
                        next: n + 1,
                        k: 0,
                    },
                ));
            }
            for &doc in &node.docs {
                docids.push((n, doc));
            }
        }
        store.bulk_load_dkeys(dkeys.into_iter().collect())?;
        store.bulk_load_nodes(nodes)?;
        store.bulk_load_docids(docids)?;
        Ok(RistIndex {
            store,
            table,
            order: opts.order,
            match_counters: MatchCounters::default(),
        })
    }

    /// Number of documents indexed.
    #[must_use]
    pub fn doc_count(&self) -> u64 {
        self.store.meta().doc_count
    }

    /// Index statistics.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        let meta = self.store.meta();
        let mc = self.match_counters.snapshot();
        IndexStats {
            segments: 0,
            segment_docs: 0,
            segment_bytes: 0,
            tombstones: 0,
            documents: meta.doc_count,
            nodes: meta.node_count,
            dkeys: meta.next_dkey,
            underflows: 0,
            deep_borrows: 0,
            match_work_items: mc.work_items,
            match_steals: mc.steals,
            match_scopes_merged: mc.scopes_merged,
            match_dedup_skips: mc.dedup_skips,
            match_planner_seqs_pruned: mc.planner_seqs_pruned,
            match_planner_probes: mc.planner_probes,
            match_planner_probe_prunes: mc.planner_probe_prunes,
            match_planner_docid_sweeps: mc.planner_docid_sweeps,
            ingest_batches: 0,
            ingest_batch_docs: 0,
            ingest_dkey_cache_hits: 0,
            ingest_dkey_cache_misses: 0,
            ingest_edge_cache_hits: 0,
            ingest_edge_cache_misses: 0,
            store_bytes: self.store.store_bytes(),
            io: self.store.pool().stats(),
            pool: self.store.pool().pool_stats(),
        }
    }

    /// Direct read access to the underlying store.
    #[must_use]
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Parse and run a path-expression query (Algorithm 2 — shared with
    /// ViST).
    pub fn query(&mut self, expr: &str, opts: &QueryOptions) -> Result<QueryResult> {
        let pattern = parse_query(expr)?.to_pattern();
        self.query_pattern(&pattern, opts)
    }

    /// Run a pre-parsed query pattern.
    pub fn query_pattern(&mut self, pattern: &Pattern, opts: &QueryOptions) -> Result<QueryResult> {
        let translation = translate(
            pattern,
            &mut self.table,
            &TranslateOptions {
                order: self.order.clone(),
                max_sequences: opts.max_sequences,
            },
        );
        let outcome = search_sequences(
            &self.store,
            &translation.sequences,
            opts.workers,
            SearchMode::Docs,
        )?;
        self.match_counters.record(&outcome.stats);
        let candidates = outcome.docs.len();
        Ok(QueryResult {
            doc_ids: outcome.docs.into_iter().collect(),
            candidates,
            truncated: translation.truncated,
            stats: outcome.stats,
            timings: outcome.timings,
            trace: None,
            trace_id: opts.trace_id,
        })
    }

    /// Query with pre-converted sequences (benchmark hook).
    pub fn query_sequences(
        &self,
        sequences: &[vist_query::QuerySequence],
        workers: usize,
    ) -> Result<(Vec<DocId>, QueryStats)> {
        let outcome = search_sequences(&self.store, sequences, workers, SearchMode::Docs)?;
        self.match_counters.record(&outcome.stats);
        Ok((outcome.docs.into_iter().collect(), outcome.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vist_xml::parse;

    fn docs(xmls: &[&str]) -> Vec<Document> {
        xmls.iter().map(|x| parse(x).unwrap()).collect()
    }

    #[test]
    fn rist_answers_like_vist() {
        let xmls = [
            "<p><s><l>boston</l></s><b><l>newyork</l></b></p>",
            "<p><s><l>tokyo</l></s><b><l>newyork</l></b></p>",
            "<p><s><l>boston</l></s><b><l>paris</l></b></p>",
        ];
        let parsed = docs(&xmls);
        let mut rist = RistIndex::build_in_memory(&parsed, IndexOptions::default()).unwrap();
        let vist = crate::VistIndex::in_memory(IndexOptions::default()).unwrap();
        for x in &xmls {
            vist.insert_xml(x).unwrap();
        }
        for q in [
            "/p/s/l[text='boston']",
            "/p[s/l='boston']/b[l='newyork']",
            "/p/*[l='newyork']",
            "//l",
            "/p//l[text='paris']",
            "/p/s/l[text='nowhere']",
        ] {
            let r1 = rist.query(q, &QueryOptions::default()).unwrap();
            let r2 = vist.query(q, &QueryOptions::default()).unwrap();
            assert_eq!(r1.doc_ids, r2.doc_ids, "query {q}");
        }
    }

    #[test]
    fn rist_uses_fewer_label_bits() {
        // Static labels are dense preorder ranks: max label == node count.
        let parsed = docs(&["<a><b>1</b></a>", "<a><b>2</b></a>"]);
        let rist = RistIndex::build_in_memory(&parsed, IndexOptions::default()).unwrap();
        assert_eq!(rist.doc_count(), 2);
        assert!(rist.stats().nodes > 0);
    }
}
