//! The on-disk layout: five B+Trees sharing one buffer pool, plus a meta
//! page.
//!
//! | tree | key | value | role |
//! |---|---|---|---|
//! | `dancestor` | D-Ancestor key (`dkey`) | dkey-id (u64) | the paper's D-Ancestor B+Tree |
//! | `sancestor` | dkey-id ‖ `n` | `(size, next, k)` | the per-dkey S-Ancestor B+Trees, combined (as in the paper's experiments) into one tree keyed by dkey-id first |
//! | `docid` | `n` ‖ doc-id | — | the DocId B+Tree |
//! | `edges` | parent `n` ‖ dkey-id | child `n` | insert-path navigation: "search in e for the scope that is an immediate child of s". The paper inverts its closed-form allocation (Eq 4/6); our cursor-based allocator is not invertible, so the trie edge is stored explicitly. Queries never touch this tree. |
//! | `aux` | tagged | — | symbol table, sibling order, stored documents (chunked) |
//!
//! The *meta page* (the first page allocated) persists tree roots and
//! counters so the index can be reopened.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use vist_btree::{codec::KeyWriter, BTree};
use vist_seq::{SiblingOrder, SymbolTable};
use vist_storage::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use vist_storage::{BufferPool, PageId};

use crate::error::{Error, Result};
use crate::search::{DkStats, SourceTotals};

/// Identifier of an indexed document.
pub type DocId = u64;

const MAGIC: &[u8; 8] = b"VISTIDX1";

/// Allocation state of a virtual-suffix-tree node: its scope plus the
/// dynamic-allocation cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeState {
    /// Scope start (the node's label).
    pub n: u128,
    /// Scope width (`[n, n+size)`).
    pub size: u128,
    /// Next free label inside the scope (allocation cursor).
    pub next: u128,
    /// Number of child subscopes allocated (the paper's `k`).
    pub k: u64,
}

impl NodeState {
    /// Exclusive end of the scope.
    #[must_use]
    pub fn end(&self) -> u128 {
        self.n + self.size
    }

    /// Labels still unallocated inside this scope.
    #[must_use]
    pub fn available(&self) -> u128 {
        self.end() - self.next
    }
}

/// Mutable counters persisted in the meta page.
#[derive(Debug, Clone)]
pub struct Meta {
    /// Next D-Ancestor key id to assign.
    pub next_dkey: u64,
    /// Next document id to assign.
    pub next_doc: u64,
    /// The virtual root node's allocation state (label 0, scope = all).
    pub root: NodeState,
    /// Scope-allocation λ.
    pub lambda: u64,
    /// Adaptive divisor growth (see `alloc`).
    pub adaptive: bool,
    /// Whether original documents are stored (enables verification).
    pub store_documents: bool,
    /// Count of scope underflows resolved within the parent scope (sound).
    pub underflows: u64,
    /// Count of underflows that had to borrow from a non-parent ancestor —
    /// these can break S-Ancestor containment for the borrowed chain, the
    /// paper-faithful lossy case.
    pub deep_borrows: u64,
    /// Number of live documents.
    pub doc_count: u64,
    /// Number of virtual suffix tree nodes.
    pub node_count: u64,
    /// Generation of the delta's contents with respect to compaction.
    /// The tier manifest records the epoch its segment set expects; a
    /// reopened delta with a *smaller* epoch missed the post-compaction
    /// truncation (crash between manifest swap and delta flush) and is
    /// cleared again — see `VistIndex::open_at`.
    pub delta_epoch: u64,
}

impl Meta {
    fn fresh(lambda: u64, adaptive: bool, store_documents: bool) -> Self {
        Meta {
            next_dkey: 0,
            next_doc: 0,
            root: NodeState {
                n: 0,
                size: vist_seq::MAX_SCOPE,
                next: 1,
                k: 0,
            },
            lambda,
            adaptive,
            store_documents,
            underflows: 0,
            deep_borrows: 0,
            doc_count: 0,
            node_count: 0,
            delta_epoch: 0,
        }
    }
}

/// The persistent store shared by [`crate::VistIndex`] and
/// [`crate::RistIndex`].
pub struct Store {
    pool: Arc<BufferPool>,
    /// D-Ancestor tree.
    pub dancestor: BTree,
    /// Combined S-Ancestor tree.
    pub sancestor: BTree,
    /// DocId tree.
    pub docid: BTree,
    /// Trie-edge tree (insertion only).
    pub edges: BTree,
    /// Symbol table / order / documents.
    pub aux: BTree,
    /// Counters, behind a lock so mutators can take `&self` (see
    /// [`Store::meta`] / [`Store::meta_mut`]).
    meta: RwLock<Meta>,
    /// Planner statistics (per-dkid entry counts / doc postings / fanout).
    dkstats: RwLock<DeltaStats>,
    meta_page: PageId,
    persisted_symbols: AtomicUsize,
}

// aux key tags
const AUX_SYMBOL: u8 = 1;
const AUX_ORDER: u8 = 2;
const AUX_DOC: u8 = 3;
const AUX_STATS: u8 = 4;
/// Delete tombstone for a document that lives in a packed segment: the
/// delta cannot unlink it physically, so queries mask the id instead.
/// Compaction drops both the tombstone and the masked document.
const AUX_TOMB: u8 = 5;
/// Per-D-Ancestor-entry planner statistics ([`DkStats`]): key is the tag
/// alone (totals record) or tag ‖ dkid (per-entry record). Maintained
/// incrementally by the insert/remove hooks, persisted at flush.
const AUX_DKSTATS: u8 = 6;

/// In-memory planner statistics for the delta, mirrored to `aux` at flush.
/// Totals are exact for incrementally-built deltas; bulk loads reset the
/// per-dkid map with what can be derived from their input (node counts)
/// and document/fanout columns start over at zero — estimates degrade
/// planner ordering, never correctness.
#[derive(Debug, Default)]
struct DeltaStats {
    map: HashMap<u64, DkStats>,
    /// Entries touched since the last flush.
    dirty: HashSet<u64>,
    totals: SourceTotals,
}

impl Store {
    /// Create a fresh store in `pool`.
    pub fn create(
        pool: Arc<BufferPool>,
        lambda: u64,
        adaptive: bool,
        store_documents: bool,
    ) -> Result<Self> {
        let meta_page = pool.allocate()?;
        let dancestor = BTree::create(Arc::clone(&pool))?;
        let sancestor = BTree::create(Arc::clone(&pool))?;
        let docid = BTree::create(Arc::clone(&pool))?;
        let edges = BTree::create(Arc::clone(&pool))?;
        let aux = BTree::create(Arc::clone(&pool))?;
        let store = Store {
            pool,
            dancestor,
            sancestor,
            docid,
            edges,
            aux,
            meta: RwLock::new(Meta::fresh(lambda, adaptive, store_documents)),
            dkstats: RwLock::new(DeltaStats::default()),
            meta_page,
            persisted_symbols: AtomicUsize::new(0),
        };
        store.write_meta()?;
        Ok(store)
    }

    /// Reopen a store previously flushed to `pool`'s backing file. Returns
    /// the store plus the persisted symbol table and sibling order.
    pub fn open(
        pool: Arc<BufferPool>,
        meta_page: PageId,
    ) -> Result<(Self, SymbolTable, SiblingOrder)> {
        let page = pool.fetch(meta_page)?;
        let buf = page.data();
        if &buf[0..8] != MAGIC {
            return Err(Error::Corrupt("bad index magic".into()));
        }
        let rd = |at: usize| -> u32 { u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) };
        let rd64 = |at: usize| -> u64 { u64::from_le_bytes(buf[at..at + 8].try_into().unwrap()) };
        let rd128 =
            |at: usize| -> u128 { u128::from_le_bytes(buf[at..at + 16].try_into().unwrap()) };
        let roots = [rd(8), rd(12), rd(16), rd(20), rd(24)];
        let meta = Meta {
            next_dkey: rd64(28),
            next_doc: rd64(36),
            root: NodeState {
                n: 0,
                size: vist_seq::MAX_SCOPE,
                next: rd128(44),
                k: rd64(60),
            },
            lambda: rd64(68),
            adaptive: buf[76] != 0,
            store_documents: buf[77] != 0,
            underflows: rd64(78),
            deep_borrows: rd64(86),
            doc_count: rd64(94),
            node_count: rd64(102),
            delta_epoch: rd64(110),
        };
        drop(page);
        let dancestor = BTree::open(Arc::clone(&pool), roots[0])?;
        let sancestor = BTree::open(Arc::clone(&pool), roots[1])?;
        let docid = BTree::open(Arc::clone(&pool), roots[2])?;
        let edges = BTree::open(Arc::clone(&pool), roots[3])?;
        let aux = BTree::open(Arc::clone(&pool), roots[4])?;
        let store = Store {
            pool,
            dancestor,
            sancestor,
            docid,
            edges,
            aux,
            meta: RwLock::new(meta),
            dkstats: RwLock::new(DeltaStats::default()),
            meta_page,
            persisted_symbols: AtomicUsize::new(0),
        };
        store.load_dkid_stats()?;
        let (table, order) = store.load_table_and_order()?;
        store
            .persisted_symbols
            .store(table.len(), Ordering::Relaxed);
        Ok((store, table, order))
    }

    /// Shared view of the persisted counters.
    pub fn meta(&self) -> RwLockReadGuard<'_, Meta> {
        self.meta.read()
    }

    /// Exclusive view of the persisted counters. Callers must be serialized
    /// by the index writer lock; do not hold the guard across B+Tree calls
    /// that themselves take `meta_mut`.
    pub fn meta_mut(&self) -> RwLockWriteGuard<'_, Meta> {
        self.meta.write()
    }

    fn write_meta(&self) -> Result<()> {
        let meta = self.meta.read();
        let mut page = self.pool.fetch_mut(self.meta_page)?;
        let buf = page.data_mut();
        buf[0..8].copy_from_slice(MAGIC);
        let roots = [
            self.dancestor.root_page(),
            self.sancestor.root_page(),
            self.docid.root_page(),
            self.edges.root_page(),
            self.aux.root_page(),
        ];
        for (i, r) in roots.iter().enumerate() {
            buf[8 + 4 * i..12 + 4 * i].copy_from_slice(&r.to_le_bytes());
        }
        buf[28..36].copy_from_slice(&meta.next_dkey.to_le_bytes());
        buf[36..44].copy_from_slice(&meta.next_doc.to_le_bytes());
        buf[44..60].copy_from_slice(&meta.root.next.to_le_bytes());
        buf[60..68].copy_from_slice(&meta.root.k.to_le_bytes());
        buf[68..76].copy_from_slice(&meta.lambda.to_le_bytes());
        buf[76] = u8::from(meta.adaptive);
        buf[77] = u8::from(meta.store_documents);
        buf[78..86].copy_from_slice(&meta.underflows.to_le_bytes());
        buf[86..94].copy_from_slice(&meta.deep_borrows.to_le_bytes());
        buf[94..102].copy_from_slice(&meta.doc_count.to_le_bytes());
        buf[102..110].copy_from_slice(&meta.node_count.to_le_bytes());
        buf[110..118].copy_from_slice(&meta.delta_epoch.to_le_bytes());
        Ok(())
    }

    /// Persist counters, tree roots, new symbols, and the sibling order, then
    /// flush the pool to the backing store.
    pub fn flush(&self, table: &SymbolTable, order: &SiblingOrder) -> Result<()> {
        // Append newly interned symbols.
        for id in self.persisted_symbols.load(Ordering::Relaxed)..table.len() {
            let sym = vist_seq::Symbol(id as u32);
            let mut k = KeyWriter::new();
            k.u8(AUX_SYMBOL).u32(id as u32);
            self.aux.insert(k.as_slice(), table.name(sym).as_bytes())?;
        }
        self.persisted_symbols.store(table.len(), Ordering::Relaxed);
        // Order (rewritten each flush; small).
        if let SiblingOrder::Dtd(names) = order {
            for (i, n) in names.iter().enumerate() {
                let mut k = KeyWriter::new();
                k.u8(AUX_ORDER).u32(i as u32);
                self.aux.insert(k.as_slice(), n.as_bytes())?;
            }
        }
        self.persist_dkid_stats()?;
        self.write_meta()?;
        self.pool.flush()?;
        Ok(())
    }

    /// Write dirty planner-statistics entries (and the totals record) to
    /// `aux` so they survive reopen.
    fn persist_dkid_stats(&self) -> Result<()> {
        // Snapshot under the lock, write outside it: aux inserts must not
        // run while the stats lock is held (insert hooks take it too).
        // Sorted so the write pattern (and hence the page-level I/O trace)
        // is deterministic for a given workload — the crash sweep relies
        // on identical runs producing identical op sequences.
        let (dirty, totals) = {
            let mut st = self.dkstats.write();
            let mut dirty: Vec<(u64, DkStats)> = st
                .dirty
                .iter()
                .map(|&id| (id, st.map.get(&id).copied().unwrap_or_default()))
                .collect();
            dirty.sort_unstable_by_key(|&(id, _)| id);
            st.dirty.clear();
            (dirty, st.totals)
        };
        for (id, s) in dirty {
            let mut k = KeyWriter::with_capacity(9);
            k.u8(AUX_DKSTATS).u64(id);
            let mut v = [0u8; 24];
            v[0..8].copy_from_slice(&s.nodes.to_le_bytes());
            v[8..16].copy_from_slice(&s.docs.to_le_bytes());
            v[16..24].copy_from_slice(&s.fanout.to_le_bytes());
            self.aux.insert(k.as_slice(), &v)?;
        }
        let mut v = [0u8; 16];
        v[0..8].copy_from_slice(&totals.nodes.to_le_bytes());
        v[8..16].copy_from_slice(&totals.postings.to_le_bytes());
        self.aux.insert(&[AUX_DKSTATS], &v)?;
        Ok(())
    }

    /// Load persisted planner statistics (the tag-only key is the totals
    /// record, tag ‖ dkid keys are per-entry records).
    fn load_dkid_stats(&self) -> Result<()> {
        let mut st = self.dkstats.write();
        for item in self.aux.scan_prefix(&[AUX_DKSTATS])? {
            let (k, v) = item?;
            if k.len() == 1 {
                if v.len() != 16 {
                    return Err(Error::Corrupt("bad stats totals record".into()));
                }
                st.totals = SourceTotals {
                    nodes: u64::from_le_bytes(v[0..8].try_into().unwrap()),
                    postings: u64::from_le_bytes(v[8..16].try_into().unwrap()),
                };
                continue;
            }
            if k.len() != 9 || v.len() != 24 {
                return Err(Error::Corrupt("bad dkid stats record".into()));
            }
            let id = u64::from_be_bytes(k[1..9].try_into().unwrap());
            st.map.insert(
                id,
                DkStats {
                    nodes: u64::from_le_bytes(v[0..8].try_into().unwrap()),
                    docs: u64::from_le_bytes(v[8..16].try_into().unwrap()),
                    fanout: u64::from_le_bytes(v[16..24].try_into().unwrap()),
                },
            );
        }
        Ok(())
    }

    // ----- planner statistics -----

    /// Planner statistics for one D-Ancestor entry of the delta.
    #[must_use]
    pub fn dkid_stats(&self, dkid: u64) -> Option<DkStats> {
        self.dkstats.read().map.get(&dkid).copied()
    }

    /// Delta-wide statistic totals (S-Ancestor entries, DocId postings).
    #[must_use]
    pub fn stats_totals(&self) -> SourceTotals {
        self.dkstats.read().totals
    }

    /// Record an S-Ancestor node added under `dkid`.
    pub(crate) fn stats_node_added(&self, dkid: u64) {
        let mut st = self.dkstats.write();
        st.map.entry(dkid).or_default().nodes += 1;
        st.totals.nodes += 1;
        st.dirty.insert(dkid);
    }

    /// Record a child node allocated under one of `parent_dkid`'s nodes.
    pub(crate) fn stats_child_added(&self, parent_dkid: u64) {
        let mut st = self.dkstats.write();
        st.map.entry(parent_dkid).or_default().fanout += 1;
        st.dirty.insert(parent_dkid);
    }

    /// Record a DocId posting attached to one of `dkid`'s nodes.
    pub(crate) fn stats_doc_added(&self, dkid: u64) {
        let mut st = self.dkstats.write();
        st.map.entry(dkid).or_default().docs += 1;
        st.totals.postings += 1;
        st.dirty.insert(dkid);
    }

    /// Record a DocId posting detached from one of `dkid`'s nodes.
    pub(crate) fn stats_doc_removed(&self, dkid: u64) {
        let mut st = self.dkstats.write();
        let e = st.map.entry(dkid).or_default();
        e.docs = e.docs.saturating_sub(1);
        st.totals.postings = st.totals.postings.saturating_sub(1);
        st.dirty.insert(dkid);
    }

    /// Drop every persisted and in-memory planner-statistics record.
    fn reset_dkid_stats(&self) -> Result<()> {
        let keys: Vec<Vec<u8>> = self
            .aux
            .scan_prefix(&[AUX_DKSTATS])?
            .map(|r| r.map(|(k, _)| k))
            .collect::<vist_storage::Result<_>>()?;
        for k in &keys {
            self.aux.delete(k)?;
        }
        *self.dkstats.write() = DeltaStats::default();
        Ok(())
    }

    fn load_table_and_order(&self) -> Result<(SymbolTable, SiblingOrder)> {
        let mut table = SymbolTable::new();
        for item in self.aux.scan_prefix(&[AUX_SYMBOL])? {
            let (_, v) = item?;
            let name =
                String::from_utf8(v).map_err(|_| Error::Corrupt("non-UTF8 symbol name".into()))?;
            table.intern(&name);
        }
        let mut dtd = Vec::new();
        for item in self.aux.scan_prefix(&[AUX_ORDER])? {
            let (_, v) = item?;
            dtd.push(
                String::from_utf8(v).map_err(|_| Error::Corrupt("non-UTF8 order name".into()))?,
            );
        }
        let order = if dtd.is_empty() {
            SiblingOrder::Lexicographic
        } else {
            SiblingOrder::Dtd(dtd)
        };
        Ok((table, order))
    }

    /// The shared buffer pool.
    #[must_use]
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Verify the structural invariants of every B+Tree in the store (used
    /// by `vist check` after crash recovery). Returns one entry per tree:
    /// `(name, None)` for a clean tree, `(name, Some(message))` otherwise.
    pub fn verify(&self) -> Vec<(&'static str, Option<String>)> {
        let trees: [(&'static str, &BTree); 5] = [
            ("dancestor", &self.dancestor),
            ("sancestor", &self.sancestor),
            ("docid", &self.docid),
            ("edges", &self.edges),
            ("aux", &self.aux),
        ];
        trees
            .into_iter()
            .map(|(name, tree)| (name, tree.verify().err().map(|e| e.to_string())))
            .collect()
    }

    // ----- D-Ancestor tree -----

    /// Look up the id of a D-Ancestor key.
    pub fn dkey_get(&self, dkey: &[u8]) -> Result<Option<u64>> {
        Ok(self
            .dancestor
            .get(dkey)?
            .map(|v| u64::from_le_bytes(v.try_into().expect("dkey id width"))))
    }

    /// Look up or allocate the id of a D-Ancestor key. Callers must be
    /// serialized by the index writer lock (ids would race otherwise).
    pub fn dkey_get_or_create(&self, dkey: &[u8]) -> Result<u64> {
        if let Some(id) = self.dkey_get(dkey)? {
            return Ok(id);
        }
        let id = {
            let mut meta = self.meta.write();
            let id = meta.next_dkey;
            meta.next_dkey += 1;
            id
        };
        self.dancestor.insert(dkey, &id.to_le_bytes())?;
        Ok(id)
    }

    /// Scan D-Ancestor keys in `[lo, hi)`, returning `(dkey, id)` pairs.
    pub fn dkey_scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Vec<u8>, u64)>> {
        let mut out = Vec::new();
        self.dkey_scan_with(lo, hi, |k, id| out.push((k.to_vec(), id)))?;
        Ok(out)
    }

    /// Streaming variant of [`Store::dkey_scan`]: `f(dkey, id)` is invoked
    /// per entry in key order, with the key borrowed from the leaf page —
    /// no intermediate `Vec`. A page latch is held across calls, so `f`
    /// must not touch the buffer pool (see [`BTree::for_each_in`]).
    pub fn dkey_scan_with(
        &self,
        lo: &[u8],
        hi: &[u8],
        mut f: impl FnMut(&[u8], u64),
    ) -> Result<()> {
        self.dancestor.for_each_in(lo..hi, |k, v| {
            f(k, u64::from_le_bytes(v.try_into().expect("dkey id width")));
            std::ops::ControlFlow::Continue(())
        })?;
        Ok(())
    }

    // ----- S-Ancestor tree -----

    pub(crate) fn sanc_key(dkey_id: u64, n: u128) -> Vec<u8> {
        let mut k = KeyWriter::with_capacity(24);
        k.u64(dkey_id).u128(n);
        k.finish()
    }

    pub(crate) fn encode_node(state: &NodeState) -> [u8; 40] {
        let mut v = [0u8; 40];
        v[0..16].copy_from_slice(&state.size.to_le_bytes());
        v[16..32].copy_from_slice(&state.next.to_le_bytes());
        v[32..40].copy_from_slice(&state.k.to_le_bytes());
        v
    }

    pub(crate) fn decode_node(n: u128, v: &[u8]) -> NodeState {
        NodeState {
            n,
            size: u128::from_le_bytes(v[0..16].try_into().expect("node size")),
            next: u128::from_le_bytes(v[16..32].try_into().expect("node next")),
            k: u64::from_le_bytes(v[32..40].try_into().expect("node k")),
        }
    }

    /// Read a node's allocation state.
    pub fn node_get(&self, dkey_id: u64, n: u128) -> Result<Option<NodeState>> {
        Ok(self
            .sancestor
            .get(&Self::sanc_key(dkey_id, n))?
            .map(|v| Self::decode_node(n, &v)))
    }

    /// Write a node's allocation state.
    pub fn node_put(&self, dkey_id: u64, state: &NodeState) -> Result<()> {
        self.sancestor
            .insert(&Self::sanc_key(dkey_id, state.n), &Self::encode_node(state))?;
        Ok(())
    }

    /// All nodes of D-Ancestor entry `dkey_id` with label strictly inside
    /// `(lo, hi)` — the paper's S-Ancestorship range query.
    pub fn nodes_in_scope(&self, dkey_id: u64, lo: u128, hi: u128) -> Result<Vec<NodeState>> {
        let mut out = Vec::new();
        self.nodes_in_scope_with(dkey_id, lo, hi, |node| out.push(node))?;
        Ok(out)
    }

    /// Streaming variant of [`Store::nodes_in_scope`]: `f` is invoked per
    /// node in label order without materializing a `Vec`. A page latch is
    /// held across calls, so `f` must not touch the buffer pool (see
    /// [`BTree::for_each_in`]).
    pub fn nodes_in_scope_with(
        &self,
        dkey_id: u64,
        lo: u128,
        hi: u128,
        mut f: impl FnMut(NodeState),
    ) -> Result<()> {
        let lo_key = Self::sanc_key(dkey_id, lo);
        let hi_key = Self::sanc_key(dkey_id, hi);
        self.sancestor.for_each_in(
            (
                std::ops::Bound::Excluded(lo_key.as_slice()),
                std::ops::Bound::Excluded(hi_key.as_slice()),
            ),
            |k, v| {
                let n = u128::from_be_bytes(k[8..24].try_into().expect("sanc key n"));
                f(Self::decode_node(n, v));
                std::ops::ControlFlow::Continue(())
            },
        )?;
        Ok(())
    }

    // ----- edges tree -----

    fn edge_key(parent_n: u128, dkey_id: u64) -> Vec<u8> {
        let mut k = KeyWriter::with_capacity(24);
        k.u128(parent_n).u64(dkey_id);
        k.finish()
    }

    /// The immediate child of node `parent_n` for D-Ancestor entry `dkey_id`.
    pub fn edge_get(&self, parent_n: u128, dkey_id: u64) -> Result<Option<u128>> {
        Ok(self
            .edges
            .get(&Self::edge_key(parent_n, dkey_id))?
            .map(|v| u128::from_le_bytes(v.try_into().expect("edge value"))))
    }

    /// Record the immediate child of `parent_n` for `dkey_id`.
    pub fn edge_put(&self, parent_n: u128, dkey_id: u64, child_n: u128) -> Result<()> {
        self.edges
            .insert(&Self::edge_key(parent_n, dkey_id), &child_n.to_le_bytes())?;
        Ok(())
    }

    // ----- DocId tree -----

    pub(crate) fn docid_key(n: u128, doc: DocId) -> Vec<u8> {
        let mut k = KeyWriter::with_capacity(24);
        k.u128(n).u64(doc);
        k.finish()
    }

    /// Attach a document id to node `n`.
    pub fn docid_put(&self, n: u128, doc: DocId) -> Result<()> {
        self.docid.insert(&Self::docid_key(n, doc), &[])?;
        Ok(())
    }

    /// Detach a document id from node `n`; returns whether it was present.
    pub fn docid_delete(&self, n: u128, doc: DocId) -> Result<bool> {
        Ok(self.docid.delete(&Self::docid_key(n, doc))?.is_some())
    }

    /// All document ids attached to nodes with labels in `[lo, hi)` — the
    /// paper's final DocId range query.
    pub fn docids_in_range(&self, lo: u128, hi: u128) -> Result<Vec<DocId>> {
        let mut out = Vec::new();
        self.docids_in_range_with(lo, hi, |doc| out.push(doc))?;
        Ok(out)
    }

    /// Streaming variant of [`Store::docids_in_range`]: `f(doc)` is invoked
    /// per attached document id in label order. A page latch is held across
    /// calls, so `f` must not touch the buffer pool (see
    /// [`BTree::for_each_in`]).
    pub fn docids_in_range_with(&self, lo: u128, hi: u128, mut f: impl FnMut(DocId)) -> Result<()> {
        let lo_key = Self::docid_key(lo, 0);
        let hi_key = Self::docid_key(hi, 0);
        self.docid
            .for_each_in(lo_key.as_slice()..hi_key.as_slice(), |k, _| {
                f(u64::from_be_bytes(k[16..24].try_into().expect("docid key")));
                std::ops::ControlFlow::Continue(())
            })?;
        Ok(())
    }

    /// Like [`Store::docids_in_range_with`] but hands `f` each posting's
    /// label as well — the planner's sweep strategy filters labels against
    /// its merged scope list while scanning the covering range once.
    pub fn docids_in_range_keyed_with(
        &self,
        lo: u128,
        hi: u128,
        mut f: impl FnMut(u128, DocId),
    ) -> Result<()> {
        let lo_key = Self::docid_key(lo, 0);
        let hi_key = Self::docid_key(hi, 0);
        self.docid
            .for_each_in(lo_key.as_slice()..hi_key.as_slice(), |k, _| {
                let n = u128::from_be_bytes(k[0..16].try_into().expect("docid key n"));
                let doc = u64::from_be_bytes(k[16..24].try_into().expect("docid key doc"));
                f(n, doc);
                std::ops::ControlFlow::Continue(())
            })?;
        Ok(())
    }

    // ----- stored documents (aux, chunked) -----

    pub(crate) fn doc_chunk_key(doc: DocId, chunk: u32) -> Vec<u8> {
        let mut k = KeyWriter::with_capacity(13);
        k.u8(AUX_DOC).u64(doc).u32(chunk);
        k.finish()
    }

    /// Store a document's XML text (chunked to fit pages).
    pub fn doc_put(&self, doc: DocId, xml: &[u8]) -> Result<()> {
        let chunk_size = self.aux.max_record() - 16;
        for (i, chunk) in xml.chunks(chunk_size.max(1)).enumerate() {
            self.aux
                .insert(&Self::doc_chunk_key(doc, i as u32), chunk)?;
        }
        // Empty documents still need a presence marker.
        if xml.is_empty() {
            self.aux.insert(&Self::doc_chunk_key(doc, 0), &[])?;
        }
        Ok(())
    }

    /// Fetch a stored document's XML text.
    pub fn doc_get(&self, doc: DocId) -> Result<Option<Vec<u8>>> {
        let mut prefix = KeyWriter::with_capacity(9);
        prefix.u8(AUX_DOC).u64(doc);
        let mut out = Vec::new();
        let mut found = false;
        for item in self.aux.scan_prefix(prefix.as_slice())? {
            let (_, v) = item?;
            out.extend_from_slice(&v);
            found = true;
        }
        Ok(found.then_some(out))
    }

    /// Remove a stored document's XML text; returns whether it existed.
    pub fn doc_remove(&self, doc: DocId) -> Result<bool> {
        let mut prefix = KeyWriter::with_capacity(9);
        prefix.u8(AUX_DOC).u64(doc);
        let keys: Vec<Vec<u8>> = self
            .aux
            .scan_prefix(prefix.as_slice())?
            .map(|r| r.map(|(k, _)| k))
            .collect::<vist_storage::Result<_>>()?;
        for k in &keys {
            self.aux.delete(k)?;
        }
        Ok(!keys.is_empty())
    }

    /// Iterate all stored document ids.
    pub fn doc_ids(&self) -> Result<Vec<DocId>> {
        let mut out = Vec::new();
        let mut last = None;
        for item in self.aux.scan_prefix(&[AUX_DOC])? {
            let (k, _) = item?;
            let id = u64::from_be_bytes(k[1..9].try_into().expect("doc key"));
            if last != Some(id) {
                out.push(id);
                last = Some(id);
            }
        }
        Ok(out)
    }

    // ----- delete tombstones (aux) -----

    fn tomb_key(doc: DocId) -> Vec<u8> {
        let mut k = KeyWriter::with_capacity(9);
        k.u8(AUX_TOMB).u64(doc);
        k.finish()
    }

    /// Mark a segment-resident document as deleted.
    pub(crate) fn tomb_put(&self, doc: DocId) -> Result<()> {
        self.aux.insert(&Self::tomb_key(doc), &[])?;
        Ok(())
    }

    /// Whether `doc` carries a delete tombstone.
    pub(crate) fn tomb_contains(&self, doc: DocId) -> Result<bool> {
        Ok(self.aux.get(&Self::tomb_key(doc))?.is_some())
    }

    /// All tombstoned document ids, ascending.
    pub(crate) fn tomb_ids(&self) -> Result<Vec<DocId>> {
        let mut out = Vec::new();
        for item in self.aux.scan_prefix(&[AUX_TOMB])? {
            let (k, _) = item?;
            out.push(u64::from_be_bytes(
                k[1..9].try_into().expect("tomb key width"),
            ));
        }
        Ok(out)
    }

    /// Truncate the delta after a compaction folded its contents into a
    /// packed segment: every index tree is emptied (pages freed), stored
    /// documents and tombstones are dropped, and the per-delta counters
    /// reset — while the global state (symbol table, sibling order, stats
    /// model, `next_doc`, `doc_count`) survives. `new_epoch` stamps the
    /// truncation so a reopen can tell whether it was persisted (see
    /// [`Meta::delta_epoch`]). Callers must hold the writer lock *and*
    /// exclude readers (page frees), and must flush afterwards.
    pub(crate) fn clear_delta(&self, new_epoch: u64) -> Result<()> {
        self.dancestor.clear()?;
        self.sancestor.clear()?;
        self.docid.clear()?;
        self.edges.clear()?;
        for tag in [AUX_DOC, AUX_TOMB] {
            let keys: Vec<Vec<u8>> = self
                .aux
                .scan_prefix(&[tag])?
                .map(|r| r.map(|(k, _)| k))
                .collect::<vist_storage::Result<_>>()?;
            for k in &keys {
                self.aux.delete(k)?;
            }
        }
        self.reset_dkid_stats()?;
        let mut meta = self.meta.write();
        meta.next_dkey = 0;
        meta.root = NodeState {
            n: 0,
            size: vist_seq::MAX_SCOPE,
            next: 1,
            k: 0,
        };
        meta.node_count = 0;
        meta.delta_epoch = new_epoch;
        Ok(())
    }

    /// Total bytes of the backing store.
    #[must_use]
    pub fn store_bytes(&self) -> u64 {
        self.pool.store_bytes()
    }

    /// Replace the D-Ancestor tree with a bulk-loaded one (static builds).
    /// Entries are sorted internally; ids must be unique per key.
    pub fn bulk_load_dkeys(&mut self, mut entries: Vec<(Vec<u8>, u64)>) -> Result<()> {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        {
            let mut meta = self.meta.write();
            meta.next_dkey = meta.next_dkey.max(entries.len() as u64);
        }
        let items = entries
            .into_iter()
            .map(|(k, id)| (k, id.to_le_bytes().to_vec()));
        let fresh = BTree::bulk_load(Arc::clone(&self.pool), items.collect::<Vec<_>>())?;
        // Free the replaced tree's pages — without this every rebuild
        // leaked the old tree and the store grew monotonically.
        std::mem::replace(&mut self.dancestor, fresh).destroy()?;
        Ok(())
    }

    /// Replace the S-Ancestor tree with a bulk-loaded one (static builds).
    /// Planner statistics are rebuilt from the input: per-dkid node counts
    /// are exact, document and fanout columns restart at zero (a documented
    /// estimate — ordering quality degrades, correctness is unaffected).
    pub fn bulk_load_nodes(&mut self, mut nodes: Vec<(u64, NodeState)>) -> Result<()> {
        nodes.sort_by_key(|(dkid, st)| (*dkid, st.n));
        self.reset_dkid_stats()?;
        {
            let mut st = self.dkstats.write();
            for (dkid, _) in &nodes {
                st.map.entry(*dkid).or_default().nodes += 1;
                st.dirty.insert(*dkid);
            }
            st.totals.nodes = nodes.len() as u64;
        }
        let items: Vec<(Vec<u8>, Vec<u8>)> = nodes
            .into_iter()
            .map(|(dkid, st)| (Self::sanc_key(dkid, st.n), Self::encode_node(&st).to_vec()))
            .collect();
        self.meta.write().node_count = items.len() as u64;
        let fresh = BTree::bulk_load(Arc::clone(&self.pool), items)?;
        std::mem::replace(&mut self.sancestor, fresh).destroy()?;
        Ok(())
    }

    /// Replace the DocId tree with a bulk-loaded one (static builds). The
    /// planner's posting total is reset to the entry count (per-dkid doc
    /// counts stay wherever [`Store::bulk_load_nodes`] left them).
    pub fn bulk_load_docids(&mut self, mut entries: Vec<(u128, DocId)>) -> Result<()> {
        entries.sort_unstable();
        self.dkstats.write().totals.postings = entries.len() as u64;
        let items: Vec<(Vec<u8>, Vec<u8>)> = entries
            .into_iter()
            .map(|(n, doc)| (Self::docid_key(n, doc), Vec::new()))
            .collect();
        let fresh = BTree::bulk_load(Arc::clone(&self.pool), items)?;
        std::mem::replace(&mut self.docid, fresh).destroy()?;
        Ok(())
    }

    /// Persist a statistics model (allocation clues) so it survives reopen.
    pub fn save_stats_model(&self, model: &crate::alloc::StatsModel) -> Result<()> {
        for (cur, next, p) in model.to_triples() {
            let mut k = vec![AUX_STATS];
            k.extend_from_slice(&cur.encode());
            k.extend_from_slice(&next.encode());
            self.aux.insert(&k, &p.to_le_bytes())?;
        }
        Ok(())
    }

    /// Load a persisted statistics model, if any transitions were saved.
    pub fn load_stats_model(&self) -> Result<Option<crate::alloc::StatsModel>> {
        let mut triples = Vec::new();
        for item in self.aux.scan_prefix(&[AUX_STATS])? {
            let (k, v) = item?;
            let (cur, used) = vist_seq::Sym::decode(&k[1..]);
            let (next, _) = vist_seq::Sym::decode(&k[1 + used..]);
            let p = f64::from_le_bytes(
                v.try_into()
                    .map_err(|_| Error::Corrupt("bad stats value".into()))?,
            );
            triples.push((cur, next, p));
        }
        if triples.is_empty() {
            Ok(None)
        } else {
            Ok(Some(crate::alloc::StatsModel::from_triples(triples)))
        }
    }

    /// Per-tree space accounting (O(pages); for experiments/tooling).
    pub fn tree_breakdown(&self) -> Result<StoreBreakdown> {
        Ok(StoreBreakdown {
            dancestor: self.dancestor.tree_stats()?,
            sancestor: self.sancestor.tree_stats()?,
            docid: self.docid.tree_stats()?,
            edges: self.edges.tree_stats()?,
            aux: self.aux.tree_stats()?,
            stats: vist_btree::TreeStats::default(),
        })
    }
}

/// Space statistics of every tree in the store (Figure 11a's breakdown).
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreBreakdown {
    /// The D-Ancestor tree.
    pub dancestor: vist_btree::TreeStats,
    /// The combined S-Ancestor tree.
    pub sancestor: vist_btree::TreeStats,
    /// The DocId tree.
    pub docid: vist_btree::TreeStats,
    /// The insert-path edges tree.
    pub edges: vist_btree::TreeStats,
    /// Symbol table / order / stored documents.
    pub aux: vist_btree::TreeStats,
    /// The packed statistics tree (segments only — the delta keeps its
    /// planner statistics inside `aux`).
    pub stats: vist_btree::TreeStats,
}

impl StoreBreakdown {
    /// The paper's "combined D-Ancestor and S-Ancestor B+Trees" bytes.
    #[must_use]
    pub fn ds_ancestor_bytes(&self) -> u64 {
        self.dancestor.total_bytes + self.sancestor.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vist_storage::{FilePager, MemPager};

    fn mem_store() -> Store {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 128));
        Store::create(pool, 2, true, true).unwrap()
    }

    #[test]
    fn dkey_ids_are_stable_and_dense() {
        let s = mem_store();
        let a = s.dkey_get_or_create(b"alpha").unwrap();
        let b = s.dkey_get_or_create(b"beta").unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.dkey_get_or_create(b"alpha").unwrap(), 0);
        assert_eq!(s.dkey_get(b"gamma").unwrap(), None);
    }

    #[test]
    fn node_state_roundtrip_and_scope_scan() {
        let s = mem_store();
        let id = s.dkey_get_or_create(b"k").unwrap();
        for n in [10u128, 20, 30] {
            s.node_put(
                id,
                &NodeState {
                    n,
                    size: 5,
                    next: n + 1,
                    k: 0,
                },
            )
            .unwrap();
        }
        assert_eq!(
            s.node_get(id, 20).unwrap(),
            Some(NodeState {
                n: 20,
                size: 5,
                next: 21,
                k: 0
            })
        );
        assert_eq!(s.node_get(id, 21).unwrap(), None);
        // (10, 30) exclusive: only n=20.
        let hits = s.nodes_in_scope(id, 10, 30).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].n, 20);
        // Other dkey ids are invisible.
        let other = s.dkey_get_or_create(b"other").unwrap();
        assert!(s.nodes_in_scope(other, 0, 1000).unwrap().is_empty());
    }

    #[test]
    fn docid_range_queries() {
        let s = mem_store();
        s.docid_put(100, 1).unwrap();
        s.docid_put(100, 2).unwrap();
        s.docid_put(150, 3).unwrap();
        s.docid_put(200, 4).unwrap();
        assert_eq!(s.docids_in_range(100, 200).unwrap(), vec![1, 2, 3]);
        assert_eq!(s.docids_in_range(100, 201).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(s.docids_in_range(101, 150).unwrap(), Vec::<DocId>::new());
        assert!(s.docid_delete(100, 2).unwrap());
        assert!(!s.docid_delete(100, 2).unwrap());
        assert_eq!(s.docids_in_range(100, 200).unwrap(), vec![1, 3]);
    }

    #[test]
    fn edges_navigation() {
        let s = mem_store();
        s.edge_put(0, 7, 42).unwrap();
        assert_eq!(s.edge_get(0, 7).unwrap(), Some(42));
        assert_eq!(s.edge_get(0, 8).unwrap(), None);
        assert_eq!(s.edge_get(1, 7).unwrap(), None);
    }

    #[test]
    fn documents_chunked_roundtrip() {
        let s = mem_store();
        let small = b"<a/>".to_vec();
        let big = vec![b'x'; 20_000]; // spans many chunks
        s.doc_put(1, &small).unwrap();
        s.doc_put(2, &big).unwrap();
        assert_eq!(s.doc_get(1).unwrap(), Some(small));
        assert_eq!(s.doc_get(2).unwrap(), Some(big));
        assert_eq!(s.doc_get(3).unwrap(), None);
        assert_eq!(s.doc_ids().unwrap(), vec![1, 2]);
        assert!(s.doc_remove(2).unwrap());
        assert_eq!(s.doc_get(2).unwrap(), None);
        assert_eq!(s.doc_ids().unwrap(), vec![1]);
    }

    #[test]
    fn flush_and_reopen_preserves_everything() {
        let path = std::env::temp_dir().join(format!("vist-store-{}", std::process::id()));
        let meta_page;
        {
            let pager = FilePager::create(&path, 4096).unwrap();
            let pool = Arc::new(BufferPool::with_capacity(pager, 64));
            let s = Store::create(pool, 3, true, true).unwrap();
            meta_page = 1; // first allocation in a FilePager
            let id = s.dkey_get_or_create(b"key1").unwrap();
            s.node_put(
                id,
                &NodeState {
                    n: 5,
                    size: 100,
                    next: 6,
                    k: 2,
                },
            )
            .unwrap();
            s.docid_put(5, 77).unwrap();
            s.doc_put(77, b"<x/>").unwrap();
            s.meta_mut().next_doc = 78;
            s.meta_mut().doc_count = 1;
            let mut table = SymbolTable::new();
            table.intern("purchase");
            table.intern("seller");
            s.flush(&table, &SiblingOrder::Dtd(vec!["purchase".into()]))
                .unwrap();
        }
        {
            let pager = FilePager::open(&path).unwrap();
            let pool = Arc::new(BufferPool::with_capacity(pager, 64));
            let (s, table, order) = Store::open(pool, meta_page).unwrap();
            assert_eq!(s.meta().lambda, 3);
            assert_eq!(s.meta().next_doc, 78);
            assert_eq!(s.meta().doc_count, 1);
            assert_eq!(table.len(), 2);
            assert!(table.lookup("seller").is_some());
            assert!(matches!(order, SiblingOrder::Dtd(v) if v == vec!["purchase".to_string()]));
            let id = s.dkey_get(b"key1").unwrap().unwrap();
            assert_eq!(
                s.node_get(id, 5).unwrap(),
                Some(NodeState {
                    n: 5,
                    size: 100,
                    next: 6,
                    k: 2
                })
            );
            assert_eq!(s.docids_in_range(5, 6).unwrap(), vec![77]);
            assert_eq!(s.doc_get(77).unwrap(), Some(b"<x/>".to_vec()));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bulk_loaders_match_incremental_writes() {
        // Incrementally-built store.
        let a = mem_store();
        let keys = [b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()];
        for k in &keys {
            a.dkey_get_or_create(k).unwrap();
        }
        for (i, n) in [(0u64, 10u128), (0, 20), (1, 15)] {
            a.node_put(
                i,
                &NodeState {
                    n,
                    size: 5,
                    next: n + 1,
                    k: 0,
                },
            )
            .unwrap();
        }
        a.docid_put(10, 1).unwrap();
        a.docid_put(15, 2).unwrap();

        // Bulk-built store (input deliberately unsorted).
        let mut b = mem_store();
        b.bulk_load_dkeys(vec![
            (b"gamma".to_vec(), 2),
            (b"alpha".to_vec(), 0),
            (b"beta".to_vec(), 1),
        ])
        .unwrap();
        b.bulk_load_nodes(vec![
            (
                1,
                NodeState {
                    n: 15,
                    size: 5,
                    next: 16,
                    k: 0,
                },
            ),
            (
                0,
                NodeState {
                    n: 20,
                    size: 5,
                    next: 21,
                    k: 0,
                },
            ),
            (
                0,
                NodeState {
                    n: 10,
                    size: 5,
                    next: 11,
                    k: 0,
                },
            ),
        ])
        .unwrap();
        b.bulk_load_docids(vec![(15, 2), (10, 1)]).unwrap();

        for k in &keys {
            assert_eq!(a.dkey_get(k).unwrap(), b.dkey_get(k).unwrap());
        }
        for (i, n) in [(0u64, 10u128), (0, 20), (1, 15)] {
            assert_eq!(a.node_get(i, n).unwrap(), b.node_get(i, n).unwrap());
        }
        assert_eq!(
            a.docids_in_range(0, 100).unwrap(),
            b.docids_in_range(0, 100).unwrap()
        );
        assert_eq!(
            a.nodes_in_scope(0, 0, 100).unwrap(),
            b.nodes_in_scope(0, 0, 100).unwrap()
        );
        assert_eq!(b.meta().node_count, 3);
    }

    #[test]
    fn repeated_bulk_loads_do_not_leak_pages() {
        let mut s = mem_store();
        let dkeys: Vec<(Vec<u8>, u64)> = (0..500u64)
            .map(|i| (format!("key{i:06}").into_bytes(), i))
            .collect();
        let nodes: Vec<(u64, NodeState)> = (0..500u64)
            .map(|i| {
                (
                    i % 7,
                    NodeState {
                        n: u128::from(i) * 10,
                        size: 5,
                        next: u128::from(i) * 10 + 1,
                        k: 0,
                    },
                )
            })
            .collect();
        let docids: Vec<(u128, DocId)> = (0..500u64).map(|i| (u128::from(i) * 10, i)).collect();
        // Two rounds reach the steady state: a rebuild allocates the new
        // tree before destroying the old one, so the high-water mark is
        // one extra tree set.
        for _ in 0..2 {
            s.bulk_load_dkeys(dkeys.clone()).unwrap();
            s.bulk_load_nodes(nodes.clone()).unwrap();
            s.bulk_load_docids(docids.clone()).unwrap();
        }
        let baseline = s.store_bytes();
        for _ in 0..4 {
            s.bulk_load_dkeys(dkeys.clone()).unwrap();
            s.bulk_load_nodes(nodes.clone()).unwrap();
            s.bulk_load_docids(docids.clone()).unwrap();
        }
        // Replaced trees return their pages to the free list, so repeated
        // rebuilds reuse space instead of growing without bound.
        assert_eq!(
            s.store_bytes(),
            baseline,
            "store grew across identical rebuilds"
        );
        assert_eq!(s.dkey_get(b"key000123").unwrap(), Some(123));
    }

    #[test]
    fn tombstones_roundtrip() {
        let s = mem_store();
        assert!(!s.tomb_contains(7).unwrap());
        s.tomb_put(7).unwrap();
        s.tomb_put(3).unwrap();
        assert!(s.tomb_contains(7).unwrap());
        assert_eq!(s.tomb_ids().unwrap(), vec![3, 7]);
    }

    #[test]
    fn clear_delta_keeps_globals_drops_index() {
        let s = mem_store();
        let id = s.dkey_get_or_create(b"k").unwrap();
        s.node_put(
            id,
            &NodeState {
                n: 5,
                size: 10,
                next: 6,
                k: 0,
            },
        )
        .unwrap();
        s.docid_put(5, 1).unwrap();
        s.doc_put(1, b"<x/>").unwrap();
        s.tomb_put(2).unwrap();
        s.meta_mut().next_doc = 2;
        s.meta_mut().doc_count = 1;
        s.meta_mut().node_count = 1;
        s.clear_delta(1).unwrap();
        assert_eq!(s.dkey_get(b"k").unwrap(), None);
        assert_eq!(s.node_get(id, 5).unwrap(), None);
        assert!(s.docids_in_range(0, 1000).unwrap().is_empty());
        assert_eq!(s.doc_get(1).unwrap(), None);
        assert!(s.tomb_ids().unwrap().is_empty());
        let meta = s.meta();
        assert_eq!(meta.next_dkey, 0);
        assert_eq!(meta.node_count, 0);
        assert_eq!(meta.delta_epoch, 1);
        assert_eq!(meta.next_doc, 2, "global doc counter survives");
        assert_eq!(meta.doc_count, 1, "global doc count survives");
    }

    #[test]
    fn open_rejects_garbage_meta() {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 16));
        let pid = pool.allocate().unwrap();
        assert!(matches!(Store::open(pool, pid), Err(Error::Corrupt(_))));
    }
}
