//! A minimal scoped work-sharing executor for the parallel match engine.
//!
//! Algorithm 2's match tree fans out into independent branches; this module
//! runs those branches on a handful of OS threads with **no external
//! dependencies** (std threads, one mutex, one condvar):
//!
//! * Workers keep a private LIFO stack of frames (depth-first, cache-warm)
//!   and only touch the shared FIFO queue to *donate* the shallow half of
//!   their stack when another worker is starving — work-sharing rather than
//!   per-worker stealing deques, which keeps the implementation ~100 lines
//!   and the common case (deep local expansion) entirely lock-free.
//! * Termination uses an outstanding-items counter: every queued item
//!   counts until the worker that took it has fully drained the local
//!   expansion it seeded. Queue empty + nothing outstanding = done.
//! * [`WorkQueue::stop`] aborts early (first error wins); remaining queued
//!   items are abandoned.
//!
//! The executor acquires **no index locks**: callers run it inside whatever
//! latch scope the query already holds (see `docs/CONCURRENCY.md`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// The shared splitmix64 step used wherever this crate needs cheap seeded
/// pseudo-randomness (the simulation scheduler below, test loops).
pub(crate) fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which queued item [`WorkQueue::take`] hands out next.
///
/// `Fifo` is the production policy (donated subtrees drain oldest-first).
/// `Seeded` is the **simulation scheduler hook**: the `vist-sim` harness
/// drives queries with a seeded pick so one seed explores one specific
/// frame-expansion order, different seeds explore different orders, and any
/// order must produce identical answers — an executable check that no code
/// path depends on scheduling luck. Deterministic given a fixed take
/// sequence (exactly reproducible at one worker; at several workers the OS
/// still interleaves the *takers*, but answers are order-invariant sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum SchedPolicy {
    /// Front-of-queue, the production default.
    #[default]
    Fifo,
    /// Seeded pseudo-random pick among all queued items.
    Seeded(u64),
}

/// Shared state of one parallel run.
pub(crate) struct WorkQueue<T> {
    state: Mutex<QueueState<T>>,
    cond: Condvar,
    /// Number of workers currently blocked waiting for work — the cheap
    /// "is anyone starving?" signal read on the donation fast path.
    waiting: AtomicUsize,
}

struct QueueState<T> {
    /// Queued items; `true` marks a donated (re-shared) item.
    items: VecDeque<(T, bool)>,
    /// Items seeded or donated whose local expansion has not finished.
    outstanding: usize,
    stopped: bool,
    /// Scheduling state: `None` for FIFO, `Some(rng)` for seeded picks.
    sched: Option<u64>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> WorkQueue<T> {
    /// A queue seeded with the initial work items and an explicit
    /// scheduling policy (see [`SchedPolicy`]).
    pub(crate) fn with_policy(seeds: Vec<T>, policy: SchedPolicy) -> Self {
        let outstanding = seeds.len();
        WorkQueue {
            state: Mutex::new(QueueState {
                items: seeds.into_iter().map(|t| (t, false)).collect(),
                outstanding,
                stopped: false,
                sched: match policy {
                    SchedPolicy::Fifo => None,
                    SchedPolicy::Seeded(s) => Some(s),
                },
            }),
            cond: Condvar::new(),
            waiting: AtomicUsize::new(0),
        }
    }

    /// Block until an item is available. `None` means the run is over
    /// (all work finished, or stopped). The boolean is `true` for donated
    /// items — a transfer of work between workers ("steal").
    pub(crate) fn take(&self) -> Option<(T, bool)> {
        let mut st = lock(&self.state);
        loop {
            if st.stopped {
                return None;
            }
            if !st.items.is_empty() {
                let i = match &mut st.sched {
                    None => 0,
                    Some(rng) => (splitmix64(rng) % st.items.len() as u64) as usize,
                };
                return st.items.remove(i);
            }
            if st.outstanding == 0 {
                self.cond.notify_all();
                return None;
            }
            self.waiting.fetch_add(1, Ordering::SeqCst);
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
            self.waiting.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Mark one taken item's expansion as fully drained.
    pub(crate) fn finish_one(&self) {
        let mut st = lock(&self.state);
        st.outstanding -= 1;
        if st.outstanding == 0 && st.items.is_empty() {
            self.cond.notify_all();
        }
    }

    /// `true` when some worker is blocked waiting for work right now —
    /// the (racy, cheap) signal that a donation would be picked up.
    pub(crate) fn is_hungry(&self) -> bool {
        self.waiting.load(Ordering::Relaxed) > 0
    }

    /// Share items with other workers. Returns the number donated.
    pub(crate) fn donate(&self, items: impl IntoIterator<Item = T>) -> usize {
        let mut st = lock(&self.state);
        let before = st.items.len();
        st.items.extend(items.into_iter().map(|t| (t, true)));
        let n = st.items.len() - before;
        st.outstanding += n;
        drop(st);
        if n > 0 {
            self.cond.notify_all();
        }
        n
    }

    /// Abort the run: all pending and future [`WorkQueue::take`] calls
    /// return `None`.
    pub(crate) fn stop(&self) {
        lock(&self.state).stopped = true;
        self.cond.notify_all();
    }
}

/// Convenience wrapper over [`run_workers_with`] fixing the production
/// FIFO policy; only exercised by this module's tests.
#[cfg(test)]
pub(crate) fn run_workers<T, F>(workers: usize, seeds: Vec<T>, body: F)
where
    T: Send,
    F: Fn(usize, &WorkQueue<T>) + Sync,
{
    run_workers_with(workers, seeds, SchedPolicy::Fifo, body);
}

/// Run `body(worker_id, queue)` on `workers` threads — `workers - 1`
/// scoped spawns plus the calling thread as worker 0 — over a queue seeded
/// with `seeds` under the given scheduling policy ([`SchedPolicy`]).
/// Returns when every worker has exited.
pub(crate) fn run_workers_with<T, F>(workers: usize, seeds: Vec<T>, policy: SchedPolicy, body: F)
where
    T: Send,
    F: Fn(usize, &WorkQueue<T>) + Sync,
{
    let queue = WorkQueue::with_policy(seeds, policy);
    if workers <= 1 {
        body(0, &queue);
        return;
    }
    std::thread::scope(|s| {
        for id in 1..workers {
            let queue = &queue;
            let body = &body;
            s.spawn(move || body(id, queue));
        }
        body(0, &queue);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Recursive fan-out: item `depth` spawns two `depth - 1` children;
    /// leaves (depth 0) count. Total leaves = 2^depth.
    fn count_leaves(workers: usize, depth: u32) -> u64 {
        let total = AtomicU64::new(0);
        run_workers(workers, vec![depth], |_, queue| {
            while let Some((seed, _donated)) = queue.take() {
                let mut local = vec![seed];
                while let Some(d) = local.pop() {
                    if d == 0 {
                        total.fetch_add(1, Ordering::Relaxed);
                    } else {
                        local.push(d - 1);
                        local.push(d - 1);
                    }
                    if queue.is_hungry() && local.len() > 1 {
                        let half = local.len() / 2;
                        queue.donate(local.drain(..half));
                    }
                }
                queue.finish_one();
            }
        });
        total.load(Ordering::Relaxed)
    }

    #[test]
    fn all_work_is_executed_exactly_once() {
        for workers in [1, 2, 4, 8] {
            assert_eq!(count_leaves(workers, 12), 1 << 12, "workers={workers}");
        }
    }

    #[test]
    fn empty_seed_terminates() {
        run_workers::<u32, _>(4, Vec::new(), |_, queue| {
            assert!(queue.take().is_none());
        });
    }

    #[test]
    fn stop_aborts_pending_work() {
        let executed = AtomicU64::new(0);
        run_workers(4, (0..1000u32).collect(), |_, queue| {
            while let Some((item, _)) = queue.take() {
                if item == 0 {
                    queue.stop();
                } else {
                    executed.fetch_add(1, Ordering::Relaxed);
                }
                queue.finish_one();
            }
        });
        assert!(executed.load(Ordering::Relaxed) < 1000);
    }

    #[test]
    fn seeded_schedule_executes_all_work() {
        // Same fan-out as `count_leaves`, but under the simulation
        // scheduler: every explored order must still visit every leaf.
        for seed in [1u64, 7, 42] {
            let total = AtomicU64::new(0);
            run_workers_with(2, vec![10u32], SchedPolicy::Seeded(seed), |_, queue| {
                while let Some((seed, _)) = queue.take() {
                    let mut local = vec![seed];
                    while let Some(d) = local.pop() {
                        if d == 0 {
                            total.fetch_add(1, Ordering::Relaxed);
                        } else {
                            local.push(d - 1);
                            local.push(d - 1);
                        }
                        if queue.is_hungry() && local.len() > 1 {
                            let half = local.len() / 2;
                            queue.donate(local.drain(..half));
                        }
                    }
                    queue.finish_one();
                }
            });
            assert_eq!(total.load(Ordering::Relaxed), 1 << 10, "seed={seed}");
        }
    }

    #[test]
    fn seeded_take_order_is_reproducible_and_differs_from_fifo() {
        let order = |policy: SchedPolicy| -> Vec<u32> {
            let got = Mutex::new(Vec::new());
            run_workers_with(1, (0..16u32).collect(), policy, |_, queue| {
                while let Some((x, _)) = queue.take() {
                    got.lock().unwrap().push(x);
                    queue.finish_one();
                }
            });
            got.into_inner().unwrap()
        };
        assert_eq!(order(SchedPolicy::Seeded(9)), order(SchedPolicy::Seeded(9)));
        assert_ne!(order(SchedPolicy::Seeded(9)), order(SchedPolicy::Fifo));
        assert_eq!(order(SchedPolicy::Fifo), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn donated_items_are_flagged() {
        // Single worker: donate to an empty queue, then observe the flag.
        run_workers(1, vec![1u32], |_, queue| {
            let (first, donated) = queue.take().unwrap();
            assert_eq!((first, donated), (1, false));
            assert_eq!(queue.donate([7u32]), 1);
            queue.finish_one();
            let (second, donated) = queue.take().unwrap();
            assert_eq!((second, donated), (7, true));
            queue.finish_one();
            assert!(queue.take().is_none());
        });
    }
}
