//! [`NaiveIndex`] (paper §3.2, Algorithm 1): subsequence matching by direct
//! suffix-tree traversal.
//!
//! The naive method keeps the trie in memory and, for every query element,
//! walks **all** descendants of the current node looking for D-Ancestorship
//! matches — "extremely costly since we need to traverse a large portion of
//! the subtree for each match". It exists as the paper's baseline and as a
//! semantics oracle for RIST/ViST (all three must return identical results).

use std::collections::BTreeSet;

use vist_query::{parse_query, translate, Pattern, QueryElem, TranslateOptions};
use vist_seq::{document_to_sequence, PathSym, Prefix, SiblingOrder, Sym, Symbol, SymbolTable};
use vist_xml::Document;

use crate::error::Result;
use crate::store::DocId;
use crate::trie::Trie;
use crate::vist::QueryOptions;

/// The in-memory naive suffix-tree index.
pub struct NaiveIndex {
    trie: Trie,
    table: SymbolTable,
    order: SiblingOrder,
    next_doc: DocId,
}

impl Default for NaiveIndex {
    fn default() -> Self {
        Self::new(SiblingOrder::Lexicographic)
    }
}

impl NaiveIndex {
    /// An empty naive index.
    #[must_use]
    pub fn new(order: SiblingOrder) -> Self {
        NaiveIndex {
            trie: Trie::new(),
            table: SymbolTable::new(),
            order,
            next_doc: 0,
        }
    }

    /// Insert a document, returning its id.
    pub fn insert_document(&mut self, doc: &Document) -> DocId {
        let seq = document_to_sequence(doc, &mut self.table, &self.order);
        let id = self.next_doc;
        self.next_doc += 1;
        self.trie.insert_sequence(&seq, id);
        id
    }

    /// Number of trie nodes (root included).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.trie.len()
    }

    /// Parse and run a query with Algorithm 1.
    pub fn query(&mut self, expr: &str, opts: &QueryOptions) -> Result<Vec<DocId>> {
        let pattern = parse_query(expr)?.to_pattern();
        self.query_pattern(&pattern, opts)
    }

    /// Run a pre-parsed pattern with Algorithm 1.
    pub fn query_pattern(&mut self, pattern: &Pattern, opts: &QueryOptions) -> Result<Vec<DocId>> {
        let translation = translate(
            pattern,
            &mut self.table,
            &TranslateOptions {
                order: self.order.clone(),
                max_sequences: opts.max_sequences,
            },
        );
        let mut out: BTreeSet<DocId> = BTreeSet::new();
        for qs in &translation.sequences {
            if qs.elems.is_empty() {
                // An all-wildcard query (e.g. `/*`) matches every document.
                let mut docs = Vec::new();
                self.trie.docs_under(0, &mut docs);
                out.extend(docs);
                continue;
            }
            let mut paths = vec![Vec::new(); qs.elems.len()];
            naive_search(&self.trie, 0, &qs.elems, 0, &mut paths, &mut out);
        }
        Ok(out.into_iter().collect())
    }
}

/// Algorithm 1: `NaiveSearch(n, i)` — for each descendant `c` of `n`
/// (S-Ancestorship by traversal), if `c` matches `q_i` (D-Ancestorship by
/// symbol + prefix), recurse on `(c, i+1)`.
fn naive_search(
    trie: &Trie,
    node: usize,
    elems: &[QueryElem],
    qi: usize,
    paths: &mut Vec<Vec<Symbol>>,
    out: &mut BTreeSet<DocId>,
) {
    if qi == elems.len() {
        let mut docs = Vec::new();
        trie.docs_under(node, &mut docs);
        out.extend(docs);
        return;
    }
    let qe = &elems[qi];
    let mut pattern: Vec<PathSym> = match qe.parent {
        Some(p) => paths[p].iter().map(|&s| PathSym::Tag(s)).collect(),
        None => Vec::new(),
    };
    pattern.extend_from_slice(&qe.steps_after_parent);
    let pattern = Prefix(pattern);

    // Walk every descendant of `node` (this is the expensive part the paper
    // replaces with label range queries).
    let mut stack: Vec<usize> = trie.nodes[node].child_order.clone();
    while let Some(c) = stack.pop() {
        stack.extend_from_slice(&trie.nodes[c].child_order);
        let Some((sym, prefix)) = &trie.nodes[c].elem else {
            continue;
        };
        if *sym != qe.sym || !pattern.matches(prefix) {
            continue;
        }
        paths[qi] = prefix.clone();
        if let Sym::Tag(t) = sym {
            paths[qi].push(*t);
        }
        naive_search(trie, c, elems, qi + 1, paths, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vist_xml::parse;

    fn filled() -> NaiveIndex {
        let mut idx = NaiveIndex::default();
        for xml in [
            "<p><s><l>boston</l></s><b><l>newyork</l></b></p>",
            "<p><s><l>tokyo</l></s><b><l>newyork</l></b></p>",
            "<p><s><l>boston</l></s><b><l>paris</l></b></p>",
        ] {
            idx.insert_document(&parse(xml).unwrap());
        }
        idx
    }

    #[test]
    fn naive_finds_paths_branches_wildcards() {
        let mut idx = filled();
        let opts = QueryOptions::default();
        assert_eq!(
            idx.query("/p/s/l[text='boston']", &opts).unwrap(),
            vec![0, 2]
        );
        assert_eq!(
            idx.query("/p[s/l='boston']/b[l='newyork']", &opts).unwrap(),
            vec![0]
        );
        assert_eq!(idx.query("/p/*[l='newyork']", &opts).unwrap(), vec![0, 1]);
        assert_eq!(idx.query("//l[text='paris']", &opts).unwrap(), vec![2]);
        assert_eq!(idx.query("/p//l", &opts).unwrap(), vec![0, 1, 2]);
        assert!(idx.query("/p/s/l[text='mars']", &opts).unwrap().is_empty());
    }

    #[test]
    fn naive_agrees_with_vist_on_table_queries() {
        let xmls = [
            "<site><reg><item location=\"US\"><mail><date>d1</date></mail></item></reg></site>",
            "<site><reg><item location=\"EU\"><mail><date>d2</date></mail></item></reg></site>",
        ];
        let mut naive = NaiveIndex::default();
        let vist = crate::VistIndex::in_memory(crate::IndexOptions::default()).unwrap();
        for x in xmls {
            naive.insert_document(&parse(x).unwrap());
            vist.insert_xml(x).unwrap();
        }
        for q in [
            "/site//item[location='US']/mail/date[text='d1']",
            "/site//item/mail",
            "//date",
        ] {
            let a = naive.query(q, &QueryOptions::default()).unwrap();
            let b = vist.query(q, &QueryOptions::default()).unwrap().doc_ids;
            assert_eq!(a, b, "{q}");
        }
    }
}
