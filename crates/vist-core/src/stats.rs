//! Index-level statistics, reported by the Figure 11 experiments.

use vist_storage::{IoStats, PoolStats};

/// A snapshot of an index's size and health counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Live documents.
    pub documents: u64,
    /// Virtual suffix tree nodes (entries in the S-Ancestor tree).
    pub nodes: u64,
    /// Distinct `(symbol, prefix)` pairs (entries in the D-Ancestor tree).
    pub dkeys: u64,
    /// Within-parent scope underflows (sound tight allocations).
    pub underflows: u64,
    /// Underflows that borrowed from a non-parent ancestor (the paper's
    /// lossy case — affected chains may be missed by scope-range queries).
    pub deep_borrows: u64,
    /// Total bytes of the backing store (the "index size" of Figure 11a).
    pub store_bytes: u64,
    /// Cumulative I/O counters of the shared buffer pool.
    pub io: IoStats,
    /// Per-shard buffer-pool counters (hits, uncontended hits, misses,
    /// write-backs for each lock stripe).
    pub pool: PoolStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_plain_data() {
        let s = IndexStats {
            documents: 1,
            nodes: 2,
            dkeys: 3,
            underflows: 0,
            deep_borrows: 0,
            store_bytes: 4096,
            io: IoStats::default(),
            pool: PoolStats::default(),
        };
        let s2 = s.clone();
        assert_eq!(s, s2);
    }
}
