//! Index-level statistics, reported by the Figure 11 experiments.

use std::sync::atomic::{AtomicU64, Ordering};

use vist_storage::{IoStats, PoolStats};

use crate::search::QueryStats;

/// A snapshot of an index's size and health counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexStats {
    /// Immutable packed segments in the tier (0 for untiered indexes).
    pub segments: u64,
    /// Documents resident in segments (including tombstoned ones — they
    /// still occupy segment space until compaction).
    pub segment_docs: u64,
    /// Total bytes of the segment files.
    pub segment_bytes: u64,
    /// Segment documents masked by a delete tombstone in the delta.
    pub tombstones: u64,
    /// Live documents (delta + segments − tombstones).
    pub documents: u64,
    /// Virtual suffix tree nodes (entries in the S-Ancestor tree).
    pub nodes: u64,
    /// Distinct `(symbol, prefix)` pairs (entries in the D-Ancestor tree).
    pub dkeys: u64,
    /// Within-parent scope underflows (sound tight allocations).
    pub underflows: u64,
    /// Underflows that borrowed from a non-parent ancestor (the paper's
    /// lossy case — affected chains may be missed by scope-range queries).
    pub deep_borrows: u64,
    /// Match frames expanded by the work-list engine, across all queries.
    pub match_work_items: u64,
    /// Frames that changed workers through the shared queue (donations
    /// picked up by a starving worker), across all queries.
    pub match_steals: u64,
    /// Final scopes coalesced away by interval merging before DocId
    /// resolution, across all queries.
    pub match_scopes_merged: u64,
    /// Duplicate wildcard sub-problems skipped by the match engine's
    /// visited sets, across all queries.
    pub match_dedup_skips: u64,
    /// Sequences the planner proved empty and never seeded, across all
    /// queries.
    pub match_planner_seqs_pruned: u64,
    /// D-Ancestor probes issued by the planner (plan-time pattern probes
    /// plus memoized child probes), across all queries.
    pub match_planner_probes: u64,
    /// S-Ancestor descents skipped because a child probe proved the
    /// subtree dead, across all queries.
    pub match_planner_probe_prunes: u64,
    /// DocId resolutions where the planner chose the keyed sweep over
    /// per-scope range jumps, across all queries.
    pub match_planner_docid_sweeps: u64,
    /// Group-commit ingest batches applied ([`crate::VistIndex::insert_batch`]).
    pub ingest_batches: u64,
    /// Documents ingested through batches (a subset of `documents`).
    pub ingest_batch_docs: u64,
    /// D-Ancestor key lookups answered by a batch's private dkey cache.
    pub ingest_dkey_cache_hits: u64,
    /// D-Ancestor key lookups a batch had to send to the B+Tree.
    pub ingest_dkey_cache_misses: u64,
    /// Trie-edge child lookups answered by a batch's private edge cache.
    pub ingest_edge_cache_hits: u64,
    /// Trie-edge child lookups a batch had to send to the B+Tree.
    pub ingest_edge_cache_misses: u64,
    /// Total bytes of the backing store (the "index size" of Figure 11a).
    pub store_bytes: u64,
    /// Cumulative I/O counters of the shared buffer pool — **since the
    /// index was opened**, not since it was created. Reopening resets
    /// every field (including the WAL append/commit and recovery
    /// counters) to zero; the `vist-obs` registry's `vist_storage_*`
    /// metrics keep process-lifetime totals across reopens.
    pub io: IoStats,
    /// Per-shard buffer-pool counters (hits, uncontended hits, misses,
    /// write-backs for each lock stripe).
    pub pool: PoolStats,
}

/// Cumulative parallel-match counters, recorded by every query an index
/// runs. Atomics because queries run under `&self` from many threads.
#[derive(Debug, Default)]
pub struct MatchCounters {
    work_items: AtomicU64,
    steals: AtomicU64,
    scopes_merged: AtomicU64,
    dedup_skips: AtomicU64,
    planner_seqs_pruned: AtomicU64,
    planner_probes: AtomicU64,
    planner_probe_prunes: AtomicU64,
    planner_docid_sweeps: AtomicU64,
}

impl MatchCounters {
    /// Fold one query's engine counters into the running totals.
    pub fn record(&self, stats: &QueryStats) {
        self.work_items
            .fetch_add(stats.work_items, Ordering::Relaxed);
        self.steals.fetch_add(stats.steals, Ordering::Relaxed);
        self.scopes_merged
            .fetch_add(stats.scopes_merged, Ordering::Relaxed);
        self.dedup_skips
            .fetch_add(stats.dedup_skips, Ordering::Relaxed);
        self.planner_seqs_pruned
            .fetch_add(stats.planner_seqs_pruned, Ordering::Relaxed);
        self.planner_probes
            .fetch_add(stats.planner_probes, Ordering::Relaxed);
        self.planner_probe_prunes
            .fetch_add(stats.planner_probe_prunes, Ordering::Relaxed);
        self.planner_docid_sweeps
            .fetch_add(stats.planner_docid_sweeps, Ordering::Relaxed);
    }

    /// The running totals so far.
    pub fn snapshot(&self) -> MatchCountersSnapshot {
        MatchCountersSnapshot {
            work_items: self.work_items.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            scopes_merged: self.scopes_merged.load(Ordering::Relaxed),
            dedup_skips: self.dedup_skips.load(Ordering::Relaxed),
            planner_seqs_pruned: self.planner_seqs_pruned.load(Ordering::Relaxed),
            planner_probes: self.planner_probes.load(Ordering::Relaxed),
            planner_probe_prunes: self.planner_probe_prunes.load(Ordering::Relaxed),
            planner_docid_sweeps: self.planner_docid_sweeps.load(Ordering::Relaxed),
        }
    }
}

/// Cumulative batched-ingest counters, recorded once per
/// [`crate::VistIndex::insert_batch`] group commit. Atomics because
/// batches run under `&self`.
#[derive(Debug, Default)]
pub struct IngestCounters {
    batches: AtomicU64,
    docs: AtomicU64,
    dkey_cache_hits: AtomicU64,
    dkey_cache_misses: AtomicU64,
    edge_cache_hits: AtomicU64,
    edge_cache_misses: AtomicU64,
}

impl IngestCounters {
    /// Fold one committed batch into the running totals.
    pub fn record_batch(
        &self,
        docs: u64,
        dkey_cache_hits: u64,
        dkey_cache_misses: u64,
        edge_cache_hits: u64,
        edge_cache_misses: u64,
    ) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.docs.fetch_add(docs, Ordering::Relaxed);
        self.dkey_cache_hits
            .fetch_add(dkey_cache_hits, Ordering::Relaxed);
        self.dkey_cache_misses
            .fetch_add(dkey_cache_misses, Ordering::Relaxed);
        self.edge_cache_hits
            .fetch_add(edge_cache_hits, Ordering::Relaxed);
        self.edge_cache_misses
            .fetch_add(edge_cache_misses, Ordering::Relaxed);
    }

    /// The running totals so far.
    pub fn snapshot(&self) -> IngestCountersSnapshot {
        IngestCountersSnapshot {
            batches: self.batches.load(Ordering::Relaxed),
            docs: self.docs.load(Ordering::Relaxed),
            dkey_cache_hits: self.dkey_cache_hits.load(Ordering::Relaxed),
            dkey_cache_misses: self.dkey_cache_misses.load(Ordering::Relaxed),
            edge_cache_hits: self.edge_cache_hits.load(Ordering::Relaxed),
            edge_cache_misses: self.edge_cache_misses.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time values of [`IngestCounters`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IngestCountersSnapshot {
    /// Group-commit batches applied.
    pub batches: u64,
    /// Documents ingested through batches.
    pub docs: u64,
    /// Dkey lookups answered by a batch's private cache.
    pub dkey_cache_hits: u64,
    /// Dkey lookups sent to the B+Tree.
    pub dkey_cache_misses: u64,
    /// Edge lookups answered by a batch's private cache.
    pub edge_cache_hits: u64,
    /// Edge lookups sent to the B+Tree.
    pub edge_cache_misses: u64,
}

/// Point-in-time values of [`MatchCounters`]. A named struct (not a
/// tuple) so call sites can't transpose counters when new ones are
/// added.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MatchCountersSnapshot {
    /// Match frames expanded by the work-list engine.
    pub work_items: u64,
    /// Frames that changed workers through the shared queue.
    pub steals: u64,
    /// Final scopes coalesced away by interval merging.
    pub scopes_merged: u64,
    /// Duplicate wildcard sub-problems skipped by the visited sets.
    pub dedup_skips: u64,
    /// Sequences the planner proved empty and never seeded.
    pub planner_seqs_pruned: u64,
    /// D-Ancestor probes issued by the planner.
    pub planner_probes: u64,
    /// S-Ancestor descents skipped by child probes.
    pub planner_probe_prunes: u64,
    /// DocId resolutions done as a keyed sweep.
    pub planner_docid_sweeps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_plain_data() {
        let s = IndexStats {
            segments: 0,
            segment_docs: 0,
            segment_bytes: 0,
            tombstones: 0,
            documents: 1,
            nodes: 2,
            dkeys: 3,
            underflows: 0,
            deep_borrows: 0,
            match_work_items: 0,
            match_steals: 0,
            match_scopes_merged: 0,
            match_dedup_skips: 0,
            match_planner_seqs_pruned: 0,
            match_planner_probes: 0,
            match_planner_probe_prunes: 0,
            match_planner_docid_sweeps: 0,
            ingest_batches: 0,
            ingest_batch_docs: 0,
            ingest_dkey_cache_hits: 0,
            ingest_dkey_cache_misses: 0,
            ingest_edge_cache_hits: 0,
            ingest_edge_cache_misses: 0,
            store_bytes: 4096,
            io: IoStats::default(),
            pool: PoolStats::default(),
        };
        let s2 = s.clone();
        assert_eq!(s, s2);
    }

    #[test]
    fn ingest_counters_accumulate() {
        let c = IngestCounters::default();
        c.record_batch(3, 10, 2, 20, 4);
        c.record_batch(1, 5, 1, 10, 2);
        assert_eq!(
            c.snapshot(),
            IngestCountersSnapshot {
                batches: 2,
                docs: 4,
                dkey_cache_hits: 15,
                dkey_cache_misses: 3,
                edge_cache_hits: 30,
                edge_cache_misses: 6,
            }
        );
    }

    #[test]
    fn match_counters_accumulate() {
        let c = MatchCounters::default();
        let stats = QueryStats {
            work_items: 5,
            steals: 1,
            scopes_merged: 3,
            dedup_skips: 2,
            planner_seqs_pruned: 1,
            planner_probes: 4,
            planner_probe_prunes: 2,
            planner_docid_sweeps: 1,
            ..Default::default()
        };
        c.record(&stats);
        c.record(&stats);
        assert_eq!(
            c.snapshot(),
            MatchCountersSnapshot {
                work_items: 10,
                steals: 2,
                scopes_merged: 6,
                dedup_skips: 4,
                planner_seqs_pruned: 2,
                planner_probes: 8,
                planner_probe_prunes: 4,
                planner_docid_sweeps: 2,
            }
        );
    }
}
