//! Dynamic top-down scope allocation (paper §3.4.1, Algorithm 3).
//!
//! Each virtual-suffix-tree node owns a scope `[n, n+size)`; label `n` is the
//! node itself and children are carved out of the remainder. The paper gives
//! two schemes:
//!
//! * **without clues** (Eq 5–6): the k-th inserted child receives `1/λ` of
//!   the *remaining* scope — `s_k = (r−l−1)(λ−1)^{k−1}/λ^k`. Our allocator
//!   keeps a `next` cursor per node, so `s_k = available / λ` reproduces the
//!   same geometric series with O(1) state and integer arithmetic.
//! * **with clues** (Eq 2–4): a child whose symbol is likely to recur (high
//!   `P_x(y_i)`) receives a proportionally larger subscope. We keep the
//!   cursor formulation and let the probability replace `1/λ`:
//!   `s = available · clamp(P(child | parent), 1/λ_max, 1/λ_min)`. This
//!   preserves the paper's intent (probability-proportional allocation)
//!   while remaining O(1) per allocation; the deviation is documented in
//!   DESIGN.md.
//!
//! A third, default refinement (`adaptive`) grows the divisor with `k`
//! (`λ + k` instead of `λ`), because a fixed λ exhausts the scope after
//! roughly 128·log₂λ⁻¹ children of one hot node (e.g. a million distinct
//! author values under one element) — the *scope underflow* the paper
//! describes. Underflow is handled as in the paper: borrow the remaining
//! labels from the nearest ancestor with spare scope and label the tail of
//! the sequence sequentially.

use std::collections::HashMap;
use std::fmt;

use vist_seq::{Sequence, Sym};

use crate::store::NodeState;

/// Which allocation scheme an index uses.
#[derive(Debug, Clone)]
pub enum AllocatorKind {
    /// Geometric `1/λ` allocation (paper Eq 5–6), optionally adaptive.
    NoClues,
    /// Probability-guided allocation from a [`StatsModel`] (paper Eq 2–4).
    WithClues(StatsModel),
}

/// First-order statistics over structure-encoded sequences: how often each
/// symbol follows each symbol. This is the paper's "semantic and statistical
/// clues" source, collectable from a sample or during data generation
/// ("we collect statistics during data generation for dynamic labeling").
#[derive(Debug, Clone, Default)]
pub struct StatsModel {
    /// `(current symbol → (next symbol → probability))`.
    transitions: HashMap<Sym, HashMap<Sym, f64>>,
}

impl StatsModel {
    /// Build a model by counting symbol transitions in sample sequences.
    #[must_use]
    pub fn from_sequences<'a>(seqs: impl IntoIterator<Item = &'a Sequence>) -> Self {
        let mut counts: HashMap<Sym, HashMap<Sym, u64>> = HashMap::new();
        for seq in seqs {
            for pair in seq.0.windows(2) {
                *counts
                    .entry(pair[0].sym)
                    .or_default()
                    .entry(pair[1].sym)
                    .or_default() += 1;
            }
        }
        let mut transitions = HashMap::new();
        for (cur, nexts) in counts {
            let total: u64 = nexts.values().sum();
            let probs = nexts
                .into_iter()
                .map(|(s, c)| (s, c as f64 / total as f64))
                .collect();
            transitions.insert(cur, probs);
        }
        StatsModel { transitions }
    }

    /// `P(next | cur)`, or `None` when the transition was never observed.
    #[must_use]
    pub fn probability(&self, cur: Sym, next: Sym) -> Option<f64> {
        self.transitions.get(&cur)?.get(&next).copied()
    }

    /// Number of distinct context symbols.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.transitions.len()
    }

    /// Flatten to `(current, next, probability)` triples (persistence).
    #[must_use]
    pub fn to_triples(&self) -> Vec<(Sym, Sym, f64)> {
        let mut out = Vec::new();
        for (cur, nexts) in &self.transitions {
            for (next, p) in nexts {
                out.push((*cur, *next, *p));
            }
        }
        out
    }

    /// Rebuild from `(current, next, probability)` triples.
    #[must_use]
    pub fn from_triples(triples: impl IntoIterator<Item = (Sym, Sym, f64)>) -> Self {
        let mut transitions: HashMap<Sym, HashMap<Sym, f64>> = HashMap::new();
        for (cur, next, p) in triples {
            transitions.entry(cur).or_default().insert(next, p);
        }
        StatsModel { transitions }
    }

    /// `true` when the model has no transitions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }
}

/// A deliberately injected allocation bug, used by the `vist-sim`
/// deterministic simulation harness to validate itself: a harness that
/// cannot catch a known-planted scope bug cannot be trusted to catch an
/// accidental one. Never enabled outside tests and `vist sim --mutate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimMutation {
    /// No injected fault (the only value production code ever sees).
    #[default]
    None,
    /// Child scopes are handed out one label too large, so a node's scope
    /// overhangs into its next sibling's range. S-Ancestor containment is
    /// then wrong by construction: range queries inside the inflated scope
    /// pick up the sibling's subtree, producing false matches that the
    /// naive-oracle diff in `vist-sim` must flag.
    ScopeOffByOne,
}

impl std::str::FromStr for SimMutation {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "none" => Ok(SimMutation::None),
            "scope-off-by-one" => Ok(SimMutation::ScopeOffByOne),
            other => Err(format!(
                "unknown mutation '{other}' (expected none or scope-off-by-one)"
            )),
        }
    }
}

impl fmt::Display for SimMutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimMutation::None => write!(f, "none"),
            SimMutation::ScopeOffByOne => write!(f, "scope-off-by-one"),
        }
    }
}

/// Stateless scope-allocation policy. The mutable allocation *state* (the
/// cursor) lives in each node's [`NodeState`]; the policy only decides sizes.
#[derive(Debug, Clone)]
pub struct ScopeAllocator {
    /// The λ parameter (expected fanout) for the no-clues scheme.
    pub lambda: u64,
    /// Grow the divisor with the child count (`λ + k`), preventing hot-node
    /// exhaustion. On by default; the ablation bench compares.
    pub adaptive: bool,
    /// Allocation scheme.
    pub kind: AllocatorKind,
    /// Test-only injected fault (see [`SimMutation`]).
    pub mutation: SimMutation,
}

/// Result of a child-scope allocation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocation {
    /// A child scope `[n, n+size)` was carved out; the parent state was
    /// advanced. `tight` is set when the geometric share was smaller than
    /// `min_size` and the allocation was bumped — the sound, within-parent
    /// flavour of the paper's scope underflow.
    Child {
        /// The new child's scope and cursor.
        state: NodeState,
        /// Whether the scope had to be bumped to `min_size`.
        tight: bool,
    },
    /// The parent cannot supply even `min_size` labels — the caller must run
    /// the underflow protocol (borrow from an ancestor).
    Underflow,
}

impl ScopeAllocator {
    /// New allocator with the given λ.
    #[must_use]
    pub fn new(lambda: u64, adaptive: bool, kind: AllocatorKind) -> Self {
        ScopeAllocator {
            lambda: lambda.max(2),
            adaptive,
            kind,
            mutation: SimMutation::None,
        }
    }

    /// Allocate a subscope inside `parent` for a child whose symbol is
    /// `child_sym`, arriving under a node with symbol `parent_sym` (the
    /// paper's Algorithm 3 `subScope(parent, e)`).
    ///
    /// `min_size` is the smallest acceptable scope (1 for a guaranteed leaf,
    /// larger when the remaining sequence must nest below the child).
    pub fn allocate(
        &self,
        parent: &mut NodeState,
        parent_sym: Option<Sym>,
        child_sym: Sym,
        min_size: u128,
    ) -> Allocation {
        let available = parent.available();
        if available < min_size {
            return Allocation::Underflow;
        }
        let mut tight = false;
        let mut size = match &self.kind {
            AllocatorKind::NoClues => {
                let divisor = self.divisor(parent.k);
                available / u128::from(divisor)
            }
            AllocatorKind::WithClues(stats) => {
                let p = parent_sym
                    .and_then(|ps| stats.probability(ps, child_sym))
                    .unwrap_or(1.0 / self.lambda as f64);
                // Clamp: never more than half the remainder, never less than
                // an adaptive geometric share.
                let p = p.clamp(1e-9, 0.5);
                let geometric = available / u128::from(self.divisor(parent.k));
                let scaled = ((available as f64) * p) as u128;
                scaled.max(geometric).max(1)
            }
        };
        if size < min_size {
            // The paper's within-parent underflow: the tail still fits, so
            // take exactly what is needed.
            size = min_size;
            tight = true;
        }
        if size > available {
            return Allocation::Underflow;
        }
        let claimed = match self.mutation {
            SimMutation::None => size,
            // The planted bug: the child *claims* one label more than the
            // parent's cursor advances by, so the next sibling's label will
            // fall inside this child's scope.
            SimMutation::ScopeOffByOne => size + 1,
        };
        let state = NodeState {
            n: parent.next,
            size: claimed,
            next: parent.next + 1,
            k: 0,
        };
        parent.next += size;
        parent.k += 1;
        Allocation::Child { state, tight }
    }

    fn divisor(&self, k: u64) -> u64 {
        if self.adaptive {
            self.lambda.saturating_add(k).max(2)
        } else {
            self.lambda
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vist_seq::{Symbol, MAX_SCOPE};

    fn root() -> NodeState {
        NodeState {
            n: 0,
            size: MAX_SCOPE,
            next: 1,
            k: 0,
        }
    }

    fn tag(i: u32) -> Sym {
        Sym::Tag(Symbol(i))
    }

    #[test]
    fn children_are_nested_and_disjoint() {
        let alloc = ScopeAllocator::new(2, false, AllocatorKind::NoClues);
        let mut parent = root();
        let mut prev_end = 1u128;
        for i in 0..50 {
            let Allocation::Child { state: c, .. } = alloc.allocate(&mut parent, None, tag(i), 2)
            else {
                panic!("unexpected underflow at child {i}");
            };
            assert!(c.n >= prev_end, "child {i} overlaps predecessor");
            assert!(c.n + c.size <= parent.end(), "child {i} overhangs parent");
            assert!(c.size >= 2);
            prev_end = c.n + c.size;
        }
        assert_eq!(parent.k, 50);
    }

    #[test]
    fn geometric_series_matches_paper_eq5() {
        // With λ=2 and no adaptivity, child k gets 1/2 of the remainder:
        // sizes available/2, available/4, ... (paper Figure 8).
        let alloc = ScopeAllocator::new(2, false, AllocatorKind::NoClues);
        let mut parent = NodeState {
            n: 0,
            size: 1025,
            next: 1,
            k: 0,
        };
        let sizes: Vec<u128> = (0..5)
            .map(|i| match alloc.allocate(&mut parent, None, tag(i), 1) {
                Allocation::Child { state, .. } => state.size,
                Allocation::Underflow => panic!(),
            })
            .collect();
        assert_eq!(sizes, vec![512, 256, 128, 64, 32]);
    }

    #[test]
    fn fixed_lambda_exhausts_hot_node_adaptive_does_not() {
        let fixed = ScopeAllocator::new(2, false, AllocatorKind::NoClues);
        let mut p = root();
        let mut fixed_children = 0u32;
        for i in 0..100_000 {
            match fixed.allocate(&mut p, None, tag(i), 2) {
                Allocation::Child { tight: false, .. } => fixed_children += 1,
                _ => break,
            }
        }
        assert!(
            fixed_children < 300,
            "λ=2 must exhaust quickly: {fixed_children}"
        );

        let adaptive = ScopeAllocator::new(2, true, AllocatorKind::NoClues);
        let mut p = root();
        for i in 0..100_000u32 {
            match adaptive.allocate(&mut p, None, tag(i), 2) {
                Allocation::Child { .. } => {}
                Allocation::Underflow => panic!("adaptive underflowed at {i}"),
            }
        }
    }

    #[test]
    fn underflow_when_parent_tiny() {
        let alloc = ScopeAllocator::new(2, true, AllocatorKind::NoClues);
        let mut tiny = NodeState {
            n: 10,
            size: 3,
            next: 11,
            k: 0,
        };
        // available = 2: a min_size 5 allocation must underflow.
        assert_eq!(
            alloc.allocate(&mut tiny, None, tag(0), 5),
            Allocation::Underflow
        );
        // min_size 2 fits exactly (a tight, within-parent underflow).
        match alloc.allocate(&mut tiny, None, tag(0), 2) {
            Allocation::Child { state, tight } => {
                assert_eq!(state.n, 11);
                assert_eq!(state.size, 2);
                assert!(tight);
            }
            Allocation::Underflow => panic!(),
        }
        // Nothing left now.
        assert_eq!(
            alloc.allocate(&mut tiny, None, tag(1), 1),
            Allocation::Underflow
        );
    }

    #[test]
    fn with_clues_gives_probable_children_bigger_scopes() {
        let mut seqs = Vec::new();
        // Symbol 1 is followed by symbol 2 90% of the time, symbol 3 10%.
        use vist_seq::{Prefix, SeqElem};
        let mk = |syms: &[u32]| {
            Sequence(
                syms.iter()
                    .map(|&s| SeqElem {
                        sym: tag(s),
                        prefix: Prefix::empty(),
                    })
                    .collect(),
            )
        };
        for _ in 0..9 {
            seqs.push(mk(&[1, 2]));
        }
        seqs.push(mk(&[1, 3]));
        let stats = StatsModel::from_sequences(&seqs);
        assert!((stats.probability(tag(1), tag(2)).unwrap() - 0.9).abs() < 1e-9);

        let alloc = ScopeAllocator::new(16, true, AllocatorKind::WithClues(stats));
        let mut p1 = root();
        let big = match alloc.allocate(&mut p1, Some(tag(1)), tag(2), 2) {
            Allocation::Child { state, .. } => state.size,
            Allocation::Underflow => panic!(),
        };
        let mut p2 = root();
        let small = match alloc.allocate(&mut p2, Some(tag(1)), tag(3), 2) {
            Allocation::Child { state, .. } => state.size,
            Allocation::Underflow => panic!(),
        };
        assert!(
            big > small * 2,
            "p=0.9 child ({big}) should dwarf p=0.1 child ({small})"
        );
    }

    #[test]
    fn stats_model_unknown_transitions() {
        let stats = StatsModel::from_sequences(&[]);
        assert_eq!(stats.probability(tag(1), tag(2)), None);
        assert_eq!(stats.contexts(), 0);
    }
}
