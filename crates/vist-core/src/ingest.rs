//! Batched parallel ingest with group commit.
//!
//! The dynamic insert path (Algorithm 4) is inherently serial at its back
//! end: scope allocation reads and rewrites the parents' `NodeState`s, so
//! two documents cannot apply concurrently. What *can* run in parallel is
//! everything before that — XML parsing, record-tree lowering, and
//! structure encoding, which together dominate per-document CPU cost.
//! [`VistIndex::insert_batch`] splits ingest accordingly:
//!
//! 1. **Prepare** (parallel, no index locks): each worker parses and
//!    encodes documents against a snapshot of the symbol table, interning
//!    unknown names into a private [`TableOverlay`] whose ids start past
//!    the snapshot.
//! 2. **Apply** (serial, writer mutex): overlay ids are remapped into the
//!    shared table, then every prepared sequence is inserted in input
//!    order — through a per-batch [`IngestCache`] that answers repeated
//!    dkey lookups and trie-edge probes without touching the B+Trees.
//!    The apply phase holds the `maintenance` latch exclusively, so
//!    readers observe the pre-batch or post-batch index, never a torn
//!    intermediate.
//! 3. **Commit** (one checkpoint): a single WAL flush — one commit record,
//!    one fsync — covers the whole batch. Because nothing inside the apply
//!    phase syncs, a crash anywhere before that flush recovers to the
//!    previous durable state and a crash after it recovers the full batch:
//!    batches are all-or-nothing on disk by construction.
//!
//! Applying in input order with the same allocator makes the result
//! bit-identical to serial insertion: same document ids, same scope
//! labels, same symbol ids (`tests/parallel_ingest.rs` proves this
//! differentially).

use std::collections::HashMap;
use std::sync::Mutex;

use vist_seq::{
    document_to_sequence_with, PathSym, Sequence, SiblingOrder, Sym, Symbol, SymbolTable,
    TableOverlay,
};

use crate::error::{Error, Result};
use crate::pool::{run_workers_with, SchedPolicy};
use crate::store::DocId;
use crate::vist::VistIndex;

/// Per-batch positive caches for the apply phase. Both maps are safe
/// *because* the whole batch runs under the writer mutex with no
/// interleaved removes or compactions: dkey ids are append-only, and a
/// trie edge, once written, is never modified or deleted while the delta
/// lives.
#[derive(Debug, Default)]
pub(crate) struct IngestCache {
    /// Encoded D-Ancestor key → dkey id.
    pub(crate) dkeys: HashMap<Vec<u8>, u64>,
    /// (chain-head label, dkey id) → child label, mirroring `find_child`.
    pub(crate) edges: HashMap<(u128, u64), u128>,
    pub(crate) dkey_hits: u64,
    pub(crate) dkey_misses: u64,
    pub(crate) edge_hits: u64,
    pub(crate) edge_misses: u64,
}

/// One document's parallel-prepare artifact: its structure-encoded
/// sequence (with overlay symbol ids for names unknown to the snapshot)
/// and those names, in overlay id order, for remapping under the table
/// write lock.
struct PreparedDoc {
    seq: Sequence,
    new_names: Vec<String>,
}

fn prepare_doc(xml: &str, base: &SymbolTable, order: &SiblingOrder) -> Result<PreparedDoc> {
    let doc = vist_xml::parse(xml).map_err(|e| Error::Corrupt(format!("bad XML: {e}")))?;
    let mut overlay = TableOverlay::new(base);
    let seq = document_to_sequence_with(&doc, &mut overlay, order);
    let new_names = (0..overlay.overlay_len())
        .map(|i| overlay.name(Symbol((base.len() + i) as u32)).to_string())
        .collect();
    Ok(PreparedDoc { seq, new_names })
}

/// Rewrite every overlay symbol id (`>= base_len`) in `seq` — both element
/// symbols and prefix path entries — to its interned shared-table id.
fn remap_overlay_syms(seq: &mut Sequence, base_len: usize, map: &[Symbol]) {
    let fix = |s: &mut Symbol| {
        let i = s.0 as usize;
        if i >= base_len {
            *s = map[i - base_len];
        }
    };
    for elem in &mut seq.0 {
        if let Sym::Tag(ref mut s) = elem.sym {
            fix(s);
        }
        for ps in &mut elem.prefix.0 {
            if let PathSym::Tag(ref mut s) = ps {
                fix(s);
            }
        }
    }
}

impl VistIndex {
    /// Ingest a batch of XML documents with parallel prepare and one group
    /// commit (see the module docs for the three phases). `threads` is the
    /// number of prepare workers (clamped to at least 1; the apply phase
    /// is always serial). Returns the assigned document ids, in input
    /// order — identical to what the same inputs would get from
    /// [`VistIndex::insert_xml`] one at a time, at any thread count.
    ///
    /// A parse failure anywhere in the batch rejects the whole batch
    /// before any index mutation. A storage error during apply leaves the
    /// in-memory index mid-batch (like any failed insert — reopen to
    /// recover); on disk the batch is still all-or-nothing, because the
    /// batch-final checkpoint is the only commit point.
    pub fn insert_batch<S>(&self, docs: &[S], threads: usize) -> Result<Vec<DocId>>
    where
        S: AsRef<str> + Sync,
    {
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        let threads = threads.max(1);
        let total_start = vist_obs::now();

        // Phase 1: prepare. Workers share nothing with the index but an
        // immutable snapshot of the symbol table — no locks are held, so
        // concurrent readers (and even a concurrent writer) proceed
        // untouched while sequences are encoded.
        let base = self.table.read().clone();
        let base_len = base.len();
        let slots: Vec<Mutex<Option<Result<PreparedDoc>>>> =
            (0..docs.len()).map(|_| Mutex::new(None)).collect();
        run_workers_with(
            threads,
            (0..docs.len()).collect(),
            SchedPolicy::Fifo,
            |_, queue| {
                while let Some((i, _)) = queue.take() {
                    let res = prepare_doc(docs[i].as_ref(), &base, &self.order);
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(res);
                    queue.finish_one();
                }
            },
        );
        let mut prepared = Vec::with_capacity(docs.len());
        for slot in slots {
            let res = slot
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every batch slot is prepared exactly once");
            prepared.push(res?);
        }
        let prepare_nanos = vist_obs::elapsed_nanos(total_start).unwrap_or(0);

        // Phase 2: apply, serialized behind the writer mutex like every
        // other mutation. The maintenance latch is held exclusively for
        // the whole phase so readers never see a partially applied batch;
        // it is dropped before the commit fsync so readers resume while
        // the WAL syncs.
        let _w = self.writer.lock();
        let apply_start = vist_obs::now();
        let store_documents = self.store.meta().store_documents;
        let mut cache = IngestCache::default();
        let mut ids = Vec::with_capacity(prepared.len());
        {
            let _m = self.maintenance.write();
            {
                // Remap overlay ids minted against the snapshot. Names are
                // interned per document in input order, first-encounter
                // order within each — exactly the order serial ingest
                // would intern them. The threshold is the snapshot's
                // length: ids below it are stable (the table is
                // append-only), ids at or past it are private to this
                // batch's overlays.
                let mut table = self.table.write();
                for p in &mut prepared {
                    if p.new_names.is_empty() {
                        continue;
                    }
                    let map: Vec<Symbol> = p.new_names.iter().map(|n| table.intern(n)).collect();
                    remap_overlay_syms(&mut p.seq, base_len, &map);
                }
            }
            for (p, raw) in prepared.iter().zip(docs) {
                let xml = store_documents.then(|| raw.as_ref());
                ids.push(self.insert_sequence_cached(&p.seq, xml, Some(&mut cache))?);
            }
        }
        let apply_nanos = vist_obs::elapsed_nanos(apply_start).unwrap_or(0);

        // Phase 3: the group commit — one WAL commit record, one fsync,
        // amortized over the whole batch.
        let commit_start = vist_obs::now();
        self.checkpoint_locked()?;
        let commit_nanos = vist_obs::elapsed_nanos(commit_start).unwrap_or(0);

        self.ingest_counters.record_batch(
            ids.len() as u64,
            cache.dkey_hits,
            cache.dkey_misses,
            cache.edge_hits,
            cache.edge_misses,
        );
        vist_obs::counter!("vist_core_ingest_batches_total").inc();
        vist_obs::counter!("vist_core_ingest_docs_total").add(ids.len() as u64);
        vist_obs::counter!("vist_core_ingest_dkey_cache_hits_total").add(cache.dkey_hits);
        vist_obs::counter!("vist_core_ingest_dkey_cache_misses_total").add(cache.dkey_misses);
        vist_obs::counter!("vist_core_ingest_edge_cache_hits_total").add(cache.edge_hits);
        vist_obs::counter!("vist_core_ingest_edge_cache_misses_total").add(cache.edge_misses);
        vist_obs::histogram!("vist_core_ingest_prepare_nanos").record(prepare_nanos);
        vist_obs::histogram!("vist_core_ingest_apply_nanos").record(apply_nanos);
        vist_obs::histogram!("vist_core_ingest_commit_nanos").record(commit_nanos);
        vist_obs::WideEvent::new("ingest_batch")
            .u64_field("batch_docs", ids.len() as u64)
            .u64_field("prepare_threads", threads as u64)
            .u64_field("prepare_nanos", prepare_nanos)
            .u64_field("apply_nanos", apply_nanos)
            .u64_field("commit_nanos", commit_nanos)
            .u64_field("edge_cache_hits", cache.edge_hits)
            .u64_field("edge_cache_misses", cache.edge_misses)
            .emit();
        Ok(ids)
    }
}
