//! The ViST index (SIGMOD 2003) and its two in-paper baselines.
//!
//! This crate implements Section 3 of *"ViST: A Dynamic Index Method for
//! Querying XML Data by Tree Structures"* in full:
//!
//! * [`NaiveIndex`] (§3.2) — structure-encoded sequences in a
//!   suffix-tree-like trie, matched by subtree traversal (Algorithm 1);
//! * [`RistIndex`] (§3.3) — the trie labeled *statically* by preorder rank
//!   and subtree size, with matching moved onto B+Trees (Algorithm 2);
//! * [`VistIndex`] (§3.4) — the virtual suffix tree: **dynamic** top-down
//!   scope allocation (Algorithm 3) means the trie is never materialized,
//!   documents can be inserted and deleted at any time, and everything
//!   lives in B+Trees (Algorithm 4 for insertion, Algorithm 2 for search).
//!
//! The index structure is exactly the paper's: a **D-Ancestor** B+Tree
//! keyed by `(symbol, prefix)`, an **S-Ancestor** B+Tree per D-Ancestor
//! entry (realized, as the paper's experiments do, as one *combined* B+Tree
//! keyed by `(dkey-id, n)`), and a **DocId** B+Tree mapping label ranges to
//! document ids. All trees share one [`vist_storage::BufferPool`], either
//! in-memory or file-backed.
//!
//! # Quick start
//!
//! ```
//! use vist_core::{VistIndex, IndexOptions, QueryOptions};
//!
//! let mut index = VistIndex::in_memory(IndexOptions::default()).unwrap();
//! let doc = vist_xml::parse("<book><author>David</author></book>").unwrap();
//! let id = index.insert_document(&doc).unwrap();
//! let hits = index.query("/book/author[text='David']", &QueryOptions::default()).unwrap();
//! assert_eq!(hits.doc_ids, vec![id]);
//! ```

mod alloc;
mod error;
mod extsort;
mod ingest;
mod naive;
mod pool;
mod rist;
mod search;
mod segment;
mod stats;
mod store;
mod trie;
mod vist;

pub use alloc::{Allocation, AllocatorKind, ScopeAllocator, SimMutation, StatsModel};
pub use error::{Error, Result};
pub use extsort::{ExtSorter, SortedStream, DEFAULT_SORT_BUDGET};
pub use naive::NaiveIndex;
pub use rist::RistIndex;
pub use search::{
    search_sequences, search_sequences_opts, search_sequences_with, DkStats, DocIdStrategy,
    PlanReport, PruneReason, QueryStats, SearchMode, SearchOptions, SearchOutcome, SearchSource,
    SeqPlan, SourceTotals, StageTimings, StepPlan,
};
pub use stats::{
    IndexStats, IngestCounters, IngestCountersSnapshot, MatchCounters, MatchCountersSnapshot,
};
pub use store::{DocId, NodeState, Store, StoreBreakdown};
pub use trie::{Trie, TrieNode};
pub use vist::{IndexOptions, QueryOptions, QueryResult, VistIndex};

/// Register this crate's observability metrics with the global
/// `vist-obs` registry so they appear in expositions even before the
/// code paths that record them have run. Idempotent; called by the
/// [`VistIndex`] constructors.
pub fn register_metrics() {
    let _ = vist_obs::counter!("vist_core_query_total");
    let _ = vist_obs::counter!("vist_core_insert_total");
    let _ = vist_obs::counter!("vist_core_work_items_total");
    let _ = vist_obs::counter!("vist_core_nodes_visited_total");
    let _ = vist_obs::counter!("vist_core_steals_total");
    let _ = vist_obs::counter!("vist_core_dedup_skips_total");
    let _ = vist_obs::counter!("vist_core_planner_seqs_pruned_total");
    let _ = vist_obs::counter!("vist_core_planner_probes_total");
    let _ = vist_obs::counter!("vist_core_planner_probe_prunes_total");
    let _ = vist_obs::counter!("vist_core_planner_docid_sweeps_total");
    let _ = vist_obs::gauge!("vist_core_documents");
    let _ = vist_obs::gauge!("vist_core_segments");
    let _ = vist_obs::gauge!("vist_core_delta_leaf_fill_bp");
    let _ = vist_obs::gauge!("vist_core_segment_leaf_fill_bp");
    let _ = vist_obs::counter!("vist_core_bulk_docs_total");
    let _ = vist_obs::counter!("vist_core_ingest_batches_total");
    let _ = vist_obs::counter!("vist_core_ingest_docs_total");
    let _ = vist_obs::counter!("vist_core_ingest_dkey_cache_hits_total");
    let _ = vist_obs::counter!("vist_core_ingest_dkey_cache_misses_total");
    let _ = vist_obs::counter!("vist_core_ingest_edge_cache_hits_total");
    let _ = vist_obs::counter!("vist_core_ingest_edge_cache_misses_total");
    let _ = vist_obs::histogram!("vist_core_ingest_prepare_nanos");
    let _ = vist_obs::histogram!("vist_core_ingest_apply_nanos");
    let _ = vist_obs::histogram!("vist_core_ingest_commit_nanos");
    let _ = vist_obs::counter!("vist_core_compactions_total");
    let _ = vist_obs::histogram!("vist_core_query_nanos");
    let _ = vist_obs::histogram!("vist_core_insert_nanos");
    let _ = vist_obs::histogram!("vist_core_stage_translate_nanos");
    let _ = vist_obs::histogram!("vist_core_stage_match_nanos");
    let _ = vist_obs::histogram!("vist_core_stage_merge_nanos");
    let _ = vist_obs::histogram!("vist_core_stage_docid_nanos");
    let _ = vist_obs::histogram!("vist_core_worker_busy_nanos");
    let _ = vist_obs::histogram!("vist_core_worker_idle_nanos");
    for op in ["compaction", "checkpoint", "segment_build", "wal_recovery"] {
        let _ = vist_obs::registry::gauge(&format!("vist_bg_{op}_inprogress"));
        let _ = vist_obs::registry::gauge(&format!("vist_bg_{op}_last_duration_ms"));
        let _ = vist_obs::registry::counter(&format!("vist_bg_{op}_total"));
    }
    vist_obs::describe(
        "vist_core_query_nanos",
        "End-to-end query latency; buckets carry the last trace id as an exemplar.",
    );
    vist_obs::describe(
        "vist_bg_compaction_inprogress",
        "Compactions currently running (0 or 1; the writer lock serializes them).",
    );
    vist_obs::describe(
        "vist_bg_checkpoint_inprogress",
        "Flush/checkpoint operations currently running.",
    );
    vist_obs::describe(
        "vist_bg_segment_build_inprogress",
        "Bulk segment builds currently running.",
    );
    vist_obs::describe(
        "vist_bg_wal_recovery_inprogress",
        "Index opens (incl. WAL replay and crash redo) currently running.",
    );
    for (name, help) in [
        (
            "vist_bg_compaction_total",
            "Completed compaction operations.",
        ),
        (
            "vist_bg_checkpoint_total",
            "Completed flush/checkpoint operations.",
        ),
        (
            "vist_bg_segment_build_total",
            "Completed bulk segment builds.",
        ),
        (
            "vist_bg_wal_recovery_total",
            "Completed index opens (incl. WAL replay and crash redo).",
        ),
    ] {
        vist_obs::describe(name, help);
    }
}
