//! End-to-end checks of the simulation harness itself:
//! * seeded runs against a correct index pass;
//! * the same seed is byte-reproducible (trace text and verdict);
//! * the planted `ScopeOffByOne` mutation is caught, shrunk to a small
//!   reproducer, and the minimized trace still replays to a divergence.

use vist_sim::{generate, run_trace, shrink, SimConfig, SimMutation, Trace};
use vist_storage::testutil::TempDir;

#[test]
fn clean_seeds_pass() {
    let dir = TempDir::new("sim-clean");
    for seed in 1..=5u64 {
        let cfg = SimConfig {
            seed,
            ops: 80,
            ..Default::default()
        };
        let trace = generate(&cfg);
        let sub = dir.file(&format!("seed-{seed}"));
        std::fs::create_dir_all(&sub).unwrap();
        let report = run_trace(&trace, &sub)
            .unwrap_or_else(|d| panic!("seed {seed} diverged: {d}\n{}", trace.to_text()));
        assert_eq!(report.ops, trace.ops.len(), "seed {seed}");
    }
}

#[test]
fn same_seed_is_byte_reproducible() {
    let cfg = SimConfig {
        seed: 42,
        ops: 120,
        ..Default::default()
    };
    let a = generate(&cfg);
    let b = generate(&cfg);
    assert_eq!(a.to_text(), b.to_text());

    let dir = TempDir::new("sim-repro");
    let (d1, d2) = (dir.file("run1"), dir.file("run2"));
    std::fs::create_dir_all(&d1).unwrap();
    std::fs::create_dir_all(&d2).unwrap();
    let r1 = run_trace(&a, &d1);
    let r2 = run_trace(&b, &d2);
    assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
}

#[test]
fn planted_mutation_is_caught_and_shrunk() {
    let dir = TempDir::new("sim-mutation");
    // The off-by-one scope overlap is a *raw semantics* bug: some seed in
    // this small window must trip the raw-vs-naive / verified-vs-model
    // diffs. (If this ever starts passing for all of them, the harness
    // lost its teeth — that is exactly what this test guards.)
    let mut caught = None;
    for seed in 1..=12u64 {
        let cfg = SimConfig {
            seed,
            ops: 120,
            mutation: SimMutation::ScopeOffByOne,
            ..Default::default()
        };
        let trace = generate(&cfg);
        let sub = dir.file(&format!("hunt-{seed}"));
        std::fs::create_dir_all(&sub).unwrap();
        if run_trace(&trace, &sub).is_err() {
            caught = Some(trace);
            break;
        }
    }
    let trace = caught.expect("no seed in 1..=12 caught the planted scope-allocation bug");

    let scratch = dir.file("scratch");
    std::fs::create_dir_all(&scratch).unwrap();
    let outcome = shrink(&trace, &scratch, 400);
    assert!(
        outcome.trace.ops.len() <= 20,
        "shrunk reproducer still has {} ops (budget spent: {} runs)",
        outcome.trace.ops.len(),
        outcome.runs
    );

    // The minimized trace must survive a text round-trip and still fail.
    let replayed = Trace::from_text(&outcome.trace.to_text()).unwrap();
    assert_eq!(replayed, outcome.trace);
    let replay_dir = dir.file("replay");
    std::fs::create_dir_all(&replay_dir).unwrap();
    let verdict = run_trace(&replayed, &replay_dir);
    assert!(verdict.is_err(), "minimized reproducer no longer diverges");
}
