//! Workload ops, traces, and their text format.
//!
//! A [`Trace`] is the complete, self-contained description of one
//! simulation run: index configuration plus a flat op list. The op list
//! *is* the interleaving — generation simulates one writer actor and a
//! few reader actors under a seeded virtual scheduler (see
//! [`generate`]), and execution replays the flattened schedule
//! single-threaded, so a trace replays byte-identically regardless of
//! host timing.
//!
//! The text format is line-based and versioned so failing traces can be
//! checked into `tests/seeds/` and replayed by `vist sim --replay`.

use std::fmt::Write as _;

use vist_core::SimMutation;

use crate::rng::SimRng;

/// One step of a simulated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert the deterministic document derived from `payload`
    /// (see [`doc_xml`]).
    Insert { payload: u64 },
    /// Insert `count` documents (payloads `payload..payload+count`)
    /// through `VistIndex::insert_batch` as one group commit. The
    /// batch-final checkpoint is the only commit point: on crash the
    /// batch is all-or-nothing, and on success *everything* live —
    /// including earlier uncommitted inserts — becomes durable with it.
    BatchInsert { payload: u64, count: u8 },
    /// Remove the `pick % live`-th live document (ascending id order);
    /// no-op when the index is empty.
    Remove { pick: u64 },
    /// Run the query from [`query_expr`] three ways (seeded schedule A,
    /// seeded schedule B, verified) and diff all of them against the
    /// model and the naive oracle.
    Query {
        template: u8,
        value: u8,
        workers: u8,
        sched: u64,
    },
    /// Checkpoint: everything inserted so far becomes durable.
    Flush,
    /// Compact delta + segments into one fresh segment (tombstones
    /// dropped, delta cleared). Answer-preserving, and a checkpoint:
    /// the pre-swap flush makes everything live durable.
    Compact,
    /// Clean restart: flush, drop the index, reopen from disk.
    Reopen,
    /// Arm a crash `in_ops` file-system operations from now (torn final
    /// write seeded by `tear_seed`). Execution continues until some op
    /// trips the fault, then the harness recovers and reconciles.
    Crash { in_ops: u64, tear_seed: u64 },
    /// Run the index's internal invariant checker.
    Check,
    /// Read-only burst: `threads` OS threads run the same verified query
    /// concurrently; all must agree with the model. (No writer runs, so
    /// the verdict is deterministic even with real threads.)
    Burst {
        template: u8,
        value: u8,
        threads: u8,
    },
}

/// Number of query templates in [`query_expr`].
pub const TEMPLATES: u8 = 13;

/// The fixed query-template table. `value` selects the text literal
/// (`v1..v4`); templates cover child/descendant axes, wildcards, value
/// predicates, relpath predicates, and branching. Template 12 combines a
/// wildcard step with two branch predicates — the shape where the
/// cost-based planner reorders and prunes hardest.
pub fn query_expr(template: u8, value: u8) -> String {
    let v = (value % 4) + 1;
    match template % TEMPLATES {
        0 => "/a".into(),
        1 => "/a/b".into(),
        2 => format!("/a/b[text='v{v}']"),
        3 => "//c".into(),
        4 => format!("//c[text='v{v}']"),
        5 => format!("/a/*[text='v{v}']"),
        6 => "/a//d".into(),
        7 => "//b/c".into(),
        8 => format!("/a/b[c='v{v}']"),
        9 => "/a[b][c]".into(),
        10 => "/a/*/e".into(),
        11 => format!("//d[text='v{v}']"),
        _ => format!("/a[b]/*[e='v{v}']"),
    }
}

/// Deterministic document for an insert payload: root `<a>` with 1–4
/// children drawn from `b`/`c`/`d`, each either a text leaf (`v1..v4`) or
/// a small subtree over `c`/`d`/`e`. Sibling names repeat on purpose —
/// duplicate siblings are where scope-allocation bugs show up.
pub fn doc_xml(payload: u64) -> String {
    let mut rng = SimRng::new(payload.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x51D0_0001);
    let mut xml = String::from("<a>");
    let children = 1 + rng.below(4);
    for _ in 0..children {
        let name = *rng.pick(&["b", "c", "d"]);
        if rng.chance(3, 5) {
            let v = 1 + rng.below(4);
            let _ = write!(xml, "<{name}>v{v}</{name}>");
        } else {
            let _ = write!(xml, "<{name}>");
            let grand = 1 + rng.below(3);
            for _ in 0..grand {
                let g = *rng.pick(&["c", "d", "e"]);
                let v = 1 + rng.below(4);
                let _ = write!(xml, "<{g}>v{v}</{g}>");
            }
            let _ = write!(xml, "</{name}>");
        }
    }
    xml.push_str("</a>");
    xml
}

/// A complete simulation run: configuration + flattened op schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    pub seed: u64,
    pub page_size: usize,
    pub lambda: u64,
    pub mutation: SimMutation,
    pub ops: Vec<Op>,
}

/// Knobs for [`generate`]. `page_size`/`lambda` default to a seeded pick
/// when `None`.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub seed: u64,
    pub ops: usize,
    /// Reader actors interleaved with the single writer actor.
    pub readers: usize,
    pub page_size: Option<usize>,
    pub lambda: Option<u64>,
    pub mutation: SimMutation,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 1,
            ops: 200,
            readers: 2,
            page_size: None,
            lambda: None,
            mutation: SimMutation::None,
        }
    }
}

/// Generate a trace: a seeded virtual scheduler interleaves one writer
/// actor (inserts, removes, flushes, reopens, crash arming, checks) with
/// `readers` reader actors (queries, bursts). The scheduler pick, every
/// op's parameters, and the index configuration all come from one
/// splitmix64 stream, so the trace is a pure function of the config.
pub fn generate(cfg: &SimConfig) -> Trace {
    let mut rng = SimRng::new(cfg.seed);
    let page_size = cfg
        .page_size
        .unwrap_or_else(|| *rng.pick(&[256usize, 512, 1024]));
    let lambda = cfg.lambda.unwrap_or_else(|| *rng.pick(&[4u64, 8, 16]));
    let actors = 1 + cfg.readers.max(1) as u64;
    let mut ops = Vec::with_capacity(cfg.ops);
    // Arming crashes back-to-back just re-arms; keep them rare and spaced.
    let mut ops_since_crash = u64::MAX / 2;
    while ops.len() < cfg.ops {
        let actor = rng.below(actors);
        let op = if actor == 0 {
            // Writer actor.
            match rng.below(20) {
                0..=6 => Op::Insert {
                    payload: rng.below(1 << 20),
                },
                7..=8 => Op::BatchInsert {
                    payload: rng.below(1 << 20),
                    count: (2 + rng.below(4)) as u8,
                },
                9..=12 => Op::Remove {
                    pick: rng.next_u64(),
                },
                13..=14 => Op::Flush,
                15 => Op::Compact,
                16 => Op::Reopen,
                17 => Op::Check,
                _ if ops_since_crash > 10 => {
                    ops_since_crash = 0;
                    Op::Crash {
                        in_ops: 1 + rng.below(40),
                        tear_seed: rng.next_u64(),
                    }
                }
                _ => Op::Insert {
                    payload: rng.below(1 << 20),
                },
            }
        } else {
            // Reader actor.
            if rng.chance(1, 6) {
                Op::Burst {
                    template: rng.below(TEMPLATES as u64) as u8,
                    value: rng.below(4) as u8,
                    threads: 2 + rng.below(3) as u8,
                }
            } else {
                Op::Query {
                    template: rng.below(TEMPLATES as u64) as u8,
                    value: rng.below(4) as u8,
                    workers: *rng.pick(&[1u8, 1, 2, 4]),
                    sched: rng.next_u64(),
                }
            }
        };
        ops_since_crash = ops_since_crash.saturating_add(1);
        ops.push(op);
    }
    Trace {
        seed: cfg.seed,
        page_size,
        lambda,
        mutation: cfg.mutation,
        ops,
    }
}

impl Trace {
    /// Serialize to the versioned line format (see module docs).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "vist-sim trace v1");
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "page_size {}", self.page_size);
        let _ = writeln!(out, "lambda {}", self.lambda);
        let _ = writeln!(out, "mutation {}", self.mutation);
        for op in &self.ops {
            match *op {
                Op::Insert { payload } => {
                    let _ = writeln!(out, "op insert {payload}");
                }
                Op::BatchInsert { payload, count } => {
                    let _ = writeln!(out, "op batch_insert {payload} {count}");
                }
                Op::Remove { pick } => {
                    let _ = writeln!(out, "op remove {pick}");
                }
                Op::Query {
                    template,
                    value,
                    workers,
                    sched,
                } => {
                    let _ = writeln!(out, "op query {template} {value} {workers} {sched}");
                }
                Op::Flush => {
                    let _ = writeln!(out, "op flush");
                }
                Op::Compact => {
                    let _ = writeln!(out, "op compact");
                }
                Op::Reopen => {
                    let _ = writeln!(out, "op reopen");
                }
                Op::Crash { in_ops, tear_seed } => {
                    let _ = writeln!(out, "op crash {in_ops} {tear_seed}");
                }
                Op::Check => {
                    let _ = writeln!(out, "op check");
                }
                Op::Burst {
                    template,
                    value,
                    threads,
                } => {
                    let _ = writeln!(out, "op burst {template} {value} {threads}");
                }
            }
        }
        out
    }

    /// Parse the text format back into a trace. Lines starting with `#`
    /// and blank lines are ignored (seed-corpus files carry comments).
    pub fn from_text(text: &str) -> Result<Trace, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let header = lines.next().ok_or("empty trace")?;
        if header != "vist-sim trace v1" {
            return Err(format!("bad trace header: {header:?}"));
        }
        let mut seed = None;
        let mut page_size = None;
        let mut lambda = None;
        let mut mutation = SimMutation::None;
        let mut ops = Vec::new();
        for line in lines {
            let mut parts = line.split_whitespace();
            let key = parts.next().unwrap_or_default();
            let mut num = |what: &str| -> Result<u64, String> {
                parts
                    .next()
                    .ok_or_else(|| format!("{line:?}: missing {what}"))?
                    .parse::<u64>()
                    .map_err(|e| format!("{line:?}: bad {what}: {e}"))
            };
            match key {
                "seed" => seed = Some(num("seed")?),
                "page_size" => page_size = Some(num("page_size")? as usize),
                "lambda" => lambda = Some(num("lambda")?),
                "mutation" => {
                    let word = parts
                        .next()
                        .ok_or_else(|| format!("{line:?}: missing mode"))?;
                    mutation = word
                        .parse()
                        .map_err(|e| format!("{line:?}: bad mutation: {e}"))?;
                }
                "op" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("{line:?}: missing op"))?;
                    let mut num = |what: &str| -> Result<u64, String> {
                        parts
                            .next()
                            .ok_or_else(|| format!("{line:?}: missing {what}"))?
                            .parse::<u64>()
                            .map_err(|e| format!("{line:?}: bad {what}: {e}"))
                    };
                    let op = match name {
                        "insert" => Op::Insert {
                            payload: num("payload")?,
                        },
                        "batch_insert" => Op::BatchInsert {
                            payload: num("payload")?,
                            count: num("count")? as u8,
                        },
                        "remove" => Op::Remove { pick: num("pick")? },
                        "query" => Op::Query {
                            template: num("template")? as u8,
                            value: num("value")? as u8,
                            workers: num("workers")? as u8,
                            sched: num("sched")?,
                        },
                        "flush" => Op::Flush,
                        "compact" => Op::Compact,
                        "reopen" => Op::Reopen,
                        "crash" => Op::Crash {
                            in_ops: num("in_ops")?,
                            tear_seed: num("tear_seed")?,
                        },
                        "check" => Op::Check,
                        "burst" => Op::Burst {
                            template: num("template")? as u8,
                            value: num("value")? as u8,
                            threads: num("threads")? as u8,
                        },
                        other => return Err(format!("unknown op {other:?}")),
                    };
                    ops.push(op);
                }
                other => return Err(format!("unknown trace key {other:?}")),
            }
        }
        Ok(Trace {
            seed: seed.ok_or("trace missing seed")?,
            page_size: page_size.ok_or("trace missing page_size")?,
            lambda: lambda.ok_or("trace missing lambda")?,
            mutation,
            ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SimConfig {
            seed: 42,
            ops: 100,
            ..Default::default()
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = SimConfig {
            seed: 43,
            ..cfg.clone()
        };
        assert_ne!(generate(&cfg).ops, generate(&other).ops);
    }

    #[test]
    fn text_round_trip() {
        let cfg = SimConfig {
            seed: 7,
            ops: 120,
            mutation: SimMutation::ScopeOffByOne,
            ..Default::default()
        };
        let trace = generate(&cfg);
        let text = trace.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(trace, back);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn generator_emits_batch_inserts() {
        let cfg = SimConfig {
            seed: 11,
            ops: 300,
            ..Default::default()
        };
        let trace = generate(&cfg);
        assert!(
            trace
                .ops
                .iter()
                .any(|op| matches!(op, Op::BatchInsert { .. })),
            "300 generated ops should include at least one batch insert"
        );
        // Batch sizes stay in the generator's 2..=5 window.
        for op in &trace.ops {
            if let Op::BatchInsert { count, .. } = op {
                assert!((2..=5).contains(count), "batch count {count} out of range");
            }
        }
    }

    #[test]
    fn batch_insert_text_round_trips() {
        let text = "vist-sim trace v1\nseed 3\npage_size 256\nlambda 8\nmutation none\nop batch_insert 4242 3\nop flush\n";
        let trace = Trace::from_text(text).unwrap();
        assert_eq!(
            trace.ops,
            vec![
                Op::BatchInsert {
                    payload: 4242,
                    count: 3
                },
                Op::Flush
            ]
        );
        assert_eq!(Trace::from_text(&trace.to_text()).unwrap(), trace);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# a seed-corpus file\nvist-sim trace v1\nseed 1\npage_size 256\nlambda 8\nmutation none\n\n# ops\nop insert 5\nop flush\n";
        let trace = Trace::from_text(text).unwrap();
        assert_eq!(trace.ops, vec![Op::Insert { payload: 5 }, Op::Flush]);
    }

    #[test]
    fn docs_parse_and_queries_parse() {
        for payload in 0..50 {
            let xml = doc_xml(payload);
            vist_xml::parse(&xml).unwrap_or_else(|e| panic!("{xml}: {e}"));
        }
        for t in 0..TEMPLATES {
            for v in 0..4 {
                let q = query_expr(t, v);
                vist_query::parse_query(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
            }
        }
    }
}
