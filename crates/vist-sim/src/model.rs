//! The in-memory model the real index is checked against.
//!
//! The model is deliberately trivial: a map from document id to the
//! original XML (plus its parsed form). Exact query answers come from
//! [`vist_query::matches_document`] over every live document — the
//! brute-force oracle ViST's §3.2 correctness contract reduces to. Raw
//! (unverified) answers are cross-checked separately against a rebuilt
//! [`vist_core::NaiveIndex`] by the executor.
//!
//! Two snapshots are kept: `live` (everything applied) and `durable`
//! (state as of the last successful flush). Crash recovery must land on
//! `durable` — or, when the crash fired *inside* a flush, on either side
//! of that ambiguous commit.

use std::collections::BTreeMap;

use vist_query::{matches_document, Pattern};
use vist_seq::SiblingOrder;
use vist_xml::Document;

/// One modelled document: original bytes + parsed tree.
#[derive(Debug, Clone)]
pub struct ModelDoc {
    pub xml: String,
    pub doc: Document,
}

/// Snapshot of the modelled index contents.
pub type Snapshot = BTreeMap<u64, ModelDoc>;

/// The model oracle.
#[derive(Debug, Clone)]
pub struct ModelIndex {
    order: SiblingOrder,
    live: Snapshot,
    durable: Snapshot,
}

impl ModelIndex {
    pub fn new(order: SiblingOrder) -> Self {
        ModelIndex {
            order,
            live: BTreeMap::new(),
            durable: BTreeMap::new(),
        }
    }

    /// Record an insert the real index acknowledged with `id`.
    /// Returns `false` when the id was already live (a divergence).
    pub fn insert(&mut self, id: u64, xml: String, doc: Document) -> bool {
        self.live.insert(id, ModelDoc { xml, doc }).is_none()
    }

    /// Record a remove. Returns `false` when the id was not live.
    pub fn remove(&mut self, id: u64) -> bool {
        self.live.remove(&id).is_some()
    }

    /// Live ids, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.live.keys().copied().collect()
    }

    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    pub fn live(&self) -> &Snapshot {
        &self.live
    }

    pub fn durable(&self) -> &Snapshot {
        &self.durable
    }

    /// A successful flush: live state becomes durable.
    pub fn commit(&mut self) {
        self.durable = self.live.clone();
    }

    /// Crash recovery landed on `snapshot` (one of the legal candidates);
    /// both live and durable collapse onto it.
    pub fn adopt(&mut self, snapshot: Snapshot) {
        self.live = snapshot.clone();
        self.durable = snapshot;
    }

    /// Exact answer set for a pattern: brute-force tree-pattern matching
    /// over every live document. Ascending ids.
    pub fn exact_matches(&self, pattern: &Pattern) -> Vec<u64> {
        self.live
            .iter()
            .filter(|(_, d)| matches_document(pattern, &d.doc, &self.order))
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vist_query::parse_query;

    fn model_with(docs: &[(u64, &str)]) -> ModelIndex {
        let mut m = ModelIndex::new(SiblingOrder::Lexicographic);
        for &(id, xml) in docs {
            let doc = vist_xml::parse(xml).unwrap();
            assert!(m.insert(id, xml.to_string(), doc));
        }
        m
    }

    #[test]
    fn exact_matches_are_brute_force() {
        let m = model_with(&[
            (0, "<a><b>v1</b></a>"),
            (2, "<a><c>v1</c></a>"),
            (5, "<a><b>v2</b><c>v1</c></a>"),
        ]);
        let q = parse_query("/a/b").unwrap().to_pattern();
        assert_eq!(m.exact_matches(&q), vec![0, 5]);
        let q = parse_query("/a/b[text='v1']").unwrap().to_pattern();
        assert_eq!(m.exact_matches(&q), vec![0]);
    }

    #[test]
    fn commit_and_adopt_track_snapshots() {
        let mut m = model_with(&[(0, "<a><b>v1</b></a>")]);
        m.commit();
        let doc = vist_xml::parse("<a><c>v2</c></a>").unwrap();
        m.insert(1, "<a><c>v2</c></a>".into(), doc);
        assert_eq!(m.ids(), vec![0, 1]);
        assert_eq!(m.durable().keys().copied().collect::<Vec<_>>(), vec![0]);
        let durable = m.durable().clone();
        m.adopt(durable);
        assert_eq!(m.ids(), vec![0]);
    }

    #[test]
    fn duplicate_insert_and_missing_remove_are_flagged() {
        let mut m = model_with(&[(0, "<a><b>v1</b></a>")]);
        let doc = vist_xml::parse("<a/>").unwrap();
        assert!(!m.insert(0, "<a/>".into(), doc));
        assert!(!m.remove(9));
    }
}
