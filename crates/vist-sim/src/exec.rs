//! The executor: replays a [`Trace`] against a real file-backed
//! [`VistIndex`] behind a [`FaultVfs`], mirroring every op into the
//! [`ModelIndex`] oracle and diffing the two after each step.
//!
//! Per-query checks (all must hold, every time):
//! * verified results == the model's brute-force exact matches;
//! * raw (unverified) results == a naive suffix-tree baseline rebuilt
//!   from the model's documents — ViST and Algorithm 1 share raw
//!   semantics (§3.2–3.4), so any drift is a matching bug;
//! * raw ⊇ exact (ViST may over-approximate, never under-approximate);
//! * two different match-frame schedule seeds give identical answers
//!   (no code path may depend on scheduling luck);
//! * the cost-based planner is answer-preserving: raw results with the
//!   planner disabled (`no_plan`) equal the planned raw results.
//!
//! Crash handling: a [`Op::Crash`] arms the [`FaultVfs`]; the first op
//! that trips the injected fault triggers recovery — drop the index
//! while the VFS is still "dead" (write-backs from a dead process must
//! not reach disk), reopen for real, run `check()`, and require the
//! recovered contents to equal a legal candidate snapshot: the last
//! committed checkpoint, or — when the tripped op was itself a flush —
//! either side of that ambiguous commit.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use vist_core::{IndexOptions, NaiveIndex, QueryOptions, VistIndex};
use vist_query::parse_query;
use vist_seq::SiblingOrder;
use vist_storage::{is_injected, FaultHandle, FaultMode, FaultVfs, RealVfs};

use crate::model::{ModelDoc, ModelIndex, Snapshot};
use crate::ops::{doc_xml, query_expr, Op, Trace};

/// Small on purpose: eviction write-backs are crash surface.
const CACHE_PAGES: usize = 8;

/// Deterministic counters from a completed (non-diverging) run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub ops: usize,
    pub inserts: u64,
    /// Completed `insert_batch` group commits (their documents also count
    /// into `inserts`).
    pub batch_inserts: u64,
    pub removes: u64,
    pub queries: u64,
    pub bursts: u64,
    pub flushes: u64,
    pub compacts: u64,
    pub reopens: u64,
    pub crashes_recovered: u64,
    pub checks: u64,
    /// Queries whose alternative-sequence generation was truncated
    /// (oracle comparisons skipped — possible legitimate false negatives).
    pub truncated_queries: u64,
    pub final_docs: usize,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ops={} inserts={} batch_inserts={} removes={} queries={} bursts={} flushes={} \
             compacts={} reopens={} crashes_recovered={} checks={} truncated={} final_docs={}",
            self.ops,
            self.inserts,
            self.batch_inserts,
            self.removes,
            self.queries,
            self.bursts,
            self.flushes,
            self.compacts,
            self.reopens,
            self.crashes_recovered,
            self.checks,
            self.truncated_queries,
            self.final_docs
        )
    }
}

/// The real index disagreed with the model (or failed outright).
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the op being executed (`== trace.ops.len()` for the
    /// final verification phase).
    pub op_index: usize,
    /// Stable machine-readable label, e.g. `verified-vs-model`.
    pub kind: String,
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op {} [{}]: {}", self.op_index, self.kind, self.detail)
    }
}

struct Exec<'t> {
    trace: &'t Trace,
    path: PathBuf,
    handle: FaultHandle,
    idx: Option<VistIndex>,
    model: ModelIndex,
    /// Naive baseline rebuilt lazily; `Vec` maps naive-local doc ids
    /// (dense, insertion order) back to model ids.
    naive: Option<(NaiveIndex, Vec<u64>)>,
    report: Report,
    op_index: usize,
    /// Mirror of the store's persistent `next_doc` counter (monotonic,
    /// never reused by removes, rolled back by crash recovery). Lets the
    /// executor predict a batch's document ids *before* running it, so
    /// the ambiguous group-commit candidate can be built without the real
    /// index's help.
    next_id: u64,
    /// `next_id` as of the last committed checkpoint — the counter value
    /// recovery lands on when it adopts the durable snapshot.
    durable_next_id: u64,
}

/// A legal post-recovery state: the document snapshot plus the
/// `next_doc` counter value that goes with it.
type Candidate = (Snapshot, u64);

/// Run a trace to completion. `dir` must be an existing directory private
/// to this run; the store lives in `dir/store` and is recreated.
pub fn run_trace(trace: &Trace, dir: &Path) -> Result<Report, Divergence> {
    let path = dir.join("store");
    // The tier spreads across sibling files (WAL, manifest, segments)
    // and a scratch directory; sweep them all so reruns start clean.
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().starts_with("store") {
                let p = entry.path();
                if p.is_dir() {
                    let _ = std::fs::remove_dir_all(&p);
                } else {
                    let _ = std::fs::remove_file(&p);
                }
            }
        }
    }

    let vfs = FaultVfs::new(Arc::new(RealVfs));
    let handle = vfs.handle();
    let setup = |e: String| Divergence {
        op_index: 0,
        kind: "setup-error".into(),
        detail: e,
    };
    // create_at (not create_on): the index must own a Vfs-backed tier so
    // Op::Compact and segment reads route through the fault injector.
    let idx = VistIndex::create_at(Arc::new(vfs), &path, index_options(trace))
        .map_err(|e| setup(e.to_string()))?;
    // Commit the empty state so recovery always has a checkpoint to land
    // on — mirrors how a real deployment creates then checkpoints.
    idx.flush().map_err(|e| setup(e.to_string()))?;

    let mut exec = Exec {
        trace,
        path,
        handle,
        idx: Some(idx),
        model: ModelIndex::new(SiblingOrder::Lexicographic),
        naive: None,
        report: Report::default(),
        op_index: 0,
        next_id: 0,
        durable_next_id: 0,
    };
    exec.model.commit();

    for i in 0..trace.ops.len() {
        exec.op_index = i;
        exec.step(trace.ops[i])?;
        exec.report.ops = i + 1;
    }
    exec.op_index = trace.ops.len();
    exec.finish()?;
    Ok(exec.report)
}

fn index_options(trace: &Trace) -> IndexOptions {
    IndexOptions {
        page_size: trace.page_size,
        cache_pages: CACHE_PAGES,
        lambda: trace.lambda,
        mutation: trace.mutation,
        ..Default::default()
    }
}

impl Exec<'_> {
    fn idx(&self) -> &VistIndex {
        self.idx.as_ref().expect("index is open")
    }

    fn diverge(&self, kind: &str, detail: String) -> Divergence {
        Divergence {
            op_index: self.op_index,
            kind: kind.into(),
            detail,
        }
    }

    /// The durable snapshot paired with its committed doc-id counter.
    fn durable_candidate(&self) -> Candidate {
        (self.model.durable().clone(), self.durable_next_id)
    }

    /// The live snapshot paired with the current doc-id counter.
    fn live_candidate(&self) -> Candidate {
        (self.model.live().clone(), self.next_id)
    }

    /// A successful checkpoint: live state (and its counter) become
    /// durable.
    fn commit_model(&mut self) {
        self.model.commit();
        self.durable_next_id = self.next_id;
    }

    /// Classify an index error: injected faults route to crash recovery
    /// (with `candidates` as the legal post-recovery states), anything
    /// else is a divergence.
    fn fail(&mut self, e: vist_core::Error, candidates: Vec<Candidate>) -> Result<(), Divergence> {
        // Once the scheduled crash has fired, every VFS op fails, so *any*
        // error — including aggregates like `Error::Corrupt` from `check()`
        // that bury the injected cause in a formatted report — is expected.
        if self.handle.crashed()
            || matches!(&e, vist_core::Error::Storage(inner) if is_injected(inner))
        {
            self.recover(candidates)
        } else {
            Err(self.diverge("unexpected-error", e.to_string()))
        }
    }

    /// Drop the (possibly crashed) index while the VFS is still failing,
    /// reopen for real, verify invariants, and reconcile with the model.
    fn recover(&mut self, candidates: Vec<Candidate>) -> Result<(), Divergence> {
        // Drop first: a dead process cannot write back dirty pages, and
        // with the fault still armed neither can the dropped pool.
        self.idx = None;
        self.naive = None;
        self.handle.reset();

        let vfs = FaultVfs::new(Arc::new(RealVfs));
        self.handle = vfs.handle();
        let idx = VistIndex::open_at(Arc::new(vfs), &self.path, CACHE_PAGES)
            .map_err(|e| self.diverge("recovery-open-failed", e.to_string()))?;
        idx.set_sim_mutation(self.trace.mutation);
        idx.check()
            .map_err(|e| self.diverge("recovery-check-failed", e.to_string()))?;

        let recovered =
            read_contents(&idx).map_err(|e| self.diverge("recovery-read-failed", e.to_string()))?;
        let (adopted, adopted_next) = candidates
            .iter()
            .find(|(c, _)| snapshot_eq(c, &recovered))
            .cloned()
            .ok_or_else(|| {
                let cands: Vec<Vec<u64>> = candidates
                    .iter()
                    .map(|(c, _)| c.keys().copied().collect())
                    .collect();
                let got: Vec<u64> = recovered.iter().map(|(id, _)| *id).collect();
                self.diverge(
                    "recovery-mismatch",
                    format!("recovered ids {got:?} match no candidate checkpoint {cands:?}"),
                )
            })?;
        self.model.adopt(adopted);
        self.next_id = adopted_next;
        self.durable_next_id = adopted_next;
        self.idx = Some(idx);
        self.report.crashes_recovered += 1;
        Ok(())
    }

    fn step(&mut self, op: Op) -> Result<(), Divergence> {
        match op {
            Op::Insert { payload } => {
                let xml = doc_xml(payload);
                match self.idx().insert_xml(&xml) {
                    Ok(id) => {
                        self.naive = None;
                        self.report.inserts += 1;
                        self.next_id = id + 1;
                        let doc = vist_xml::parse(&xml)
                            .map_err(|e| self.diverge("setup-error", e.to_string()))?;
                        if !self.model.insert(id, xml, doc) {
                            return Err(self.diverge(
                                "duplicate-doc-id",
                                format!("insert returned already-live id {id}"),
                            ));
                        }
                        Ok(())
                    }
                    Err(e) => {
                        let durable = self.durable_candidate();
                        self.fail(e, vec![durable])
                    }
                }
            }
            Op::BatchInsert { payload, count } => self.run_batch_insert(payload, count),
            Op::Remove { pick } => {
                if self.model.is_empty() {
                    return Ok(());
                }
                let ids = self.model.ids();
                let victim = ids[(pick % ids.len() as u64) as usize];
                match self.idx().remove_document(victim) {
                    Ok(()) => {
                        self.naive = None;
                        self.report.removes += 1;
                        self.model.remove(victim);
                        Ok(())
                    }
                    Err(e) => {
                        let durable = self.durable_candidate();
                        self.fail(e, vec![durable])
                    }
                }
            }
            Op::Query {
                template,
                value,
                workers,
                sched,
            } => self.run_query(template, value, workers, sched),
            Op::Flush => match self.idx().flush() {
                Ok(()) => {
                    self.report.flushes += 1;
                    self.commit_model();
                    Ok(())
                }
                Err(e) => {
                    // The commit record may or may not have reached disk.
                    let ambiguous = vec![self.durable_candidate(), self.live_candidate()];
                    self.fail(e, ambiguous)
                }
            },
            Op::Compact => match self.idx().compact() {
                Ok(()) => {
                    self.report.compacts += 1;
                    // Compaction is a checkpoint: the pre-swap flush
                    // commits the delta and the manifest swap publishes
                    // the segment holding every live document.
                    self.commit_model();
                    Ok(())
                }
                Err(e) => {
                    // The pre-swap flush may have committed the delta
                    // even if the swap never happened; the document set
                    // is the same on both sides of the swap.
                    let ambiguous = vec![self.durable_candidate(), self.live_candidate()];
                    self.fail(e, ambiguous)
                }
            },
            Op::Reopen => match self.idx().flush() {
                Ok(()) => {
                    self.commit_model();
                    self.idx = None;
                    self.naive = None;
                    // A clean restart must land exactly on the state just
                    // committed; reuse the recovery machinery to verify.
                    let live = self.live_candidate();
                    self.recover(vec![live])?;
                    // recover() counts itself as a crash; reclassify.
                    self.report.crashes_recovered -= 1;
                    self.report.reopens += 1;
                    Ok(())
                }
                Err(e) => {
                    let ambiguous = vec![self.durable_candidate(), self.live_candidate()];
                    self.fail(e, ambiguous)
                }
            },
            Op::Crash { in_ops, tear_seed } => {
                // Re-anchor the op counter, then arm. Nothing fails yet;
                // the first op to trip the fault routes into recover().
                self.handle.reset();
                self.handle.schedule(in_ops, FaultMode::Crash, tear_seed);
                Ok(())
            }
            Op::Check => match self.idx().check() {
                Ok(_) => {
                    self.report.checks += 1;
                    Ok(())
                }
                Err(e) => {
                    if self.handle.crashed()
                        || matches!(&e, vist_core::Error::Storage(inner) if is_injected(inner))
                    {
                        let durable = self.durable_candidate();
                        self.recover(vec![durable])
                    } else {
                        Err(self.diverge("check-failed", e.to_string()))
                    }
                }
            },
            Op::Burst {
                template,
                value,
                threads,
            } => self.run_burst(template, value, threads),
        }
    }

    /// One `insert_batch` group commit. The batch either lands whole
    /// (self-committing: its trailing checkpoint makes *everything* live
    /// durable, sweeping in any earlier uncommitted inserts) or not at
    /// all — there is no crash point that yields a partial batch.
    fn run_batch_insert(&mut self, payload: u64, count: u8) -> Result<(), Divergence> {
        if count == 0 {
            // An empty batch never touches the index or the WAL.
            return Ok(());
        }
        let docs: Vec<String> = (0..count as u64)
            .map(|k| doc_xml(payload.wrapping_add(k)))
            .collect();
        // Predict the batch's ids from the mirrored counter so the
        // ambiguous-commit candidate (live state plus the whole batch)
        // exists before the real index runs — it may die mid-op.
        let first = self.next_id;
        let mut with_batch = self.model.live().clone();
        for (k, xml) in docs.iter().enumerate() {
            let doc =
                vist_xml::parse(xml).map_err(|e| self.diverge("setup-error", e.to_string()))?;
            with_batch.insert(
                first + k as u64,
                ModelDoc {
                    xml: xml.clone(),
                    doc,
                },
            );
        }
        match self.idx().insert_batch(&docs, 2) {
            Ok(ids) => {
                self.naive = None;
                self.report.batch_inserts += 1;
                self.report.inserts += count as u64;
                let want: Vec<u64> = (first..first + count as u64).collect();
                if ids != want {
                    // Not just cosmetic: the crash candidate above was
                    // built from this prediction, so drift means the
                    // harness would mis-verify recovery.
                    return Err(self.diverge(
                        "batch-id-drift",
                        format!("batch assigned ids {ids:?}, counter predicted {want:?}"),
                    ));
                }
                for (id, xml) in ids.iter().zip(&docs) {
                    let doc = vist_xml::parse(xml)
                        .map_err(|e| self.diverge("setup-error", e.to_string()))?;
                    if !self.model.insert(*id, xml.clone(), doc) {
                        return Err(self.diverge(
                            "duplicate-doc-id",
                            format!("batch insert returned already-live id {id}"),
                        ));
                    }
                }
                self.next_id = first + count as u64;
                self.commit_model();
                Ok(())
            }
            Err(e) => {
                // The batch-final checkpoint is the only commit point in
                // the op: recovery lands on the last durable state, or —
                // when the fault hit inside that checkpoint — on
                // everything live plus the whole batch. Never in between.
                let durable = self.durable_candidate();
                self.fail(e, vec![durable, (with_batch, first + count as u64)])
            }
        }
    }

    /// One query, five ways: seeded raw twice (schedule independence),
    /// raw with the planner off (plan independence), verified (== model
    /// exact), and the naive baseline (== raw).
    fn run_query(
        &mut self,
        template: u8,
        value: u8,
        workers: u8,
        sched: u64,
    ) -> Result<(), Divergence> {
        let expr = query_expr(template, value);
        let pattern = parse_query(&expr)
            .expect("templates are valid")
            .to_pattern();
        let exact = self.model.exact_matches(&pattern);

        let opts = |verify: bool, seed: u64| QueryOptions {
            verify,
            workers: workers.max(1) as usize,
            schedule_seed: Some(seed),
            ..Default::default()
        };
        let durable = vec![self.durable_candidate()];
        let raw_a = match self.idx().query(&expr, &opts(false, sched)) {
            Ok(r) => r,
            Err(e) => return self.fail(e, durable),
        };
        let raw_b = match self
            .idx()
            .query(&expr, &opts(false, sched ^ 0xD1B5_4A32_D192_ED03))
        {
            Ok(r) => r,
            Err(e) => return self.fail(e, durable),
        };
        let raw_unplanned = match self.idx().query(
            &expr,
            &QueryOptions {
                no_plan: true,
                ..opts(false, sched)
            },
        ) {
            Ok(r) => r,
            Err(e) => return self.fail(e, durable),
        };
        let verified = match self.idx().query(&expr, &opts(true, sched)) {
            Ok(r) => r,
            Err(e) => return self.fail(e, durable),
        };
        self.report.queries += 1;

        if raw_a.doc_ids != raw_b.doc_ids {
            return Err(self.diverge(
                "schedule-dependent",
                format!(
                    "{expr}: schedule seeds disagree: {:?} vs {:?}",
                    raw_a.doc_ids, raw_b.doc_ids
                ),
            ));
        }
        if raw_a.doc_ids != raw_unplanned.doc_ids {
            return Err(self.diverge(
                "plan-dependent",
                format!(
                    "{expr}: planned raw {:?} != unplanned raw {:?}",
                    raw_a.doc_ids, raw_unplanned.doc_ids
                ),
            ));
        }
        if raw_a.truncated {
            // Legitimate false negatives possible; oracle comparisons
            // would mis-fire. Counted so reports surface the blind spot.
            self.report.truncated_queries += 1;
            return Ok(());
        }
        if verified.doc_ids != exact {
            return Err(self.diverge(
                "verified-vs-model",
                format!(
                    "{expr}: verified {:?} != model exact {exact:?}",
                    verified.doc_ids
                ),
            ));
        }
        let raw_set: BTreeSet<u64> = raw_a.doc_ids.iter().copied().collect();
        if let Some(missing) = exact.iter().find(|id| !raw_set.contains(id)) {
            return Err(self.diverge(
                "raw-missing-exact",
                format!(
                    "{expr}: raw {:?} misses matching doc {missing}",
                    raw_a.doc_ids
                ),
            ));
        }
        let naive = self.naive_raw(&expr)?;
        if naive != raw_a.doc_ids {
            return Err(self.diverge(
                "raw-vs-naive",
                format!(
                    "{expr}: vist raw {:?} != naive raw {naive:?}",
                    raw_a.doc_ids
                ),
            ));
        }
        Ok(())
    }

    /// Raw answers from the naive §3.2 baseline, in model doc ids.
    fn naive_raw(&mut self, expr: &str) -> Result<Vec<u64>, Divergence> {
        if self.naive.is_none() {
            let mut naive = NaiveIndex::new(SiblingOrder::Lexicographic);
            let mut map = Vec::with_capacity(self.model.len());
            for (id, doc) in self.model.live() {
                naive.insert_document(&doc.doc);
                map.push(*id);
            }
            self.naive = Some((naive, map));
        }
        let (naive, map) = self.naive.as_mut().expect("just built");
        let local = naive
            .query(expr, &QueryOptions::default())
            .map_err(|e| Divergence {
                op_index: self.op_index,
                kind: "naive-error".into(),
                detail: e.to_string(),
            })?;
        let mut ids: Vec<u64> = local.into_iter().map(|i| map[i as usize]).collect();
        ids.sort_unstable();
        Ok(ids)
    }

    /// Concurrent read-only burst: every thread's verified answer must
    /// equal the model's. No writer runs, so the verdict is deterministic
    /// even though real threads race.
    fn run_burst(&mut self, template: u8, value: u8, threads: u8) -> Result<(), Divergence> {
        let expr = query_expr(template, value);
        let pattern = parse_query(&expr)
            .expect("templates are valid")
            .to_pattern();
        let exact = self.model.exact_matches(&pattern);
        let idx = self.idx();
        let results: Vec<Result<Vec<u64>, vist_core::Error>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads.max(1) as u64)
                .map(|t| {
                    let expr = &expr;
                    s.spawn(move || {
                        let opts = QueryOptions {
                            verify: true,
                            schedule_seed: Some(t),
                            ..Default::default()
                        };
                        idx.query(expr, &opts).map(|r| r.doc_ids)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("burst thread panicked"))
                .collect()
        });
        for res in results {
            match res {
                Ok(ids) => {
                    if ids != exact {
                        return Err(self.diverge(
                            "burst-mismatch",
                            format!("{expr}: burst thread got {ids:?}, model exact {exact:?}"),
                        ));
                    }
                }
                Err(e) => {
                    let durable = self.durable_candidate();
                    return self.fail(e, vec![durable]);
                }
            }
        }
        self.report.bursts += 1;
        Ok(())
    }

    /// Final phase: checkpoint, then require the on-index contents to
    /// equal the model byte for byte and `check()` to pass.
    fn finish(&mut self) -> Result<(), Divergence> {
        match self.idx().flush() {
            Ok(()) => self.commit_model(),
            Err(e) => {
                let ambiguous = vec![self.durable_candidate(), self.live_candidate()];
                self.fail(e, ambiguous)?;
            }
        }
        // A crash armed in the trace's tail can fire inside this check or
        // read; route it through recovery (which re-checks) and read again.
        if let Err(e) = self.idx().check() {
            if self.handle.crashed() {
                let durable = self.durable_candidate();
                self.fail(e, vec![durable])?;
            } else {
                return Err(self.diverge("check-failed", e.to_string()));
            }
        }
        let contents = match read_contents(self.idx()) {
            Ok(c) => c,
            Err(e) => {
                let durable = self.durable_candidate();
                self.fail(e, vec![durable])?;
                read_contents(self.idx())
                    .map_err(|e| self.diverge("unexpected-error", e.to_string()))?
            }
        };
        if !snapshot_eq(self.model.live(), &contents) {
            let want: Vec<u64> = self.model.ids();
            let got: Vec<u64> = contents.iter().map(|(id, _)| *id).collect();
            return Err(self.diverge(
                "final-state-mismatch",
                format!("index holds {got:?}, model holds {want:?}"),
            ));
        }
        self.report.final_docs = self.model.len();
        Ok(())
    }
}

/// All `(id, xml)` pairs currently in the real index, ascending.
fn read_contents(idx: &VistIndex) -> Result<Vec<(u64, String)>, vist_core::Error> {
    let mut ids = idx.document_ids()?;
    ids.sort_unstable();
    ids.into_iter()
        .map(|id| idx.get_document_xml(id).map(|xml| (id, xml)))
        .collect()
}

/// Does the real contents listing equal a model snapshot exactly
/// (ids and original bytes)?
fn snapshot_eq(model: &Snapshot, real: &[(u64, String)]) -> bool {
    model.len() == real.len()
        && model
            .iter()
            .zip(real)
            .all(|((mid, mdoc), (rid, rxml))| mid == rid && mdoc.xml == *rxml)
}
