//! The harness RNG: splitmix64, the same zero-dependency generator the
//! rest of the workspace uses for seeded tests. Everything the simulator
//! randomizes — op choice, actor scheduling, document shapes, fault
//! points — draws from one instance, so a trace is a pure function of its
//! seed.

/// Seeded splitmix64 stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Biased coin: true with probability `num`/`den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
