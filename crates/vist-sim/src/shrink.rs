//! Op-level delta-debug shrinking (ddmin) of diverging traces.
//!
//! A reproducer is only useful when it is small. Given a trace that
//! diverges, shrinking first drops everything after the diverging op
//! (later ops cannot matter), then runs classic ddmin over the op list:
//! remove chunks at progressively finer granularity, keeping any removal
//! after which the trace *still diverges* (any divergence counts — the
//! failure may legitimately shift kind as context ops disappear). Every
//! candidate runs in a fresh scratch directory, so candidate runs cannot
//! contaminate each other, and the whole search is budget-capped.

use std::path::Path;

use crate::exec::{run_trace, Divergence};
use crate::ops::Trace;

/// Result of a shrink search.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The smallest still-diverging trace found.
    pub trace: Trace,
    /// Divergence the minimized trace produces.
    pub divergence: Divergence,
    /// Candidate executions spent.
    pub runs: usize,
}

/// Shrink a diverging trace. `scratch` must be an existing directory;
/// candidate runs use (and clean up) numbered subdirectories. `budget`
/// caps candidate executions (shrinking is best-effort: on budget
/// exhaustion the smallest trace found so far is returned).
///
/// Panics if the input trace does not diverge.
pub fn shrink(trace: &Trace, scratch: &Path, budget: usize) -> ShrinkOutcome {
    let mut runs = 0usize;
    let try_ops = |ops: &[crate::ops::Op], runs: &mut usize| -> Option<Divergence> {
        let dir = scratch.join(format!("shrink-{runs}"));
        std::fs::create_dir_all(&dir).ok()?;
        let cand = Trace {
            ops: ops.to_vec(),
            ..trace.clone()
        };
        let verdict = run_trace(&cand, &dir).err();
        let _ = std::fs::remove_dir_all(&dir);
        *runs += 1;
        verdict
    };

    let full = try_ops(&trace.ops, &mut runs).expect("shrink() requires a diverging trace");

    // Later ops cannot have caused an earlier divergence: truncate.
    let mut ops = trace.ops[..full.op_index.min(trace.ops.len() - 1) + 1].to_vec();
    let mut divergence = if ops.len() < trace.ops.len() {
        match try_ops(&ops, &mut runs) {
            Some(d) => d,
            None => {
                // Truncation changed the verdict (e.g. the final
                // verification phase was load-bearing); keep the full list.
                ops = trace.ops.clone();
                full
            }
        }
    } else {
        full
    };

    // ddmin: try removing chunks, refining granularity on failure.
    let mut chunks = 2usize;
    while ops.len() > 1 && runs < budget {
        let chunk_len = ops.len().div_ceil(chunks);
        let mut removed_any = false;
        let mut start = 0;
        while start < ops.len() && runs < budget {
            let end = (start + chunk_len).min(ops.len());
            let candidate: Vec<_> = ops[..start].iter().chain(&ops[end..]).copied().collect();
            if candidate.is_empty() {
                start = end;
                continue;
            }
            if let Some(d) = try_ops(&candidate, &mut runs) {
                ops = candidate;
                divergence = d;
                removed_any = true;
                // Re-chunk against the smaller list.
                chunks = chunks.saturating_sub(1).max(2);
                start = 0;
                continue;
            }
            start = end;
        }
        if !removed_any {
            if chunks >= ops.len() {
                break;
            }
            chunks = (chunks * 2).min(ops.len());
        }
    }

    ShrinkOutcome {
        trace: Trace {
            ops,
            ..trace.clone()
        },
        divergence,
        runs,
    }
}
