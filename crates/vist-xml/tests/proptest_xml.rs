//! Property tests: serialize∘parse is the identity on the DOM (up to
//! canonical serialization), for arbitrary generated documents.

use proptest::prelude::*;
use vist_xml::{parse, ElementBuilder};

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,8}".prop_map(|s| s)
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Includes XML-special characters; excludes pure whitespace (dropped by
    // the parser) by always appending a letter.
    "[ a-zA-Z0-9<>&'\"\\u{e9}\\u{4e16}]{0,12}".prop_map(|s| format!("{s}x"))
}

fn element_strategy() -> impl Strategy<Value = ElementBuilder> {
    let leaf = (
        name_strategy(),
        proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
        proptest::option::of(text_strategy()),
    )
        .prop_map(|(name, attrs, text)| {
            let mut e = ElementBuilder::new(name);
            let mut seen = std::collections::HashSet::new();
            for (an, av) in attrs {
                if seen.insert(an.clone()) {
                    e = e.attr(an, av);
                }
            }
            if let Some(t) = text {
                e = e.text(t);
            }
            e
        });
    leaf.prop_recursive(4, 64, 5, |inner| {
        (
            name_strategy(),
            proptest::collection::vec(inner, 0..5),
            proptest::option::of(text_strategy()),
        )
            .prop_map(|(name, children, text)| {
                let mut e = ElementBuilder::new(name).children(children);
                if let Some(t) = text {
                    e = e.text(t);
                }
                e
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn parse_serialize_roundtrip(root in element_strategy()) {
        let doc = root.into_document();
        let ser = doc.to_xml();
        let reparsed = parse(&ser).unwrap_or_else(|e| panic!("reparse failed: {e}\n{ser}"));
        prop_assert_eq!(ser, reparsed.to_xml());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC{0,200}") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_tagged_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<b x='1'>".to_string()),
                Just("<!--c-->".to_string()),
                Just("<![CDATA[d]]>".to_string()),
                Just("text&amp;".to_string()),
                Just("&bogus;".to_string()),
                Just("<".to_string()),
                Just(">".to_string()),
            ],
            0..30,
        )
    ) {
        let soup: String = parts.concat();
        let _ = parse(&soup);
    }
}
