//! Randomized tests: serialize∘parse is the identity on the DOM (up to
//! canonical serialization), for arbitrary generated documents; the parser
//! never panics on arbitrary input. Driven by a seeded splitmix64 generator
//! so runs are deterministic.

use vist_xml::{parse, ElementBuilder};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_name(rng: &mut Rng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_.-";
    let mut s = String::new();
    s.push(FIRST[rng.below(FIRST.len())] as char);
    for _ in 0..rng.below(9) {
        s.push(REST[rng.below(REST.len())] as char);
    }
    s
}

/// Includes XML-special characters and non-ASCII; excludes pure whitespace
/// (dropped by the parser) by always appending a letter.
fn random_text(rng: &mut Rng) -> String {
    const CHARS: &[char] = &[' ', 'a', 'Z', '5', '<', '>', '&', '\'', '"', 'é', '世'];
    let mut s = String::new();
    for _ in 0..rng.below(13) {
        s.push(CHARS[rng.below(CHARS.len())]);
    }
    s.push('x');
    s
}

fn random_element(rng: &mut Rng, depth: usize) -> ElementBuilder {
    let mut e = ElementBuilder::new(random_name(rng));
    let mut seen = std::collections::HashSet::new();
    for _ in 0..rng.below(3) {
        let an = random_name(rng);
        if seen.insert(an.clone()) {
            e = e.attr(an, random_text(rng));
        }
    }
    if rng.below(2) == 0 {
        e = e.text(random_text(rng));
    }
    if depth > 0 {
        let kids: Vec<ElementBuilder> = (0..rng.below(5))
            .map(|_| random_element(rng, depth - 1))
            .collect();
        e = e.children(kids);
    }
    e
}

#[test]
fn parse_serialize_roundtrip() {
    for case in 0..128u64 {
        let mut rng = Rng(0x1AB5 ^ (case << 9));
        let depth = 1 + rng.below(4);
        let root = random_element(&mut rng, depth);
        let doc = root.into_document();
        let ser = doc.to_xml();
        let reparsed = parse(&ser).unwrap_or_else(|e| panic!("reparse failed: {e}\n{ser}"));
        assert_eq!(ser, reparsed.to_xml());
    }
}

#[test]
fn parser_never_panics_on_arbitrary_input() {
    const CHARS: &[char] = &[
        'a', 'b', '<', '>', '/', '=', '\'', '"', '&', ';', '!', '-', '[', ']', '?', ' ', '\n',
        '\t', '0', 'é', '世', '\u{7f}',
    ];
    for case in 0..256u64 {
        let mut rng = Rng(0xFA22 ^ (case << 7));
        let len = rng.below(200);
        let input: String = (0..len).map(|_| CHARS[rng.below(CHARS.len())]).collect();
        let _ = parse(&input);
    }
}

#[test]
fn parser_never_panics_on_tagged_soup() {
    const PARTS: &[&str] = &[
        "<a>",
        "</a>",
        "<b x='1'>",
        "<!--c-->",
        "<![CDATA[d]]>",
        "text&amp;",
        "&bogus;",
        "<",
        ">",
    ];
    for case in 0..256u64 {
        let mut rng = Rng(0x50FA ^ (case << 5));
        let n = rng.below(30);
        let soup: String = (0..n).map(|_| PARTS[rng.below(PARTS.len())]).collect();
        let _ = parse(&soup);
    }
}
