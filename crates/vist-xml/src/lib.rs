//! A from-scratch, non-validating XML 1.0 toolchain.
//!
//! The ViST paper indexes XML documents (DBLP records, XMARK sub-structures,
//! purchase records); this crate supplies the substrate to read and build
//! them without any external XML dependency:
//!
//! * [`Document`] — an arena-based DOM with elements, attributes, and text,
//! * [`parse`] — a streaming tokenizer + tree builder handling comments,
//!   CDATA, processing instructions, a DOCTYPE prolog, numeric and named
//!   character entities, and well-formedness checks with line/column error
//!   positions,
//! * [`ElementBuilder`] — ergonomic programmatic construction (used heavily
//!   by the data generators), and
//! * [`Document::to_xml`] — a serializer with correct escaping, so
//!   `parse(doc.to_xml())` round-trips.
//!
//! The subset is exactly what structural XML indexing needs: no namespace
//! expansion (prefixes are kept verbatim as part of the name, which is how
//! DBLP-era systems treated them), no DTD validation, no external entities.
//!
//! # Example
//!
//! ```
//! let doc = vist_xml::parse(r#"
//!     <purchase>
//!       <seller id="s1"><name>dell</name></seller>
//!       <buyer><location>boston</location></buyer>
//!     </purchase>"#).unwrap();
//! let root = doc.root().unwrap();
//! assert_eq!(doc.name(root), "purchase");
//! let seller = doc.child_elements(root).next().unwrap();
//! assert_eq!(doc.attribute(seller, "id"), Some("s1"));
//! ```

mod builder;
mod dom;
mod dtd;
mod error;
mod escape;
mod parser;
mod reader;
mod split;
mod writer;

pub use builder::ElementBuilder;
pub use dom::{Attribute, Document, NodeData, NodeId};
pub use dtd::{parse_dtd, Dtd, ElementDecl};
pub use error::{ParseError, Position};
pub use escape::{escape_attr, escape_text, unescape};
pub use parser::parse;
pub use reader::{Event, XmlReader};
pub use split::RecordSplitter;
