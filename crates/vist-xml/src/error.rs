//! Parse errors with source positions.

use std::fmt;

/// A line/column position in the source text (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number (in bytes), starting at 1.
    pub column: u32,
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// An XML well-formedness or syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error occurred.
    pub position: Position,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(position: Position, message: impl Into<String>) -> Self {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(
            Position {
                line: 3,
                column: 14,
            },
            "unexpected '<'",
        );
        let s = e.to_string();
        assert!(s.contains("3:14"));
        assert!(s.contains("unexpected '<'"));
    }
}
