//! Arena-based XML document model.

use crate::writer;

/// Index of a node inside a [`Document`]'s arena.
pub type NodeId = u32;

/// A name/value attribute pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (prefix kept verbatim, no namespace expansion).
    pub name: String,
    /// Unescaped attribute value.
    pub value: String,
}

/// Payload of a DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeData {
    /// An element with a tag name and attributes.
    Element {
        /// Tag name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// A text node (unescaped).
    Text(String),
}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) data: NodeData,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
}

/// An XML document: a tree of elements and text nodes in a flat arena.
///
/// Construct by [`crate::parse`]-ing text or programmatically with
/// [`crate::ElementBuilder`] / the `add_*` methods here.
#[derive(Debug, Clone, Default)]
pub struct Document {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: Option<NodeId>,
}

impl Document {
    /// An empty document with no root element.
    #[must_use]
    pub fn new() -> Self {
        Document::default()
    }

    /// The root element, if the document has one.
    #[must_use]
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Total number of nodes (elements + text) in the document.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// The node's payload.
    #[must_use]
    pub fn data(&self, id: NodeId) -> &NodeData {
        &self.node(id).data
    }

    /// The node's parent, or `None` for the root.
    #[must_use]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Child node ids in document order (both elements and text).
    #[must_use]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// `true` if the node is an element.
    #[must_use]
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.node(id).data, NodeData::Element { .. })
    }

    /// Tag name of an element node (empty string for a text node).
    #[must_use]
    pub fn name(&self, id: NodeId) -> &str {
        match &self.node(id).data {
            NodeData::Element { name, .. } => name,
            NodeData::Text(_) => "",
        }
    }

    /// Text content of a text node (`None` for elements).
    #[must_use]
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Text(t) => Some(t),
            NodeData::Element { .. } => None,
        }
    }

    /// The element's attributes (empty for text nodes).
    #[must_use]
    pub fn attributes(&self, id: NodeId) -> &[Attribute] {
        match &self.node(id).data {
            NodeData::Element { attributes, .. } => attributes,
            NodeData::Text(_) => &[],
        }
    }

    /// Value of the named attribute, if present.
    #[must_use]
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attributes(id)
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Iterate over the element children of `id`, skipping text nodes.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(id)
            .children
            .iter()
            .copied()
            .filter(|&c| self.is_element(c))
    }

    /// Concatenated text of the node's *direct* text children, trimmed.
    #[must_use]
    pub fn direct_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        for &c in self.children(id) {
            if let NodeData::Text(t) = &self.node(c).data {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }

    /// Create the root element. Panics if a root already exists.
    pub fn add_root(&mut self, name: impl Into<String>) -> NodeId {
        assert!(self.root.is_none(), "document already has a root");
        let id = self.push(NodeData::Element {
            name: name.into(),
            attributes: Vec::new(),
        });
        self.root = Some(id);
        id
    }

    /// Append a child element under `parent`, returning its id.
    pub fn add_element(&mut self, parent: NodeId, name: impl Into<String>) -> NodeId {
        let id = self.push(NodeData::Element {
            name: name.into(),
            attributes: Vec::new(),
        });
        self.nodes[id as usize].parent = Some(parent);
        self.nodes[parent as usize].children.push(id);
        id
    }

    /// Append a text child under `parent`, returning its id.
    pub fn add_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        let id = self.push(NodeData::Text(text.into()));
        self.nodes[id as usize].parent = Some(parent);
        self.nodes[parent as usize].children.push(id);
        id
    }

    /// Set (or add) an attribute on an element.
    ///
    /// # Panics
    /// Panics if `id` refers to a text node.
    pub fn set_attribute(&mut self, id: NodeId, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        match &mut self.nodes[id as usize].data {
            NodeData::Element { attributes, .. } => {
                if let Some(a) = attributes.iter_mut().find(|a| a.name == name) {
                    a.value = value.into();
                } else {
                    attributes.push(Attribute {
                        name,
                        value: value.into(),
                    });
                }
            }
            NodeData::Text(_) => panic!("cannot set attribute on a text node"),
        }
    }

    fn push(&mut self, data: NodeData) -> NodeId {
        let id = NodeId::try_from(self.nodes.len()).expect("node arena overflow");
        self.nodes.push(Node {
            data,
            parent: None,
            children: Vec::new(),
        });
        id
    }

    /// Serialize the document to XML text.
    #[must_use]
    pub fn to_xml(&self) -> String {
        writer::to_xml(self)
    }

    /// Serialize with indentation (semantics-preserving: mixed content is
    /// kept inline, so a reparse is structurally identical).
    #[must_use]
    pub fn to_xml_pretty(&self, indent: usize) -> String {
        writer::to_xml_pretty(self, indent)
    }

    /// Depth-first preorder traversal from the root, yielding every node.
    pub fn preorder(&self) -> impl Iterator<Item = NodeId> + '_ {
        let mut stack: Vec<NodeId> = self.root.into_iter().collect();
        std::iter::from_fn(move || {
            let id = stack.pop()?;
            // Push children in reverse so they pop in document order.
            for &c in self.children(id).iter().rev() {
                stack.push(c);
            }
            Some(id)
        })
    }

    /// Depth of node `id` (root = 1), counting element/text levels.
    #[must_use]
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 1;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut doc = Document::new();
        let root = doc.add_root("purchase");
        let seller = doc.add_element(root, "seller");
        doc.set_attribute(seller, "id", "s1");
        let name = doc.add_element(seller, "name");
        doc.add_text(name, "dell");
        (doc, root, seller, name)
    }

    #[test]
    fn build_and_navigate() {
        let (doc, root, seller, name) = sample();
        assert_eq!(doc.root(), Some(root));
        assert_eq!(doc.name(root), "purchase");
        assert_eq!(doc.parent(seller), Some(root));
        assert_eq!(doc.children(root), &[seller]);
        assert_eq!(doc.attribute(seller, "id"), Some("s1"));
        assert_eq!(doc.attribute(seller, "nope"), None);
        assert_eq!(doc.direct_text(name), "dell");
        assert_eq!(doc.depth(root), 1);
        assert_eq!(doc.depth(name), 3);
    }

    #[test]
    fn preorder_is_document_order() {
        let (doc, root, seller, name) = sample();
        let order: Vec<NodeId> = doc.preorder().collect();
        assert_eq!(order[0], root);
        assert_eq!(order[1], seller);
        assert_eq!(order[2], name);
        assert_eq!(order.len(), 4); // + text node
    }

    #[test]
    fn set_attribute_overwrites() {
        let (mut doc, _, seller, _) = sample();
        doc.set_attribute(seller, "id", "s2");
        assert_eq!(doc.attribute(seller, "id"), Some("s2"));
        assert_eq!(doc.attributes(seller).len(), 1);
    }

    #[test]
    fn child_elements_skips_text() {
        let mut doc = Document::new();
        let root = doc.add_root("r");
        doc.add_text(root, "hello");
        let e = doc.add_element(root, "e");
        doc.add_text(root, "world");
        let elems: Vec<NodeId> = doc.child_elements(root).collect();
        assert_eq!(elems, vec![e]);
        assert_eq!(doc.direct_text(root), "helloworld");
    }

    #[test]
    #[should_panic(expected = "already has a root")]
    fn double_root_panics() {
        let mut doc = Document::new();
        doc.add_root("a");
        doc.add_root("b");
    }
}
