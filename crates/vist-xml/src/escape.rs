//! Character escaping and entity expansion.

/// Escape text content (`&`, `<`, `>`).
#[must_use]
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value for double-quoted serialization.
#[must_use]
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Expand the five predefined entities and numeric character references.
/// Unknown entities are an error, reported as `Err(position_in_s)`.
pub fn unescape(s: &str) -> Result<String, usize> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy the full UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&s[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        let semi = s[i..].find(';').ok_or(i)?;
        let entity = &s[i + 1..i + semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ => {
                let code = if let Some(hex) = entity.strip_prefix("#x") {
                    u32::from_str_radix(hex, 16).map_err(|_| i)?
                } else if let Some(dec) = entity.strip_prefix('#') {
                    dec.parse::<u32>().map_err(|_| i)?
                } else {
                    return Err(i);
                };
                out.push(char::from_u32(code).ok_or(i)?);
            }
        }
        i += semi + 1;
    }
    Ok(out)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrips_through_unescape() {
        let cases = [
            "plain",
            "a < b && c > d",
            "quotes \" and ' here",
            "unicode: héllo → 世界",
            "",
        ];
        for c in cases {
            assert_eq!(unescape(&escape_text(c)).unwrap(), c);
            assert_eq!(unescape(&escape_attr(c)).unwrap(), c);
        }
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#65;&#x42;").unwrap(), "AB");
        assert_eq!(unescape("&#x4e16;").unwrap(), "世");
    }

    #[test]
    fn bad_entities_rejected() {
        assert!(unescape("&bogus;").is_err());
        assert!(unescape("&unterminated").is_err());
        assert!(unescape("&#xZZ;").is_err());
        assert!(unescape("&#1114112;").is_err()); // beyond char::MAX
    }

    #[test]
    fn mixed_content() {
        assert_eq!(
            unescape("1 &lt; 2 &amp;&amp; 3 &gt; 2").unwrap(),
            "1 < 2 && 3 > 2"
        );
    }
}
