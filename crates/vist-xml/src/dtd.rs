//! DTD (document type definition) parsing — the sibling-order source.
//!
//! ViST needs a deterministic order among sibling nodes so isomorphic trees
//! produce identical preorder sequences; the paper takes it from the DTD:
//! "The DTD schema embodies a linear order of all elements/attributes
//! defined therein." This module parses the declaration subset that matters
//! for that purpose — `<!ELEMENT …>` and `<!ATTLIST …>` — and exposes the
//! linear declaration order. Content models are retained as raw text
//! (ViST does not validate against them).
//!
//! ```
//! use vist_xml::parse_dtd;
//!
//! // The paper's Figure 1 DTD.
//! let dtd = parse_dtd(r#"
//!     <!ELEMENT purchases (purchase*)>
//!     <!ELEMENT purchase  (seller, buyer)>
//!     <!ATTLIST seller    ID ID #REQUIRED location CDATA #IMPLIED name CDATA #IMPLIED>
//!     <!ELEMENT seller    (item*)>
//!     <!ATTLIST buyer     ID ID #REQUIRED location CDATA #IMPLIED name CDATA #IMPLIED>
//!     <!ELEMENT buyer     (item*)>
//!     <!ATTLIST item      name CDATA #REQUIRED manufacturer CDATA #IMPLIED>
//! "#).unwrap();
//! assert_eq!(dtd.sibling_order()[..3], ["purchases", "purchase", "seller"]);
//! assert!(dtd.attributes("seller").iter().any(|a| a == "location"));
//! ```

use std::collections::HashMap;

use crate::error::{ParseError, Position};

/// One `<!ELEMENT>` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// Element name.
    pub name: String,
    /// Raw content model text, e.g. `(seller, buyer)`, `(#PCDATA)`, `EMPTY`.
    pub content_model: String,
}

/// A parsed DTD: declaration order plus attribute lists.
#[derive(Debug, Clone, Default)]
pub struct Dtd {
    /// Element declarations, in order.
    pub elements: Vec<ElementDecl>,
    /// Attribute names per element, in declaration order.
    pub attlists: HashMap<String, Vec<String>>,
    /// All element/attribute names, in first-declaration order — the linear
    /// order the paper's sibling ordering uses.
    order: Vec<String>,
}

impl Dtd {
    /// The linear order of every element and attribute name, by first
    /// declaration — feed this to `SiblingOrder::Dtd`.
    #[must_use]
    pub fn sibling_order(&self) -> Vec<String> {
        self.order.clone()
    }

    /// Attribute names declared for `element` (empty slice if none).
    #[must_use]
    pub fn attributes(&self, element: &str) -> &[String] {
        self.attlists.get(element).map_or(&[], Vec::as_slice)
    }

    fn note(&mut self, name: &str) {
        if !self.order.iter().any(|n| n == name) {
            self.order.push(name.to_string());
        }
    }
}

/// Parse DTD text: a sequence of `<!ELEMENT …>` / `<!ATTLIST …>`
/// declarations (comments and `<!ENTITY`/`<!NOTATION`/PIs are skipped).
/// Accepts either a bare declaration list or one wrapped in
/// `<!DOCTYPE name [ … ]>`.
pub fn parse_dtd(text: &str) -> Result<Dtd, ParseError> {
    let mut p = DtdParser {
        src: text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.parse()
}

struct DtdParser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> DtdParser<'a> {
    fn position(&self) -> Position {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Position { line, column: col }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.position(), msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, term: &str, what: &str) -> Result<usize, ParseError> {
        match self.src[self.pos..].find(term) {
            Some(rel) => {
                let end = self.pos + rel;
                self.pos = end + term.len();
                Ok(end)
            }
            None => Err(self.err(format!("unterminated {what}"))),
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn parse(&mut self) -> Result<Dtd, ParseError> {
        let mut dtd = Dtd::default();
        // Optional DOCTYPE wrapper.
        self.skip_ws();
        if self.starts_with("<!DOCTYPE") {
            self.pos += "<!DOCTYPE".len();
            let _root = self.name()?;
            self.skip_ws();
            if self.peek() == Some(b'[') {
                self.pos += 1;
            } else {
                return Err(self.err("expected '[' after DOCTYPE name"));
            }
        }
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Ok(dtd),
                Some(b']') => {
                    // end of internal subset; accept optional trailing '>'
                    self.pos += 1;
                    self.skip_ws();
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                    }
                    self.skip_ws();
                    if self.pos != self.bytes.len() {
                        return Err(self.err("content after DTD"));
                    }
                    return Ok(dtd);
                }
                Some(_) => {}
            }
            if self.starts_with("<!--") {
                self.pos += 4;
                self.skip_until("-->", "comment")?;
            } else if self.starts_with("<!ELEMENT") {
                self.pos += "<!ELEMENT".len();
                let name = self.name()?;
                self.skip_ws();
                let start = self.pos;
                let end = self.skip_until(">", "ELEMENT declaration")?;
                dtd.note(&name);
                dtd.elements.push(ElementDecl {
                    name,
                    content_model: self.src[start..end].trim().to_string(),
                });
            } else if self.starts_with("<!ATTLIST") {
                self.pos += "<!ATTLIST".len();
                let element = self.name()?;
                dtd.note(&element);
                let start = self.pos;
                let end = self.skip_until(">", "ATTLIST declaration")?;
                let body = &self.src[start..end];
                for attr in parse_attlist_body(body) {
                    dtd.note(&attr);
                    let list = dtd.attlists.entry(element.clone()).or_default();
                    if !list.contains(&attr) {
                        list.push(attr);
                    }
                }
            } else if self.starts_with("<!ENTITY") || self.starts_with("<!NOTATION") {
                self.skip_until(">", "declaration")?;
            } else if self.starts_with("<?") {
                self.skip_until("?>", "processing instruction")?;
            } else {
                return Err(self.err("expected a declaration"));
            }
        }
    }
}

/// Extract attribute names from an ATTLIST body: triples of
/// `name TYPE DEFAULT`, where TYPE may be an enumeration `(a|b|c)` and
/// DEFAULT may be `#REQUIRED`, `#IMPLIED`, `#FIXED "v"`, or a quoted
/// literal.
fn parse_attlist_body(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut toks = tokenize_attlist(body).into_iter().peekable();
    while let Some(name) = toks.next() {
        if name.starts_with('#') || name.starts_with('"') || name.starts_with('\'') {
            continue; // malformed / stray default; resynchronize
        }
        out.push(name);
        // TYPE: one token, or a parenthesized enumeration (already grouped).
        let _ty = toks.next();
        // DEFAULT: #REQUIRED | #IMPLIED | #FIXED "lit" | "lit"
        match toks.peek().map(String::as_str) {
            Some("#FIXED") => {
                toks.next();
                toks.next(); // the literal
            }
            Some(t) if t.starts_with('#') || t.starts_with('"') || t.starts_with('\'') => {
                toks.next();
            }
            _ => {}
        }
    }
    out
}

fn tokenize_attlist(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let b = body.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            c if (c as char).is_whitespace() => i += 1,
            b'(' => {
                let start = i;
                while i < b.len() && b[i] != b')' {
                    i += 1;
                }
                i = (i + 1).min(b.len());
                out.push(body[start..i].to_string());
            }
            q @ (b'"' | b'\'') => {
                let start = i;
                i += 1;
                while i < b.len() && b[i] != q {
                    i += 1;
                }
                i = (i + 1).min(b.len());
                out.push(body[start..i].to_string());
            }
            _ => {
                let start = i;
                while i < b.len() && !(b[i] as char).is_whitespace() && b[i] != b'(' {
                    i += 1;
                }
                out.push(body[start..i].to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = r#"
        <!ELEMENT purchases (purchase*)>
        <!ELEMENT purchase  (seller, buyer)>
        <!ATTLIST seller    ID ID #REQUIRED location CDATA #IMPLIED name CDATA #IMPLIED>
        <!ELEMENT seller    (item*)>
        <!ATTLIST buyer     ID ID #REQUIRED location CDATA #IMPLIED name CDATA #IMPLIED>
        <!ELEMENT buyer     (item*)>
        <!ATTLIST item      name CDATA #REQUIRED manufacturer CDATA #IMPLIED>
    "#;

    #[test]
    fn figure1_dtd_parses() {
        let dtd = parse_dtd(FIGURE1).unwrap();
        assert_eq!(dtd.elements.len(), 4);
        assert_eq!(dtd.elements[0].name, "purchases");
        assert_eq!(dtd.elements[0].content_model, "(purchase*)");
        assert_eq!(dtd.attributes("seller"), &["ID", "location", "name"]);
        assert_eq!(dtd.attributes("item"), &["name", "manufacturer"]);
        assert!(dtd.attributes("purchases").is_empty());
        // Linear order: first declaration wins; elements and attributes mix.
        let order = dtd.sibling_order();
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
        assert!(pos("purchases") < pos("purchase"));
        assert!(
            pos("seller") < pos("location"),
            "seller ATTLIST comes first"
        );
        assert!(pos("location") < pos("item"));
    }

    #[test]
    fn doctype_wrapper_accepted() {
        let dtd = parse_dtd(
            "<!DOCTYPE purchases [ <!ELEMENT purchases (purchase*)> <!ELEMENT purchase EMPTY> ]>",
        )
        .unwrap();
        assert_eq!(dtd.elements.len(), 2);
        assert_eq!(dtd.elements[1].content_model, "EMPTY");
    }

    #[test]
    fn comments_entities_pis_skipped() {
        let dtd =
            parse_dtd("<!-- header --> <!ENTITY amp '&#38;'> <?pi data?> <!ELEMENT a (#PCDATA)>")
                .unwrap();
        assert_eq!(dtd.elements.len(), 1);
        assert_eq!(dtd.elements[0].content_model, "(#PCDATA)");
    }

    #[test]
    fn enumerated_and_fixed_attributes() {
        let dtd = parse_dtd(
            r#"<!ATTLIST item kind (new|used) "new" version CDATA #FIXED "1" id ID #REQUIRED>"#,
        )
        .unwrap();
        assert_eq!(dtd.attributes("item"), &["kind", "version", "id"]);
    }

    #[test]
    fn errors() {
        assert!(parse_dtd("<!ELEMENT unterminated").is_err());
        assert!(parse_dtd("garbage").is_err());
        assert!(
            parse_dtd("<!DOCTYPE x <!ELEMENT a EMPTY>").is_err(),
            "missing ["
        );
        assert!(parse_dtd("<!DOCTYPE x [ <!ELEMENT a EMPTY> ]> trailing").is_err());
    }

    #[test]
    fn duplicate_declarations_keep_first_position() {
        let dtd = parse_dtd(
            "<!ELEMENT a (b)> <!ELEMENT b EMPTY> <!ELEMENT a EMPTY> <!ATTLIST b x CDATA #IMPLIED x CDATA #IMPLIED>",
        )
        .unwrap();
        let order = dtd.sibling_order();
        assert_eq!(order, vec!["a", "b", "x"]);
        assert_eq!(dtd.attributes("b"), &["x"]);
    }
}
