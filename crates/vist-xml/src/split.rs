//! Streaming record splitter.
//!
//! XML databases like XMARK are "a single record with a very large and
//! complicated tree structure"; the paper indexes them by breaking the tree
//! "into a set of sub structures, including item, person, open auction,
//! closed auction, etc" and converting each instance into its own sequence.
//! [`RecordSplitter`] implements exactly that: it streams a (possibly huge)
//! container document with [`crate::XmlReader`] and yields each sub-tree
//! rooted at one of the *record element names* as a standalone
//! [`Document`], never materializing the container.
//!
//! ```
//! use vist_xml::RecordSplitter;
//!
//! let site = "<site><people><person id='p1'/><person id='p2'/></people>\
//!             <regions><item id='i1'/></regions></site>";
//! let records: Vec<_> = RecordSplitter::new(site, &["person", "item"])
//!     .collect::<Result<_, _>>()
//!     .unwrap();
//! assert_eq!(records.len(), 3);
//! assert_eq!(records[0].attribute(records[0].root().unwrap(), "id"), Some("p1"));
//! ```

use crate::dom::Document;
use crate::error::ParseError;
use crate::reader::{Event, XmlReader};

/// Iterator over record sub-trees of a container document. See the module
/// docs.
pub struct RecordSplitter<'a> {
    reader: XmlReader<'a>,
    record_names: Vec<String>,
    failed: bool,
}

impl<'a> RecordSplitter<'a> {
    /// Split `src`, treating each element whose name is in `record_names`
    /// as a record root. Records never nest (an inner occurrence of a record
    /// name inside a record stays part of the outer record).
    #[must_use]
    pub fn new(src: &'a str, record_names: &[&str]) -> Self {
        RecordSplitter {
            reader: XmlReader::new(src),
            record_names: record_names.iter().map(|s| (*s).to_string()).collect(),
            failed: false,
        }
    }

    /// Collect one record sub-tree: the `Start` event for its root was just
    /// consumed.
    fn collect_record(
        &mut self,
        name: String,
        attributes: Vec<crate::Attribute>,
    ) -> Result<Document, ParseError> {
        let mut doc = Document::new();
        let root = doc.add_root(name);
        for a in attributes {
            doc.set_attribute(root, a.name, a.value);
        }
        let mut stack = vec![root];
        loop {
            let Some(event) = self.reader.next_event()? else {
                // The reader enforces well-formedness, so this is unreachable
                // for valid input; report defensively.
                return Err(ParseError::new(
                    self.reader.position(),
                    "input ended inside a record",
                ));
            };
            match event {
                Event::Start { name, attributes } => {
                    let parent = *stack.last().expect("record stack non-empty");
                    let id = doc.add_element(parent, name);
                    for a in attributes {
                        doc.set_attribute(id, a.name, a.value);
                    }
                    stack.push(id);
                }
                Event::End { .. } => {
                    stack.pop();
                    if stack.is_empty() {
                        return Ok(doc);
                    }
                }
                Event::Text(t) => {
                    if !t.trim().is_empty() {
                        let parent = *stack.last().expect("record stack non-empty");
                        doc.add_text(parent, t);
                    }
                }
            }
        }
    }
}

impl Iterator for RecordSplitter<'_> {
    type Item = Result<Document, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            match self.reader.next_event() {
                Ok(None) => return None,
                Ok(Some(Event::Start { name, attributes }))
                    if self.record_names.contains(&name) =>
                {
                    match self.collect_record(name, attributes) {
                        Ok(doc) => return Some(Ok(doc)),
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
                Ok(Some(_)) => continue,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_multiple_record_kinds() {
        let src = "<site>\
            <people><person id='p1'><name>A</name></person></people>\
            <regions><europe><item id='i1'><name>B</name></item></europe></regions>\
            <people><person id='p2'/></people>\
        </site>";
        let recs: Vec<Document> = RecordSplitter::new(src, &["person", "item"])
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(recs.len(), 3);
        let names: Vec<&str> = recs.iter().map(|d| d.name(d.root().unwrap())).collect();
        assert_eq!(names, vec!["person", "item", "person"]);
        assert_eq!(
            recs[0].direct_text(
                recs[0]
                    .child_elements(recs[0].root().unwrap())
                    .next()
                    .unwrap()
            ),
            "A"
        );
    }

    #[test]
    fn nested_record_names_stay_inside_outer_record() {
        let src = "<r><item id='outer'><item id='inner'/></item></r>";
        let recs: Vec<Document> = RecordSplitter::new(src, &["item"])
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(recs.len(), 1);
        let root = recs[0].root().unwrap();
        assert_eq!(recs[0].attribute(root, "id"), Some("outer"));
        assert_eq!(recs[0].child_elements(root).count(), 1);
    }

    #[test]
    fn no_records_yields_empty() {
        let recs: Vec<Document> = RecordSplitter::new("<a><b/></a>", &["zzz"])
            .collect::<Result<_, _>>()
            .unwrap();
        assert!(recs.is_empty());
    }

    #[test]
    fn record_preserves_text_and_attrs() {
        let src = "<db><rec k='v'>hello <b>world</b></rec></db>";
        let recs: Vec<Document> = RecordSplitter::new(src, &["rec"])
            .collect::<Result<_, _>>()
            .unwrap();
        let d = &recs[0];
        let root = d.root().unwrap();
        assert_eq!(d.attribute(root, "k"), Some("v"));
        assert_eq!(d.direct_text(root), "hello");
        assert_eq!(d.to_xml(), "<rec k=\"v\">hello <b>world</b></rec>");
    }

    #[test]
    fn malformed_input_reports_error_once() {
        let mut it = RecordSplitter::new("<db><rec><oops></rec></db>", &["rec"]);
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none(), "iterator fuses after an error");
    }

    #[test]
    fn whole_root_as_record() {
        let recs: Vec<Document> = RecordSplitter::new("<only><x/></only>", &["only"])
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].child_elements(recs[0].root().unwrap()).count(), 1);
    }
}
