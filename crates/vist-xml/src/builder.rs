//! Fluent programmatic document construction.

use crate::dom::{Attribute, Document, NodeData};

/// Builds an element subtree bottom-up, then converts into a [`Document`].
///
/// Used pervasively by `vist-datagen` to synthesize DBLP-like and XMARK-like
/// records.
///
/// ```
/// use vist_xml::ElementBuilder;
///
/// let doc = ElementBuilder::new("purchase")
///     .child(
///         ElementBuilder::new("seller")
///             .attr("id", "s1")
///             .child(ElementBuilder::new("name").text("dell")),
///     )
///     .into_document();
/// assert_eq!(doc.name(doc.root().unwrap()), "purchase");
/// ```
#[derive(Debug, Clone)]
pub struct ElementBuilder {
    name: String,
    attributes: Vec<Attribute>,
    children: Vec<Child>,
}

#[derive(Debug, Clone)]
enum Child {
    Element(ElementBuilder),
    Text(String),
}

impl ElementBuilder {
    /// Start an element with the given tag name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ElementBuilder {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Add an attribute.
    #[must_use]
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push(Attribute {
            name: name.into(),
            value: value.into(),
        });
        self
    }

    /// Add a child element.
    #[must_use]
    pub fn child(mut self, child: ElementBuilder) -> Self {
        self.children.push(Child::Element(child));
        self
    }

    /// Add several child elements.
    #[must_use]
    pub fn children(mut self, children: impl IntoIterator<Item = ElementBuilder>) -> Self {
        self.children
            .extend(children.into_iter().map(Child::Element));
        self
    }

    /// Add a text child.
    #[must_use]
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Child::Text(text.into()));
        self
    }

    /// Number of direct children added so far.
    #[must_use]
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    /// Finish: produce a document rooted at this element.
    #[must_use]
    pub fn into_document(self) -> Document {
        let mut doc = Document::new();
        let root = doc.add_root(self.name.clone());
        if let NodeData::Element { attributes, .. } = &mut doc.nodes[root as usize].data {
            *attributes = self.attributes.clone();
        }
        for c in self.children {
            attach(&mut doc, root, c);
        }
        doc
    }

    /// Attach this subtree under `parent` in an existing document.
    pub fn attach_to(self, doc: &mut Document, parent: crate::NodeId) {
        attach(doc, parent, Child::Element(self));
    }
}

fn attach(doc: &mut Document, parent: crate::NodeId, child: Child) {
    match child {
        Child::Text(t) => {
            doc.add_text(parent, t);
        }
        Child::Element(e) => {
            let id = doc.add_element(parent, e.name);
            for a in e.attributes {
                doc.set_attribute(id, a.name, a.value);
            }
            for c in e.children {
                attach(doc, id, c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn builder_matches_parsed_equivalent() {
        let built = ElementBuilder::new("a")
            .attr("x", "1")
            .child(ElementBuilder::new("b").text("hi"))
            .child(ElementBuilder::new("c"))
            .into_document();
        let parsed = parse(r#"<a x="1"><b>hi</b><c/></a>"#).unwrap();
        assert_eq!(built.to_xml(), parsed.to_xml());
    }

    #[test]
    fn attach_to_grows_existing_doc() {
        let mut doc = ElementBuilder::new("root").into_document();
        let root = doc.root().unwrap();
        ElementBuilder::new("extra")
            .attr("k", "v")
            .attach_to(&mut doc, root);
        assert_eq!(doc.child_elements(root).count(), 1);
        let extra = doc.child_elements(root).next().unwrap();
        assert_eq!(doc.attribute(extra, "k"), Some("v"));
    }

    #[test]
    fn children_bulk_helper() {
        let doc = ElementBuilder::new("r")
            .children((0..5).map(|i| ElementBuilder::new(format!("c{i}"))))
            .into_document();
        assert_eq!(doc.child_elements(doc.root().unwrap()).count(), 5);
    }
}
