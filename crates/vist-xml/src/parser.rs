//! DOM construction on top of the streaming reader.

use crate::dom::{Document, NodeData, NodeId};
use crate::error::ParseError;
use crate::reader::{Event, XmlReader};

/// Parse an XML document from text.
///
/// Accepts an optional prolog (`<?xml ...?>`, comments, one `<!DOCTYPE ...>`),
/// then exactly one root element. Comments and processing instructions are
/// skipped; CDATA sections become text; entities are expanded;
/// whitespace-only text runs are dropped (record-oriented XML convention).
/// Errors carry line/column positions.
///
/// For streaming access without building a DOM, use [`crate::XmlReader`]
/// directly — this function is a thin fold over its events.
pub fn parse(input: &str) -> Result<Document, ParseError> {
    let mut reader = XmlReader::new(input);
    let mut doc = Document::new();
    let mut stack: Vec<NodeId> = Vec::new();
    while let Some(event) = reader.next_event()? {
        match event {
            Event::Start { name, attributes } => {
                let id = match stack.last() {
                    None => {
                        let id = NodeId::try_from(doc.nodes.len()).map_err(|_| {
                            ParseError::new(reader.position(), "document too large")
                        })?;
                        doc.nodes.push(crate::dom::Node {
                            data: NodeData::Element { name, attributes },
                            parent: None,
                            children: Vec::new(),
                        });
                        doc.root = Some(id);
                        id
                    }
                    Some(&parent) => {
                        let id = doc.add_element(parent, name);
                        if let NodeData::Element { attributes: a, .. } =
                            &mut doc.nodes[id as usize].data
                        {
                            *a = attributes;
                        }
                        id
                    }
                };
                stack.push(id);
            }
            Event::End { .. } => {
                stack.pop();
            }
            Event::Text(t) => {
                if !t.trim().is_empty() {
                    if let Some(&parent) = stack.last() {
                        doc.add_text(parent, t);
                    }
                }
            }
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_document() {
        let doc = parse("<a/>").unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.name(root), "a");
        assert!(doc.children(root).is_empty());
    }

    #[test]
    fn nested_elements_and_text() {
        let doc = parse("<a><b>hello</b><c><d/></c></a>").unwrap();
        let root = doc.root().unwrap();
        let kids: Vec<_> = doc.child_elements(root).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(doc.name(kids[0]), "b");
        assert_eq!(doc.direct_text(kids[0]), "hello");
        assert_eq!(doc.name(kids[1]), "c");
        assert_eq!(doc.child_elements(kids[1]).count(), 1);
    }

    #[test]
    fn attributes_single_and_double_quoted() {
        let doc = parse(r#"<item name="cpu" maker='intel &amp; co'/>"#).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.attribute(root, "name"), Some("cpu"));
        assert_eq!(doc.attribute(root, "maker"), Some("intel & co"));
    }

    #[test]
    fn prolog_comments_pi_doctype() {
        let src = r#"<?xml version="1.0"?>
            <!-- a comment -->
            <!DOCTYPE purchases [ <!ELEMENT purchase (seller, buyer)> ]>
            <purchases><!-- inner --><purchase/></purchases>
            <!-- trailing -->"#;
        let doc = parse(src).unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.name(root), "purchases");
        assert_eq!(doc.child_elements(root).count(), 1);
    }

    #[test]
    fn cdata_becomes_text() {
        let doc = parse("<a><![CDATA[1 < 2 && raw <tags>]]></a>").unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.direct_text(root), "1 < 2 && raw <tags>");
    }

    #[test]
    fn entities_in_text() {
        let doc = parse("<a>x &lt; y &#65;</a>").unwrap();
        assert_eq!(doc.direct_text(doc.root().unwrap()), "x < y A");
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let doc = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.children(root).len(), 2, "no whitespace text nodes");
    }

    #[test]
    fn errors_mismatched_tag() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
        assert_eq!(err.position.line, 1);
    }

    #[test]
    fn errors_unterminated() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a").is_err());
        assert!(parse("<a attr=>").is_err());
        assert!(parse("<a><!-- nope</a>").is_err());
        assert!(parse("<a><![CDATA[ nope</a>").is_err());
    }

    #[test]
    fn errors_content_after_root() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(err.message.contains("after root"), "{err}");
    }

    #[test]
    fn errors_duplicate_attribute() {
        let err = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn errors_bad_entity_position() {
        let err = parse("<a>\n\n  bad &entity; here</a>").unwrap_err();
        assert_eq!(err.position.line, 3, "{err}");
    }

    #[test]
    fn errors_bad_names() {
        assert!(parse("<1a/>").is_err());
        assert!(parse("<-a/>").is_err());
        assert!(parse("<a><3/></a>").is_err());
    }

    #[test]
    fn deep_nesting() {
        let depth = 200;
        let mut src = String::new();
        for i in 0..depth {
            src.push_str(&format!("<n{i}>"));
        }
        for i in (0..depth).rev() {
            src.push_str(&format!("</n{i}>"));
        }
        let doc = parse(&src).unwrap();
        let mut id = doc.root().unwrap();
        let mut count = 1;
        while let Some(c) = doc.child_elements(id).next() {
            id = c;
            count += 1;
        }
        assert_eq!(count, depth);
    }

    #[test]
    fn line_positions_tracked() {
        let err = parse("<a>\n<b>\n</c>\n</a>").unwrap_err();
        assert_eq!(err.position.line, 3);
    }

    #[test]
    fn unicode_names_and_text() {
        let doc = parse("<データ 属性=\"値\">世界</データ>").unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.name(root), "データ");
        assert_eq!(doc.attribute(root, "属性"), Some("値"));
        assert_eq!(doc.direct_text(root), "世界");
    }

    #[test]
    fn mixed_content_order_preserved() {
        let doc = parse("<a>one<b/>two<c/>three</a>").unwrap();
        let root = doc.root().unwrap();
        let kinds: Vec<bool> = doc
            .children(root)
            .iter()
            .map(|&c| doc.is_element(c))
            .collect();
        assert_eq!(kinds, vec![false, true, false, true, false]);
    }
}
