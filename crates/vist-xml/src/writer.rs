//! XML serialization.

use crate::dom::{Document, NodeData, NodeId};
use crate::escape::{escape_attr, escape_text};

/// Serialize `doc` as XML text (no declaration, no pretty-printing — the
/// output is byte-exactly re-parseable and preserves mixed-content order).
pub(crate) fn to_xml(doc: &Document) -> String {
    let mut out = String::new();
    if let Some(root) = doc.root() {
        write_node(doc, root, &mut out);
    }
    out
}

/// Serialize with indentation for human reading. Elements with only
/// element children are broken across lines; mixed content (any text child)
/// is kept inline so the document's semantics survive a whitespace-dropping
/// reparse.
pub(crate) fn to_xml_pretty(doc: &Document, indent: usize) -> String {
    let mut out = String::new();
    if let Some(root) = doc.root() {
        write_pretty(doc, root, 0, indent, &mut out);
        out.push('\n');
    }
    out
}

fn write_pretty(doc: &Document, id: NodeId, depth: usize, indent: usize, out: &mut String) {
    let pad = " ".repeat(depth * indent);
    match doc.data(id) {
        NodeData::Text(t) => {
            out.push_str(&pad);
            out.push_str(&escape_text(t));
        }
        NodeData::Element { name, attributes } => {
            out.push_str(&pad);
            out.push('<');
            out.push_str(name);
            for a in attributes {
                out.push(' ');
                out.push_str(&a.name);
                out.push_str("=\"");
                out.push_str(&escape_attr(&a.value));
                out.push('"');
            }
            let children = doc.children(id);
            if children.is_empty() {
                out.push_str("/>");
            } else if children.iter().any(|&c| !doc.is_element(c)) {
                // Mixed content: inline, exactly like the compact writer.
                out.push('>');
                for &c in children {
                    write_node(doc, c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            } else {
                out.push('>');
                for &c in children {
                    out.push('\n');
                    write_pretty(doc, c, depth + 1, indent, out);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    match doc.data(id) {
        NodeData::Text(t) => out.push_str(&escape_text(t)),
        NodeData::Element { name, attributes } => {
            out.push('<');
            out.push_str(name);
            for a in attributes {
                out.push(' ');
                out.push_str(&a.name);
                out.push_str("=\"");
                out.push_str(&escape_attr(&a.value));
                out.push('"');
            }
            let children = doc.children(id);
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for &c in children {
                    write_node(doc, c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    #[test]
    fn pretty_print_roundtrips() {
        let doc = parse(r#"<a x="1"><b><c>inline text<d/></c></b><e/></a>"#).unwrap();
        let pretty = doc.to_xml_pretty(2);
        assert!(pretty.contains("\n  <b>"), "{pretty}");
        assert!(
            pretty.contains("<c>inline text<d/></c>"),
            "mixed stays inline: {pretty}"
        );
        // Reparsing the pretty form yields the same canonical document.
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(reparsed.to_xml(), doc.to_xml());
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let src = r#"<a x="1&amp;2"><b>text &lt; more</b><c/><d>t1<e/>t2</d></a>"#;
        let doc = parse(src).unwrap();
        let ser = doc.to_xml();
        let doc2 = parse(&ser).unwrap();
        // Compare structurally via a second serialization (canonical form).
        assert_eq!(ser, doc2.to_xml());
        let root2 = doc2.root().unwrap();
        assert_eq!(doc2.attribute(root2, "x"), Some("1&2"));
    }

    #[test]
    fn self_closing_for_empty() {
        let doc = parse("<a></a>").unwrap();
        assert_eq!(doc.to_xml(), "<a/>");
    }

    #[test]
    fn special_chars_escaped() {
        let mut doc = crate::Document::new();
        let root = doc.add_root("r");
        doc.set_attribute(root, "q", "say \"hi\" & <go>");
        doc.add_text(root, "1 < 2 & 3 > 2");
        let ser = doc.to_xml();
        let doc2 = parse(&ser).unwrap();
        let root2 = doc2.root().unwrap();
        assert_eq!(doc2.attribute(root2, "q"), Some("say \"hi\" & <go>"));
        assert_eq!(doc2.direct_text(root2), "1 < 2 & 3 > 2");
    }
}
