//! Streaming pull parser: the event layer beneath [`crate::parse`].
//!
//! [`XmlReader`] scans a document and yields [`Event`]s one at a time,
//! enforcing well-formedness (matching tags, a single root, valid entities)
//! as it goes. Useful for ingesting large documents without materializing a
//! DOM — e.g. feeding record sub-trees straight into an index.
//!
//! ```
//! use vist_xml::{Event, XmlReader};
//!
//! let mut r = XmlReader::new("<a x='1'>hi<b/></a>");
//! assert!(matches!(r.next_event().unwrap(), Some(Event::Start { .. })));
//! assert!(matches!(r.next_event().unwrap(), Some(Event::Text(t)) if t == "hi"));
//! assert!(matches!(r.next_event().unwrap(), Some(Event::Start { .. }))); // <b>
//! assert!(matches!(r.next_event().unwrap(), Some(Event::End { .. })));   // </b>
//! assert!(matches!(r.next_event().unwrap(), Some(Event::End { .. })));   // </a>
//! assert!(r.next_event().unwrap().is_none());
//! ```

use crate::dom::Attribute;
use crate::error::{ParseError, Position};
use crate::escape::unescape;

/// A parsing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An element opens (self-closing elements yield `Start` then `End`).
    Start {
        /// Tag name.
        name: String,
        /// Attributes, unescaped, in document order.
        attributes: Vec<Attribute>,
    },
    /// An element closes.
    End {
        /// Tag name (always matches the corresponding `Start`).
        name: String,
    },
    /// A run of character data (entities expanded, CDATA merged). Adjacent
    /// text separated only by comments/PIs is coalesced into one event;
    /// whitespace is preserved.
    Text(String),
}

/// Pull-based XML reader. See the module docs.
pub struct XmlReader<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
    stack: Vec<String>,
    seen_root: bool,
    done: bool,
    /// End event owed for a self-closing tag.
    pending_end: Option<String>,
}

impl<'a> XmlReader<'a> {
    /// Start reading `src`.
    #[must_use]
    pub fn new(src: &'a str) -> Self {
        XmlReader {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            stack: Vec::new(),
            seen_root: false,
            done: false,
            pending_end: None,
        }
    }

    /// Current source position (for error reporting / progress).
    #[must_use]
    pub fn position(&self) -> Position {
        Position {
            line: self.line,
            column: (self.pos - self.line_start + 1) as u32,
        }
    }

    /// Current element nesting depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn position_at(&self, pos: usize) -> Position {
        let mut line = 1;
        let mut line_start = 0;
        for (i, &b) in self.bytes[..pos.min(self.bytes.len())].iter().enumerate() {
            if b == b'\n' {
                line += 1;
                line_start = i + 1;
            }
        }
        Position {
            line,
            column: (pos - line_start + 1) as u32,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.position(), msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn advance(&mut self, n: usize) {
        for i in self.pos..(self.pos + n).min(self.bytes.len()) {
            if self.bytes[i] == b'\n' {
                self.line += 1;
                self.line_start = i + 1;
            }
        }
        self.pos = (self.pos + n).min(self.bytes.len());
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.starts_with(s) {
            self.advance(s.len());
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}'")))
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.advance(1);
        }
    }

    fn skip_until(&mut self, term: &str, what: &str) -> Result<usize, ParseError> {
        match self.src[self.pos..].find(term) {
            Some(rel) => {
                let content_end = self.pos + rel;
                self.advance(rel + term.len());
                Ok(content_end)
            }
            None => Err(self.err(format!("unterminated {what}"))),
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if !ok {
                break;
            }
            self.advance(1);
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let first = self.bytes[start];
        if first.is_ascii_digit() || matches!(first, b'-' | b'.') {
            return Err(self.err("names may not start with a digit, '-' or '.'"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn parse_attribute(&mut self) -> Result<Attribute, ParseError> {
        let name = self.parse_name()?;
        self.skip_whitespace();
        self.expect("=")?;
        self.skip_whitespace();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.advance(1);
        let start = self.pos;
        let term = (quote as char).to_string();
        let end = self.skip_until(&term, "attribute value")?;
        let raw = &self.src[start..end];
        if raw.contains('<') {
            return Err(ParseError::new(
                self.position_at(start),
                "'<' not allowed in attribute value",
            ));
        }
        let value = unescape(raw)
            .map_err(|off| ParseError::new(self.position_at(start + off), "bad entity"))?;
        Ok(Attribute { name, value })
    }

    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        self.expect("<!DOCTYPE")?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                Some(b'<') => depth += 1,
                Some(b'>') => depth -= 1,
                Some(_) => {}
                None => return Err(self.err("unterminated DOCTYPE")),
            }
            self.advance(1);
        }
        Ok(())
    }

    /// Next event, or `None` at the (well-formed) end of the document.
    #[allow(clippy::missing_panics_doc)]
    pub fn next_event(&mut self) -> Result<Option<Event>, ParseError> {
        if let Some(name) = self.pending_end.take() {
            return Ok(Some(Event::End { name }));
        }
        if self.done {
            return Ok(None);
        }
        if self.stack.is_empty() {
            if self.seen_root {
                self.trailing_misc()?;
                self.done = true;
                return Ok(None);
            }
            self.prolog()?;
            return self.read_start().map(Some);
        }
        // Inside an element: text, child, or end tag.
        let mut text = String::new();
        loop {
            if self.starts_with("</") {
                if !text.is_empty() {
                    return Ok(Some(Event::Text(text)));
                }
                self.advance(2);
                let name = self.parse_name()?;
                let open = self.stack.pop().expect("non-empty stack");
                if name != open {
                    return Err(self.err(format!(
                        "mismatched end tag: expected </{open}>, found </{name}>"
                    )));
                }
                self.skip_whitespace();
                self.expect(">")?;
                return Ok(Some(Event::End { name }));
            } else if self.starts_with("<!--") {
                self.advance(4);
                self.skip_until("-->", "comment")?;
            } else if self.starts_with("<![CDATA[") {
                self.advance(9);
                let start = self.pos;
                let end = self.skip_until("]]>", "CDATA section")?;
                text.push_str(&self.src[start..end]);
            } else if self.starts_with("<?") {
                self.advance(2);
                self.skip_until("?>", "processing instruction")?;
            } else if self.peek() == Some(b'<') {
                if !text.is_empty() {
                    return Ok(Some(Event::Text(text)));
                }
                return self.read_start().map(Some);
            } else if self.peek().is_none() {
                return Err(self.err(format!(
                    "unexpected end of input inside <{}>",
                    self.stack.last().expect("non-empty stack")
                )));
            } else {
                let start = self.pos;
                let rel = self.src[self.pos..]
                    .find('<')
                    .unwrap_or(self.src.len() - self.pos);
                self.advance(rel);
                let raw = &self.src[start..self.pos];
                let expanded = unescape(raw)
                    .map_err(|off| ParseError::new(self.position_at(start + off), "bad entity"))?;
                text.push_str(&expanded);
            }
        }
    }

    fn prolog(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.advance(2);
                self.skip_until("?>", "processing instruction")?;
            } else if self.starts_with("<!--") {
                self.advance(4);
                self.skip_until("-->", "comment")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                break;
            }
        }
        if self.peek() != Some(b'<') {
            return Err(self.err("expected root element"));
        }
        Ok(())
    }

    fn trailing_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                self.advance(4);
                self.skip_until("-->", "comment")?;
            } else if self.starts_with("<?") {
                self.advance(2);
                self.skip_until("?>", "processing instruction")?;
            } else if self.pos >= self.bytes.len() {
                return Ok(());
            } else {
                return Err(self.err("content after root element"));
            }
        }
    }

    /// Read a start tag (cursor at `<`).
    fn read_start(&mut self) -> Result<Event, ParseError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') | Some(b'/') => break,
                Some(_) => {
                    let attr = self.parse_attribute()?;
                    if attributes.iter().any(|a: &Attribute| a.name == attr.name) {
                        return Err(self.err(format!("duplicate attribute '{}'", attr.name)));
                    }
                    attributes.push(attr);
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        self.seen_root = true;
        if self.starts_with("/>") {
            self.advance(2);
            self.pending_end = Some(name.clone());
        } else {
            self.expect(">")?;
            self.stack.push(name.clone());
        }
        Ok(Event::Start { name, attributes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Result<Vec<Event>, ParseError> {
        let mut r = XmlReader::new(src);
        let mut out = Vec::new();
        while let Some(e) = r.next_event()? {
            out.push(e);
        }
        Ok(out)
    }

    fn start(name: &str) -> Event {
        Event::Start {
            name: name.into(),
            attributes: Vec::new(),
        }
    }

    fn end(name: &str) -> Event {
        Event::End { name: name.into() }
    }

    #[test]
    fn basic_event_stream() {
        let ev = events("<a><b>hi</b><c/></a>").unwrap();
        assert_eq!(
            ev,
            vec![
                start("a"),
                start("b"),
                Event::Text("hi".into()),
                end("b"),
                start("c"),
                end("c"),
                end("a"),
            ]
        );
    }

    #[test]
    fn attributes_and_entities() {
        let ev = events("<a x='1 &amp; 2'>x &lt; y</a>").unwrap();
        match &ev[0] {
            Event::Start { attributes, .. } => {
                assert_eq!(attributes[0].value, "1 & 2");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(ev[1], Event::Text("x < y".into()));
    }

    #[test]
    fn text_coalesced_across_comments_and_cdata() {
        let ev = events("<a>one<!-- c -->two<![CDATA[<3>]]>three</a>").unwrap();
        assert_eq!(ev[1], Event::Text("onetwo<3>three".into()));
        assert_eq!(ev.len(), 3);
    }

    #[test]
    fn whitespace_text_is_reported_raw() {
        // The pull layer does not apply the DOM's whitespace policy.
        let ev = events("<a> <b/> </a>").unwrap();
        assert_eq!(
            ev,
            vec![
                start("a"),
                Event::Text(" ".into()),
                start("b"),
                end("b"),
                Event::Text(" ".into()),
                end("a"),
            ]
        );
    }

    #[test]
    fn wellformedness_enforced() {
        assert!(events("<a><b></a></b>").is_err());
        assert!(events("<a>").is_err());
        assert!(events("<a/><b/>").is_err());
        assert!(events("<a x='1' x='2'/>").is_err());
    }

    #[test]
    fn depth_tracking() {
        let mut r = XmlReader::new("<a><b><c/></b></a>");
        let mut max_depth = 0;
        while r.next_event().unwrap().is_some() {
            max_depth = max_depth.max(r.depth());
        }
        assert_eq!(max_depth, 2, "depth after <c/>'s Start is 2 (c is pending)");
    }

    #[test]
    fn streaming_does_not_need_the_whole_tree() {
        // Count elements of a large document without building a DOM.
        let mut src = String::from("<root>");
        for i in 0..10_000 {
            src.push_str(&format!("<item id='{i}'/>"));
        }
        src.push_str("</root>");
        let mut r = XmlReader::new(&src);
        let mut count = 0;
        while let Some(e) = r.next_event().unwrap() {
            if matches!(e, Event::Start { .. }) {
                count += 1;
            }
        }
        assert_eq!(count, 10_001);
    }
}
